"""Design-space exploration: declarative sweeps, parallel execution,
result caching, and Pareto/bottleneck analysis.

The paper's evaluation beyond single-model compilation is a family of
*sweeps* — architecture sensitivity (Fig. 22), cross-accelerator
generality (Table 1 / Fig. 20) — and every future scaling study has the
same shape.  This package makes that shape first-class:

* :mod:`~repro.explore.space` — declare a :class:`SweepSpace` (grid or
  explicit points) over architecture variations x models x optimization
  levels.
* :mod:`~repro.explore.runner` — a :class:`SweepRunner` evaluates the
  space, fanning out over processes and memoizing each point's
  performance summary in a content-addressed disk cache.
* :mod:`~repro.explore.pareto` — non-dominated frontier extraction and
  per-point bottleneck attribution (reconfiguration / compute / NoC).
* :mod:`~repro.explore.prefilter` — replay-based link-axis pruning
  (:func:`replay_prefilter`): one full evaluation per link group, the
  rest re-priced exactly through :mod:`repro.trace`.
* :mod:`~repro.explore.report` — CSV / JSON export plus the classic
  experiment-table rendering.

Quickstart
----------
>>> from repro.arch import isaac_baseline
>>> from repro.models import mlp
>>> from repro.explore import SweepRunner, SweepSpace
>>> space = SweepSpace.grid(isaac_baseline(), mlp(), {"cores": [64, 128]})
>>> sweep = SweepRunner().run(space)
>>> len(sweep) == len(space)
True
"""

from .pareto import (
    DEFAULT_OBJECTIVES,
    ENERGY_OBJECTIVES,
    OBJECTIVE_ALIASES,
    attribute_bottleneck,
    attribute_sweep,
    dominates,
    frontier_labels,
    pareto_frontier,
    resolve_objectives,
)
from .prefilter import PrefilterResult, PrefilterStats, replay_prefilter
from .report import metric_result, speedup_result, to_csv, to_json
from .runner import (
    PointResult,
    ResultCache,
    SweepResult,
    SweepRunner,
    default_cache_dir,
    evaluate_point,
    summarize_multichip,
    summarize_report,
)
from .space import (
    LEVEL_SERIES,
    SCALE_AXES,
    VARIATIONS,
    SweepPoint,
    SweepSpace,
    apply_variation,
    graph_signature,
    level_series,
    resolve_variation,
)

__all__ = [
    "DEFAULT_OBJECTIVES",
    "ENERGY_OBJECTIVES",
    "LEVEL_SERIES",
    "OBJECTIVE_ALIASES",
    "PointResult",
    "PrefilterResult",
    "PrefilterStats",
    "ResultCache",
    "SCALE_AXES",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
    "SweepSpace",
    "VARIATIONS",
    "apply_variation",
    "attribute_bottleneck",
    "attribute_sweep",
    "default_cache_dir",
    "dominates",
    "evaluate_point",
    "frontier_labels",
    "graph_signature",
    "level_series",
    "metric_result",
    "pareto_frontier",
    "replay_prefilter",
    "resolve_objectives",
    "resolve_variation",
    "speedup_result",
    "summarize_multichip",
    "summarize_report",
    "to_csv",
    "to_json",
]
