"""Pareto analysis and bottleneck attribution over sweep results.

Two analyses an architect runs after a design-space sweep:

* :func:`pareto_frontier` — which design points are non-dominated under a
  chosen set of objectives (default: latency vs. peak power, both
  minimized)?
* :func:`attribute_bottleneck` — *why* is a point slow: weight
  reconfiguration between segments, crossbar compute waves, or NoC/buffer
  traffic?  Shares are derived from the performance summary's
  ``compute_cycles`` / ``reconfiguration_cycles`` / ``noc_cycles`` split and
  the per-:class:`~repro.sim.performance.SegmentTiming` bottleneck records.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .runner import PointResult, SweepResult

#: Default objectives: minimize single-inference latency and peak power.
DEFAULT_OBJECTIVES = ("total_cycles", "peak_power")


def _objective_vector(result: PointResult,
                      objectives: Sequence[str]) -> Tuple[float, ...]:
    return tuple(float(result.summary[obj]) for obj in objectives)


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is no worse than ``b`` everywhere and strictly
    better somewhere (all objectives minimized)."""
    return all(x <= y for x, y in zip(a, b)) and \
        any(x < y for x, y in zip(a, b))


def pareto_frontier(results: Sequence[PointResult],
                    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
                    ) -> List[PointResult]:
    """The non-dominated subset of ``results``, in input order.

    ``objectives`` are summary keys, all minimized; negate upstream (or add
    a derived key) for maximization.  Duplicated objective vectors are all
    kept — they dominate each other in neither direction.
    """
    vectors = [_objective_vector(r, objectives) for r in results]
    frontier = []
    for i, r in enumerate(results):
        if not any(dominates(vectors[j], vectors[i])
                   for j in range(len(results)) if j != i):
            frontier.append(r)
    return frontier


def frontier_labels(sweep: SweepResult,
                    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
                    ) -> List[str]:
    """Labels of Pareto-optimal points of a whole sweep result."""
    return [f"{r.label}/{r.series}"
            for r in pareto_frontier(list(sweep), objectives)]


def attribute_bottleneck(summary: Dict) -> Dict:
    """Attribute one point's latency to its architectural causes.

    Returns shares over ``total_cycles`` for ``reconfiguration`` (segment
    weight rewrites — the serial stall), ``compute`` (crossbar activation
    waves), and ``noc`` (data movement; overlapped with compute in the
    latency model, so its share reports how much of the compute window the
    interconnect is busy, not an additive term), plus the dominant cause
    and the most frequent per-segment bottleneck operator.
    """
    total = summary["total_cycles"] or 1.0
    compute = summary["compute_cycles"]
    reconf = summary["reconfiguration_cycles"]
    noc = summary.get("noc_cycles", 0.0)
    shares = {
        "reconfiguration": reconf / total,
        "compute": compute / total,
        "noc": min(noc, compute) / total,
    }
    counts: Dict[str, int] = {}
    for seg in summary.get("segments", ()):
        counts[seg["bottleneck"]] = counts.get(seg["bottleneck"], 0) + 1
    magnitudes = {"compute": compute, "reconfiguration": reconf, "noc": noc}
    dominant = max(magnitudes, key=magnitudes.get)
    return {
        "shares": shares,
        "dominant": dominant,
        "bottleneck_ops": sorted(counts, key=counts.get, reverse=True),
        "segments": len(summary.get("segments", ())),
    }


def attribute_sweep(sweep: SweepResult) -> Dict[str, Dict]:
    """:func:`attribute_bottleneck` for every point, keyed
    ``"label/series"``."""
    return {f"{r.label}/{r.series}": attribute_bottleneck(r.summary)
            for r in sweep}
