"""Pareto analysis and bottleneck attribution over sweep results.

Two analyses an architect runs after a design-space sweep:

* :func:`pareto_frontier` — which design points are non-dominated under a
  chosen set of objectives (default: latency vs. peak power, both
  minimized)?  Objectives are summary keys or their friendly aliases
  (:data:`OBJECTIVE_ALIASES`: ``latency`` / ``energy`` / ``power`` /
  ``area`` …); :data:`ENERGY_OBJECTIVES` is the three-way
  latency x energy x area frontier of an energy-aware study.
* :func:`attribute_bottleneck` — *why* is a point slow: weight
  reconfiguration between segments, crossbar compute waves, or NoC/buffer
  traffic?  Shares are derived from the performance summary's
  ``compute_cycles`` / ``reconfiguration_cycles`` / ``noc_cycles`` split and
  the per-:class:`~repro.sim.performance.SegmentTiming` bottleneck records.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..errors import ArchitectureError
from .runner import PointResult, SweepResult

#: Default objectives: minimize single-inference latency and peak power.
DEFAULT_OBJECTIVES = ("total_cycles", "peak_power")

#: The energy study's default: minimize latency, per-inference energy,
#: and resident crossbar area together (``repro sweep --objectives
#: latency,energy_per_inference,area``).
ENERGY_OBJECTIVES = ("total_cycles", "energy_per_inference",
                     "area_crossbars")

#: Friendly objective spellings -> summary keys (all minimized).
OBJECTIVE_ALIASES = {
    "latency": "total_cycles",
    "cycles": "total_cycles",
    "interval": "steady_state_interval",
    "energy": "energy_total",
    "power": "peak_power",
    "area": "area_crossbars",
    "cores": "cores_used",
}


def resolve_objectives(objectives: Sequence[str]) -> Tuple[str, ...]:
    """Canonical summary keys for ``objectives`` (alias-resolved).

    Unknown names pass through — any scalar summary key is a legal
    objective — but an empty list is rejected eagerly.
    """
    if not objectives:
        raise ArchitectureError("at least one Pareto objective is required")
    return tuple(OBJECTIVE_ALIASES.get(o, o) for o in objectives)


def _objective_vector(result: PointResult,
                      objectives: Sequence[str]) -> Tuple[float, ...]:
    return tuple(float(result.summary[obj]) for obj in objectives)


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is no worse than ``b`` everywhere and strictly
    better somewhere (all objectives minimized)."""
    return all(x <= y for x, y in zip(a, b)) and \
        any(x < y for x, y in zip(a, b))


def pareto_frontier(results: Sequence[PointResult],
                    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
                    ) -> List[PointResult]:
    """The non-dominated subset of ``results``, in input order.

    ``objectives`` are summary keys or :data:`OBJECTIVE_ALIASES`
    spellings, all minimized; negate upstream (or add a derived key) for
    maximization.  Duplicated objective vectors are all kept — they
    dominate each other in neither direction.
    """
    objectives = resolve_objectives(objectives)
    vectors = [_objective_vector(r, objectives) for r in results]
    frontier = []
    for i, r in enumerate(results):
        if not any(dominates(vectors[j], vectors[i])
                   for j in range(len(results)) if j != i):
            frontier.append(r)
    return frontier


def frontier_labels(sweep: SweepResult,
                    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
                    ) -> List[str]:
    """Labels of Pareto-optimal points of a whole sweep result."""
    return [f"{r.label}/{r.series}"
            for r in pareto_frontier(list(sweep), objectives)]


def attribute_bottleneck(summary: Dict) -> Dict:
    """Attribute one point's latency to its architectural causes.

    Returns shares over ``total_cycles`` for ``reconfiguration`` (segment
    weight rewrites — the serial stall), ``compute`` (crossbar activation
    waves), and ``noc`` (data movement; overlapped with compute in the
    latency model, so its share reports how much of the compute window the
    interconnect is busy, not an additive term), plus the dominant cause
    and the most frequent per-segment bottleneck operator.

    The share/dominance arithmetic lives in
    :func:`repro.trace.share_attribution` (the trace layer generalizes
    it to the full category set — link, queue — over recorded spans);
    this function keeps the summary-dict interface and the per-segment
    bottleneck-operator census.
    """
    from ..trace.analysis import share_attribution

    compute = summary["compute_cycles"]
    magnitudes = {"compute": compute,
                  "reconfiguration": summary["reconfiguration_cycles"],
                  "noc": summary.get("noc_cycles", 0.0)}
    attributed = share_attribution(magnitudes, summary["total_cycles"],
                                   caps={"noc": compute})
    shares = attributed["shares"]
    counts: Dict[str, int] = {}
    for seg in summary.get("segments", ()):
        counts[seg["bottleneck"]] = counts.get(seg["bottleneck"], 0) + 1
    return {
        "shares": {"reconfiguration": shares["reconfiguration"],
                   "compute": shares["compute"],
                   "noc": shares["noc"]},
        "dominant": attributed["dominant"],
        "bottleneck_ops": sorted(counts, key=counts.get, reverse=True),
        "segments": len(summary.get("segments", ())),
    }


def attribute_sweep(sweep: SweepResult) -> Dict[str, Dict]:
    """:func:`attribute_bottleneck` for every point, keyed
    ``"label/series"``."""
    return {f"{r.label}/{r.series}": attribute_bottleneck(r.summary)
            for r in sweep}
