"""Sweep execution: fan points out over processes, cache results on disk.

The runner evaluates every :class:`~repro.explore.space.SweepPoint` of a
space into a plain-dict *summary* of the resulting
:class:`~repro.sim.performance.PerformanceReport`.  Summaries are JSON
(floats survive the round-trip bit-exactly), so a content-addressed disk
cache makes re-runs and overlapping sweeps near-free: the cache key is the
point fingerprint (architecture parameters + graph signature + compiler
options), the value is the summary.

``workers=1`` runs serially in-process (deterministic, debuggable);
``workers>1`` uses a :class:`concurrent.futures.ProcessPoolExecutor` and is
guaranteed to produce identical results in identical order — points are
independent compilations and the map preserves input order.
"""

from __future__ import annotations

import copy
import json
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..perf import CompileCache, default_compile_cache, fastpath_enabled, \
    set_fastpath
from ..sched import CIMMLC, no_optimization
from ..perf.incremental import IncrementalCompiler
from ..sim.performance import PerformanceReport
from .space import SweepPoint, SweepSpace

#: Cache layout version; bump when the summary schema changes.
#: v3: energy metrics (``energy_total``, ``energy_per_inference``,
#: ``weight_write_energy``, the ``reconfiguration`` breakdown component)
#: and the area proxies (``area_crossbars``, ``cores_used``).
#: v4: multi-chip ``scale`` blocks carry ``chips`` and per-``transfers``
#: routing detail (src/dst stage+chip, bits, hops, cycles, occupancy,
#: energy) so :func:`repro.trace.trace_from_summary` can rebuild a shard
#: trace — and ``repro sweep --prefilter replay`` re-price link axes —
#: without recompiling.  See the migration note in docs/PERFORMANCE.md.
CACHE_VERSION = 4

#: Cap on the worker-pool graph registry: beyond this many distinct
#: graphs the registry resets on pool re-creation instead of growing
#: (and re-pickling) forever in long sessions.
_MAX_POOL_GRAPHS = 32


def default_cache_dir() -> str:
    """The cache root used when none is given: ``$REPRO_CACHE_DIR`` or
    ``~/.cache/repro-explore``."""
    return os.environ.get(
        "REPRO_CACHE_DIR",
        os.path.join(os.path.expanduser("~"), ".cache", "repro-explore"))


def summarize_report(report: PerformanceReport,
                     noc_cycles: float = 0.0,
                     crossbars_used: int = 0,
                     cores_used: int = 0) -> Dict:
    """Flatten a :class:`PerformanceReport` into a JSON-able summary dict.

    ``noc_cycles`` is the schedule's total data-movement budget (NoC +
    buffer traffic, overlapped with compute) — kept for bottleneck
    attribution, which the report itself does not carry.
    ``crossbars_used`` / ``cores_used`` are the schedule's peak resident
    hardware footprint (the area proxies the report does not carry
    either; :func:`evaluate_point` reads them off the schedule).
    """
    return {
        "schedule_levels": list(report.schedule_levels),
        "pipelined": report.pipelined,
        "total_cycles": report.total_cycles,
        "compute_cycles": report.compute_cycles,
        "reconfiguration_cycles": report.reconfiguration_cycles,
        "noc_cycles": noc_cycles,
        "steady_state_interval": report.steady_state_interval,
        "segment_intervals": list(report.segment_intervals),
        "weight_load_cycles": report.weight_load_cycles,
        "weight_write_energy": report.weight_write_energy,
        "peak_power": report.power.peak_power,
        "avg_power": report.power.avg_power,
        "peak_active_crossbars": report.power.peak_active_crossbars,
        "energy_total": report.power.total_energy,
        "energy_per_inference": report.energy_per_inference,
        "area_crossbars": crossbars_used,
        "cores_used": cores_used,
        "energy": {
            "crossbar": report.power.energy_crossbar,
            "converter": report.power.energy_converter,
            "movement": report.power.energy_movement,
            "reconfiguration": report.power.energy_reconfiguration,
        },
        "segments": [
            {
                "index": seg.index,
                "cycles": seg.cycles,
                "reconfiguration": seg.reconfiguration,
                "bottleneck": seg.bottleneck,
                "bottleneck_cycles": seg.bottleneck_cycles,
            }
            for seg in report.segments
        ],
    }


def summarize_multichip(report: "MultiChipReport",
                        noc_cycles: float = 0.0,
                        crossbars_used: int = 0,
                        cores_used: int = 0) -> Dict:
    """Flatten a :class:`~repro.sim.performance.MultiChipReport` into the
    same summary schema as :func:`summarize_report` (so tables, Pareto
    extraction, and the serve bridge work unchanged), plus a ``scale``
    block with per-stage and per-link detail.

    ``noc_cycles`` carries the stages' total on-die data-movement budget
    (same convention as :func:`summarize_report`) so bottleneck
    attribution treats multi-chip points like single-chip ones;
    ``crossbars_used`` / ``cores_used`` sum each stage's peak resident
    footprint (stages are resident concurrently).
    """
    return {
        "schedule_levels": list(report.stages[0].schedule_levels
                                if report.stages else ()),
        "pipelined": True,
        "total_cycles": report.total_cycles,
        "compute_cycles": sum(r.compute_cycles for r in report.stages),
        "reconfiguration_cycles": sum(r.reconfiguration_cycles
                                      for r in report.stages),
        "noc_cycles": noc_cycles,
        "steady_state_interval": report.steady_state_interval,
        "segment_intervals": list(report.stage_intervals),
        "weight_load_cycles": sum(r.weight_load_cycles
                                  for r in report.stages),
        "weight_write_energy": report.weight_write_energy,
        "peak_power": report.peak_power,
        "avg_power": sum(r.power.avg_power for r in report.stages),
        "peak_active_crossbars": sum(r.power.peak_active_crossbars
                                     for r in report.stages),
        "energy_total": report.total_energy,
        "energy_per_inference": report.energy_per_inference,
        "area_crossbars": crossbars_used,
        "cores_used": cores_used,
        "energy": {
            "crossbar": sum(r.power.energy_crossbar for r in report.stages),
            "converter": sum(r.power.energy_converter for r in report.stages),
            "movement": sum(r.power.energy_movement for r in report.stages),
            "reconfiguration": sum(r.power.energy_reconfiguration
                                   for r in report.stages),
            "link": report.link_energy,
        },
        "segments": [],
        "scale": {
            "num_chips": report.num_chips,
            "chips": list(report.chips),
            "stage_intervals": list(report.stage_intervals),
            "stage_latencies": [r.total_cycles for r in report.stages],
            "link_intervals": list(report.link_intervals),
            "link_bits": [t.bits for t in report.transfers],
            "chip_peak_powers": list(report.chip_peak_powers),
            "link_energy": report.link_energy,
            # Per-transfer routing detail (v4): everything the trace
            # layer needs to rebuild and re-price the shard timeline
            # without recompiling (repro.trace.trace_from_summary).
            "transfers": [
                {"seq": i, "src_stage": t.src_stage,
                 "dst_stage": t.dst_stage, "src_chip": t.src_chip,
                 "dst_chip": t.dst_chip, "bits": t.bits, "hops": t.hops,
                 "cycles": t.cycles, "occupancy": t.occupancy,
                 "energy": t.energy}
                for i, t in enumerate(report.transfers)
            ],
        },
    }


def _peak_crossbars(schedule) -> int:
    """Most crossbars resident at once (the area proxy: segments swap,
    so residency peaks over segments rather than summing)."""
    return max((schedule.crossbars_used(i)
                for i in range(len(schedule.segments))), default=0)


def _peak_cores(schedule) -> int:
    """Most cores occupied at once (see :func:`_peak_crossbars`)."""
    return max((schedule.cores_used(i)
                for i in range(len(schedule.segments))), default=0)


#: Per-process compile cache shared by every point this process
#: evaluates (sweep workers and serial runs alike).  Content-addressed,
#: so sharing across unrelated sweeps is safe; only consulted while the
#: fast path is enabled.  With ``REPRO_DISK_CACHE=1`` it is disk-backed
#: (:class:`~repro.perf.DiskCompileCache`), so every process — sweep
#: workers included, which inherit the environment — shares one
#: persistent store.
_PROCESS_CACHE = default_compile_cache()

#: Per-process incremental recompiler riding the process cache: sweep
#: series, autoscaler probes, and fault-degradation points mutate one
#: architecture axis at a time against the same graphs, so unchanged
#: segments splice instead of re-searching (bit-identical — see
#: :mod:`repro.perf.incremental`).
_PROCESS_INCREMENTAL = IncrementalCompiler(cache=_PROCESS_CACHE)


def evaluate_point(point: SweepPoint,
                   cache: Optional[CompileCache] = None) -> Dict:
    """Compile one point and summarize its performance report.

    Multi-chip points (``point.chips > 1``) shard through
    :func:`repro.scale.shard` instead of a single-chip compilation.
    Module-level so :class:`ProcessPoolExecutor` can pickle it.

    ``cache`` defaults to the process-wide :class:`CompileCache` while
    the fast path is enabled, so per-op profiles and duplication
    searches are shared across every point (and series) that agrees on
    the quantities they depend on.
    """
    if cache is None and fastpath_enabled():
        cache = _PROCESS_CACHE
    if point.chips < 1:
        from ..errors import ArchitectureError

        raise ArchitectureError(
            f"point {point.label!r}: chips must be >= 1, got {point.chips}")
    if point.chips > 1:
        from ..scale import shard

        plan = shard(point.graph, point.system(), options=point.options,
                     optimize=point.options is not None, cache=cache)
        noc = sum(d.profile.mov_cycles
                  for sched in plan.schedules
                  for d in sched.decisions.values())
        return summarize_multichip(
            plan.report, noc_cycles=noc,
            crossbars_used=sum(_peak_crossbars(s) for s in plan.schedules),
            cores_used=sum(_peak_cores(s) for s in plan.schedules))
    if point.options is None:
        result = no_optimization(point.graph, point.arch, cache=cache)
    elif cache is _PROCESS_CACHE:
        # Implicitly-cached single-chip compiles route through the
        # process-wide incremental recompiler: points that mutate one
        # axis against an already-seen (graph, options) pair delta-patch
        # instead of recompiling (bit-identical by construction).
        result = _PROCESS_INCREMENTAL.compile(point.graph, point.arch,
                                              point.options)
    else:
        result = CIMMLC(point.arch, point.options,
                        cache=cache).compile(point.graph)
    sched = result.schedule
    noc = sum(d.profile.mov_cycles
              for i in range(len(sched.segments))
              for d in sched.segment_decisions(i))
    return summarize_report(result.report, noc_cycles=noc,
                            crossbars_used=_peak_crossbars(sched),
                            cores_used=_peak_cores(sched))


# ---------------------------------------------------------------------------
# Worker-process plumbing
# ---------------------------------------------------------------------------

#: Graphs registered in this worker, keyed by content signature.  Filled
#: by :func:`_worker_init` when the pool starts, so each distinct graph
#: crosses the process boundary once per pool instead of once per point.
_WORKER_GRAPHS: Dict[str, "Graph"] = {}  # noqa: F821 - forward name


def _worker_init(graph_blob: bytes, fast: bool = True) -> None:
    """Pool initializer: unpickle the sweep's graphs into this worker
    and seed the parent's fast-path switch state (a spawned worker
    would otherwise re-read only the environment)."""
    set_fastpath(fast)
    _WORKER_GRAPHS.update(pickle.loads(graph_blob))


@dataclass(frozen=True)
class _PointTask:
    """A :class:`SweepPoint` minus its graph (referenced by signature).

    What actually crosses the process boundary per point on the fast
    path: the architecture and options pickle in microseconds, while
    the graph — the heavy part — is resolved from the worker-side
    registry populated by :func:`_worker_init`.
    """

    label: str
    series: str
    arch: "CIMArchitecture"  # noqa: F821 - forward name
    options: Optional["CompilerOptions"]  # noqa: F821 - forward name
    chips: int
    link_bandwidth: Optional[float]
    link_latency: Optional[float]
    topology: str
    graph_sig: str

    @classmethod
    def from_point(cls, point: SweepPoint) -> "_PointTask":
        """Strip the graph off ``point``, keeping its signature."""
        return cls(point.label, point.series, point.arch, point.options,
                   point.chips, point.link_bandwidth, point.link_latency,
                   point.topology, point.graph.signature())

    def to_point(self, graph: "Graph") -> SweepPoint:  # noqa: F821
        """Rebuild the full point around the registry ``graph``."""
        return SweepPoint(self.label, self.series, self.arch, graph,
                          self.options, self.chips, self.link_bandwidth,
                          self.link_latency, self.topology)


def _evaluate_task(task: _PointTask) -> Dict:
    """Worker-side entry: resolve the graph, evaluate with the
    process-wide compile cache."""
    return evaluate_point(task.to_point(_WORKER_GRAPHS[task.graph_sig]))


class ResultCache:
    """Content-addressed JSON cache: one file per point fingerprint."""

    def __init__(self, root: str) -> None:
        self.root = os.path.join(os.path.expanduser(root), f"v{CACHE_VERSION}")
        os.makedirs(self.root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def get(self, key: str) -> Optional[Dict]:
        """Cached summary for ``key``, or ``None`` on miss/corruption."""
        try:
            with open(self._path(key)) as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    def put(self, key: str, summary: Dict) -> None:
        """Store ``summary`` under ``key`` (atomic, best-effort)."""
        # Write-then-rename so concurrent sweeps never read a torn file.
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(summary, fh)
            os.replace(tmp, self._path(key))
        except OSError:  # pragma: no cover - best-effort cache
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))


@dataclass(frozen=True, eq=False)
class PointResult:
    """One evaluated point: the point, its summary, and cache provenance."""

    point: SweepPoint
    summary: Dict
    cached: bool = False

    @property
    def label(self) -> str:
        """The design-point label (delegates to the point)."""
        return self.point.label

    @property
    def series(self) -> str:
        """The measurement series label (delegates to the point)."""
        return self.point.series

    @property
    def total_cycles(self) -> float:
        """End-to-end latency of the point, from the summary."""
        return self.summary["total_cycles"]

    @property
    def peak_power(self) -> float:
        """Peak power of the point, from the summary."""
        return self.summary["peak_power"]

    @property
    def energy_per_inference(self) -> float:
        """Energy one inference consumes at this point, from the summary."""
        return self.summary["energy_per_inference"]


@dataclass
class SweepResult:
    """All point results of one sweep, in space order, plus cache stats.

    ``deduped`` counts points that were *identical* to another point of
    the same sweep (same content fingerprint) and therefore shared its
    evaluation instead of dispatching their own.
    """

    results: List[PointResult] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    deduped: int = 0

    def __iter__(self) -> Iterator[PointResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def by_label(self) -> Dict[str, Dict[str, PointResult]]:
        """``{point label: {series: result}}`` preserving insertion order."""
        grouped: Dict[str, Dict[str, PointResult]] = {}
        for r in self.results:
            grouped.setdefault(r.label, {})[r.series] = r
        return grouped

    def speedups(self, baseline_series: str = "baseline") -> Dict[str, Dict[str, float]]:
        """Per-label ``series -> baseline_cycles / series_cycles``.

        Every label must include the baseline series (raises
        :class:`KeyError` otherwise — use
        :func:`~repro.explore.report.metric_result` for raw metrics).
        """
        out: Dict[str, Dict[str, float]] = {}
        for label, series_map in self.by_label().items():
            base = series_map.get(baseline_series)
            if base is None:
                raise KeyError(
                    f"label {label!r} has no {baseline_series!r} series; "
                    f"sweep the baseline too or report raw metrics via "
                    f"metric_result()")
            out[label] = {
                name: base.total_cycles / r.total_cycles
                for name, r in series_map.items()
                if name != baseline_series
            }
        return out

    @property
    def all_cached(self) -> bool:
        """True when every point came from the disk cache."""
        return bool(self.results) and self.cache_misses == 0


class SweepRunner:
    """Evaluates a :class:`SweepSpace`, optionally in parallel and cached.

    Parameters
    ----------
    workers:
        Process count.  ``1`` (default) runs serially in-process.
    cache_dir:
        Root of the disk cache.  ``None`` disables caching entirely.

    On the fast path the runner additionally (a) *deduplicates*
    identical points (same content fingerprint) before dispatch, (b)
    keeps one :class:`ProcessPoolExecutor` alive across :meth:`run`
    calls — re-created only when a sweep introduces a graph the pool's
    workers have not seen — and (c) ships each distinct graph to the
    workers once, through the pool initializer, instead of re-pickling
    it with every point.  Workers keep a process-wide
    :class:`~repro.perf.CompileCache`, so points sharing an
    architecture reuse per-op profiles and duplication searches.
    """

    def __init__(self, workers: int = 1,
                 cache_dir: Optional[str] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_graphs: Dict[str, "Graph"] = {}  # noqa: F821

    # -- worker-pool lifecycle -----------------------------------------

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - gc timing
        try:
            self.close()
        except Exception:
            pass

    def _pooled_summaries(self, todo: List[SweepPoint]) -> List[Dict]:
        """Fan ``todo`` out over the (persistent) worker pool."""
        if not fastpath_enabled():
            # Reference behaviour: fresh pool, full points per task.
            # Close any persistent fast-path pool (don't leave its idle
            # workers resident), and seed the fresh workers with the
            # parent's switch state — on spawn/forkserver platforms a
            # worker would otherwise re-read only the environment.
            self.close()
            with ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=set_fastpath,
                    initargs=(False,)) as pool:
                return list(pool.map(evaluate_point, todo))
        needed = {}
        for p in todo:
            needed.setdefault(p.graph.signature(), p.graph)
        if self._pool is None or any(s not in self._pool_graphs
                                     for s in needed):
            self.close()
            if len(self._pool_graphs) + len(needed) > _MAX_POOL_GRAPHS:
                # Bound the initializer payload in long sessions: drop
                # the accumulated registry and re-ship only this run's
                # graphs (older graphs just trigger a later re-create).
                self._pool_graphs = {}
            self._pool_graphs.update(needed)
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_worker_init,
                initargs=(pickle.dumps(self._pool_graphs),
                          fastpath_enabled()))
        tasks = [_PointTask.from_point(p) for p in todo]
        return list(self._pool.map(_evaluate_task, tasks))

    # -- evaluation ----------------------------------------------------

    def run(self, space: SweepSpace) -> SweepResult:
        """Evaluate every point, consulting/filling the cache.

        Results come back in space order regardless of worker count,
        disk-cache state, or dedup — points are independent
        compilations and every dispatch path preserves input order.
        """
        points = list(space)
        slots: List[Optional[PointResult]] = [None] * len(points)
        pending: List[int] = []
        keys: List[Optional[str]] = [None] * len(points)
        fast = fastpath_enabled()
        first_of: Dict[str, int] = {}      # fingerprint -> pending index
        dup_of: Dict[int, int] = {}        # duplicate -> canonical index
        for i, point in enumerate(points):
            if self.cache is not None or fast:
                keys[i] = point.fingerprint()
            if self.cache is not None:
                summary = self.cache.get(keys[i])
                if summary is not None:
                    slots[i] = PointResult(point, summary, cached=True)
                    continue
            if fast:
                if keys[i] in first_of:
                    dup_of[i] = first_of[keys[i]]
                    continue
                first_of[keys[i]] = i
            pending.append(i)

        if pending:
            todo = [points[i] for i in pending]
            if self.workers > 1 and len(todo) > 1:
                summaries = self._pooled_summaries(todo)
            else:
                summaries = [evaluate_point(p) for p in todo]
            for i, summary in zip(pending, summaries):
                slots[i] = PointResult(points[i], summary, cached=False)
                if self.cache is not None and keys[i] is not None:
                    self.cache.put(keys[i], summary)
        for i, canonical in dup_of.items():
            # A fingerprint collision within the sweep: reuse the
            # canonical evaluation (deep-copied; summaries are mutable).
            source = slots[canonical]
            slots[i] = PointResult(points[i],
                                   copy.deepcopy(source.summary),
                                   cached=source.cached)

        return SweepResult(
            results=[r for r in slots if r is not None],
            cache_hits=len(points) - len(pending) - len(dup_of),
            cache_misses=len(pending),
            deduped=len(dup_of),
        )
