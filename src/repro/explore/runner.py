"""Sweep execution: fan points out over processes, cache results on disk.

The runner evaluates every :class:`~repro.explore.space.SweepPoint` of a
space into a plain-dict *summary* of the resulting
:class:`~repro.sim.performance.PerformanceReport`.  Summaries are JSON
(floats survive the round-trip bit-exactly), so a content-addressed disk
cache makes re-runs and overlapping sweeps near-free: the cache key is the
point fingerprint (architecture parameters + graph signature + compiler
options), the value is the summary.

``workers=1`` runs serially in-process (deterministic, debuggable);
``workers>1`` uses a :class:`concurrent.futures.ProcessPoolExecutor` and is
guaranteed to produce identical results in identical order — points are
independent compilations and the map preserves input order.
"""

from __future__ import annotations

import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..sched import CIMMLC, no_optimization
from ..sim.performance import PerformanceReport
from .space import SweepPoint, SweepSpace

#: Cache layout version; bump when the summary schema changes.
CACHE_VERSION = 2


def default_cache_dir() -> str:
    """The cache root used when none is given: ``$REPRO_CACHE_DIR`` or
    ``~/.cache/repro-explore``."""
    return os.environ.get(
        "REPRO_CACHE_DIR",
        os.path.join(os.path.expanduser("~"), ".cache", "repro-explore"))


def summarize_report(report: PerformanceReport,
                     noc_cycles: float = 0.0) -> Dict:
    """Flatten a :class:`PerformanceReport` into a JSON-able summary dict.

    ``noc_cycles`` is the schedule's total data-movement budget (NoC +
    buffer traffic, overlapped with compute) — kept for bottleneck
    attribution, which the report itself does not carry.
    """
    return {
        "schedule_levels": list(report.schedule_levels),
        "pipelined": report.pipelined,
        "total_cycles": report.total_cycles,
        "compute_cycles": report.compute_cycles,
        "reconfiguration_cycles": report.reconfiguration_cycles,
        "noc_cycles": noc_cycles,
        "steady_state_interval": report.steady_state_interval,
        "segment_intervals": list(report.segment_intervals),
        "weight_load_cycles": report.weight_load_cycles,
        "peak_power": report.power.peak_power,
        "avg_power": report.power.avg_power,
        "peak_active_crossbars": report.power.peak_active_crossbars,
        "energy": {
            "crossbar": report.power.energy_crossbar,
            "converter": report.power.energy_converter,
            "movement": report.power.energy_movement,
        },
        "segments": [
            {
                "index": seg.index,
                "cycles": seg.cycles,
                "reconfiguration": seg.reconfiguration,
                "bottleneck": seg.bottleneck,
                "bottleneck_cycles": seg.bottleneck_cycles,
            }
            for seg in report.segments
        ],
    }


def summarize_multichip(report: "MultiChipReport",
                        noc_cycles: float = 0.0) -> Dict:
    """Flatten a :class:`~repro.sim.performance.MultiChipReport` into the
    same summary schema as :func:`summarize_report` (so tables, Pareto
    extraction, and the serve bridge work unchanged), plus a ``scale``
    block with per-stage and per-link detail.

    ``noc_cycles`` carries the stages' total on-die data-movement budget
    (same convention as :func:`summarize_report`) so bottleneck
    attribution treats multi-chip points like single-chip ones.
    """
    return {
        "schedule_levels": list(report.stages[0].schedule_levels
                                if report.stages else ()),
        "pipelined": True,
        "total_cycles": report.total_cycles,
        "compute_cycles": sum(r.compute_cycles for r in report.stages),
        "reconfiguration_cycles": sum(r.reconfiguration_cycles
                                      for r in report.stages),
        "noc_cycles": noc_cycles,
        "steady_state_interval": report.steady_state_interval,
        "segment_intervals": list(report.stage_intervals),
        "weight_load_cycles": sum(r.weight_load_cycles
                                  for r in report.stages),
        "peak_power": report.peak_power,
        "avg_power": sum(r.power.avg_power for r in report.stages),
        "peak_active_crossbars": sum(r.power.peak_active_crossbars
                                     for r in report.stages),
        "energy": {
            "crossbar": sum(r.power.energy_crossbar for r in report.stages),
            "converter": sum(r.power.energy_converter for r in report.stages),
            "movement": sum(r.power.energy_movement for r in report.stages),
        },
        "segments": [],
        "scale": {
            "num_chips": report.num_chips,
            "stage_intervals": list(report.stage_intervals),
            "stage_latencies": [r.total_cycles for r in report.stages],
            "link_intervals": list(report.link_intervals),
            "link_bits": [t.bits for t in report.transfers],
        },
    }


def evaluate_point(point: SweepPoint) -> Dict:
    """Compile one point and summarize its performance report.

    Multi-chip points (``point.chips > 1``) shard through
    :func:`repro.scale.shard` instead of a single-chip compilation.
    Module-level so :class:`ProcessPoolExecutor` can pickle it.
    """
    if point.chips < 1:
        from ..errors import ArchitectureError

        raise ArchitectureError(
            f"point {point.label!r}: chips must be >= 1, got {point.chips}")
    if point.chips > 1:
        from ..scale import shard

        plan = shard(point.graph, point.system(), options=point.options,
                     optimize=point.options is not None)
        noc = sum(d.profile.mov_cycles
                  for sched in plan.schedules
                  for d in sched.decisions.values())
        return summarize_multichip(plan.report, noc_cycles=noc)
    if point.options is None:
        result = no_optimization(point.graph, point.arch)
    else:
        result = CIMMLC(point.arch, point.options).compile(point.graph)
    sched = result.schedule
    noc = sum(d.profile.mov_cycles
              for i in range(len(sched.segments))
              for d in sched.segment_decisions(i))
    return summarize_report(result.report, noc_cycles=noc)


class ResultCache:
    """Content-addressed JSON cache: one file per point fingerprint."""

    def __init__(self, root: str) -> None:
        self.root = os.path.join(os.path.expanduser(root), f"v{CACHE_VERSION}")
        os.makedirs(self.root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def get(self, key: str) -> Optional[Dict]:
        """Cached summary for ``key``, or ``None`` on miss/corruption."""
        try:
            with open(self._path(key)) as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    def put(self, key: str, summary: Dict) -> None:
        """Store ``summary`` under ``key`` (atomic, best-effort)."""
        # Write-then-rename so concurrent sweeps never read a torn file.
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(summary, fh)
            os.replace(tmp, self._path(key))
        except OSError:  # pragma: no cover - best-effort cache
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))


@dataclass(frozen=True, eq=False)
class PointResult:
    """One evaluated point: the point, its summary, and cache provenance."""

    point: SweepPoint
    summary: Dict
    cached: bool = False

    @property
    def label(self) -> str:
        """The design-point label (delegates to the point)."""
        return self.point.label

    @property
    def series(self) -> str:
        """The measurement series label (delegates to the point)."""
        return self.point.series

    @property
    def total_cycles(self) -> float:
        """End-to-end latency of the point, from the summary."""
        return self.summary["total_cycles"]

    @property
    def peak_power(self) -> float:
        """Peak power of the point, from the summary."""
        return self.summary["peak_power"]


@dataclass
class SweepResult:
    """All point results of one sweep, in space order, plus cache stats."""

    results: List[PointResult] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    def __iter__(self) -> Iterator[PointResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def by_label(self) -> Dict[str, Dict[str, PointResult]]:
        """``{point label: {series: result}}`` preserving insertion order."""
        grouped: Dict[str, Dict[str, PointResult]] = {}
        for r in self.results:
            grouped.setdefault(r.label, {})[r.series] = r
        return grouped

    def speedups(self, baseline_series: str = "baseline") -> Dict[str, Dict[str, float]]:
        """Per-label ``series -> baseline_cycles / series_cycles``.

        Every label must include the baseline series (raises
        :class:`KeyError` otherwise — use
        :func:`~repro.explore.report.metric_result` for raw metrics).
        """
        out: Dict[str, Dict[str, float]] = {}
        for label, series_map in self.by_label().items():
            base = series_map.get(baseline_series)
            if base is None:
                raise KeyError(
                    f"label {label!r} has no {baseline_series!r} series; "
                    f"sweep the baseline too or report raw metrics via "
                    f"metric_result()")
            out[label] = {
                name: base.total_cycles / r.total_cycles
                for name, r in series_map.items()
                if name != baseline_series
            }
        return out

    @property
    def all_cached(self) -> bool:
        """True when every point came from the disk cache."""
        return bool(self.results) and self.cache_misses == 0


class SweepRunner:
    """Evaluates a :class:`SweepSpace`, optionally in parallel and cached.

    Parameters
    ----------
    workers:
        Process count.  ``1`` (default) runs serially in-process.
    cache_dir:
        Root of the disk cache.  ``None`` disables caching entirely.
    """

    def __init__(self, workers: int = 1,
                 cache_dir: Optional[str] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache = ResultCache(cache_dir) if cache_dir else None

    def run(self, space: SweepSpace) -> SweepResult:
        """Evaluate every point, consulting/filling the cache."""
        points = list(space)
        slots: List[Optional[PointResult]] = [None] * len(points)
        pending: List[int] = []
        keys: List[Optional[str]] = [None] * len(points)
        for i, point in enumerate(points):
            if self.cache is not None:
                keys[i] = point.fingerprint()
                summary = self.cache.get(keys[i])
                if summary is not None:
                    slots[i] = PointResult(point, summary, cached=True)
                    continue
            pending.append(i)

        if pending:
            todo = [points[i] for i in pending]
            if self.workers > 1 and len(todo) > 1:
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    summaries = list(pool.map(evaluate_point, todo))
            else:
                summaries = [evaluate_point(p) for p in todo]
            for i, summary in zip(pending, summaries):
                slots[i] = PointResult(points[i], summary, cached=False)
                if self.cache is not None and keys[i] is not None:
                    self.cache.put(keys[i], summary)

        return SweepResult(
            results=[r for r in slots if r is not None],
            cache_hits=len(points) - len(pending),
            cache_misses=len(pending),
        )
