"""Replay-based sweep prefilter: prune link axes without re-simulating.

A multi-chip sweep that varies ``link_bw`` / ``link_latency`` re-shards
and re-simulates the same pipeline once per grid value — yet the stage
structure is link-invariant (:func:`repro.scale.shard` partitions
without consulting link parameters), so only the transfer pricing
changes.  The prefilter exploits that: it fully evaluates one *anchor*
per link-axis group, rebuilds the anchor's shard timeline from its
cached summary (:func:`repro.trace.trace_from_summary`), and re-prices
every other group member through :func:`repro.trace.replay` with the
member's link values as absolute overrides.  Link re-pricing of shard
traces is **exact** (pinned by ``tests/test_trace.py``), so the Pareto
frontier over replayed summaries equals the frontier a full sweep would
find; the frontier points are then fully evaluated so the returned
results are genuine simulations.

``repro sweep --prefilter replay`` wires this in; the win on a
``chips x link_bw x link_latency`` grid is one full evaluation per
(non-link) group plus one per frontier point instead of one per point.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .pareto import DEFAULT_OBJECTIVES, pareto_frontier
from .runner import PointResult, SweepResult, SweepRunner
from .space import SweepPoint, SweepSpace


@dataclass
class PrefilterStats:
    """How much work the prefilter did versus a full sweep."""

    #: Points in the sweep (what a full run would simulate).
    total_points: int = 0
    #: Link-axis groups (points identical up to link bandwidth/latency).
    groups: int = 0
    #: Full compile+simulate evaluations actually dispatched.
    full_evaluations: int = 0
    #: Members priced by trace replay instead of simulation.
    replayed: int = 0
    #: Members that shared their anchor's result outright (single-chip
    #: points, where link parameters do not enter the evaluation).
    shared: int = 0

    @property
    def savings(self) -> float:
        """Full-sweep evaluations per prefilter evaluation (>= 1)."""
        return self.total_points / max(1, self.full_evaluations)

    def describe(self) -> str:
        """One-line summary for CLI output."""
        return (f"prefilter: {self.full_evaluations}/{self.total_points} "
                f"full evaluations ({self.groups} groups, "
                f"{self.replayed} replayed, {self.shared} shared, "
                f"{self.savings:.1f}x fewer simulations)")


@dataclass
class PrefilterResult:
    """Outcome of a prefiltered sweep.

    ``frontier`` holds genuine (fully simulated) results for the
    Pareto-optimal points, in space order; ``screened`` holds every
    point's screening summary (anchors are real evaluations, other
    members replay-priced — exact for link axes); ``stats`` records the
    work saved.
    """

    frontier: List[PointResult] = field(default_factory=list)
    screened: SweepResult = field(default_factory=SweepResult)
    stats: PrefilterStats = field(default_factory=PrefilterStats)


def _group_key(point: SweepPoint) -> str:
    """Group fingerprint: the point with its link axes nulled, so
    members that differ only in link bandwidth/latency collide."""
    return dataclasses.replace(point, link_bandwidth=None,
                               link_latency=None).fingerprint()


def _replayed_summary(anchor_summary: Dict, trace, member: SweepPoint
                      ) -> Dict:
    """The anchor summary re-priced at ``member``'s link values.

    Exact for every objective the frontier can consult: total cycles
    and steady-state interval come from the (exact) link replay, and
    all other summary scalars — energy, power, area — are
    link-bandwidth/latency-invariant (transfer energy is per bit-hop).

    Copies are shallow except for the keys replay overwrites (replay
    cost is what the whole prefilter saves, and a deep copy of a large
    summary would dominate it); unreplaced nested blocks — segments,
    tenants — alias the anchor's and must be treated as read-only,
    which every sweep consumer already does.
    """
    from ..trace import Mutation, replay

    link = member.system().link
    result = replay(trace, Mutation(link_bandwidth=link.bandwidth_bits,
                                    link_latency=link.latency_cycles))
    summary = dict(anchor_summary)
    summary["total_cycles"] = result.metrics["total_cycles"]
    summary["steady_state_interval"] = \
        result.metrics["steady_state_interval"]
    scale = summary.get("scale")
    if scale is not None:
        from ..trace import shard_model_from_trace

        model = shard_model_from_trace(result.trace)
        scale = dict(scale)
        scale["transfers"] = [dict(t) for t in model["transfers"]]
        summary["scale"] = scale
    return summary


def replay_prefilter(space: SweepSpace,
                     runner: Optional[SweepRunner] = None,
                     objectives: Sequence[str] = DEFAULT_OBJECTIVES,
                     ) -> PrefilterResult:
    """Run ``space`` with replay screening instead of a full sweep.

    Fully evaluates one anchor per link-axis group, replays the rest,
    extracts the Pareto frontier over the screened summaries, and fully
    evaluates the frontier.  The frontier equals a full sweep's (link
    re-pricing is exact); the savings scale with the link-grid size.
    """
    from ..trace import trace_from_summary

    runner = runner or SweepRunner()
    points = list(space)
    stats = PrefilterStats(total_points=len(points))

    group_members: Dict[str, List[int]] = {}
    for i, point in enumerate(points):
        group_members.setdefault(_group_key(point), []).append(i)
    stats.groups = len(group_members)

    anchor_indices = [members[0] for members in group_members.values()]
    anchor_sweep = runner.run(SweepSpace([points[i]
                                          for i in anchor_indices]))
    stats.full_evaluations = len(anchor_indices)
    full_results: Dict[int, PointResult] = dict(
        zip(anchor_indices, anchor_sweep))

    screened: List[Optional[PointResult]] = [None] * len(points)
    fallback: List[int] = []
    for members in group_members.values():
        anchor_idx = members[0]
        anchor = full_results[anchor_idx]
        screened[anchor_idx] = anchor
        rest = members[1:]
        if not rest:
            continue
        if points[anchor_idx].chips <= 1:
            # Link parameters never enter a single-chip evaluation.
            for i in rest:
                screened[i] = PointResult(points[i],
                                          dict(anchor.summary),
                                          cached=anchor.cached)
                stats.shared += 1
            continue
        try:
            trace = trace_from_summary(
                anchor.summary, system=points[anchor_idx].system())
            for i in rest:
                screened[i] = PointResult(
                    points[i],
                    _replayed_summary(anchor.summary, trace, points[i]),
                    cached=False)
                stats.replayed += 1
        except KeyError:
            # Anchor summary predates the v4 scale.transfers detail
            # (hand-fed summaries); fall back to full evaluation.
            fallback.extend(rest)
    if fallback:
        fb_sweep = runner.run(SweepSpace([points[i] for i in fallback]))
        stats.full_evaluations += len(fallback)
        for i, result in zip(fallback, fb_sweep):
            screened[i] = result
            full_results[i] = result

    screened_results = [r for r in screened if r is not None]
    frontier_screened = pareto_frontier(screened_results, objectives)
    by_id = {id(r): i for i, r in enumerate(screened)}
    frontier_indices = [by_id[id(r)] for r in frontier_screened]

    need_eval = [i for i in frontier_indices if i not in full_results]
    if need_eval:
        frontier_sweep = runner.run(SweepSpace([points[i]
                                                for i in need_eval]))
        stats.full_evaluations += len(need_eval)
        for i, result in zip(need_eval, frontier_sweep):
            full_results[i] = result

    return PrefilterResult(
        frontier=[full_results[i] for i in frontier_indices],
        screened=SweepResult(results=screened_results,
                             cache_hits=anchor_sweep.cache_hits,
                             cache_misses=anchor_sweep.cache_misses,
                             deduped=anchor_sweep.deduped),
        stats=stats)
