"""Sweep-result export: CSV, JSON, and the experiment-table format.

Keeps the new engine interoperable with the existing paper-reproduction
tables: :func:`speedup_result` renders a sweep into the exact
:class:`~repro.experiments.common.ExperimentResult` rows the Fig. 22
drivers produced before the refactor (``"<label> <series>"`` rows of
baseline-relative speedups), while :func:`to_csv` / :func:`to_json` serve
machine consumption (plots, dashboards, regression baselines).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional, Sequence

from .pareto import DEFAULT_OBJECTIVES, pareto_frontier
from .runner import PointResult, SweepResult

#: Summary keys exported as CSV columns / JSON metric fields.
METRIC_KEYS = (
    "total_cycles", "compute_cycles", "reconfiguration_cycles",
    "noc_cycles", "steady_state_interval", "weight_load_cycles",
    "peak_power", "avg_power", "peak_active_crossbars",
    "energy_total", "energy_per_inference", "area_crossbars",
    "cores_used",
)


def rows(sweep: SweepResult) -> List[Dict]:
    """Flat per-point records (one dict per point, JSON-able)."""
    out = []
    for r in sweep:
        record: Dict = {
            "label": r.label,
            "series": r.series,
            "arch": r.point.arch.name,
            "model": r.point.graph.name,
            "levels": "+".join(r.summary["schedule_levels"]),
            "cached": r.cached,
        }
        for key in METRIC_KEYS:
            record[key] = r.summary.get(key)
        out.append(record)
    return out


def _annotate(records: List[Dict], sweep: SweepResult, pareto: bool,
              objectives: Sequence[str],
              power_budget: Optional[float]) -> None:
    """Add the ``within_power_budget`` / ``pareto`` columns in place.

    With a power budget the frontier is extracted over the feasible
    points only (an infeasible point can never be marked ``pareto``).
    """
    points = list(sweep)
    if power_budget is not None:
        for record, r in zip(records, points):
            record["within_power_budget"] = r.peak_power <= power_budget
        points = [r for r in points if r.peak_power <= power_budget]
    if pareto:
        frontier = {id(r) for r in pareto_frontier(points, objectives)}
        for record, r in zip(records, sweep):
            record["pareto"] = id(r) in frontier


def to_csv(sweep: SweepResult, pareto: bool = False,
           objectives: Sequence[str] = DEFAULT_OBJECTIVES,
           power_budget: Optional[float] = None) -> str:
    """Render the sweep as CSV text (header + one row per point).

    With ``pareto=True`` a boolean ``pareto`` column marks membership in
    the non-dominated frontier under ``objectives``; with a
    ``power_budget`` each row gains ``within_power_budget`` and the
    frontier is restricted to feasible points.
    """
    records = rows(sweep)
    _annotate(records, sweep, pareto, objectives, power_budget)
    fieldnames = list(records[0]) if records else \
        ["label", "series", "arch", "model", "levels", "cached",
         *METRIC_KEYS]
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=fieldnames)
    writer.writeheader()
    writer.writerows(records)
    return buf.getvalue()


def to_json(sweep: SweepResult, pareto: bool = False,
            objectives: Sequence[str] = DEFAULT_OBJECTIVES,
            indent: Optional[int] = 1,
            power_budget: Optional[float] = None) -> str:
    """Render the sweep as a JSON document with cache statistics.

    With ``pareto=True`` each point gains a ``"pareto"`` flag marking
    membership in the non-dominated frontier under ``objectives``; with
    a ``power_budget`` each point gains ``within_power_budget`` and the
    frontier is restricted to feasible points.
    """
    records = rows(sweep)
    _annotate(records, sweep, pareto, objectives, power_budget)
    doc = {
        "points": records,
        "cache": {"hits": sweep.cache_hits, "misses": sweep.cache_misses,
                  "all_cached": sweep.all_cached},
    }
    return json.dumps(doc, indent=indent)


def speedup_result(sweep: SweepResult, experiment_id: str,
                   description: str,
                   baseline_series: str = "baseline") -> "ExperimentResult":
    """The pre-refactor Fig. 22 table: per-label speedups over the
    baseline series, one row per ``"<label> <series>"`` in sweep order."""
    # Imported lazily: repro.experiments drivers import this package.
    from ..experiments.common import ExperimentResult

    result = ExperimentResult(experiment_id, description)
    for label, series_speedups in sweep.speedups(baseline_series).items():
        for series, speedup in series_speedups.items():
            result.add(f"{label} {series}", speedup)
    return result


def metric_result(sweep: SweepResult, experiment_id: str, description: str,
                  metric: str = "total_cycles",
                  unit: str = "") -> "ExperimentResult":
    """A raw-metric table (no baseline normalization)."""
    from ..experiments.common import ExperimentResult

    result = ExperimentResult(experiment_id, description)
    for r in sweep:
        result.add(f"{r.label} {r.series}", r.summary[metric], unit=unit)
    return result
