"""Declarative sweep spaces over (architecture, model, compiler options).

A :class:`SweepSpace` is an ordered list of :class:`SweepPoint` — one
compilation each.  Spaces are built either from a parameter *grid* (the
Fig. 22 sensitivity pattern: a base preset varied along named axes, crossed
with models and optimization levels) or from *explicit* points (the Table 1
generality pattern: a hand-picked set of architectures).

Points carry fully-resolved, picklable inputs so a
:class:`~repro.explore.runner.SweepRunner` can fan them out over worker
processes, and every point exposes a deterministic content fingerprint
(:meth:`SweepPoint.fingerprint`) that keys the on-disk result cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..arch import CIMArchitecture
from ..errors import ArchitectureError
from ..graph import Graph
from ..sched import CompilerOptions

# ----------------------------------------------------------------------
# Architecture variation axes
# ----------------------------------------------------------------------


def _vary_cores(arch: CIMArchitecture, value) -> CIMArchitecture:
    return arch.with_cores(int(value))


def _vary_xb_number(arch: CIMArchitecture, value) -> CIMArchitecture:
    return arch.with_xb_number(int(value))


def _vary_xb_size(arch: CIMArchitecture, value) -> CIMArchitecture:
    if isinstance(value, str):
        rows, _, cols = value.partition("x")
        value = (int(rows), int(cols))
    return arch.with_xb_size(tuple(int(v) for v in value))


def _vary_parallel_row(arch: CIMArchitecture, value) -> CIMArchitecture:
    return arch.with_parallel_row(None if value in (None, "none") else int(value))


#: Named variation axes a grid sweep can use (CLI ``--vary name=v1,v2``).
VARIATIONS: Dict[str, Callable[[CIMArchitecture, object], CIMArchitecture]] = {
    "cores": _vary_cores,
    "xbs": _vary_xb_number,
    "xb_size": _vary_xb_size,
    "parallel_row": _vary_parallel_row,
}

#: Accepted spellings for each axis.
VARIATION_ALIASES = {
    "core_number": "cores",
    "xb_number": "xbs",
    "crossbars": "xbs",
    "pr": "parallel_row",
}

#: Multi-chip sweep axes (``repro.scale``): these do not transform the
#: single-chip architecture but the :class:`SweepPoint` scale fields, so
#: :class:`SweepSpace.grid` routes them separately from :data:`VARIATIONS`.
SCALE_AXES = ("chips", "link_bw", "link_latency", "topology")

#: Accepted spellings for the scale axes.
SCALE_ALIASES = {
    "num_chips": "chips",
    "link_bandwidth": "link_bw",
}


def _scale_field(axis: str, value):
    """``(SweepPoint field, coerced value)`` for one scale-axis setting.

    Validates eagerly so a bad CLI value fails at grid construction
    with a clean error rather than a traceback mid-sweep.
    """
    if axis == "chips":
        chips = int(value)
        if chips < 1:
            raise ArchitectureError(f"chips must be >= 1, got {value}")
        return "chips", chips
    if axis == "link_bw":
        bw = float(value)
        if bw <= 0:
            raise ArchitectureError(f"link_bw must be positive, got {value}")
        return "link_bandwidth", bw
    if axis == "link_latency":
        latency = float(value)
        if latency < 0:
            raise ArchitectureError(
                f"link_latency must be >= 0, got {value}")
        return "link_latency", latency
    from ..arch import CHIP_TOPOLOGIES

    if value not in CHIP_TOPOLOGIES:
        raise ArchitectureError(
            f"unknown chip topology {value!r}; choose one of "
            f"{CHIP_TOPOLOGIES}")
    return "topology", str(value)


def resolve_variation(name: str) -> str:
    """Canonical axis name for ``name`` (raises on unknown axes).

    Resolves both single-chip architecture axes (:data:`VARIATIONS`) and
    multi-chip scale axes (:data:`SCALE_AXES`).
    """
    key = VARIATION_ALIASES.get(name, name)
    key = SCALE_ALIASES.get(key, key)
    if key not in VARIATIONS and key not in SCALE_AXES:
        raise ArchitectureError(
            f"unknown sweep axis {name!r}; choose one of "
            f"{sorted(VARIATIONS) + sorted(SCALE_AXES)} "
            f"(aliases {sorted(VARIATION_ALIASES) + sorted(SCALE_ALIASES)})")
    return key


def apply_variation(arch: CIMArchitecture, name: str, value) -> CIMArchitecture:
    """Return ``arch`` varied along axis ``name`` to ``value``."""
    return VARIATIONS[resolve_variation(name)](arch, value)


# ----------------------------------------------------------------------
# Optimization-level series
# ----------------------------------------------------------------------

#: ``series label -> CompilerOptions`` (None = the un-optimized baseline).
LEVEL_SERIES: Dict[str, Optional[CompilerOptions]] = {
    "baseline": None,
    "CG": CompilerOptions(max_level="CG"),
    "CG+MVM": CompilerOptions(max_level="MVM"),
    "CG+MVM+VVM": CompilerOptions(),
}

#: Alternate series spellings (CLI ``--levels``).
SERIES_ALIASES = {
    "MVM": "CG+MVM",
    "VVM": "CG+MVM+VVM",
    "CIM-MLC": "CG+MVM+VVM",
    "full": "CG+MVM+VVM",
}


def level_series(names: Sequence[str]) -> List[Tuple[str, Optional[CompilerOptions]]]:
    """Resolve series names to ``(label, options)`` pairs, keeping order."""
    out = []
    for name in names:
        key = SERIES_ALIASES.get(name, name)
        if key not in LEVEL_SERIES:
            raise ArchitectureError(
                f"unknown level series {name!r}; choose from "
                f"{sorted(LEVEL_SERIES)} (aliases {sorted(SERIES_ALIASES)})")
        out.append((key, LEVEL_SERIES[key]))
    return out


# ----------------------------------------------------------------------
# Points and spaces
# ----------------------------------------------------------------------


def graph_signature(graph: Graph) -> str:
    """Deterministic content hash of a graph (topology + shapes + bits).

    Delegates to :meth:`repro.graph.Graph.signature`, which caches the
    hash on the graph (invalidated on mutation) — the payload and
    therefore every historical fingerprint value are unchanged.
    """
    return graph.signature()


@dataclass(frozen=True, eq=False)
class SweepPoint:
    """One compilation: an architecture, a graph, and compiler options.

    ``label`` names the design point (e.g. ``"cores=512"``); ``series``
    names the measurement within the point (e.g. ``"CG+MVM"``).  ``options``
    of ``None`` requests the un-optimized :func:`~repro.sched.no_optimization`
    baseline.

    ``chips > 1`` turns the point into a multi-chip sharding evaluation
    (:func:`repro.scale.shard`): ``arch`` describes each die and the
    ``link_*`` / ``topology`` fields the
    :class:`~repro.arch.MultiChipSystem` (``None`` = the
    :class:`~repro.arch.ChipLink` defaults).
    """

    label: str
    series: str
    arch: CIMArchitecture
    graph: Graph
    options: Optional[CompilerOptions] = None
    chips: int = 1
    link_bandwidth: Optional[float] = None
    link_latency: Optional[float] = None
    topology: str = "ring"

    def system(self) -> "MultiChipSystem":  # noqa: F821 - lazy import
        """The :class:`~repro.arch.MultiChipSystem` this point describes
        (valid for any ``chips >= 1``)."""
        from ..arch import ChipLink, MultiChipSystem

        link = ChipLink()
        if self.link_bandwidth is not None:
            link = dataclasses.replace(link,
                                       bandwidth_bits=self.link_bandwidth)
        if self.link_latency is not None:
            link = dataclasses.replace(link,
                                       latency_cycles=self.link_latency)
        return MultiChipSystem(self.arch, self.chips, link=link,
                               topology=self.topology)

    def fingerprint(self) -> str:
        """Content hash keying the disk cache: architecture parameters +
        graph signature + compiler options + package version (so cached
        summaries never outlive a compiler/simulator release).  Multi-chip
        points additionally hash their scale fields; single-chip points
        keep the historical payload, so pre-scale caches stay valid."""
        from .. import __version__

        payload = {
            "repro_version": __version__,
            "arch": dataclasses.asdict(self.arch),
            "mode": self.arch.mode.value,
            "graph": graph_signature(self.graph),
            "options": (None if self.options is None
                        else dataclasses.asdict(self.options)),
        }
        if self.chips > 1:
            payload["scale"] = {
                "chips": self.chips,
                "link_bandwidth": self.link_bandwidth,
                "link_latency": self.link_latency,
                "topology": self.topology,
            }
        blob = json.dumps(payload, sort_keys=True, default=str,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SweepPoint({self.label!r}, {self.series!r}, "
                f"{self.arch.name!r}, {self.graph.name!r})")


class SweepSpace:
    """An ordered collection of :class:`SweepPoint` to evaluate."""

    def __init__(self, points: Optional[Iterable[SweepPoint]] = None) -> None:
        self.points: List[SweepPoint] = list(points or [])

    # -- construction --------------------------------------------------

    def add(self, point: SweepPoint) -> "SweepPoint":
        """Append ``point`` and return it."""
        self.points.append(point)
        return point

    def add_point(self, label: str, arch: CIMArchitecture, graph: Graph,
                  series: str = "CIM-MLC",
                  options: Optional[CompilerOptions] = CompilerOptions(),
                  ) -> SweepPoint:
        """Append one explicit point."""
        return self.add(SweepPoint(label, series, arch, graph, options))

    @classmethod
    def explicit(cls, points: Iterable[SweepPoint]) -> "SweepSpace":
        """A space from pre-built points (Table 1 style)."""
        return cls(points)

    @classmethod
    def from_arch_points(
        cls,
        arch_points: Iterable[Tuple[str, CIMArchitecture]],
        graph: Graph,
        series: Sequence[Tuple[str, Optional[CompilerOptions]]] = (),
    ) -> "SweepSpace":
        """A space crossing labelled architectures with option series
        (the Fig. 22 pattern).  Default series: baseline + all levels."""
        series = list(series) or list(LEVEL_SERIES.items())
        space = cls()
        for label, arch in arch_points:
            for series_label, options in series:
                space.add(SweepPoint(label, series_label, arch, graph, options))
        return space

    @classmethod
    def grid(
        cls,
        base_arch: CIMArchitecture,
        graphs: Union[Graph, Sequence[Graph]],
        vary: Dict[str, Sequence],
        series: Sequence[Tuple[str, Optional[CompilerOptions]]] = (),
    ) -> "SweepSpace":
        """Cartesian product of variation axes x graphs x option series.

        ``vary`` maps axis names (:data:`VARIATIONS` plus the multi-chip
        :data:`SCALE_AXES`) to value lists; the point label joins
        ``axis=value`` terms in axis order.
        """
        if isinstance(graphs, Graph):
            graphs = [graphs]
        axes = [(resolve_variation(name), list(values))
                for name, values in vary.items()]
        scale_used = [name for name, _ in axes if name in SCALE_AXES]
        if any(a != "chips" for a in scale_used) \
                and "chips" not in scale_used:
            raise ArchitectureError(
                "link_bw/link_latency/topology axes only affect "
                "multi-chip points; add a chips axis too "
                "(e.g. --vary chips=2,4)")
        series = list(series) or list(LEVEL_SERIES.items())
        space = cls()
        for combo in itertools.product(*(values for _, values in axes)):
            arch = base_arch
            scale_fields: Dict[str, object] = {}
            terms = []
            for (name, _), value in zip(axes, combo):
                if name in SCALE_AXES:
                    field, coerced = _scale_field(name, value)
                    scale_fields[field] = coerced
                else:
                    arch = apply_variation(arch, name, value)
                terms.append(f"{name}={value}")
            label = " ".join(terms) or base_arch.name
            for graph in graphs:
                point_label = (f"{label} {graph.name}"
                               if len(graphs) > 1 else label)
                for series_label, options in series:
                    space.add(SweepPoint(point_label, series_label, arch,
                                         graph, options, **scale_fields))
        return space

    # -- queries -------------------------------------------------------

    def labels(self) -> List[str]:
        """Distinct point labels in first-seen order."""
        seen: List[str] = []
        for p in self.points:
            if p.label not in seen:
                seen.append(p.label)
        return seen

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SweepSpace({len(self.points)} points)"
