"""ONNX-like JSON serialization for graphs.

The real paper consumes ``.onnx`` protobufs; offline we provide a structurally
identical JSON schema (nodes with op_type/inputs/outputs/attrs, tensor specs
as initializers/value-infos) so models can be saved, shipped, and reloaded
without protobuf.  Round-trip is exact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from ..errors import GraphError
from .graph import Graph
from .node import Node
from .tensor import TensorSpec

SCHEMA_VERSION = 1


def graph_to_dict(graph: Graph) -> Dict[str, Any]:
    """Serialize a :class:`Graph` to a JSON-compatible dict."""
    return {
        "schema": SCHEMA_VERSION,
        "name": graph.name,
        "inputs": list(graph.inputs),
        "outputs": list(graph.outputs),
        "tensors": [
            {
                "name": t.name,
                "shape": list(t.shape),
                "bits": t.bits,
                "is_weight": t.is_weight,
            }
            for t in graph.tensors.values()
        ],
        "nodes": [
            {
                "name": n.name,
                "op_type": n.op_type,
                "inputs": list(n.inputs),
                "outputs": list(n.outputs),
                "attrs": _encode_attrs(n.attrs),
            }
            for n in graph.nodes
        ],
    }


def graph_from_dict(data: Dict[str, Any]) -> Graph:
    """Deserialize a graph produced by :func:`graph_to_dict`."""
    if data.get("schema") != SCHEMA_VERSION:
        raise GraphError(f"unsupported graph schema: {data.get('schema')!r}")
    tensors = {
        t["name"]: TensorSpec(
            t["name"], tuple(t["shape"]), t["bits"], t.get("is_weight", False)
        )
        for t in data["tensors"]
    }
    nodes = [
        Node(
            n["name"], n["op_type"], list(n["inputs"]), list(n["outputs"]),
            _decode_attrs(n.get("attrs", {})),
        )
        for n in data["nodes"]
    ]
    graph = Graph(data["name"], data["inputs"], data["outputs"], tensors, nodes)
    return graph.infer_shapes()


def save_graph(graph: Graph, path: Union[str, Path]) -> None:
    """Write a graph to a ``.json`` model file."""
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=1))


def load_graph(path: Union[str, Path]) -> Graph:
    """Read a graph from a ``.json`` model file."""
    return graph_from_dict(json.loads(Path(path).read_text()))


def _encode_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, tuple):
            out[key] = {"__tuple__": list(value)}
        else:
            out[key] = value
    return out


def _decode_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, dict) and "__tuple__" in value:
            out[key] = tuple(value["__tuple__"])
        else:
            out[key] = value
    return out
