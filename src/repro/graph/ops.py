"""Operator registry: shape inference plus CIM decomposition statistics.

The multi-level scheduler is driven by a handful of per-operator quantities:

* ``weight_matrix`` — the (rows, cols, bits) matrix view of the operator's
  stationary weights when mapped onto crossbars (Fig. 7: matrix row R binds to
  crossbar rows, column C to crossbar columns, bit-width B to adjacent
  columns or extra crossbars).  ``None`` for CIM-unsupported ops.
* ``num_mvms`` — how many matrix-vector multiplications one inference of the
  operator decomposes into (one per convolution sliding window, one per
  sequence token for a linear layer).
* ``alu_ops`` — elementwise digital work executed on the tier ALU (ReLU,
  pooling, shift-and-add, softmax...).

Every operator used by the model zoo registers an :class:`OpSpec` here.  New
operators can be registered by users via :func:`register_op`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ShapeError, UnknownOpError
from .node import Node
from .tensor import TensorSpec

Shape = Tuple[int, ...]

#: (rows, cols, weight_bits) view of an operator's stationary weight matrix.
WeightMatrix = Tuple[int, int, int]


def _pair(value, name: str) -> Tuple[int, int]:
    """Normalize an int-or-pair attribute to a 2-tuple."""
    if isinstance(value, int):
        return (value, value)
    pair = tuple(value)
    if len(pair) != 2:
        raise ShapeError(f"attribute {name!r} must be an int or pair, got {value!r}")
    return pair  # type: ignore[return-value]


def conv_out_hw(
    h: int, w: int, kernel: Tuple[int, int], stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[int, int]:
    """Spatial output size of a convolution / pooling window."""
    oh = (h + 2 * padding[0] - kernel[0]) // stride[0] + 1
    ow = (w + 2 * padding[1] - kernel[1]) // stride[1] + 1
    if oh <= 0 or ow <= 0:
        raise ShapeError(
            f"window {kernel} stride {stride} pad {padding} empties {h}x{w} input"
        )
    return oh, ow


class OpSpec:
    """Behavioural description of one operator type.

    Subclasses override :meth:`infer_shapes` and, when relevant, the CIM
    statistics.  The default implementation describes a shape-preserving
    elementwise digital operator.
    """

    #: Can the operator execute inside CIM crossbars (weights stationary)?
    is_cim_supported: bool = False
    #: Does the operator carry trainable weights?
    has_weights: bool = False

    def infer_shapes(self, node: Node, inputs: Sequence[TensorSpec]) -> List[Shape]:
        if not inputs:
            raise ShapeError(f"{node.name}: elementwise op needs at least one input")
        return [inputs[0].shape]

    def weight_matrix(self, node: Node, inputs: Sequence[TensorSpec]) -> Optional[WeightMatrix]:
        """Crossbar-stationary matrix view, or ``None`` for digital ops."""
        return None

    def num_mvms(self, node: Node, inputs: Sequence[TensorSpec]) -> int:
        """Number of MVMs one inference decomposes into (0 for digital ops)."""
        return 0

    def macs(self, node: Node, inputs: Sequence[TensorSpec]) -> int:
        """Multiply-accumulate count of one inference."""
        return 0

    def alu_ops(self, node: Node, inputs: Sequence[TensorSpec]) -> int:
        """Elementwise digital operations executed on a tier ALU."""
        out_shapes = self.infer_shapes(node, inputs)
        return sum(math.prod(s) for s in out_shapes)


_REGISTRY: Dict[str, OpSpec] = {}


def register_op(op_type: str, spec: OpSpec) -> OpSpec:
    """Register ``spec`` under ``op_type`` (overwriting any previous entry)."""
    _REGISTRY[op_type] = spec
    return spec


def op_spec(op_type: str) -> OpSpec:
    """Look up the :class:`OpSpec` for ``op_type``."""
    try:
        return _REGISTRY[op_type]
    except KeyError:
        raise UnknownOpError(
            f"unknown operator type {op_type!r}; register it with register_op()"
        ) from None


def registered_ops() -> Tuple[str, ...]:
    """All registered operator type names (sorted)."""
    return tuple(sorted(_REGISTRY))


# ---------------------------------------------------------------------------
# CIM-supported (weight-stationary) operators
# ---------------------------------------------------------------------------


class ConvSpec(OpSpec):
    """2-D convolution.  Inputs: ``[x, weight]`` or ``[x, weight, bias]``.

    The weight tensor ``(Cout, Cin, KH, KW)`` flattens to an
    ``(Cin*KH*KW, Cout)`` matrix; each output spatial position is one MVM
    (one sliding window, Section 3.3.3).
    """

    is_cim_supported = True
    has_weights = True

    def _geometry(self, node: Node, inputs: Sequence[TensorSpec]):
        if len(inputs) < 2:
            raise ShapeError(f"{node.name}: Conv needs activation and weight inputs")
        x, w = inputs[0], inputs[1]
        if x.rank != 4 or w.rank != 4:
            raise ShapeError(
                f"{node.name}: Conv expects NCHW activation and OIHW weight, "
                f"got {x.shape} and {w.shape}"
            )
        n, cin, h, wd = x.shape
        cout, w_cin, kh, kw = w.shape
        groups = node.attr("groups", 1)
        if w_cin * groups != cin:
            raise ShapeError(
                f"{node.name}: weight channels {w_cin}*groups {groups} != input {cin}"
            )
        if cout % groups != 0:
            raise ShapeError(
                f"{node.name}: output channels {cout} not divisible by "
                f"groups {groups}"
            )
        stride = _pair(node.attr("stride", 1), "stride")
        padding = _pair(node.attr("padding", 0), "padding")
        oh, ow = conv_out_hw(h, wd, (kh, kw), stride, padding)
        return n, cin, cout, kh, kw, oh, ow, groups

    def infer_shapes(self, node: Node, inputs: Sequence[TensorSpec]) -> List[Shape]:
        n, _, cout, _, _, oh, ow, _ = self._geometry(node, inputs)
        return [(n, cout, oh, ow)]

    def weight_matrix(self, node: Node, inputs: Sequence[TensorSpec]) -> WeightMatrix:
        _, cin, cout, kh, kw, _, _, groups = self._geometry(node, inputs)
        return (cin // groups * kh * kw, cout, inputs[1].bits)

    def num_mvms(self, node: Node, inputs: Sequence[TensorSpec]) -> int:
        n, _, _, _, _, oh, ow, groups = self._geometry(node, inputs)
        return n * oh * ow * groups

    def macs(self, node: Node, inputs: Sequence[TensorSpec]) -> int:
        n, cin, cout, kh, kw, oh, ow, groups = self._geometry(node, inputs)
        return n * oh * ow * cout * (cin // groups) * kh * kw

    def alu_ops(self, node: Node, inputs: Sequence[TensorSpec]) -> int:
        # Bias add plus shift-and-accumulate of partial sums, both digital.
        n, _, cout, _, _, oh, ow, _ = self._geometry(node, inputs)
        return n * cout * oh * ow if len(inputs) > 2 else 0


class GemmSpec(OpSpec):
    """Fully-connected layer (``y = x @ W^T + b``).

    Inputs: ``[x, weight]`` or ``[x, weight, bias]`` with ``x`` of shape
    ``(N, in)`` or ``(N, T, in)`` and weight ``(out, in)``.  Each row of the
    (flattened) activation is one MVM.
    """

    is_cim_supported = True
    has_weights = True

    def _geometry(self, node: Node, inputs: Sequence[TensorSpec]):
        if len(inputs) < 2:
            raise ShapeError(f"{node.name}: Gemm needs activation and weight inputs")
        x, w = inputs[0], inputs[1]
        if w.rank != 2:
            raise ShapeError(f"{node.name}: Gemm weight must be 2-D, got {w.shape}")
        out_f, in_f = w.shape
        if x.shape[-1] != in_f:
            raise ShapeError(
                f"{node.name}: activation feature {x.shape[-1]} != weight in {in_f}"
            )
        rows = math.prod(x.shape[:-1])
        return rows, in_f, out_f

    def infer_shapes(self, node: Node, inputs: Sequence[TensorSpec]) -> List[Shape]:
        _, _, out_f = self._geometry(node, inputs)
        return [tuple(inputs[0].shape[:-1]) + (out_f,)]

    def weight_matrix(self, node: Node, inputs: Sequence[TensorSpec]) -> WeightMatrix:
        _, in_f, out_f = self._geometry(node, inputs)
        return (in_f, out_f, inputs[1].bits)

    def num_mvms(self, node: Node, inputs: Sequence[TensorSpec]) -> int:
        rows, _, _ = self._geometry(node, inputs)
        return rows

    def macs(self, node: Node, inputs: Sequence[TensorSpec]) -> int:
        rows, in_f, out_f = self._geometry(node, inputs)
        return rows * in_f * out_f

    def alu_ops(self, node: Node, inputs: Sequence[TensorSpec]) -> int:
        rows, _, out_f = self._geometry(node, inputs)
        return rows * out_f if len(inputs) > 2 else 0


# ---------------------------------------------------------------------------
# Digital (ALU) operators
# ---------------------------------------------------------------------------


class EltwiseSpec(OpSpec):
    """Unary elementwise op (ReLU, GELU, Sigmoid...)."""


class BinarySpec(OpSpec):
    """Binary elementwise op with broadcasting disabled (residual Add/Mul)."""

    def infer_shapes(self, node: Node, inputs: Sequence[TensorSpec]) -> List[Shape]:
        if len(inputs) != 2:
            raise ShapeError(f"{node.name}: binary op needs exactly two inputs")
        a, b = inputs
        if a.shape != b.shape:
            raise ShapeError(
                f"{node.name}: operand shapes differ: {a.shape} vs {b.shape}"
            )
        return [a.shape]


class MatMulSpec(OpSpec):
    """Dynamic matrix multiply (both operands are activations).

    ReRAM-style CIM cannot hold dynamic operands in crossbars (writes are too
    expensive, Section 2.1), so attention score/value matmuls execute on the
    tier ALU.  Shapes: ``(..., M, K) @ (..., K, N)``.
    """

    def infer_shapes(self, node: Node, inputs: Sequence[TensorSpec]) -> List[Shape]:
        if len(inputs) != 2:
            raise ShapeError(f"{node.name}: MatMul needs exactly two inputs")
        a, b = inputs
        if a.rank < 2 or b.rank < 2 or a.shape[-1] != b.shape[-2]:
            raise ShapeError(
                f"{node.name}: incompatible MatMul shapes {a.shape} @ {b.shape}"
            )
        if a.shape[:-2] != b.shape[:-2]:
            raise ShapeError(
                f"{node.name}: batch dims differ: {a.shape} vs {b.shape}"
            )
        return [a.shape[:-1] + (b.shape[-1],)]

    def macs(self, node: Node, inputs: Sequence[TensorSpec]) -> int:
        a, b = inputs
        return math.prod(a.shape) * b.shape[-1]

    def alu_ops(self, node: Node, inputs: Sequence[TensorSpec]) -> int:
        return self.macs(node, inputs)


class PoolSpec(OpSpec):
    """Max/average pooling over NCHW with ``kernel``/``stride``/``padding``."""

    def infer_shapes(self, node: Node, inputs: Sequence[TensorSpec]) -> List[Shape]:
        (x,) = inputs
        if x.rank != 4:
            raise ShapeError(f"{node.name}: pooling expects NCHW, got {x.shape}")
        n, c, h, w = x.shape
        kernel = _pair(node.require_attr("kernel"), "kernel")
        stride = _pair(node.attr("stride", kernel), "stride")
        padding = _pair(node.attr("padding", 0), "padding")
        oh, ow = conv_out_hw(h, w, kernel, stride, padding)
        return [(n, c, oh, ow)]

    def alu_ops(self, node: Node, inputs: Sequence[TensorSpec]) -> int:
        kernel = _pair(node.require_attr("kernel"), "kernel")
        out = self.infer_shapes(node, inputs)[0]
        return math.prod(out) * kernel[0] * kernel[1]


class GlobalPoolSpec(OpSpec):
    """Global average pooling: NCHW -> (N, C, 1, 1)."""

    def infer_shapes(self, node: Node, inputs: Sequence[TensorSpec]) -> List[Shape]:
        (x,) = inputs
        if x.rank != 4:
            raise ShapeError(f"{node.name}: global pool expects NCHW, got {x.shape}")
        n, c, _, _ = x.shape
        return [(n, c, 1, 1)]

    def alu_ops(self, node: Node, inputs: Sequence[TensorSpec]) -> int:
        return inputs[0].numel


class FlattenSpec(OpSpec):
    """Flatten all dims after the batch dim.  Pure layout change."""

    def infer_shapes(self, node: Node, inputs: Sequence[TensorSpec]) -> List[Shape]:
        (x,) = inputs
        return [(x.shape[0], math.prod(x.shape[1:]))]

    def alu_ops(self, node: Node, inputs: Sequence[TensorSpec]) -> int:
        return 0


class ReshapeSpec(OpSpec):
    """Reshape to the ``shape`` attribute (must preserve element count)."""

    def infer_shapes(self, node: Node, inputs: Sequence[TensorSpec]) -> List[Shape]:
        (x,) = inputs
        shape = tuple(node.require_attr("shape"))
        if math.prod(shape) != x.numel:
            raise ShapeError(
                f"{node.name}: cannot reshape {x.shape} to {shape}"
            )
        return [shape]

    def alu_ops(self, node: Node, inputs: Sequence[TensorSpec]) -> int:
        return 0


class TransposeSpec(OpSpec):
    """Permute dimensions according to the ``perm`` attribute."""

    def infer_shapes(self, node: Node, inputs: Sequence[TensorSpec]) -> List[Shape]:
        (x,) = inputs
        perm = tuple(node.require_attr("perm"))
        if sorted(perm) != list(range(x.rank)):
            raise ShapeError(f"{node.name}: bad permutation {perm} for rank {x.rank}")
        return [tuple(x.shape[p] for p in perm)]

    def alu_ops(self, node: Node, inputs: Sequence[TensorSpec]) -> int:
        return 0


class SoftmaxSpec(EltwiseSpec):
    """Softmax along the last axis; costed as ~4 ALU ops per element."""

    def alu_ops(self, node: Node, inputs: Sequence[TensorSpec]) -> int:
        return 4 * inputs[0].numel


class NormSpec(EltwiseSpec):
    """LayerNorm / folded BatchNorm; costed as ~2 ALU ops per element."""

    def alu_ops(self, node: Node, inputs: Sequence[TensorSpec]) -> int:
        return 2 * inputs[0].numel


class ConcatSpec(OpSpec):
    """Concatenate along the ``axis`` attribute."""

    def infer_shapes(self, node: Node, inputs: Sequence[TensorSpec]) -> List[Shape]:
        if not inputs:
            raise ShapeError(f"{node.name}: Concat needs inputs")
        axis = node.attr("axis", 1)
        base = list(inputs[0].shape)
        for t in inputs[1:]:
            if t.rank != len(base):
                raise ShapeError(f"{node.name}: rank mismatch in Concat")
            for d in range(t.rank):
                if d == axis:
                    continue
                if t.shape[d] != base[d]:
                    raise ShapeError(f"{node.name}: dim {d} mismatch in Concat")
        base[axis] = sum(t.shape[axis] for t in inputs)
        return [tuple(base)]

    def alu_ops(self, node: Node, inputs: Sequence[TensorSpec]) -> int:
        return 0


class SliceSpec(OpSpec):
    """Static slice: attributes ``axis``, ``start``, ``end``."""

    def infer_shapes(self, node: Node, inputs: Sequence[TensorSpec]) -> List[Shape]:
        (x,) = inputs
        axis = node.require_attr("axis")
        start, end = node.require_attr("start"), node.require_attr("end")
        if not (0 <= start < end <= x.shape[axis]):
            raise ShapeError(
                f"{node.name}: slice [{start}:{end}] out of range for {x.shape}"
            )
        shape = list(x.shape)
        shape[axis] = end - start
        return [tuple(shape)]

    def alu_ops(self, node: Node, inputs: Sequence[TensorSpec]) -> int:
        return 0


class IdentitySpec(OpSpec):
    """Pass-through (used when folding ops away)."""

    def alu_ops(self, node: Node, inputs: Sequence[TensorSpec]) -> int:
        return 0


def _register_defaults() -> None:
    register_op("Conv", ConvSpec())
    register_op("Gemm", GemmSpec())
    register_op("MatMul", MatMulSpec())
    register_op("Relu", EltwiseSpec())
    register_op("Gelu", EltwiseSpec())
    register_op("Sigmoid", EltwiseSpec())
    register_op("Add", BinarySpec())
    register_op("Mul", BinarySpec())
    register_op("MaxPool", PoolSpec())
    register_op("AveragePool", PoolSpec())
    register_op("GlobalAveragePool", GlobalPoolSpec())
    register_op("Flatten", FlattenSpec())
    register_op("Reshape", ReshapeSpec())
    register_op("Transpose", TransposeSpec())
    register_op("Softmax", SoftmaxSpec())
    register_op("LayerNorm", NormSpec())
    register_op("BatchNorm", NormSpec())
    register_op("Concat", ConcatSpec())
    register_op("Slice", SliceSpec())
    register_op("Identity", IdentitySpec())


_register_defaults()
