"""ONNX-like computation-graph IR (the compiler's input format)."""

from .builder import GraphBuilder
from .graph import Graph
from .node import Node
from .onnx_io import graph_from_dict, graph_to_dict, load_graph, save_graph
from .ops import OpSpec, op_spec, register_op, registered_ops
from .tensor import DEFAULT_BITS, TensorSpec
from .transforms import (
    annotate_depth,
    critical_path,
    eliminate_dead_nodes,
    fold_identities,
)

__all__ = [
    "DEFAULT_BITS",
    "Graph",
    "GraphBuilder",
    "Node",
    "OpSpec",
    "TensorSpec",
    "annotate_depth",
    "critical_path",
    "eliminate_dead_nodes",
    "fold_identities",
    "graph_from_dict",
    "graph_to_dict",
    "load_graph",
    "op_spec",
    "register_op",
    "registered_ops",
    "save_graph",
]
