"""Graph-level transforms used before scheduling.

These are the standard compiler-frontend cleanups the paper assumes of its
ONNX input: removing dead nodes, folding identities, and annotating each node
with its topological depth (used by the CG-grained pipeline model).
"""

from __future__ import annotations

from typing import Dict, List, Set

from .graph import Graph
from .node import Node


def eliminate_dead_nodes(graph: Graph) -> Graph:
    """Return a new graph without nodes whose outputs never reach a graph
    output."""
    live: Set[str] = set(graph.outputs)
    keep: List[Node] = []
    for node in reversed(graph.topological()):
        if any(out in live for out in node.outputs):
            keep.append(node)
            live.update(node.inputs)
    keep.reverse()
    pruned = Graph(graph.name, graph.inputs, graph.outputs,
                   dict(graph.tensors), keep)
    return pruned.infer_shapes()


def fold_identities(graph: Graph) -> Graph:
    """Remove ``Identity`` nodes by rewiring their consumers."""
    alias: Dict[str, str] = {}
    kept: List[Node] = []
    for node in graph.topological():
        if node.op_type == "Identity":
            src = node.inputs[0]
            alias[node.outputs[0]] = alias.get(src, src)
            continue
        rewired = Node(
            node.name, node.op_type,
            [alias.get(i, i) for i in node.inputs],
            list(node.outputs), dict(node.attrs),
        )
        kept.append(rewired)
    outputs = [alias.get(o, o) for o in graph.outputs]
    folded = Graph(graph.name, graph.inputs, outputs, dict(graph.tensors), kept)
    return folded.infer_shapes()


def annotate_depth(graph: Graph) -> Dict[str, int]:
    """Write each node's longest-path depth into ``annotations['depth']``
    and return the mapping.  Depth 0 = reads only graph inputs/weights."""
    depth: Dict[str, int] = {}
    for node in graph.topological():
        preds = graph.predecessors(node)
        d = 0 if not preds else 1 + max(depth[p.name] for p in preds)
        depth[node.name] = d
        node.annotations["depth"] = d
    return depth


def expand_grouped_convs(graph: Graph, weights=None):
    """Rewrite grouped convolutions into per-group Slice -> Conv -> Concat.

    Returns ``(new_graph, new_weights)``.  When ``weights`` (a name ->
    ndarray dict) is given, grouped weight tensors are split accordingly so
    the rewritten graph computes the identical function — this lets the
    dense meta-operator lowering and functional simulator handle depthwise
    networks (MobileNet) without a grouped-crossbar special case.
    """
    from .tensor import TensorSpec

    new_nodes: List[Node] = []
    tensors = dict(graph.tensors)
    new_weights = dict(weights) if weights is not None else None
    for node in graph.topological():
        groups = node.attr("groups", 1)
        if node.op_type != "Conv" or groups == 1:
            new_nodes.append(node)
            continue
        x_name, w_name = node.inputs[0], node.inputs[1]
        x_spec = graph.tensors[x_name]
        w_spec = graph.tensors[w_name]
        cout, cin_g, kh, kw = w_spec.shape
        cin = x_spec.shape[1]
        cout_g = cout // groups
        group_outputs: List[str] = []
        for g in range(groups):
            slice_name = f"{node.name}_g{g}_slice"
            slice_out = f"{slice_name}_out"
            new_nodes.append(Node(
                slice_name, "Slice", [x_name], [slice_out],
                {"axis": 1, "start": g * (cin // groups),
                 "end": (g + 1) * (cin // groups)},
            ))
            wg_name = f"{w_name}_g{g}"
            tensors[wg_name] = TensorSpec(
                wg_name, (cout_g, cin_g, kh, kw), w_spec.bits,
                is_weight=True)
            if new_weights is not None and w_name in new_weights:
                full = new_weights[w_name]
                new_weights[wg_name] = full[g * cout_g:(g + 1) * cout_g]
            conv_name = f"{node.name}_g{g}"
            conv_out = f"{conv_name}_out"
            attrs = {k: v for k, v in node.attrs.items() if k != "groups"}
            attrs["groups"] = 1
            new_nodes.append(Node(
                conv_name, "Conv", [slice_out, wg_name], [conv_out], attrs))
            group_outputs.append(conv_out)
        new_nodes.append(Node(
            f"{node.name}_concat", "Concat", group_outputs,
            list(node.outputs), {"axis": 1},
        ))
        if new_weights is not None:
            new_weights.pop(w_name, None)
        tensors.pop(w_name, None)
    expanded = Graph(graph.name, graph.inputs, graph.outputs, tensors,
                     new_nodes)
    expanded.infer_shapes()
    return expanded, new_weights


def critical_path(graph: Graph) -> List[Node]:
    """Nodes on one longest dependency chain (by node count)."""
    depth = annotate_depth(graph)
    if not graph.nodes:
        return []
    tail = max(graph.topological(), key=lambda n: depth[n.name])
    path = [tail]
    while True:
        preds = graph.predecessors(path[-1])
        if not preds:
            break
        path.append(max(preds, key=lambda n: depth[n.name]))
    path.reverse()
    return path
