"""Fluent graph construction helper used by the model zoo.

:class:`GraphBuilder` tracks a "current" tensor so sequential networks read
like the layer lists they come from, while still allowing arbitrary DAGs
(residual connections, multi-head attention) via explicit tensor names.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import GraphError
from .graph import Graph
from .node import Node
from .tensor import DEFAULT_BITS, TensorSpec

IntOrPair = Union[int, Tuple[int, int]]


class GraphBuilder:
    """Incrementally build a :class:`Graph`.

    Example
    -------
    >>> b = GraphBuilder("tiny")
    >>> x = b.input("x", (1, 3, 8, 8))
    >>> y = b.conv(x, out_channels=4, kernel=3, padding=1)
    >>> y = b.relu(y)
    >>> g = b.build(outputs=[y])
    """

    def __init__(self, name: str, bits: int = DEFAULT_BITS) -> None:
        self.name = name
        self.bits = bits
        self._tensors: Dict[str, TensorSpec] = {}
        self._nodes: List[Node] = []
        self._inputs: List[str] = []
        self._counter = itertools.count()

    # ------------------------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        return f"{prefix}_{next(self._counter)}"

    def input(self, name: str, shape: Sequence[int], bits: Optional[int] = None) -> str:
        """Declare a graph input tensor; returns its name."""
        self._tensors[name] = TensorSpec(name, tuple(shape), bits or self.bits)
        self._inputs.append(name)
        return name

    def weight(self, name: str, shape: Sequence[int], bits: Optional[int] = None) -> str:
        """Declare a weight tensor; returns its name."""
        self._tensors[name] = TensorSpec(
            name, tuple(shape), bits or self.bits, is_weight=True
        )
        return name

    def node(
        self,
        op_type: str,
        inputs: Sequence[str],
        attrs: Optional[dict] = None,
        name: Optional[str] = None,
        n_outputs: int = 1,
    ) -> Union[str, List[str]]:
        """Add a generic node; returns its output name(s)."""
        node_name = name or self._fresh(op_type.lower())
        outputs = [f"{node_name}_out" if n_outputs == 1 else f"{node_name}_out{i}"
                   for i in range(n_outputs)]
        self._nodes.append(
            Node(node_name, op_type, list(inputs), outputs, dict(attrs or {}))
        )
        return outputs[0] if n_outputs == 1 else outputs

    # ------------------------------------------------------------------
    # Layer helpers
    # ------------------------------------------------------------------

    def conv(
        self,
        x: str,
        out_channels: int,
        kernel: IntOrPair,
        stride: IntOrPair = 1,
        padding: IntOrPair = 0,
        groups: int = 1,
        bias: bool = False,
        name: Optional[str] = None,
    ) -> str:
        """2-D convolution; infers in-channels from the current spec of ``x``."""
        spec = self._tensors.get(x)
        if spec is None:
            raise GraphError(
                f"conv input {x!r} has unknown shape at build time; "
                f"declare it or build sequentially"
            )
        cin = spec.shape[1]
        kh, kw = (kernel, kernel) if isinstance(kernel, int) else kernel
        node_name = name or self._fresh("conv")
        w = self.weight(f"{node_name}_w", (out_channels, cin // groups, kh, kw))
        inputs = [x, w]
        if bias:
            inputs.append(self.weight(f"{node_name}_b", (out_channels,)))
        out = self.node(
            "Conv", inputs,
            {"stride": stride, "padding": padding, "groups": groups},
            name=node_name,
        )
        self._track(out, _conv_shape(spec.shape, out_channels, (kh, kw), stride, padding))
        return out

    def gemm(self, x: str, out_features: int, bias: bool = False,
             name: Optional[str] = None) -> str:
        """Fully-connected layer."""
        spec = self._tensors.get(x)
        if spec is None:
            raise GraphError(f"gemm input {x!r} has unknown shape at build time")
        in_features = spec.shape[-1]
        node_name = name or self._fresh("fc")
        w = self.weight(f"{node_name}_w", (out_features, in_features))
        inputs = [x, w]
        if bias:
            inputs.append(self.weight(f"{node_name}_b", (out_features,)))
        out = self.node("Gemm", inputs, name=node_name)
        self._track(out, spec.shape[:-1] + (out_features,))
        return out

    def relu(self, x: str, name: Optional[str] = None) -> str:
        out = self.node("Relu", [x], name=name)
        self._copy_shape(x, out)
        return out

    def gelu(self, x: str, name: Optional[str] = None) -> str:
        out = self.node("Gelu", [x], name=name)
        self._copy_shape(x, out)
        return out

    def add(self, a: str, b: str, name: Optional[str] = None) -> str:
        out = self.node("Add", [a, b], name=name)
        self._copy_shape(a, out)
        return out

    def maxpool(self, x: str, kernel: IntOrPair, stride: Optional[IntOrPair] = None,
                padding: IntOrPair = 0, name: Optional[str] = None) -> str:
        out = self.node(
            "MaxPool", [x],
            {"kernel": kernel, "stride": stride if stride is not None else kernel,
             "padding": padding},
            name=name,
        )
        spec = self._tensors.get(x)
        if spec is not None:
            k = (kernel, kernel) if isinstance(kernel, int) else kernel
            s = stride if stride is not None else kernel
            self._track(out, _pool_shape(spec.shape, k, s, padding))
        return out

    def global_avgpool(self, x: str, name: Optional[str] = None) -> str:
        out = self.node("GlobalAveragePool", [x], name=name)
        spec = self._tensors.get(x)
        if spec is not None:
            self._track(out, (spec.shape[0], spec.shape[1], 1, 1))
        return out

    def flatten(self, x: str, name: Optional[str] = None) -> str:
        out = self.node("Flatten", [x], name=name)
        spec = self._tensors.get(x)
        if spec is not None:
            import math
            self._track(out, (spec.shape[0], math.prod(spec.shape[1:])))
        return out

    def reshape(self, x: str, shape: Sequence[int], name: Optional[str] = None) -> str:
        out = self.node("Reshape", [x], {"shape": tuple(shape)}, name=name)
        self._track(out, tuple(shape))
        return out

    def transpose(self, x: str, perm: Sequence[int], name: Optional[str] = None) -> str:
        out = self.node("Transpose", [x], {"perm": tuple(perm)}, name=name)
        spec = self._tensors.get(x)
        if spec is not None:
            self._track(out, tuple(spec.shape[p] for p in perm))
        return out

    def matmul(self, a: str, b: str, name: Optional[str] = None) -> str:
        out = self.node("MatMul", [a, b], name=name)
        sa, sb = self._tensors.get(a), self._tensors.get(b)
        if sa is not None and sb is not None:
            self._track(out, sa.shape[:-1] + (sb.shape[-1],))
        return out

    def softmax(self, x: str, name: Optional[str] = None) -> str:
        out = self.node("Softmax", [x], name=name)
        self._copy_shape(x, out)
        return out

    def layernorm(self, x: str, name: Optional[str] = None) -> str:
        out = self.node("LayerNorm", [x], name=name)
        self._copy_shape(x, out)
        return out

    def batchnorm(self, x: str, name: Optional[str] = None) -> str:
        out = self.node("BatchNorm", [x], name=name)
        self._copy_shape(x, out)
        return out

    def slice(self, x: str, axis: int, start: int, end: int,
              name: Optional[str] = None) -> str:
        out = self.node("Slice", [x], {"axis": axis, "start": start, "end": end},
                        name=name)
        spec = self._tensors.get(x)
        if spec is not None:
            shape = list(spec.shape)
            shape[axis] = end - start
            self._track(out, tuple(shape))
        return out

    # ------------------------------------------------------------------

    def _track(self, name: str, shape: Tuple[int, ...]) -> None:
        """Record a provisional shape so later build-time helpers can read it.

        Final shapes are still produced by :meth:`Graph.infer_shapes`, which
        cross-checks these annotations.
        """
        self._tensors[name] = TensorSpec(name, shape, self.bits)

    def _copy_shape(self, src: str, dst: str) -> None:
        spec = self._tensors.get(src)
        if spec is not None:
            self._track(dst, spec.shape)

    def build(self, outputs: Sequence[str]) -> Graph:
        """Finalize into a validated, shape-inferred :class:`Graph`."""
        graph = Graph(self.name, self._inputs, list(outputs),
                      dict(self._tensors), list(self._nodes))
        return graph.infer_shapes()


def _conv_shape(x_shape, cout, kernel, stride, padding):
    from .ops import _pair, conv_out_hw
    s, p = _pair(stride, "stride"), _pair(padding, "padding")
    oh, ow = conv_out_hw(x_shape[2], x_shape[3], kernel, s, p)
    return (x_shape[0], cout, oh, ow)


def _pool_shape(x_shape, kernel, stride, padding):
    from .ops import _pair, conv_out_hw
    s, p = _pair(stride, "stride"), _pair(padding, "padding")
    oh, ow = conv_out_hw(x_shape[2], x_shape[3], kernel, s, p)
    return (x_shape[0], x_shape[1], oh, ow)
