"""Graph nodes (operators) for the ONNX-like IR.

A :class:`Node` mirrors an ONNX ``NodeProto``: an operator type, named input
and output edges, and an attribute dictionary.  Scheduling annotations (the
paper attaches optimization results "by adding attributes to the nodes in the
ONNX graph", Section 3.3.1) live in :attr:`Node.annotations` so they never
collide with operator attributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from ..errors import GraphError


@dataclass
class Node:
    """One operator instance in a computation graph.

    Parameters
    ----------
    name:
        Unique node identifier.
    op_type:
        Operator type name; must exist in :mod:`repro.graph.ops` registry
        before shape inference or scheduling.
    inputs:
        Ordered tensor names consumed by this node.  Convention per op (e.g.
        ``Conv`` takes ``[activation, weight]`` or ``[activation, weight,
        bias]``).
    outputs:
        Ordered tensor names produced by this node.
    attrs:
        Operator attributes (e.g. ``stride``, ``padding``, ``kernel_shape``).
    annotations:
        Compiler-written scheduling results (duplication counts, segment ids,
        VXB shapes...).  Never serialized as part of the model proper.
    """

    name: str
    op_type: str
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    attrs: Dict[str, Any] = field(default_factory=dict)
    annotations: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("node name must be non-empty")
        if not self.op_type:
            raise GraphError(f"node {self.name!r} has empty op_type")
        if len(set(self.outputs)) != len(self.outputs):
            raise GraphError(f"node {self.name!r} lists duplicate outputs")

    def attr(self, key: str, default: Any = None) -> Any:
        """Read an operator attribute with a default."""
        return self.attrs.get(key, default)

    def require_attr(self, key: str) -> Any:
        """Read an operator attribute, raising :class:`GraphError` if absent."""
        try:
            return self.attrs[key]
        except KeyError:
            raise GraphError(
                f"node {self.name!r} ({self.op_type}) missing attribute {key!r}"
            ) from None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        ins = ", ".join(self.inputs)
        outs = ", ".join(self.outputs)
        return f"{self.name} = {self.op_type}({ins}) -> ({outs})"
