"""Computation graph (ONNX-like) with validation and shape inference.

The :class:`Graph` is the compiler's input format: a DAG of :class:`Node`
operators connected by named tensors (:class:`TensorSpec`).  Section 3.3.1:
"the compiler gets the DNN models in ONNX format ... nodes correspond to
operators, and edges denote the data dependency between each operator."
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import GraphError, ShapeError
from .node import Node
from .ops import WeightMatrix, op_spec
from .tensor import TensorSpec


class Graph:
    """A static computation graph.

    Parameters
    ----------
    name:
        Model name (e.g. ``"resnet18"``).
    inputs / outputs:
        Names of graph-level input and output tensors.
    tensors:
        All known tensor specs keyed by name.  Weights must be present;
        intermediate activation specs may be added by :meth:`infer_shapes`.
    nodes:
        Operator list (any order; :meth:`topological` sorts).
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        tensors: Optional[Dict[str, TensorSpec]] = None,
        nodes: Optional[Iterable[Node]] = None,
    ) -> None:
        self.name = name
        self.inputs = list(inputs)
        self.outputs = list(outputs)
        self.tensors: Dict[str, TensorSpec] = dict(tensors or {})
        self.nodes: List[Node] = list(nodes or [])
        self._producer: Dict[str, Node] = {}
        self._consumers: Dict[str, List[Node]] = {}
        self._by_name: Dict[str, Node] = {}
        self._topo_cache: Optional[List[Node]] = None
        self._sig_cache: Optional[str] = None
        self._reindex()

    # ------------------------------------------------------------------
    # Construction / bookkeeping
    # ------------------------------------------------------------------

    def add_tensor(self, spec: TensorSpec) -> TensorSpec:
        """Register a tensor spec (idempotent if identical)."""
        existing = self.tensors.get(spec.name)
        if existing is not None and existing != spec:
            raise GraphError(f"tensor {spec.name!r} registered twice with "
                             f"conflicting specs")
        self.tensors[spec.name] = spec
        self._sig_cache = None
        return spec

    def add_node(self, node: Node) -> Node:
        """Append a node and refresh edge indices."""
        self.nodes.append(node)
        self._reindex()
        return node

    def _reindex(self) -> None:
        self._producer.clear()
        self._consumers.clear()
        self._by_name = {}
        self._topo_cache = None
        self._sig_cache = None
        names = set()
        for node in self.nodes:
            if node.name in names:
                raise GraphError(f"duplicate node name {node.name!r}")
            names.add(node.name)
            self._by_name[node.name] = node
            for out in node.outputs:
                if out in self._producer:
                    raise GraphError(f"tensor {out!r} produced by two nodes")
                self._producer[out] = node
            for inp in node.inputs:
                self._consumers.setdefault(inp, []).append(node)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def node(self, name: str) -> Node:
        """Look up a node by name (indexed; O(1))."""
        try:
            return self._by_name[name]
        except KeyError:
            raise GraphError(f"no node named {name!r}") from None

    def producer(self, tensor: str) -> Optional[Node]:
        """The node producing ``tensor`` (None for graph inputs / weights)."""
        return self._producer.get(tensor)

    def consumers(self, tensor: str) -> List[Node]:
        """All nodes consuming ``tensor``."""
        return list(self._consumers.get(tensor, []))

    def predecessors(self, node: Node) -> List[Node]:
        """Nodes whose outputs feed ``node`` (deduplicated, input order)."""
        preds: List[Node] = []
        for inp in node.inputs:
            p = self._producer.get(inp)
            if p is not None and p not in preds:
                preds.append(p)
        return preds

    def successors(self, node: Node) -> List[Node]:
        """Nodes consuming any output of ``node`` (deduplicated)."""
        succs: List[Node] = []
        for out in node.outputs:
            for c in self._consumers.get(out, []):
                if c not in succs:
                    succs.append(c)
        return succs

    def input_specs(self, node: Node) -> List[TensorSpec]:
        """Tensor specs of a node's inputs (shape inference must have run
        for intermediate tensors to be present)."""
        specs = []
        for name in node.inputs:
            spec = self.tensors.get(name)
            if spec is None:
                raise ShapeError(
                    f"node {node.name!r} input {name!r} has no spec; "
                    f"run infer_shapes() first"
                )
            specs.append(spec)
        return specs

    def output_spec(self, node: Node, index: int = 0) -> TensorSpec:
        """Tensor spec of a node's ``index``-th output."""
        name = node.outputs[index]
        spec = self.tensors.get(name)
        if spec is None:
            raise ShapeError(f"output {name!r} has no spec; run infer_shapes()")
        return spec

    def weight_inputs(self, node: Node) -> List[TensorSpec]:
        """Weight tensors consumed by ``node``."""
        return [s for s in self.input_specs(node) if s.is_weight]

    def weight_matrix(self, node: Node) -> Optional[WeightMatrix]:
        """The (R, C, bits) crossbar view of ``node``'s weights, if CIM-able."""
        return op_spec(node.op_type).weight_matrix(node, self.input_specs(node))

    def num_mvms(self, node: Node) -> int:
        """Number of MVMs one inference of ``node`` decomposes into."""
        return op_spec(node.op_type).num_mvms(node, self.input_specs(node))

    def macs(self, node: Node) -> int:
        """MAC count of ``node``."""
        return op_spec(node.op_type).macs(node, self.input_specs(node))

    def alu_ops(self, node: Node) -> int:
        """Digital ALU workload of ``node``."""
        return op_spec(node.op_type).alu_ops(node, self.input_specs(node))

    def is_cim_supported(self, node: Node) -> bool:
        """True when the node's weights can sit in crossbars."""
        return op_spec(node.op_type).is_cim_supported

    def cim_nodes(self) -> List[Node]:
        """All CIM-supported nodes in topological order."""
        return [n for n in self.topological() if self.is_cim_supported(n)]

    def total_weight_bits(self) -> int:
        """Total stationary weight footprint of all CIM-supported nodes."""
        total = 0
        for node in self.cim_nodes():
            r, c, b = self.weight_matrix(node)  # type: ignore[misc]
            total += r * c * b
        return total

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def topological(self) -> List[Node]:
        """Kahn topological order; raises :class:`GraphError` on cycles."""
        if self._topo_cache is not None:
            return list(self._topo_cache)
        indeg: Dict[str, int] = {}
        for node in self.nodes:
            indeg[node.name] = len(self.predecessors(node))
        ready = deque(n for n in self.nodes if indeg[n.name] == 0)
        order: List[Node] = []
        while ready:
            node = ready.popleft()
            order.append(node)
            for succ in self.successors(node):
                indeg[succ.name] -= 1
                if indeg[succ.name] == 0:
                    ready.append(succ)
        if len(order) != len(self.nodes):
            stuck = sorted(set(n.name for n in self.nodes) - set(n.name for n in order))
            raise GraphError(f"graph has a cycle involving {stuck}")
        self._topo_cache = order
        return list(order)

    def signature(self) -> str:
        """Deterministic content hash (topology + shapes + bits + attrs).

        Keys the explore disk cache and the in-process
        :class:`~repro.perf.CompileCache`.  The hash is computed once
        and invalidated by the structural mutation points
        (:meth:`add_node` / :meth:`add_tensor` / :meth:`infer_shapes`);
        scheduler-written :attr:`~repro.graph.node.Node.annotations` are
        deliberately excluded, so compiling never changes a graph's
        identity.  Code mutating ``nodes`` / ``tensors`` directly must
        re-run ``_reindex()`` (as the transform passes do).
        """
        if self._sig_cache is not None:
            return self._sig_cache
        payload = {
            "name": self.name,
            "inputs": list(self.inputs),
            "outputs": list(self.outputs),
            "tensors": sorted(
                (t.name, list(t.shape), t.bits, t.is_weight)
                for t in self.tensors.values()),
            "nodes": [
                (n.name, n.op_type, list(n.inputs), list(n.outputs),
                 sorted((k, repr(v)) for k, v in n.attrs.items()))
                for n in self.nodes],
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        self._sig_cache = hashlib.sha256(blob.encode()).hexdigest()
        return self._sig_cache

    def validate(self) -> None:
        """Check edge consistency: every consumed tensor is produced by a
        node, is a graph input, or is a registered weight/initializer."""
        available = set(self.inputs)
        available.update(name for name, s in self.tensors.items() if s.is_weight)
        for node in self.topological():
            for inp in node.inputs:
                if inp not in available and self._producer.get(inp) is None:
                    raise GraphError(
                        f"node {node.name!r} consumes undefined tensor {inp!r}"
                    )
            available.update(node.outputs)
        for out in self.outputs:
            if out not in available:
                raise GraphError(f"graph output {out!r} is never produced")

    def infer_shapes(self) -> "Graph":
        """Propagate tensor specs through the graph in topological order.

        Returns ``self`` for chaining.  Output specs inherit the bit-width of
        the first (activation) input.
        """
        self.validate()
        for node in self.topological():
            inputs = self.input_specs(node)
            shapes = op_spec(node.op_type).infer_shapes(node, inputs)
            if len(shapes) != len(node.outputs):
                raise ShapeError(
                    f"node {node.name!r} declares {len(node.outputs)} outputs "
                    f"but inference produced {len(shapes)}"
                )
            bits = inputs[0].bits if inputs else 8
            for name, shape in zip(node.outputs, shapes):
                inferred = TensorSpec(name, tuple(shape), bits)
                existing = self.tensors.get(name)
                if existing is not None and existing.shape != inferred.shape:
                    raise ShapeError(
                        f"tensor {name!r} annotated {existing.shape} but "
                        f"inferred {inferred.shape}"
                    )
                if existing is None:
                    self.tensors[name] = inferred
                    self._sig_cache = None
        return self

    # ------------------------------------------------------------------

    def summary(self) -> str:
        """Human-readable per-node summary table."""
        lines = [f"Graph {self.name}: {len(self.nodes)} nodes"]
        for node in self.topological():
            try:
                out = "x".join(map(str, self.output_spec(node).shape))
            except ShapeError:
                out = "?"
            lines.append(f"  {node.name:<24} {node.op_type:<12} -> {out}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph({self.name!r}, nodes={len(self.nodes)})"
