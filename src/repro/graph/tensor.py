"""Tensor metadata for the ONNX-like graph IR.

A :class:`TensorSpec` describes a value flowing along a graph edge: its name,
static shape, and integer bit-width.  CIM compilation is shape-driven — the
scheduler never touches tensor *values*, only their shapes and precisions —
so this is deliberately a value-free record.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple

from ..errors import ShapeError

#: Default activation / weight precision used throughout the paper (Section 4.1:
#: "All models' weights and activation values are quantized with 8-bit precision").
DEFAULT_BITS = 8


@dataclass(frozen=True)
class TensorSpec:
    """Static description of one tensor (graph edge value).

    Parameters
    ----------
    name:
        Unique identifier inside a :class:`~repro.graph.graph.Graph`.
    shape:
        Static shape.  Feature maps use ``(N, C, H, W)``; sequences use
        ``(N, T, D)``; weights use their natural layout (e.g. conv weights
        are ``(Cout, Cin, KH, KW)``).
    bits:
        Integer precision of each element.
    is_weight:
        True when the tensor is a model parameter (resident in crossbars for
        ReRAM-style CIM) rather than a runtime activation.
    """

    name: str
    shape: Tuple[int, ...]
    bits: int = DEFAULT_BITS
    is_weight: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ShapeError("tensor name must be non-empty")
        if any((not isinstance(d, int)) or d <= 0 for d in self.shape):
            raise ShapeError(
                f"tensor {self.name!r} has non-positive dimension: {self.shape}"
            )
        if self.bits <= 0:
            raise ShapeError(f"tensor {self.name!r} has bits={self.bits} <= 0")

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def numel(self) -> int:
        """Total number of elements."""
        return math.prod(self.shape)

    @property
    def size_bits(self) -> int:
        """Storage footprint in bits."""
        return self.numel * self.bits

    @property
    def size_bytes(self) -> int:
        """Storage footprint in bytes (rounded up)."""
        return (self.size_bits + 7) // 8

    def with_shape(self, shape: Tuple[int, ...]) -> "TensorSpec":
        """Return a copy of this spec with a different shape."""
        return TensorSpec(self.name, tuple(shape), self.bits, self.is_weight)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kind = "W" if self.is_weight else "T"
        return f"{kind}[{self.name}: {'x'.join(map(str, self.shape))} @{self.bits}b]"
