"""Functional simulator: value-exact execution of meta-operator flows.

"In our built functional simulator, the hardware abstraction of CIM is
described by a data structure, and meta-operators are implemented by
specific functions" (Section 4.1).  :class:`CIMMachine` is that data
structure; each meta-operator has an execution function; running a flow
reproduces the DNN's integer arithmetic exactly, which the test suite
verifies against :class:`repro.sim.reference.ReferenceExecutor`.

Semantics (machine contract, see :mod:`repro.sim.memory` for the layout):

* ``mov``            — copy between L0 and per-core L1 regions.
* ``cim.writexb``    — load an encoded cell matrix into a crossbar.
* ``cim.writerow``   — load rows of cell values.
* ``cim.readxb``     — each crossbar adds ``cells.T @ stage`` into its
  accumulator (whole-array activation).
* ``cim.readrow``    — partial-row activation: only ``len`` wordlines from
  ``row`` contribute.
* ``cim.readcore``   — CM: the core executes a whole operator on its flashed
  weights (:class:`CoreImage`).
* DCOM functions     — ``relu``/``add``/``shiftadd``/``maxpool``/... on
  buffers; ``shiftadd`` performs the ISAAC-style slice combine plus
  offset-binary correction (see :mod:`repro.quant`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..arch import CIMArchitecture, ComputingMode
from ..errors import SimulationError
from ..graph.ops import _pair
from ..mops import (
    DigitalOp,
    MetaOperatorFlow,
    Mov,
    ParallelBlock,
    ReadCore,
    ReadRow,
    ReadXb,
    WriteRow,
    WriteXb,
)
from .memory import MachineMemory
from .reference import ReferenceExecutor, conv_windows


@dataclass
class CoreImage:
    """CM-mode core configuration: the operator a core is flashed with."""

    op_type: str               # "Conv" or "Gemm"
    weights: np.ndarray
    attrs: Dict[str, Any] = field(default_factory=dict)
    in_shape: Tuple[int, ...] = ()
    out_shape: Tuple[int, ...] = ()
    out_rows: Tuple[int, int] = (0, 0)   # output spatial-row slice [a, b)


@dataclass
class FlowProgram:
    """A lowered program: flow + layout metadata the machine needs."""

    flow: MetaOperatorFlow
    tensor_offsets: Dict[str, int]       # L0 placement of every tensor
    core_images: Dict[int, CoreImage] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)


class CIMMachine:
    """Executes :class:`FlowProgram` objects on architectural state."""

    def __init__(self, arch: CIMArchitecture, l0_size: int = 1 << 24) -> None:
        self.arch = arch
        self.mem = MachineMemory(arch, l0_size)
        self._program: Optional[FlowProgram] = None
        self.stats: Dict[str, int] = {}

    # ------------------------------------------------------------------

    def run(self, program: FlowProgram,
            inputs: Dict[str, np.ndarray]) -> None:
        """Load graph inputs into L0 and execute the whole flow."""
        self._program = program
        self.stats = {"cim_activations": 0, "dcom_ops": 0, "movs": 0}
        for name, value in inputs.items():
            offset = program.tensor_offsets.get(name)
            if offset is None:
                raise SimulationError(f"input {name!r} has no L0 placement")
            self.mem.l0.write(offset, np.asarray(value))
        for stmt in program.flow.statements:
            body = stmt.body if isinstance(stmt, ParallelBlock) else (stmt,)
            for op in body:
                self._execute(op)

    def read_tensor(self, program: FlowProgram, name: str,
                    shape: Tuple[int, ...]) -> np.ndarray:
        """Read a tensor back from L0 in its canonical layout."""
        offset = program.tensor_offsets[name]
        flat = self.mem.l0.read(offset, int(np.prod(shape)))
        return flat.reshape(shape).copy()

    # ------------------------------------------------------------------

    def _execute(self, op) -> None:
        if isinstance(op, Mov):
            src = self.mem.l0 if op.src_space == "L0" else self.mem.l1
            dst = self.mem.l0 if op.dst_space == "L0" else self.mem.l1
            dst.write(op.dst, src.read(op.src, op.length))
            self.stats["movs"] += 1
        elif isinstance(op, WriteXb):
            cells = self._program.flow.constant(op.mat)
            xb = self.mem.crossbar(op.xbaddr)
            r, c = cells.shape
            xb[:, :] = 0
            xb[:r, :c] = cells
        elif isinstance(op, WriteRow):
            cells = self._program.flow.constant(op.value)
            xb = self.mem.crossbar(op.xbaddr)
            if cells.shape[0] != op.length:
                raise SimulationError(
                    f"writerow length {op.length} != payload rows "
                    f"{cells.shape[0]}"
                )
            xb[op.row:op.row + op.length, :cells.shape[1]] = cells
        elif isinstance(op, ReadXb):
            for addr in range(op.xbaddr, op.xbaddr + op.length):
                self._activate(addr, 0, self.arch.xb.rows)
        elif isinstance(op, ReadRow):
            self._activate(op.xbaddr, op.row, op.length)
        elif isinstance(op, ReadCore):
            self._read_core(op)
        elif isinstance(op, DigitalOp):
            self._digital(op)
            self.stats["dcom_ops"] += 1
        else:
            raise SimulationError(f"machine cannot execute {op!r}")

    def _activate(self, xbaddr: int, row: int, length: int) -> None:
        """One crossbar activation: bitline partial sums into the ACC."""
        xb = self.mem.crossbar(xbaddr)
        stage = self.mem.l1.read(self.mem.stage_addr(xbaddr) + row, length)
        partial = xb[row:row + length].T @ stage
        self.mem.l1.accumulate(self.mem.acc_addr(xbaddr), partial)
        self.stats["cim_activations"] += 1

    # ------------------------------------------------------------------

    def _read_core(self, op: ReadCore) -> None:
        image = self._program.core_images.get(op.coreaddr)
        if image is None:
            raise SimulationError(
                f"core {op.coreaddr} has no flashed operator"
            )
        x = self.mem.l0.read(
            op.src, int(np.prod(image.in_shape))).reshape(image.in_shape)
        a, b = image.out_rows
        if image.op_type == "Conv":
            stride = _pair(image.attrs.get("stride", 1), "stride")
            padding = _pair(image.attrs.get("padding", 0), "padding")
            w = image.weights
            cout, cin, kh, kw = w.shape
            windows = conv_windows(x, (kh, kw), stride, padding)
            out = windows @ w.reshape(cout, -1).T
            n, _, oh, ow = image.out_shape
            out = out.reshape(n, oh, ow, cout).transpose(0, 3, 1, 2)
            # The core's memory controller scatters its output-row slice
            # [a, b) into the canonical NCHW tensor at op.dst.
            for bi in range(n):
                for c in range(cout):
                    base = op.dst + (bi * cout + c) * oh * ow + a * ow
                    self.mem.l0.write(base, out[bi, c, a:b, :])
        elif image.op_type == "Gemm":
            out = x.reshape(-1, image.weights.shape[1]) @ image.weights.T
            row_stride = image.weights.shape[0]
            self.mem.l0.write(op.dst + a * row_stride, out[a:b])
        else:
            raise SimulationError(
                f"core image op {image.op_type!r} not executable"
            )
        self.stats["cim_activations"] += 1

    # ------------------------------------------------------------------
    # DCOM functions
    # ------------------------------------------------------------------

    def _digital(self, op: DigitalOp) -> None:
        params = dict(op.params)
        space = self.mem.l1 if params.get("space") == "L1" else self.mem.l0
        fn = getattr(self, f"_dcom_{op.fn}", None)
        if fn is None:
            raise SimulationError(f"unknown DCOM function {op.fn!r}")
        fn(op, space, params)

    def _dcom_relu(self, op, space, params) -> None:
        x = space.read(op.srcs[0], op.length)
        space.write(op.dst, np.maximum(x, 0))

    def _dcom_add(self, op, space, params) -> None:
        a = space.read(op.srcs[0], op.length)
        b = space.read(op.srcs[1], op.length)
        space.write(op.dst, a + b)

    def _dcom_copy(self, op, space, params) -> None:
        space.write(op.dst, space.read(op.srcs[0], op.length))

    def _dcom_zero(self, op, space, params) -> None:
        space.write(op.dst, np.zeros(op.length))

    def _dcom_shiftadd(self, op, space, params) -> None:
        """Combine ``slices`` raw column sums into ``length`` outputs and
        subtract the offset-binary correction ``offset * sum(stage)``."""
        slices = params["slices"]
        cell_bits = params["cell_bits"]
        offset = params.get("offset", 0)
        raw = space.read(op.srcs[0], op.length * slices)
        correction = 0.0
        if offset:
            stage = self.mem.l1.read(params["stage"], params["stage_len"])
            correction = float(offset) * float(stage.sum())
        # Float shift-and-add: partial sums may carry fractions when the
        # staged activations do (e.g. after an average pool), and float64
        # keeps the integer case exact below 2^53.
        combined = np.zeros(op.length, dtype=np.float64)
        for j in range(slices):
            combined += raw[j::slices] * float(2 ** (cell_bits * j))
        space.write(op.dst, combined - correction)

    def _dcom_maxpool(self, op, space, params) -> None:
        self._pool(op, space, params, np.max)

    def _dcom_avgpool(self, op, space, params) -> None:
        self._pool(op, space, params, np.mean)

    def _pool(self, op, space, params, reduce_fn) -> None:
        shape = tuple(params["in_shape"])
        x = space.read(op.srcs[0], int(np.prod(shape))).reshape(shape)
        kernel = _pair(params["kernel"], "kernel")
        stride = _pair(params.get("stride", params["kernel"]), "stride")
        padding = _pair(params.get("padding", 0), "padding")
        n, c, h, w = shape
        kh, kw = kernel
        oh = (h + 2 * padding[0] - kh) // stride[0] + 1
        ow = (w + 2 * padding[1] - kw) // stride[1] + 1
        fill = -np.inf if reduce_fn is np.max else 0.0
        padded = np.full((n, c, h + 2 * padding[0], w + 2 * padding[1]), fill)
        padded[:, :, padding[0]:padding[0] + h, padding[1]:padding[1] + w] = x
        out = np.empty((n, c, oh, ow))
        for i in range(oh):
            for j in range(ow):
                win = padded[:, :, i * stride[0]:i * stride[0] + kh,
                             j * stride[1]:j * stride[1] + kw]
                out[:, :, i, j] = reduce_fn(win, axis=(2, 3))
        space.write(op.dst, out)

    def _dcom_gap(self, op, space, params) -> None:
        shape = tuple(params["in_shape"])
        x = space.read(op.srcs[0], int(np.prod(shape))).reshape(shape)
        space.write(op.dst, x.mean(axis=(2, 3)))

    def _dcom_nhwc2nchw(self, op, space, params) -> None:
        """Reorder a (OH*OW, C) MVM-output matrix into canonical NCHW."""
        oh, ow, c = params["oh"], params["ow"], params["channels"]
        x = space.read(op.srcs[0], oh * ow * c).reshape(oh, ow, c)
        space.write(op.dst, x.transpose(2, 0, 1))

    def _dcom_im2col(self, op, space, params) -> None:
        """Materialize the convolution window matrix in L0."""
        shape = tuple(params["in_shape"])
        x = space.read(op.srcs[0], int(np.prod(shape))).reshape(shape)
        windows = conv_windows(
            x,
            _pair(params["kernel"], "kernel"),
            _pair(params.get("stride", 1), "stride"),
            _pair(params.get("padding", 0), "padding"),
        )
        space.write(op.dst, windows)
