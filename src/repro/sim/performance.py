"""Performance simulator: latency of a scheduled inference.

Extends the structure of the open simulators the paper builds on (ISAAC /
PUMA latency models, NeuroSim / NVSim array timing): per-operator compute
cycles from the cost model, an inter-operator pipeline within each segment,
and weight-reconfiguration stalls between segments (a segment swap rewrites
crossbars, which is expensive on ReRAM/FLASH — Section 2.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..arch import CIMArchitecture
from ..sched.cg import pipelined_latency, sequential_latency
from ..sched.costs import reconfiguration_cycles
from ..sched.schedule import OpDecision, Schedule
from .power import PowerModel, PowerReport


@dataclass(frozen=True)
class SegmentTiming:
    """Latency detail of one segment."""

    index: int
    cycles: float
    reconfiguration: float
    bottleneck: str            # slowest operator name
    bottleneck_cycles: float


@dataclass(frozen=True)
class PerformanceReport:
    """Complete latency + power result of one scheduled inference."""

    schedule_levels: Tuple[str, ...]
    pipelined: bool
    total_cycles: float
    compute_cycles: float
    reconfiguration_cycles: float
    segments: Tuple[SegmentTiming, ...]
    op_latency: Dict[str, float]
    power: PowerReport
    #: Cycles to program *every* segment's weights into crossbars from
    #: scratch — the cost a serving system pays to (re)deploy this model
    #: onto the chip, e.g. when a time-multiplexed chip switches tenants.
    weight_load_cycles: float = 0.0

    def speedup_over(self, other: "PerformanceReport") -> float:
        """``other.total / self.total`` — how much faster this run is."""
        return other.total_cycles / self.total_cycles

    @property
    def segment_intervals(self) -> Tuple[float, ...]:
        """Per-segment steady-state service interval under streaming.

        Pipelined: each segment re-admits an input every
        ``max(bottleneck, reconfiguration)`` cycles.  Sequential: a segment
        holds the chip for its full latency (plus its swap-in stall).
        """
        if not self.pipelined:
            return tuple(seg.cycles + seg.reconfiguration
                         for seg in self.segments)
        return tuple(max(seg.bottleneck_cycles, seg.reconfiguration)
                     for seg in self.segments)

    @property
    def steady_state_interval(self) -> float:
        """Cycles between consecutive completed inferences when images
        stream through the pipeline (batch throughput mode).

        Pipelined: the slowest stage paces the stream.  Sequential: each
        image occupies the whole chip for its full latency.
        """
        if not self.pipelined:
            return self.total_cycles
        return max(1.0, *self.segment_intervals) if self.segments else 1.0

    @property
    def throughput(self) -> float:
        """Inferences per cycle in steady state."""
        return 1.0 / self.steady_state_interval

    def summary(self) -> str:
        """Readable one-block summary."""
        lines = [
            f"levels={'+'.join(self.schedule_levels)} "
            f"pipelined={self.pipelined}",
            f"total cycles: {self.total_cycles:,.0f} "
            f"(compute {self.compute_cycles:,.0f} + reconf "
            f"{self.reconfiguration_cycles:,.0f})",
            f"peak active crossbars: {self.power.peak_active_crossbars:,} "
            f"peak power: {self.power.peak_power:,.1f}",
        ]
        for seg in self.segments:
            lines.append(
                f"  segment {seg.index}: {seg.cycles:,.0f} cycles, "
                f"bottleneck {seg.bottleneck} "
                f"({seg.bottleneck_cycles:,.0f})"
            )
        return "\n".join(lines)


class PerformanceSimulator:
    """Evaluates a :class:`Schedule` into a :class:`PerformanceReport`."""

    def __init__(self, arch: CIMArchitecture) -> None:
        self.arch = arch
        self.power_model = PowerModel(arch)

    def run(self, schedule: Schedule) -> PerformanceReport:
        """Simulate one inference under ``schedule``."""
        segments: List[SegmentTiming] = []
        op_latency: Dict[str, float] = {}
        compute_total = 0.0
        reconf_total = 0.0
        multi_segment = len(schedule.segments) > 1
        weight_load = 0.0
        for seg_idx in range(len(schedule.segments)):
            decisions = schedule.segment_decisions(seg_idx)
            for d in decisions:
                op_latency[d.profile.name] = d.latency()
            cycles = (pipelined_latency(decisions) if schedule.pipelined
                      else sequential_latency(decisions))
            seg_profiles = {d.profile.name: d.profile for d in decisions}
            weight_load += reconfiguration_cycles(seg_profiles, self.arch)
            reconf = 0.0
            if multi_segment:
                reconf = reconfiguration_cycles(seg_profiles, self.arch)
                if schedule.pipelined and self.arch.xb.cell_type.cheap_writes:
                    # SRAM chips stream the next segment's weights into
                    # idle cores while the current segment computes; only
                    # the non-hidden part of the reload stalls.
                    reconf = max(0.0, reconf - cycles)
            bottleneck = max(decisions, key=lambda d: d.latency())
            segments.append(SegmentTiming(
                index=seg_idx,
                cycles=cycles,
                reconfiguration=reconf,
                bottleneck=bottleneck.profile.name,
                bottleneck_cycles=bottleneck.latency(),
            ))
            compute_total += cycles
            reconf_total += reconf
        total = compute_total + reconf_total
        power = self.power_model.evaluate(schedule, total)
        return PerformanceReport(
            schedule_levels=tuple(schedule.levels),
            pipelined=schedule.pipelined,
            total_cycles=total,
            compute_cycles=compute_total,
            reconfiguration_cycles=reconf_total,
            segments=tuple(segments),
            op_latency=op_latency,
            power=power,
            weight_load_cycles=weight_load,
        )


def activity_timeline(schedule: Schedule) -> List[Tuple[float, float, int]]:
    """Coarse (start, end, active_crossbars) intervals for plotting.

    Within a pipelined segment operators overlap after their upstream fill;
    the timeline stacks per-operator active-crossbar counts over the
    segment's duration.
    """
    timeline: List[Tuple[float, float, int]] = []
    clock = 0.0
    for seg_idx in range(len(schedule.segments)):
        decisions = schedule.segment_decisions(seg_idx)
        if schedule.pipelined:
            duration = pipelined_latency(decisions)
            fill = 0.0
            for d in decisions:
                start = clock + fill
                end = min(clock + duration, start + d.latency())
                if d.active_crossbars() > 0 and end > start:
                    timeline.append((start, end, d.active_crossbars()))
                fill += d.fill()
        else:
            for d in decisions:
                end = clock + d.latency()
                if d.active_crossbars() > 0:
                    timeline.append((clock, end, d.active_crossbars()))
                clock = end
            continue
        clock += duration
    return timeline
