"""Performance simulator: latency of a scheduled inference.

Extends the structure of the open simulators the paper builds on (ISAAC /
PUMA latency models, NeuroSim / NVSim array timing): per-operator compute
cycles from the cost model, an inter-operator pipeline within each segment,
and weight-reconfiguration stalls between segments (a segment swap rewrites
crossbars, which is expensive on ReRAM/FLASH — Section 2.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..arch import CIMArchitecture
from ..perf import fastpath_enabled
from ..perf.kernels import segment_cycles
from ..sched.cg import pipelined_latency, sequential_latency
from ..sched.costs import reconfiguration_cycles
from ..sched.schedule import OpDecision, Schedule
from .power import PowerModel, PowerReport


@dataclass(frozen=True)
class SegmentTiming:
    """Latency detail of one segment."""

    index: int
    cycles: float
    reconfiguration: float
    bottleneck: str            # slowest operator name
    bottleneck_cycles: float


@dataclass(frozen=True)
class PerformanceReport:
    """Complete latency + power result of one scheduled inference."""

    schedule_levels: Tuple[str, ...]
    pipelined: bool
    total_cycles: float
    compute_cycles: float
    reconfiguration_cycles: float
    segments: Tuple[SegmentTiming, ...]
    op_latency: Dict[str, float]
    power: PowerReport
    #: Cycles to program *every* segment's weights into crossbars from
    #: scratch — the cost a serving system pays to (re)deploy this model
    #: onto the chip, e.g. when a time-multiplexed chip switches tenants.
    weight_load_cycles: float = 0.0
    #: Energy of that full weight (re)program — the energy twin of
    #: ``weight_load_cycles``, charged by serving on tenant switches.
    weight_write_energy: float = 0.0

    def speedup_over(self, other: "PerformanceReport") -> float:
        """``other.total / self.total`` — how much faster this run is."""
        return other.total_cycles / self.total_cycles

    @property
    def energy_per_inference(self) -> float:
        """Energy one inference consumes end to end.

        The power model's four components summed (crossbar activation,
        ADC/DAC conversion, data movement, and — for multi-segment
        schedules — the per-inference segment-swap weight rewrites).
        Invariant under streaming: pipelining changes *power*, not the
        energy each inference pays.
        """
        return self.power.total_energy

    @property
    def segment_intervals(self) -> Tuple[float, ...]:
        """Per-segment steady-state service interval under streaming.

        Pipelined: each segment re-admits an input every
        ``max(bottleneck, reconfiguration)`` cycles.  Sequential: a segment
        holds the chip for its full latency (plus its swap-in stall).
        """
        if not self.pipelined:
            return tuple(seg.cycles + seg.reconfiguration
                         for seg in self.segments)
        return tuple(max(seg.bottleneck_cycles, seg.reconfiguration)
                     for seg in self.segments)

    @property
    def steady_state_interval(self) -> float:
        """Cycles between consecutive completed inferences when images
        stream through the pipeline (batch throughput mode).

        Pipelined: the slowest stage paces the stream.  Sequential: each
        image occupies the whole chip for its full latency.
        """
        if not self.pipelined:
            return self.total_cycles
        return max(1.0, *self.segment_intervals) if self.segments else 1.0

    @property
    def throughput(self) -> float:
        """Inferences per cycle in steady state."""
        return 1.0 / self.steady_state_interval

    def summary(self) -> str:
        """Readable one-block summary."""
        lines = [
            f"levels={'+'.join(self.schedule_levels)} "
            f"pipelined={self.pipelined}",
            f"total cycles: {self.total_cycles:,.0f} "
            f"(compute {self.compute_cycles:,.0f} + reconf "
            f"{self.reconfiguration_cycles:,.0f})",
            f"peak active crossbars: {self.power.peak_active_crossbars:,} "
            f"peak power: {self.power.peak_power:,.1f}",
            f"energy/inference: {self.power.total_energy:,.1f} "
            f"(avg power {self.power.avg_power:,.3f})",
        ]
        for seg in self.segments:
            lines.append(
                f"  segment {seg.index}: {seg.cycles:,.0f} cycles, "
                f"bottleneck {seg.bottleneck} "
                f"({seg.bottleneck_cycles:,.0f})"
            )
        return "\n".join(lines)


class PerformanceSimulator:
    """Evaluates a :class:`Schedule` into a :class:`PerformanceReport`."""

    def __init__(self, arch: CIMArchitecture) -> None:
        self.arch = arch
        self.power_model = PowerModel(arch)

    def run(self, schedule: Schedule,
            recorder=None) -> PerformanceReport:
        """Simulate one inference under ``schedule``.

        On the fast path every operator's latency and fill are evaluated
        in one vectorized pass per segment
        (:func:`~repro.perf.kernels.segment_cycles`, the same kernel
        behind :func:`~repro.sched.cg.pipelined_latency`); the reference
        path evaluates them per-decision.  Both produce bit-identical
        reports — the kernel preserves the reference's first-wins
        bottleneck tie-breaking and left-to-right summation order.

        ``recorder`` (a :class:`repro.trace.TraceRecorder`) optionally
        captures the run as a span timeline — per-segment
        reconfiguration stalls, compute waves, overlapped NoC demand,
        and per-operator detail.  ``None`` (the default) records
        nothing and adds no work.
        """
        segments: List[SegmentTiming] = []
        op_latency: Dict[str, float] = {}
        compute_total = 0.0
        reconf_total = 0.0
        multi_segment = len(schedule.segments) > 1
        weight_load = 0.0
        fast = fastpath_enabled()
        for seg_idx in range(len(schedule.segments)):
            decisions = schedule.segment_decisions(seg_idx)
            if fast and decisions:
                lats, b_idx, cycles = segment_cycles(
                    decisions, schedule.pipelined)
                for d, lat in zip(decisions, lats):
                    op_latency[d.profile.name] = float(lat)
            else:
                for d in decisions:
                    op_latency[d.profile.name] = d.latency()
                cycles = (pipelined_latency(decisions) if schedule.pipelined
                          else sequential_latency(decisions))
                b_idx = max(range(len(decisions)),
                            key=lambda i: decisions[i].latency())
            seg_profiles = {d.profile.name: d.profile for d in decisions}
            weight_load += reconfiguration_cycles(seg_profiles, self.arch)
            reconf = 0.0
            if multi_segment:
                reconf = reconfiguration_cycles(seg_profiles, self.arch)
                if schedule.pipelined and self.arch.xb.cell_type.cheap_writes:
                    # SRAM chips stream the next segment's weights into
                    # idle cores while the current segment computes; only
                    # the non-hidden part of the reload stalls.
                    reconf = max(0.0, reconf - cycles)
            bottleneck = decisions[b_idx]
            segments.append(SegmentTiming(
                index=seg_idx,
                cycles=cycles,
                reconfiguration=reconf,
                bottleneck=bottleneck.profile.name,
                bottleneck_cycles=op_latency[bottleneck.profile.name],
            ))
            compute_total += cycles
            reconf_total += reconf
        total = compute_total + reconf_total
        power = self.power_model.evaluate(schedule, total)
        report = PerformanceReport(
            schedule_levels=tuple(schedule.levels),
            pipelined=schedule.pipelined,
            total_cycles=total,
            compute_cycles=compute_total,
            reconfiguration_cycles=reconf_total,
            segments=tuple(segments),
            op_latency=op_latency,
            power=power,
            weight_load_cycles=weight_load,
            weight_write_energy=self.power_model.weight_write_energy(
                schedule),
        )
        if recorder is not None:
            from ..trace.capture import emit_sim, sim_model_from_report

            noc = sum(d.profile.mov_cycles
                      for i in range(len(schedule.segments))
                      for d in schedule.segment_decisions(i))
            emit_sim(sim_model_from_report(report, schedule), recorder)
            recorder.configure(
                kind="sim", pipelined=report.pipelined,
                levels=list(report.schedule_levels),
                arch=self.arch.name,
                total_cycles=report.total_cycles,
                compute_cycles=report.compute_cycles,
                reconfiguration_cycles=report.reconfiguration_cycles,
                noc_cycles=noc,
                steady_state_interval=report.steady_state_interval)
        return report


# ---------------------------------------------------------------------------
# Multi-chip pipelined estimation (repro.scale)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LinkTransfer:
    """One inter-chip activation transfer per inference.

    ``cycles`` is the end-to-end latency of the message (head latency per
    hop plus serialization) — the *fill* cost; ``occupancy`` is the cycles
    the channel is busy — the *throughput* cost.  Built by
    :func:`repro.scale.shard` from the stage-boundary tensors and the
    system's :class:`~repro.arch.ChipLink`.
    """

    src_stage: int
    dst_stage: int
    src_chip: int
    dst_chip: int
    bits: int
    hops: int
    cycles: float
    occupancy: float
    #: Energy of this transfer per inference
    #: (:meth:`repro.arch.ChipLink.transfer_energy`).
    energy: float = 0.0


@dataclass(frozen=True)
class MultiChipReport:
    """Latency/throughput of one model pipelined across several chips.

    Stage ``i`` runs on chip ``chips[i]`` with the single-chip
    :class:`PerformanceReport` ``stages[i]``; activations cross chips via
    ``transfers``.  The pipeline model: one inference traverses all stages
    and consecutive-boundary links in order (fill), while in steady state
    the slowest stage or link channel paces admissions (drain overlaps the
    next inference's fill).

    Example
    -------
    >>> from repro.arch import MultiChipSystem, isaac_baseline
    >>> from repro.models import resnet18
    >>> from repro.scale import shard
    >>> plan = shard(resnet18(), MultiChipSystem(isaac_baseline(), 2))
    >>> plan.report.throughput > 0
    True
    """

    stages: Tuple[PerformanceReport, ...]
    chips: Tuple[int, ...]
    transfers: Tuple[LinkTransfer, ...]

    @property
    def num_chips(self) -> int:
        """Chips the pipeline spans (max chip id + 1)."""
        return max(self.chips) + 1 if self.chips else 0

    @property
    def stage_intervals(self) -> Tuple[float, ...]:
        """Per-stage steady-state admission intervals (compute only)."""
        return tuple(r.steady_state_interval for r in self.stages)

    @property
    def link_intervals(self) -> Tuple[float, ...]:
        """Per-transfer channel occupancies (the link pipeline stages)."""
        return tuple(t.occupancy for t in self.transfers)

    @property
    def channel_occupancies(self) -> Dict[Tuple[int, int], float]:
        """Busy cycles per inference of each *physical* link channel.

        Several transfers can share one wire — adjacent-stage traffic
        plus multi-hop relays — so per-channel occupancy sums them.
        The relay path follows the routing the transfer's hop count was
        priced with: a single-hop transfer uses the direct ``(src, dst)``
        channel; a multi-hop transfer steps around the ring in whichever
        direction matches ``t.hops`` (so wraparound-routed traffic loads
        the wrap wires, not the unused forward ones).  Topologies whose
        hop count fits neither ring direction (mesh) fall back to the
        forward chain — conservative for their shortcut wires.
        """
        n = self.num_chips
        busy: Dict[Tuple[int, int], float] = {}

        def charge(src: int, dst: int, step: int, modular: bool,
                   occupancy: float) -> None:
            c = src
            while c != dst:
                nxt = (c + step) % n if modular else c + step
                busy[(c, nxt)] = busy.get((c, nxt), 0.0) + occupancy
                c = nxt

        for t in self.transfers:
            if t.hops <= 1:
                key = (t.src_chip, t.dst_chip)
                busy[key] = busy.get(key, 0.0) + t.occupancy
            elif t.hops == (t.dst_chip - t.src_chip) % n:
                charge(t.src_chip, t.dst_chip, +1, True, t.occupancy)
            elif t.hops == (t.src_chip - t.dst_chip) % n:
                charge(t.src_chip, t.dst_chip, -1, True, t.occupancy)
            else:
                charge(t.src_chip, t.dst_chip,
                       1 if t.dst_chip >= t.src_chip else -1, False,
                       t.occupancy)
        return busy

    @property
    def total_cycles(self) -> float:
        """One inference end to end: every stage's latency plus the head
        latency of each consecutive-stage link on the critical path (skip
        transfers overlap the chain and never dominate a shortest path)."""
        compute = sum(r.total_cycles for r in self.stages)
        chain = sum(t.cycles for t in self.transfers
                    if t.dst_stage == t.src_stage + 1)
        return compute + chain

    @property
    def steady_state_interval(self) -> float:
        """Cycles between completed inferences when images stream through
        the chip pipeline: the slowest compute stage or physical link
        channel (transfers sharing a wire pace it together — see
        :attr:`channel_occupancies`)."""
        paced = list(self.stage_intervals) \
            + list(self.channel_occupancies.values())
        return max(paced) if paced else 1.0

    @property
    def throughput(self) -> float:
        """Inferences per cycle in steady state."""
        return 1.0 / self.steady_state_interval

    def batch_cycles(self, n: int) -> float:
        """Cycles to push ``n`` inferences through: pipeline fill (one full
        traversal) plus ``n - 1`` steady-state intervals."""
        if n < 1:
            return 0.0
        return self.total_cycles + (n - 1) * self.steady_state_interval

    def speedup_over(self, other: "PerformanceReport") -> float:
        """Throughput gain over a single-chip report (interval ratio)."""
        return other.steady_state_interval / self.steady_state_interval

    @property
    def peak_power(self) -> float:
        """Chips compute concurrently, so peak power sums over stages."""
        return sum(r.power.peak_power for r in self.stages)

    @property
    def chip_peak_powers(self) -> Tuple[float, ...]:
        """Per-stage (= per-chip) peak power, in stage order."""
        return tuple(r.power.peak_power for r in self.stages)

    @property
    def link_energy(self) -> float:
        """Energy of all inter-chip activation transfers per inference."""
        return sum(t.energy for t in self.transfers)

    @property
    def total_energy(self) -> float:
        """Energy of one inference across the whole pipeline: every
        stage's on-die energy plus every inter-chip transfer."""
        return sum(r.power.total_energy for r in self.stages) \
            + self.link_energy

    @property
    def energy_per_inference(self) -> float:
        """Alias of :attr:`total_energy` (energy is per-inference
        invariant under streaming, matching the single-chip report)."""
        return self.total_energy

    @property
    def weight_write_energy(self) -> float:
        """Energy to program every chip's resident weights from scratch
        (the multi-chip deployment cost; stages sum)."""
        return sum(r.weight_write_energy for r in self.stages)

    def summary(self) -> str:
        """Readable per-stage + per-link block."""
        lines = [
            f"{len(self.stages)} stages on {self.num_chips} chips: "
            f"latency {self.total_cycles:,.0f} cycles, interval "
            f"{self.steady_state_interval:,.0f} cycles",
            f"energy/inference {self.total_energy:,.1f} "
            f"(links {self.link_energy:,.1f}), peak power "
            f"{self.peak_power:,.1f}",
        ]
        for i, (chip, rep) in enumerate(zip(self.chips, self.stages)):
            lines.append(
                f"  stage {i} @ chip {chip}: latency {rep.total_cycles:,.0f} "
                f"interval {rep.steady_state_interval:,.0f}")
        for t in self.transfers:
            lines.append(
                f"  link {t.src_chip}->{t.dst_chip} "
                f"(stage {t.src_stage}->{t.dst_stage}): {t.bits:,} bits, "
                f"{t.cycles:,.0f} cycles, occupancy {t.occupancy:,.1f}")
        return "\n".join(lines)


def pipeline_multichip(stages: Sequence[PerformanceReport],
                       chips: Sequence[int],
                       transfers: Sequence[LinkTransfer]) -> MultiChipReport:
    """Assemble a :class:`MultiChipReport` from per-stage reports.

    ``stages[i]`` must be the report of the subgraph running on chip
    ``chips[i]``; ``transfers`` carry the inter-stage activation traffic.
    """
    if len(stages) != len(chips):
        raise ValueError(
            f"{len(stages)} stage reports but {len(chips)} chip ids")
    return MultiChipReport(stages=tuple(stages), chips=tuple(chips),
                           transfers=tuple(transfers))


def activity_timeline(schedule: Schedule) -> List[Tuple[float, float, int]]:
    """Coarse (start, end, active_crossbars) intervals for plotting.

    Within a pipelined segment operators overlap after their upstream fill;
    the timeline stacks per-operator active-crossbar counts over the
    segment's duration.
    """
    timeline: List[Tuple[float, float, int]] = []
    clock = 0.0
    for seg_idx in range(len(schedule.segments)):
        decisions = schedule.segment_decisions(seg_idx)
        if schedule.pipelined:
            duration = pipelined_latency(decisions)
            fill = 0.0
            for d in decisions:
                start = clock + fill
                end = min(clock + duration, start + d.latency())
                if d.active_crossbars() > 0 and end > start:
                    timeline.append((start, end, d.active_crossbars()))
                fill += d.fill()
        else:
            for d in decisions:
                end = clock + d.latency()
                if d.active_crossbars() > 0:
                    timeline.append((clock, end, d.active_crossbars()))
                clock = end
            continue
        clock += duration
    return timeline
