"""Buffer and crossbar state for the functional simulator.

Machine layout conventions (shared contract with
:mod:`repro.sched.lowering`):

* **L0** — the chip-tier global buffer: one flat array, element-addressed.
* **L1** — core-tier local buffers, addressed globally as
  ``core * l1_segment + offset``.  Within each core's segment:

  - ``stage(xb_local) = xb_local * xb_rows`` — input-vector staging region
    of each crossbar (what ``mov`` fills and ``cim.readxb``/``cim.readrow``
    consume);
  - ``acc(xb_local) = xb_number * xb_rows + xb_local * xb_cols`` — the
    bitline accumulator each crossbar adds its partial sums into;
  - ``scratch(xb_local) = xb_number * (xb_rows + xb_cols) + xb_local *
    xb_cols`` — per-crossbar digital scratch (shift-and-add results).

* **Crossbars** — one ``(rows, cols)`` cell array each, global index
  ``core * xb_number + local``.

Values are float64 so integer arithmetic below 2^53 is exact while float
digital ops (softmax etc.) still work.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..arch import CIMArchitecture
from ..errors import AllocationError, SimulationError


class BufferSpace:
    """One flat element-addressed buffer."""

    def __init__(self, name: str, size: int) -> None:
        self.name = name
        self.data = np.zeros(size, dtype=np.float64)

    def read(self, offset: int, length: int) -> np.ndarray:
        self._check(offset, length)
        return self.data[offset:offset + length]

    def write(self, offset: int, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        self._check(offset, values.size)
        self.data[offset:offset + values.size] = values

    def accumulate(self, offset: int, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        self._check(offset, values.size)
        self.data[offset:offset + values.size] += values

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or offset + length > self.data.size:
            raise SimulationError(
                f"{self.name}: access [{offset}, {offset + length}) outside "
                f"buffer of {self.data.size} elements"
            )


class MachineMemory:
    """All architectural state: L0, per-core L1, crossbar cells."""

    def __init__(self, arch: CIMArchitecture, l0_size: int = 1 << 24) -> None:
        self.arch = arch
        rows, cols = arch.xb.xb_size
        n_xb = arch.core.xb_number
        #: Per-core L1 segment: stage + acc + scratch regions plus headroom.
        self.l1_segment = n_xb * (rows + 2 * cols) + 4096
        self.l0 = BufferSpace("L0", l0_size)
        self.l1 = BufferSpace(
            "L1", arch.chip.core_number * self.l1_segment)
        self.crossbars: List[np.ndarray] = [
            np.zeros((rows, cols), dtype=np.float64)
            for _ in range(arch.total_crossbars)
        ]

    # ------------------------------------------------------------------
    # Layout helpers (the lowering uses the same formulas)
    # ------------------------------------------------------------------

    def core_of(self, xbaddr: int) -> int:
        return xbaddr // self.arch.core.xb_number

    def stage_addr(self, xbaddr: int) -> int:
        """Global L1 address of crossbar ``xbaddr``'s staging region."""
        local = xbaddr % self.arch.core.xb_number
        return self.core_of(xbaddr) * self.l1_segment + \
            local * self.arch.xb.rows

    def acc_addr(self, xbaddr: int) -> int:
        """Global L1 address of crossbar ``xbaddr``'s accumulator."""
        n_xb = self.arch.core.xb_number
        local = xbaddr % n_xb
        base = n_xb * self.arch.xb.rows
        return self.core_of(xbaddr) * self.l1_segment + base + \
            local * self.arch.xb.cols

    def scratch_addr(self, xbaddr: int) -> int:
        """Global L1 address of crossbar ``xbaddr``'s digital scratch."""
        n_xb = self.arch.core.xb_number
        local = xbaddr % n_xb
        base = n_xb * (self.arch.xb.rows + self.arch.xb.cols)
        return self.core_of(xbaddr) * self.l1_segment + base + \
            local * self.arch.xb.cols

    def crossbar(self, xbaddr: int) -> np.ndarray:
        if not 0 <= xbaddr < len(self.crossbars):
            raise SimulationError(f"crossbar {xbaddr} out of range")
        return self.crossbars[xbaddr]


class BumpAllocator:
    """Monotone element allocator for L0 tensor placement."""

    def __init__(self, size: int, start: int = 0) -> None:
        self.size = size
        self.next = start

    def alloc(self, length: int, label: str = "") -> int:
        if length < 0:
            raise AllocationError(f"negative allocation for {label!r}")
        offset = self.next
        if offset + length > self.size:
            raise AllocationError(
                f"L0 exhausted allocating {length} elements for {label!r} "
                f"(used {offset}/{self.size})"
            )
        self.next += length
        return offset
