"""Reference executor: numpy ground truth for functional verification.

The paper verifies its functional simulator against PyTorch (Section 4.1);
offline we verify against this executor, which computes the same exact
integer arithmetic for the quantized CIM-relevant ops (Conv/Gemm/ReLU/
pooling/Add) and float math for the remaining ops.  The im2col window
ordering here — ``(channel, kernel_row, kernel_col)`` flattened row-major —
is the layout contract shared with the meta-operator lowering.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

import numpy as np

from ..errors import SimulationError
from ..graph import Graph, Node
from ..graph.ops import _pair


def conv_windows(x: np.ndarray, kernel: tuple, stride: tuple,
                 padding: tuple) -> np.ndarray:
    """im2col: (N*OH*OW, Cin*KH*KW) window matrix in the canonical order."""
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    padded = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    rows = []
    for b in range(n):
        for i in range(oh):
            for j in range(ow):
                patch = padded[b, :, i * sh:i * sh + kh, j * sw:j * sw + kw]
                rows.append(patch.reshape(-1))
    return np.stack(rows)


class ReferenceExecutor:
    """Executes a :class:`Graph` on concrete numpy tensors."""

    def __init__(self, graph: Graph, weights: Dict[str, np.ndarray]) -> None:
        self.graph = graph
        self.weights = dict(weights)

    def run(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Run one inference; returns every tensor produced (by name)."""
        env: Dict[str, np.ndarray] = {}
        for name, value in self.weights.items():
            env[name] = np.asarray(value)
        for name, value in inputs.items():
            env[name] = np.asarray(value)
        for node in self.graph.topological():
            self._execute(node, env)
        missing = [o for o in self.graph.outputs if o not in env]
        if missing:
            raise SimulationError(f"outputs never produced: {missing}")
        return env

    # ------------------------------------------------------------------

    def _execute(self, node: Node, env: Dict[str, np.ndarray]) -> None:
        handler = getattr(self, f"_op_{node.op_type.lower()}", None)
        if handler is None:
            raise SimulationError(
                f"reference executor has no kernel for {node.op_type!r}"
            )
        args = [env[i] for i in node.inputs]
        result = handler(node, *args)
        outs = result if isinstance(result, tuple) else (result,)
        for name, value in zip(node.outputs, outs):
            env[name] = value

    # --- CIM-supported -------------------------------------------------

    def _op_conv(self, node: Node, x, w, bias=None):
        stride = _pair(node.attr("stride", 1), "stride")
        padding = _pair(node.attr("padding", 0), "padding")
        groups = node.attr("groups", 1)
        n, cin = x.shape[0], x.shape[1]
        cout, w_cin, kh, kw = w.shape
        oh = (x.shape[2] + 2 * padding[0] - kh) // stride[0] + 1
        ow = (x.shape[3] + 2 * padding[1] - kw) // stride[1] + 1
        if groups == 1:
            windows = conv_windows(x, (kh, kw), stride, padding)
            out = windows @ w.reshape(cout, -1).T    # (N*OH*OW, Cout)
            out = out.reshape(n, oh, ow, cout).transpose(0, 3, 1, 2)
        else:
            # Grouped / depthwise: run each channel group independently.
            if cin % groups or cout % groups or w_cin * groups != cin:
                raise SimulationError(
                    f"{node.name}: inconsistent grouped conv "
                    f"(cin={cin}, cout={cout}, groups={groups})"
                )
            cin_g, cout_g = cin // groups, cout // groups
            out = np.zeros((n, cout, oh, ow),
                           dtype=np.result_type(x, w))
            for g in range(groups):
                xg = x[:, g * cin_g:(g + 1) * cin_g]
                wg = w[g * cout_g:(g + 1) * cout_g]
                windows = conv_windows(xg, (kh, kw), stride, padding)
                og = windows @ wg.reshape(cout_g, -1).T
                out[:, g * cout_g:(g + 1) * cout_g] = \
                    og.reshape(n, oh, ow, cout_g).transpose(0, 3, 1, 2)
        if bias is not None:
            out = out + bias.reshape(1, -1, 1, 1)
        return out

    def _op_gemm(self, node: Node, x, w, bias=None):
        out = x @ w.T
        if bias is not None:
            out = out + bias
        return out

    # --- digital --------------------------------------------------------

    def _op_relu(self, node: Node, x):
        return np.maximum(x, 0)

    def _op_gelu(self, node: Node, x):
        xf = x.astype(np.float64)
        return 0.5 * xf * (1.0 + np.tanh(
            math.sqrt(2.0 / math.pi) * (xf + 0.044715 * xf ** 3)))

    def _op_sigmoid(self, node: Node, x):
        return 1.0 / (1.0 + np.exp(-x.astype(np.float64)))

    def _op_add(self, node: Node, a, b):
        return a + b

    def _op_mul(self, node: Node, a, b):
        return a * b

    def _op_maxpool(self, node: Node, x):
        return self._pool(node, x, np.max)

    def _op_averagepool(self, node: Node, x):
        return self._pool(node, x, np.mean)

    def _pool(self, node: Node, x, reduce_fn):
        kernel = _pair(node.require_attr("kernel"), "kernel")
        stride = _pair(node.attr("stride", kernel), "stride")
        padding = _pair(node.attr("padding", 0), "padding")
        n, c, h, w = x.shape
        kh, kw = kernel
        sh, sw = stride
        ph, pw = padding
        oh = (h + 2 * ph - kh) // sh + 1
        ow = (w + 2 * pw - kw) // sw + 1
        fill = np.iinfo(np.int64).min if reduce_fn is np.max else 0
        padded = np.full((n, c, h + 2 * ph, w + 2 * pw), fill, dtype=x.dtype)
        padded[:, :, ph:ph + h, pw:pw + w] = x
        out = np.empty((n, c, oh, ow), dtype=x.dtype if reduce_fn is np.max
                       else np.float64)
        for i in range(oh):
            for j in range(ow):
                window = padded[:, :, i * sh:i * sh + kh, j * sw:j * sw + kw]
                out[:, :, i, j] = reduce_fn(window, axis=(2, 3))
        return out

    def _op_globalaveragepool(self, node: Node, x):
        return x.mean(axis=(2, 3), keepdims=True)

    def _op_flatten(self, node: Node, x):
        return x.reshape(x.shape[0], -1)

    def _op_reshape(self, node: Node, x):
        return x.reshape(tuple(node.require_attr("shape")))

    def _op_transpose(self, node: Node, x):
        return x.transpose(tuple(node.require_attr("perm")))

    def _op_matmul(self, node: Node, a, b):
        return a @ b

    def _op_softmax(self, node: Node, x):
        xf = x.astype(np.float64)
        xf = xf - xf.max(axis=-1, keepdims=True)
        e = np.exp(xf)
        return e / e.sum(axis=-1, keepdims=True)

    def _op_layernorm(self, node: Node, x):
        xf = x.astype(np.float64)
        mean = xf.mean(axis=-1, keepdims=True)
        var = xf.var(axis=-1, keepdims=True)
        return (xf - mean) / np.sqrt(var + 1e-5)

    def _op_batchnorm(self, node: Node, x):
        # Folded inference batchnorm: scale/shift absorbed into conv weights
        # in the quantized deployment, so the reference treats it as
        # identity (the scheduler still costs its ALU work).
        return x

    def _op_concat(self, node: Node, *xs):
        return np.concatenate(xs, axis=node.attr("axis", 1))

    def _op_slice(self, node: Node, x):
        axis = node.require_attr("axis")
        start, end = node.require_attr("start"), node.require_attr("end")
        index = [slice(None)] * x.ndim
        index[axis] = slice(start, end)
        return x[tuple(index)]

    def _op_identity(self, node: Node, x):
        return x

    def _op_padtoken(self, node: Node, x):
        tokens = node.require_attr("tokens")
        pad = tokens - x.shape[1]
        return np.pad(x, ((0, 0), (0, pad), (0, 0)))
