"""Simulators: functional (value-exact) and performance (latency/power)."""

from .performance import (
    PerformanceReport,
    PerformanceSimulator,
    SegmentTiming,
    activity_timeline,
)
from .power import PowerModel, PowerReport

__all__ = [
    "PerformanceReport",
    "PerformanceSimulator",
    "PowerModel",
    "PowerReport",
    "SegmentTiming",
    "activity_timeline",
]
