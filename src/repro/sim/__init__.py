"""Simulators: functional (value-exact) and performance (latency/power)."""

from .performance import (
    LinkTransfer,
    MultiChipReport,
    PerformanceReport,
    PerformanceSimulator,
    SegmentTiming,
    activity_timeline,
    pipeline_multichip,
)
from .power import PowerModel, PowerReport

__all__ = [
    "LinkTransfer",
    "MultiChipReport",
    "PerformanceReport",
    "PerformanceSimulator",
    "PowerModel",
    "PowerReport",
    "SegmentTiming",
    "activity_timeline",
    "pipeline_multichip",
]
