"""Power/energy model for CIM schedules.

Four components.  The first three follow the paper's Section 4.2
breakdown for PUMA ("ADC/DAC, XB activation computation, and data
movement ... account for 10%, 83%, and 7%"); the fourth prices the
weight writes that Section 2.1 identifies as the dominant cost of
weight movement on ReRAM/FLASH:

* **Crossbar activation**: energy per crossbar per active cycle; every row
  wave of every MVM on every resident crossbar pays it.
* **ADC/DAC conversion**: per crossbar activation, scaled by converter
  precision (an 8-bit ADC costs ~2x a 4-bit one per conversion; cost grows
  linearly with resolution bits in our model).
* **Data movement**: per bit crossing the global buffer / NoC.
* **Weight reconfiguration**: per weight bit programmed into a crossbar,
  scaled by the cell technology's
  :attr:`~repro.arch.params.CellType.write_cost_ratio` (a FLASH write
  costs ~100x a read).  Multi-segment schedules pay it *per inference*
  (every segment swap reprograms crossbars); single-segment schedules
  program once at deployment — that one-time cost is
  :meth:`PowerModel.weight_write_energy`, which serving charges on
  tenant switches.

*Peak power* is the instantaneous maximum: the number of simultaneously
active crossbars (plus their converters) at the busiest moment.  The
MVM-grained staggered pipeline reduces exactly this quantity
(:meth:`repro.sched.schedule.OpDecision.active_crossbars`).

All energies are in the same arbitrary units as the latency model's
cycles (the paper's plots are normalized); see ``docs/ENERGY.md`` for
the calibration knobs and the assumptions behind each constant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

from ..arch import CIMArchitecture
from ..sched.schedule import OpDecision, Schedule

#: Reference energy of one crossbar active for one cycle (arbitrary units;
#: all reported powers are relative, as in the paper's normalized plots).
E_XB_CYCLE = 1.0
#: Converter energy per crossbar activation per resolution bit.
E_CONVERTER_PER_BIT = 0.015
#: Movement energy per bit through the global buffer + NoC.
E_MOVE_PER_BIT = 0.00015
#: Write energy per weight bit programmed into a crossbar at write cost
#: ratio 1 (SRAM); ReRAM/FLASH/PCM scale it by
#: :attr:`~repro.arch.params.CellType.write_cost_ratio`.
E_WRITE_PER_BIT = 0.0005


@dataclass(frozen=True)
class PowerReport:
    """Peak and average power plus the energy breakdown of one schedule."""

    peak_active_crossbars: int
    peak_power: float            # instantaneous worst case (energy/cycle)
    avg_power: float             # total energy / total cycles
    energy_crossbar: float
    energy_converter: float
    energy_movement: float
    #: Per-inference weight-write energy: zero for single-segment
    #: schedules (weights programmed once, at deployment), the full
    #: segment-swap reprogram cost otherwise.
    energy_reconfiguration: float = 0.0

    @property
    def total_energy(self) -> float:
        """Energy of one inference: all four components summed."""
        return self.energy_crossbar + self.energy_converter + \
            self.energy_movement + self.energy_reconfiguration

    def breakdown(self) -> Dict[str, float]:
        """Fractional energy split (sums to 1)."""
        total = self.total_energy
        if total <= 0:
            return {"crossbar": 0.0, "converter": 0.0, "movement": 0.0,
                    "reconfiguration": 0.0}
        return {
            "crossbar": self.energy_crossbar / total,
            "converter": self.energy_converter / total,
            "movement": self.energy_movement / total,
            "reconfiguration": self.energy_reconfiguration / total,
        }


class PowerModel:
    """Evaluates :class:`PowerReport` for a schedule."""

    def __init__(self, arch: CIMArchitecture) -> None:
        self.arch = arch
        xb = arch.xb
        self._e_conv_per_activation = \
            E_CONVERTER_PER_BIT * (xb.adc_bits + xb.dac_bits)
        self._e_write_per_bit = \
            E_WRITE_PER_BIT * xb.cell_type.write_cost_ratio

    # ------------------------------------------------------------------

    def per_xb_cycle_power(self) -> float:
        """Power of one active crossbar including its converters."""
        return E_XB_CYCLE + self._e_conv_per_activation

    def weight_write_energy(self, schedule: Schedule) -> float:
        """Energy to program *every* segment's weights from scratch.

        The deployment analogue of
        :attr:`~repro.sim.performance.PerformanceReport.weight_load_cycles`:
        what a serving system pays to bring this model's weights onto the
        chip, e.g. on a tenant switch.  Like the reconfiguration latency
        model (:func:`repro.sched.costs.reconfiguration_cycles`), it
        counts each operator's weight footprint once — replica copies are
        a calibration simplification documented in ``docs/ENERGY.md``.
        """
        bits = sum(d.profile.weight_bits
                   for d in schedule.decisions.values() if d.profile.is_cim)
        return bits * self._e_write_per_bit

    def evaluate(self, schedule: Schedule, total_cycles: float) -> PowerReport:
        """Compute peak/average power for a scheduled inference taking
        ``total_cycles`` (from the performance simulator).

        The per-decision accumulation deliberately stays scalar on both
        paths: one pass over a few dozen operators is cheaper than
        building numpy columns for it (the same call the ``repro bench``
        ``power`` workload times — energy reporting is a rounding error
        next to the latency simulation; see docs/ENERGY.md).
        """
        peak_xbs = self.peak_active_crossbars(schedule)
        e_xb = e_conv = e_move = 0.0
        for d in schedule.decisions.values():
            p = d.profile
            if p.is_cim and p.num_mvms > 0:
                waves = math.ceil(p.row_waves / max(1, d.wave_reduction))
                activations = p.num_mvms * p.input_passes * waves * p.n_xb
                e_xb += activations * E_XB_CYCLE
                e_conv += activations * self._e_conv_per_activation
            e_move += (p.in_bits + p.out_bits) * E_MOVE_PER_BIT
        # Multi-segment schedules reprogram every segment's crossbars on
        # every inference (the latency model's reconfiguration stall);
        # single-segment weights are written once, at deployment.
        e_reconf = 0.0
        if len(schedule.segments) > 1:
            e_reconf = self.weight_write_energy(schedule)
        peak_power = peak_xbs * self.per_xb_cycle_power()
        avg = (e_xb + e_conv + e_move + e_reconf) / max(1.0, total_cycles)
        return PowerReport(
            peak_active_crossbars=peak_xbs,
            peak_power=peak_power,
            avg_power=avg,
            energy_crossbar=e_xb,
            energy_converter=e_conv,
            energy_movement=e_move,
            energy_reconfiguration=e_reconf,
        )

    def peak_active_crossbars(self, schedule: Schedule) -> int:
        """Most crossbars simultaneously active at any time.

        In a pipelined segment every operator computes concurrently, so
        actives sum across the segment; without the inter-operator pipeline
        only one operator runs at a time.
        """
        peak = 0
        for seg in range(len(schedule.segments)):
            decisions = schedule.segment_decisions(seg)
            if schedule.pipelined:
                active = sum(d.active_crossbars() for d in decisions)
            else:
                active = max((d.active_crossbars() for d in decisions),
                             default=0)
            peak = max(peak, active)
        return peak
