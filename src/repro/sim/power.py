"""Power/energy model for CIM schedules.

Three components, following the paper's Section 4.2 breakdown for PUMA
("ADC/DAC, XB activation computation, and data movement ... account for 10%,
83%, and 7%"):

* **Crossbar activation**: energy per crossbar per active cycle; every row
  wave of every MVM on every resident crossbar pays it.
* **ADC/DAC conversion**: per crossbar activation, scaled by converter
  precision (an 8-bit ADC costs ~2x a 4-bit one per conversion; cost grows
  linearly with resolution bits in our model).
* **Data movement**: per bit crossing the global buffer / NoC.

*Peak power* is the instantaneous maximum: the number of simultaneously
active crossbars (plus their converters) at the busiest moment.  The
MVM-grained staggered pipeline reduces exactly this quantity
(:meth:`repro.sched.schedule.OpDecision.active_crossbars`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

from ..arch import CIMArchitecture
from ..sched.schedule import OpDecision, Schedule

#: Reference energy of one crossbar active for one cycle (arbitrary units;
#: all reported powers are relative, as in the paper's normalized plots).
E_XB_CYCLE = 1.0
#: Converter energy per crossbar activation per resolution bit.
E_CONVERTER_PER_BIT = 0.015
#: Movement energy per bit through the global buffer + NoC.
E_MOVE_PER_BIT = 0.00015


@dataclass(frozen=True)
class PowerReport:
    """Peak and average power plus the energy breakdown of one schedule."""

    peak_active_crossbars: int
    peak_power: float            # instantaneous worst case (energy/cycle)
    avg_power: float             # total energy / total cycles
    energy_crossbar: float
    energy_converter: float
    energy_movement: float

    @property
    def total_energy(self) -> float:
        return self.energy_crossbar + self.energy_converter + \
            self.energy_movement

    def breakdown(self) -> Dict[str, float]:
        """Fractional energy split (sums to 1)."""
        total = self.total_energy
        if total <= 0:
            return {"crossbar": 0.0, "converter": 0.0, "movement": 0.0}
        return {
            "crossbar": self.energy_crossbar / total,
            "converter": self.energy_converter / total,
            "movement": self.energy_movement / total,
        }


class PowerModel:
    """Evaluates :class:`PowerReport` for a schedule."""

    def __init__(self, arch: CIMArchitecture) -> None:
        self.arch = arch
        xb = arch.xb
        self._e_conv_per_activation = \
            E_CONVERTER_PER_BIT * (xb.adc_bits + xb.dac_bits)

    # ------------------------------------------------------------------

    def per_xb_cycle_power(self) -> float:
        """Power of one active crossbar including its converters."""
        return E_XB_CYCLE + self._e_conv_per_activation

    def evaluate(self, schedule: Schedule, total_cycles: float) -> PowerReport:
        """Compute peak/average power for a scheduled inference taking
        ``total_cycles`` (from the performance simulator)."""
        peak_xbs = self.peak_active_crossbars(schedule)
        e_xb = e_conv = e_move = 0.0
        for d in schedule.decisions.values():
            p = d.profile
            if p.is_cim and p.num_mvms > 0:
                waves = math.ceil(p.row_waves / max(1, d.wave_reduction))
                activations = p.num_mvms * p.input_passes * waves * p.n_xb
                e_xb += activations * E_XB_CYCLE
                e_conv += activations * self._e_conv_per_activation
            e_move += (p.in_bits + p.out_bits) * E_MOVE_PER_BIT
        peak_power = peak_xbs * self.per_xb_cycle_power()
        avg = (e_xb + e_conv + e_move) / max(1.0, total_cycles)
        return PowerReport(
            peak_active_crossbars=peak_xbs,
            peak_power=peak_power,
            avg_power=avg,
            energy_crossbar=e_xb,
            energy_converter=e_conv,
            energy_movement=e_move,
        )

    def peak_active_crossbars(self, schedule: Schedule) -> int:
        """Most crossbars simultaneously active at any time.

        In a pipelined segment every operator computes concurrently, so
        actives sum across the segment; without the inter-operator pipeline
        only one operator runs at a time.
        """
        peak = 0
        for seg in range(len(schedule.segments)):
            decisions = schedule.segment_decisions(seg)
            if schedule.pipelined:
                active = sum(d.active_crossbars() for d in decisions)
            else:
                active = max((d.active_crossbars() for d in decisions),
                             default=0)
            peak = max(peak, active)
        return peak
