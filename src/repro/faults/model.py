"""Fault models: dead cores, crossbar defects, drift, link derating,
and mid-trace chip death.

A :class:`FaultModel` is a frozen, canonical description of everything
that is wrong with the hardware.  It is *declarative*: planners consume
it to mask resources at plan time (:mod:`repro.faults.degrade`), the
fleet engine consumes it to inject drift rewrites and a chip-death
event at run time, and reports embed ``to_dict()`` so every degraded
result names the fault that produced it.

The house invariant extends here: a zero fault model (``is_zero()``)
must leave every code path bit-identical to the fault-free build —
callers gate on it and fall through to the original code verbatim.

Example
-------
>>> from repro.arch import functional_testbed
>>> f = FaultModel(dead_cores=(3, 7))
>>> f.surviving_cores(functional_testbed())[:4]
(0, 1, 2, 4)
>>> f.degrade_arch(functional_testbed()).chip.core_number
30
>>> FaultModel().is_zero()
True
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from ..arch import ChipLink, CIMArchitecture
from ..errors import CapacityError, CIMError


@dataclass(frozen=True)
class FaultModel:
    """Canonical description of injected hardware faults.

    Parameters
    ----------
    dead_cores:
        Physical core ids (die coordinates) that are entirely dead.
    dead_crossbars:
        ``(core, crossbar)`` pairs with a defective crossbar region.  A
        core whose every crossbar is dead counts as a dead core; partial
        losses shrink the *uniform* per-core crossbar budget the
        compiler may use (conservative: bounded by the worst survivor).
    drift_interval:
        Cycles between drift-forced full weight rewrites, or ``None``
        for no drift.  Each rewrite stalls the executor for its resident
        tenant's deploy cycles and pays the deploy (write) energy.
    link_derate:
        Multiplier in ``(0, 1]`` on inter-chip / front-end link
        bandwidth (1.0 = healthy link).
    chip_death_time:
        Cycle at which one fleet replica dies mid-trace, or ``None``.
    chip_death_rid:
        Which replica dies (only meaningful with ``chip_death_time``).
    """

    dead_cores: Tuple[int, ...] = ()
    dead_crossbars: Tuple[Tuple[int, int], ...] = ()
    drift_interval: Optional[float] = None
    link_derate: float = 1.0
    chip_death_time: Optional[float] = None
    chip_death_rid: int = 0

    def __post_init__(self) -> None:
        """Normalise to sorted unique tuples and validate every field."""
        cores = tuple(sorted({int(c) for c in self.dead_cores}))
        if cores and cores[0] < 0:
            raise CIMError(f"dead core ids must be >= 0, got {cores[0]}")
        xbs = tuple(sorted({(int(c), int(x)) for c, x in self.dead_crossbars}))
        if xbs and (xbs[0][0] < 0 or min(x for _, x in xbs) < 0):
            raise CIMError(f"dead crossbar ids must be >= 0, got {xbs}")
        object.__setattr__(self, "dead_cores", cores)
        object.__setattr__(self, "dead_crossbars", xbs)
        if self.drift_interval is not None and self.drift_interval <= 0:
            raise CIMError(
                f"drift_interval must be > 0 cycles, got "
                f"{self.drift_interval}")
        if not 0.0 < self.link_derate <= 1.0:
            raise CIMError(
                f"link_derate must be in (0, 1], got {self.link_derate}")
        if self.chip_death_time is not None and self.chip_death_time < 0:
            raise CIMError(
                f"chip_death_time must be >= 0, got {self.chip_death_time}")
        if self.chip_death_rid < 0:
            raise CIMError(
                f"chip_death_rid must be >= 0, got {self.chip_death_rid}")

    # -- predicates ----------------------------------------------------

    def is_zero(self) -> bool:
        """True when no fault is injected at all (bit-identity gate)."""
        return (not self.dead_cores and not self.dead_crossbars
                and self.drift_interval is None
                and self.link_derate == 1.0
                and self.chip_death_time is None)

    def masks_cores(self) -> bool:
        """True when the model removes plan-time compute resources."""
        return bool(self.dead_cores or self.dead_crossbars)

    # -- plan-time masking ---------------------------------------------

    def _dead_xb_counts(self) -> Dict[int, int]:
        """Dead crossbars per core (only cores with at least one)."""
        counts: Dict[int, int] = {}
        for core, _ in self.dead_crossbars:
            counts[core] = counts.get(core, 0) + 1
        return counts

    def surviving_cores(self, arch: CIMArchitecture) -> Tuple[int, ...]:
        """Physical ids of cores still usable on ``arch``'s die.

        A core survives unless it is listed dead or has lost *every*
        crossbar.  Ids at or beyond the die size are ignored (a mask
        generated for a larger die degrades a smaller one gracefully).
        """
        n = arch.chip.core_number
        dead = set(self.dead_cores)
        per_core = self._dead_xb_counts()
        xb_total = arch.core.xb_number
        return tuple(c for c in range(n)
                     if c not in dead and per_core.get(c, 0) < xb_total)

    def usable_xb_number(self, arch: CIMArchitecture) -> int:
        """Uniform per-core crossbar budget over the surviving cores.

        Conservative: the compiler sees every surviving core as having
        the *worst* survivor's crossbar count, so a plan that fits the
        degraded arch fits every physical core it may land on.
        """
        survivors = self.surviving_cores(arch)
        per_core = self._dead_xb_counts()
        worst = max((per_core.get(c, 0) for c in survivors), default=0)
        return arch.core.xb_number - worst

    def degrade_arch(self, arch: CIMArchitecture) -> CIMArchitecture:
        """The architecture the compiler may actually use.

        Shrinks the core count to the survivors and, if crossbar
        regions died, the uniform per-core crossbar budget.  Raises
        :class:`~repro.errors.CapacityError` (carrying the mask) when
        nothing survives.
        """
        survivors = self.surviving_cores(arch)
        if not survivors:
            raise CapacityError(
                f"fault model leaves no usable cores on {arch.name} "
                f"[{self.mask_note(arch)}]")
        out = arch.with_cores(len(survivors))
        xb = self.usable_xb_number(arch)
        if xb < arch.core.xb_number:
            out = out.with_xb_number(xb)
        return out

    def degrade_link(self, link: ChipLink) -> ChipLink:
        """``link`` with its bandwidth derated by :attr:`link_derate`."""
        if self.link_derate == 1.0:
            return link
        return replace(link,
                       bandwidth_bits=link.bandwidth_bits * self.link_derate)

    def mask_note(self, arch: Optional[CIMArchitecture] = None) -> str:
        """Short diagnostic naming the resource mask, for error text."""
        parts = []
        if self.dead_cores:
            parts.append(f"dead_cores={list(self.dead_cores)}")
        if self.dead_crossbars:
            parts.append(
                f"dead_xbs={[list(p) for p in self.dead_crossbars]}")
        if self.link_derate != 1.0:
            parts.append(f"link_derate={self.link_derate}")
        if arch is not None:
            n = arch.chip.core_number
            parts.append(
                f"survivors={len(self.surviving_cores(arch))}/{n}")
        return ", ".join(parts) if parts else "no resource mask"

    # -- canonical export ----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able canonical form (embedded in degraded reports)."""
        return {
            "dead_cores": list(self.dead_cores),
            "dead_crossbars": [list(p) for p in self.dead_crossbars],
            "drift_interval": self.drift_interval,
            "link_derate": self.link_derate,
            "chip_death_time": self.chip_death_time,
            "chip_death_rid": self.chip_death_rid,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultModel":
        """Inverse of :meth:`to_dict`."""
        return cls(
            dead_cores=tuple(data.get("dead_cores", ())),
            dead_crossbars=tuple(
                tuple(p) for p in data.get("dead_crossbars", ())),
            drift_interval=data.get("drift_interval"),
            link_derate=data.get("link_derate", 1.0),
            chip_death_time=data.get("chip_death_time"),
            chip_death_rid=data.get("chip_death_rid", 0),
        )

    def describe(self) -> str:
        """One-line human description, e.g. for report tables."""
        if self.is_zero():
            return "no faults"
        parts = []
        if self.dead_cores:
            parts.append(f"{len(self.dead_cores)} dead cores")
        if self.dead_crossbars:
            parts.append(f"{len(self.dead_crossbars)} dead crossbars")
        if self.drift_interval is not None:
            parts.append(f"drift every {self.drift_interval:,.0f} cyc")
        if self.link_derate != 1.0:
            parts.append(f"link x{self.link_derate:g}")
        if self.chip_death_time is not None:
            parts.append(
                f"replica {self.chip_death_rid} dies at "
                f"{self.chip_death_time:,.0f} cyc")
        return ", ".join(parts)


def spread_mask(core_number: int, dead: int) -> Tuple[int, ...]:
    """``dead`` core ids spread evenly across a ``core_number``-core die.

    Deterministic and strictly increasing for ``dead <= core_number``;
    the standard mask for degradation sweeps (kills are spaced out, the
    hardest case for contiguous region placement).

    >>> spread_mask(16, 4)
    (0, 4, 8, 12)
    """
    if dead < 0 or dead > core_number:
        raise CIMError(
            f"cannot kill {dead} of {core_number} cores")
    return tuple(i * core_number // dead for i in range(dead))
