"""Degradation sweeps: serving quality as a function of dead silicon.

The headline fault experiment: kill ``d`` cores (evenly spread — the
hardest case for contiguous region placement), rebuild the serving plan
on the surviving hardware, and replay the *same* seeded request trace.
Throughput, tail latency, and SLO attainment then degrade for exactly
one reason: less silicon.

Compilations ride the explore cache (:func:`repro.serve.sweep.build_plans`
on each degraded architecture), so repeated sweeps and overlapping dead
counts are essentially free on a warm cache.  Every point is
deterministic; :func:`sweep_digest` hashes the canonical rows and is the
currency of the EXPERIMENTS.md pin.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..arch import CIMArchitecture
from ..errors import CapacityError
from ..explore import SweepRunner
from ..sched import CompilerOptions
from ..serve.engine import BatchPolicy, simulate
from ..serve.report import ServeReport
from ..serve.sweep import build_plans
from ..serve.workload import TenantSpec, make_trace
from .model import FaultModel, spread_mask


@dataclass(frozen=True)
class DegradationPoint:
    """One cell of a degradation sweep: a dead-core count and what the
    surviving hardware could still serve (``report`` is ``None`` when
    the masked chip could no longer fit the tenants)."""

    dead: int
    fault: FaultModel
    report: Optional[ServeReport]
    error: Optional[str] = None

    @property
    def feasible(self) -> bool:
        """True when the degraded chip still served the trace."""
        return self.report is not None

    def row(self) -> Dict:
        """Canonical JSON-able row (the digest currency)."""
        out: Dict = {"dead": self.dead, "feasible": self.feasible}
        if self.report is not None:
            out.update({
                "completed": self.report.completed,
                "rejected": self.report.rejected,
                "p50": self.report.p50,
                "p99": self.report.p99,
                "slo_attainment": self.report.slo_attainment,
            })
        else:
            out["error"] = self.error
        return out


def degradation_sweep(arch: CIMArchitecture, specs: Sequence[TenantSpec],
                      dead_counts: Sequence[int],
                      rate: float,
                      mode: str = "spatial",
                      num_requests: int = 400,
                      seed: int = 0,
                      trace_kind: str = "poisson",
                      policy: Optional[BatchPolicy] = None,
                      slo_factor: float = 10.0,
                      max_queue: Optional[int] = None,
                      options: Optional[CompilerOptions] = None,
                      runner: Optional[SweepRunner] = None
                      ) -> List[DegradationPoint]:
    """Serve the same seeded trace on progressively more dead cores.

    For each count in ``dead_counts`` a :func:`~repro.faults.model.
    spread_mask` kills that many evenly-spaced cores; the plan is
    rebuilt on the surviving core count through the explore cache
    (every degraded architecture is a distinct cached point) and the
    shared trace is replayed.  Counts the masked chip cannot serve
    yield an infeasible point carrying the planner's capacity error.

    Each dead-core count is a one-axis architecture mutation, so with
    the fast path on the rebuilds route through the runner's shared
    :class:`~repro.perf.IncrementalCompiler`: unchanged segments splice
    their recorded duplication searches instead of re-optimizing (see
    ``docs/PERFORMANCE.md``), bit-identically to a cold rebuild.
    """
    runner = runner or SweepRunner()
    trace = make_trace(trace_kind, specs, rate, num_requests, seed=seed)
    die = arch.chip.core_number
    points: List[DegradationPoint] = []
    for dead in dead_counts:
        fault = FaultModel(dead_cores=spread_mask(die, dead))
        try:
            degraded = fault.degrade_arch(arch)
            plan = build_plans(degraded, specs, modes=(mode,),
                               options=options, runner=runner)[mode]
        except CapacityError as exc:
            points.append(DegradationPoint(
                dead=dead, fault=fault, report=None,
                error=f"{exc} [{fault.mask_note(arch)}]"))
            continue
        report = simulate(plan, trace, policy=policy, max_queue=max_queue,
                          slo_factor=slo_factor)
        points.append(DegradationPoint(dead=dead, fault=fault,
                                       report=report))
    return points


def sweep_rows(points: Sequence[DegradationPoint]) -> List[Dict]:
    """Canonical rows of a sweep, in dead-count order as run."""
    return [p.row() for p in points]


def sweep_digest(points: Sequence[DegradationPoint]) -> str:
    """SHA-256 over the canonical rows — the EXPERIMENTS.md pin."""
    payload = json.dumps(sweep_rows(points), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def sweep_table(points: Sequence[DegradationPoint]) -> str:
    """Readable degradation table (one row per dead-core count)."""
    lines = [f"  {'dead':>5} {'done':>7} {'rej':>6} {'p50':>11} "
             f"{'p99':>12} {'SLO':>7}"]
    for p in points:
        if p.report is None:
            lines.append(f"  {p.dead:>5} {'— infeasible:':<14} {p.error}")
            continue
        r = p.report
        lines.append(
            f"  {p.dead:>5} {r.completed:>7,} {r.rejected:>6,} "
            f"{r.p50:>11,.0f} {r.p99:>12,.0f} {r.slo_attainment:>6.1%}")
    return "\n".join(lines)
