"""Fault injection and degraded-hardware planning for CIM systems.

Real analog CIM silicon fails in characteristic ways: whole cores and
crossbar regions arrive dead or die in the field, conductance drift
slowly corrupts programmed weights until they are rewritten, inter-chip
links degrade, and an entire accelerator can drop out of a serving
fleet mid-trace.  This package makes every one of those failure modes a
first-class, *deterministic* input to the stack:

* :class:`~repro.faults.model.FaultModel` — the frozen, canonical fault
  description; :func:`~repro.faults.model.spread_mask` builds the
  standard evenly-spread kill masks.
* :func:`~repro.faults.degrade.plan_degraded` — serving plans compiled
  on the degraded architecture and placed onto the physical surviving
  cores (multi-chip pipelines degrade through
  :func:`repro.scale.shard`'s ``faults=`` parameter).
* :func:`~repro.faults.sweep.degradation_sweep` — throughput/SLO versus
  dead-core count on a shared seeded trace, compilations riding the
  explore cache.
* Run-time injection lives in :class:`repro.fleet.engine.FleetEngine`
  (``fault=``): drift-forced weight rewrites priced by the write-energy
  model, and a mid-trace chip death with re-routing, recovery, and an
  availability ledger on the :class:`~repro.fleet.report.FleetReport`.

The house invariant extends to faults: a zero
:class:`~repro.faults.model.FaultModel` leaves every path bit-identical
to the fault-free build, and every degraded run is seed-deterministic
(``tests/test_faults.py`` fuzzes random masks against both properties).
"""

from .degrade import plan_degraded
from .model import FaultModel, spread_mask
from .sweep import (
    DegradationPoint,
    degradation_sweep,
    sweep_digest,
    sweep_rows,
    sweep_table,
)

__all__ = [
    "FaultModel",
    "spread_mask",
    "plan_degraded",
    "DegradationPoint",
    "degradation_sweep",
    "sweep_digest",
    "sweep_rows",
    "sweep_table",
]
