"""Degraded-hardware planning: route serving plans around dead silicon.

:func:`plan_degraded` is the fault-aware twin of
:func:`repro.serve.partition.make_plan`.  It compiles against the
*degraded* architecture (surviving core count, reduced uniform crossbar
budget) and places the result onto the *physical* surviving core ids, so
no operation ever lands on a masked resource.  A zero fault model falls
through to ``make_plan`` verbatim — the resulting plan is bit-identical
to the fault-free build.

Multi-chip pipelines degrade through :func:`repro.scale.shard`'s
``faults=`` parameter instead (per-chip masks, link derating); this
module covers the single-chip serving modes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..arch import CIMArchitecture
from ..errors import CapacityError, ScheduleError
from ..sched import CompilerOptions
from ..serve.partition import ServingPlan, make_plan
from ..serve.workload import TenantSpec
from .model import FaultModel


def plan_degraded(arch: CIMArchitecture, specs: Sequence[TenantSpec],
                  fault: Optional[FaultModel],
                  mode: str = "spatial",
                  options: Optional[CompilerOptions] = None,
                  **kwargs) -> ServingPlan:
    """A serving plan that routes around ``fault``'s resource mask.

    Compiles on ``fault.degrade_arch(arch)`` and hands the planner the
    physical survivor ids (``core_pool``) plus the true die size
    (``die_cores``), so placements stay on live silicon while NoC
    distances reflect real die coordinates.  ``kwargs`` reach the
    underlying planner (e.g. ``blocks=`` / ``power_budget=``).

    With ``fault`` ``None`` or zero this *is* ``make_plan`` — same
    arguments, bit-identical plan.  A :class:`~repro.errors.CapacityError`
    raised by degraded planning is re-raised with the offending resource
    mask appended, so infeasibility names the faults that caused it.
    """
    if fault is None or fault.is_zero():
        return make_plan(mode, arch, specs, options, **kwargs)
    if mode == "sharded":
        raise ScheduleError(
            "mode 'sharded' degrades through repro.scale.shard(faults=...) "
            "with per-chip fault masks; plan_degraded covers the "
            "single-chip serving modes")
    degraded = fault.degrade_arch(arch)
    pool = fault.surviving_cores(arch)
    try:
        return make_plan(mode, degraded, specs, options,
                         core_pool=pool,
                         die_cores=arch.chip.core_number, **kwargs)
    except CapacityError as exc:
        raise CapacityError(
            f"{exc} [{fault.mask_note(arch)}]") from exc
