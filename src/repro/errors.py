"""Exception hierarchy for the CIM-MLC reproduction.

Every error raised by the library derives from :class:`CIMError` so callers
can catch library failures without masking programming mistakes.
"""

from __future__ import annotations


class CIMError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(CIMError):
    """Malformed computation graph (dangling edges, cycles, bad shapes)."""


class ShapeError(GraphError):
    """Shape inference failed or shapes are inconsistent."""


class UnknownOpError(GraphError):
    """An operator type is not present in the op registry."""


class ArchitectureError(CIMError):
    """Invalid hardware-abstraction parameters (Abs-arch)."""


class ModeError(ArchitectureError):
    """Operation not available in the architecture's computing mode."""


class ScheduleError(CIMError):
    """The scheduler could not produce a valid mapping."""


class CapacityError(ScheduleError):
    """A single operator does not fit on the CIM even without duplication."""


class CodegenError(CIMError):
    """Meta-operator flow generation or parsing failed."""


class SimulationError(CIMError):
    """The functional or performance simulator hit an invalid state."""


class AllocationError(SimulationError):
    """Crossbar or buffer allocation failed (out of resources)."""
