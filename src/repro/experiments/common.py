"""Shared infrastructure for the paper-reproduction experiment drivers.

Each driver returns :class:`ExperimentResult`: named rows of measured values
together with the paper's reported values where the paper gives them, so the
benchmark harness can print side-by-side tables and EXPERIMENTS.md can be
regenerated mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class Row:
    """One table/series row: a label plus measured (and paper) values."""

    label: str
    measured: float
    paper: Optional[float] = None
    unit: str = "x"

    def formatted(self) -> str:
        paper = f"{self.paper:g}{self.unit}" if self.paper is not None else "-"
        return f"{self.label:<38} measured={self.measured:8.2f}{self.unit} paper={paper}"


@dataclass
class ExperimentResult:
    """A complete experiment: id, description, and its rows."""

    experiment_id: str
    description: str
    rows: List[Row] = field(default_factory=list)
    notes: str = ""

    def add(self, label: str, measured: float,
            paper: Optional[float] = None, unit: str = "x") -> None:
        self.rows.append(Row(label, measured, paper, unit))

    def row(self, label: str) -> Row:
        for r in self.rows:
            if r.label == label:
                return r
        raise KeyError(f"no row {label!r} in {self.experiment_id}")

    def table(self) -> str:
        lines = [f"== {self.experiment_id}: {self.description} =="]
        lines += [r.formatted() for r in self.rows]
        if self.notes:
            lines.append(f"   note: {self.notes}")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, float]:
        return {r.label: r.measured for r in self.rows}
