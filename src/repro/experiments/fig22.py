"""Fig. 22: sensitivity of CIM-MLC to CIM architecture parameters (ViT).

The baseline is Table 3 with a 128x256 crossbar (Section 4.4).  Four sweeps:
(a) core number 256..1024, (b) crossbars per core 8..20, (c) crossbar shape
64x512..512x64, (d) parallel rows 64..8.  Each point reports the speedup of
CG / CG+MVM / CG+MVM+VVM over the un-optimized schedule on that same
architecture.

Each driver is a thin declaration over :mod:`repro.explore`: the point set
becomes a :class:`~repro.explore.SweepSpace` and a
:class:`~repro.explore.SweepRunner` executes it — pass ``runner=`` to share
a result cache or fan points out over worker processes; the default serial
runner reproduces the original single-process behaviour bit-for-bit.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from ..arch import CIMArchitecture, isaac_baseline
from ..explore import SweepRunner, SweepSpace, speedup_result
from ..graph import Graph
from ..models import vit_base
from .common import ExperimentResult

CORE_SWEEP = (256, 512, 768, 1024)
XB_SWEEP = (8, 12, 16, 20)
SIZE_SWEEP = ((64, 512), (128, 256), (256, 128), (512, 64))
PARALLEL_SWEEP = (64, 32, 16, 8)


def sensitivity_base_arch() -> CIMArchitecture:
    """Table 3 baseline with the Section 4.4 crossbar size (128x256)."""
    return isaac_baseline().with_xb_size((128, 256))


def _sweep(experiment_id: str, description: str, graph: Graph,
           points: Iterable[Tuple[str, CIMArchitecture]],
           runner: Optional[SweepRunner] = None) -> ExperimentResult:
    space = SweepSpace.from_arch_points(points, graph)
    sweep = (runner or SweepRunner()).run(space)
    return speedup_result(sweep, experiment_id, description)


def fig22a_cores(core_numbers: Sequence[int] = CORE_SWEEP,
                 graph: Graph = None,
                 runner: Optional[SweepRunner] = None) -> ExperimentResult:
    """Core-count sweep (paper: CG speedup grows ~15x -> ~30x)."""
    graph = graph or vit_base()
    base = sensitivity_base_arch()
    return _sweep(
        "Fig22a", f"core-number sweep ({graph.name})", graph,
        ((f"cores={n}", base.with_cores(n)) for n in core_numbers), runner)


def fig22b_xb_number(xb_numbers: Sequence[int] = XB_SWEEP,
                     graph: Graph = None,
                     runner: Optional[SweepRunner] = None) -> ExperimentResult:
    """Crossbars-per-core sweep (paper: speedup grows with crossbars)."""
    graph = graph or vit_base()
    base = sensitivity_base_arch()
    return _sweep(
        "Fig22b", f"crossbar-number sweep ({graph.name})", graph,
        ((f"xbs={n}", base.with_xb_number(n)) for n in xb_numbers), runner)


def fig22c_xb_size(sizes: Sequence[Tuple[int, int]] = SIZE_SWEEP,
                   graph: Graph = None,
                   runner: Optional[SweepRunner] = None) -> ExperimentResult:
    """Crossbar-shape sweep at constant cell count (paper: speedup grows
    until rows exceed the dominant matrix height, then drops)."""
    graph = graph or vit_base()
    base = sensitivity_base_arch()
    return _sweep(
        "Fig22c", f"crossbar-size sweep ({graph.name})", graph,
        ((f"{r}x{c}", base.with_xb_size((r, c))) for r, c in sizes), runner)


def fig22d_parallel_row(rows: Sequence[int] = PARALLEL_SWEEP,
                        graph: Graph = None,
                        runner: Optional[SweepRunner] = None) -> ExperimentResult:
    """Parallel-row sweep (paper: at 8 parallel rows the VVM remap recovers
    ~20% over MVM scheduling)."""
    graph = graph or vit_base()
    base = sensitivity_base_arch()
    return _sweep(
        "Fig22d", f"parallel-row sweep ({graph.name})", graph,
        ((f"pr={n}", base.with_parallel_row(n)) for n in rows), runner)
