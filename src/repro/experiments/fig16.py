"""Fig. 16: generated meta-operator code for the Conv-ReLU walkthrough.

Compiles the Section 3.4 example (Conv 3->32, 3x3, stride 1, padding 1 on a
32x32 input + ReLU) onto the Table 2 toy architecture, once per computing
mode, and renders each flow in the paper's BNF syntax.
"""

from __future__ import annotations

from typing import Dict

from ..arch import ComputingMode, table2_example
from ..models import conv_relu_example
from ..mops import FlowValidator, emit
from ..quant import random_weights
from ..sched import CIMMLC
from ..sched.lowering import lower_to_flow
from .common import ExperimentResult


def fig16_codegen(max_lines: int = 24) -> Dict[str, str]:
    """Generated code per mode ("CM"/"XBM"/"WLM"), truncated for display."""
    graph = conv_relu_example()
    weights = random_weights(graph, seed=0)
    listings: Dict[str, str] = {}
    for mode in ComputingMode:
        arch = table2_example(mode)
        schedule = CIMMLC(arch).schedule(graph)
        program = lower_to_flow(schedule, weights)
        FlowValidator(arch).validate(program.flow)
        text = emit(program.flow)
        lines = text.splitlines()
        if len(lines) > max_lines:
            lines = lines[:max_lines] + [
                f"... ({len(text.splitlines()) - max_lines} more lines)"]
        listings[mode.value] = "\n".join(lines)
    return listings


def fig16_stats() -> ExperimentResult:
    """Flow-size statistics per mode (the paper notes 256 XBM blocks /
    512 WLM blocks for the full convolution)."""
    graph = conv_relu_example()
    weights = random_weights(graph, seed=0)
    result = ExperimentResult(
        "Fig16", "meta-operator flow sizes for Conv-ReLU on Table 2 arch")
    for mode in ComputingMode:
        arch = table2_example(mode)
        schedule = CIMMLC(arch).schedule(graph)
        program = lower_to_flow(schedule, weights)
        stats = program.flow.stats()
        result.add(f"{mode.value} flow statements", stats["steps"], unit="")
        result.add(f"{mode.value} cim activations",
                   sum(v for k, v in stats.items()
                       if k.startswith("cim.read")), unit="")
    return result
