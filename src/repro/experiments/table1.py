"""Table 1: generality comparison — this implementation's capability row.

The paper's Table 1 contrasts compilers by supported device types,
programming interfaces, and optimization granularity.  This driver verifies
the claims hold for the implementation (each cell is backed by an executable
check, not just a string).
"""

from __future__ import annotations

from typing import Optional

from ..arch import (
    CellType,
    ComputingMode,
    isaac_baseline,
    jain2021,
    jia2021,
    puma,
)
from ..explore import SweepRunner, SweepSpace
from ..models import mlp
from ..sched import capability_matrix
from .common import ExperimentResult

#: The paper's Table 1 rows for prior work (True = supported).
PRIOR_WORK = {
    "PUMA [2,4]":            {"SRAM": False, "ReRAM": True, "MISC": False,
                              "VVM": False, "MVM": True, "DNN-ops": False},
    "IMDP [19]":             {"SRAM": False, "ReRAM": True, "MISC": False,
                              "VVM": True, "MVM": True, "DNN-ops": False},
    "TC-CIM [17]":           {"SRAM": False, "ReRAM": True, "MISC": False,
                              "VVM": False, "MVM": True, "DNN-ops": False},
    "Polyhedral-based [22]": {"SRAM": False, "ReRAM": True, "MISC": False,
                              "VVM": False, "MVM": True, "DNN-ops": True},
    "OCC [40]":              {"SRAM": True, "ReRAM": True, "MISC": False,
                              "VVM": True, "MVM": True, "DNN-ops": False},
}


def table1(runner: Optional[SweepRunner] = None) -> ExperimentResult:
    """Execute one compilation per claimed capability and report coverage.

    The capability checks are explicit points of a
    :class:`~repro.explore.SweepSpace`; pass ``runner=`` to share a result
    cache / worker pool with the other drivers.
    """
    result = ExperimentResult(
        "Table1", "generality: devices, interfaces, optimization granularity")
    graph = mlp()

    # Device types: compile on a preset of each cell technology.
    device_archs = {
        "SRAM": jia2021(),
        "ReRAM": isaac_baseline(),
        "MISC (FLASH)": _flash_variant(),
    }
    # Programming interfaces: one compilation per computing mode.
    mode_archs = {
        ComputingMode.CM: jia2021(),
        ComputingMode.XBM: puma(),
        ComputingMode.WLM: jain2021(),
    }
    space = SweepSpace()
    for label, arch in device_archs.items():
        space.add_point(f"device {label}", arch, graph)
    for mode, arch in mode_archs.items():
        space.add_point(f"interface {mode.value}", arch, graph)
    sweep = (runner or SweepRunner()).run(space)   # raises on failure

    by_label = sweep.by_label()
    for label in device_archs:
        assert by_label[f"device {label}"]["CIM-MLC"].total_cycles > 0
        result.add(f"device {label} supported", 1.0, 1.0, unit="")
    for mode in mode_archs:
        summary = by_label[f"interface {mode.value}"]["CIM-MLC"].summary
        levels = summary["schedule_levels"]
        assert levels[: len(mode.optimization_levels)]
        result.add(f"interface {mode.value} supported", 1.0, 1.0, unit="")

    caps = capability_matrix()
    result.add("optimization granularities",
               len(caps["optimization_granularity"]), 3, unit="")
    result.notes = ("prior-work rows available in "
                    "repro.experiments.table1.PRIOR_WORK")
    return result


def _flash_variant():
    from dataclasses import replace

    arch = isaac_baseline()
    return replace(arch, name="flash-variant",
                   xb=replace(arch.xb, cell_type=CellType.FLASH))
