"""Fig. 21: multi-level scheduling analysis on the ResNet series.

(a) CG-grained techniques in isolation (pipeline / duplication / both);
(b) MVM-grained duplication on top of CG-P&D;
(c) VVM-grained remap on top of (b);
(d) normalized peak power across levels.

All speedups are normalized exactly as the paper normalizes them:
(a) to the un-optimized baseline, (b) to CG-P&D, (c) to CG+MVM.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from ..arch import isaac_baseline
from ..models import resnet
from ..sched import CIMMLC, CompilationResult, CompilerOptions, no_optimization
from .common import ExperimentResult

#: Paper-reported reference points (Section 4.3 narrative).
_PAPER_PIPELINE = {18: 2.3, 101: 4.7}
_PAPER_DUPLICATION = {18: 25.4, 101: 3.1}
_PAPER_MVM = {50: 1.8, 101: 1.4}
_PAPER_VVM = {50: 1.1}

DEPTHS = (18, 34, 50, 101)


def _variants(graph, arch) -> Dict[str, CompilationResult]:
    runs = {
        "noopt": no_optimization(graph, arch),
        "pipeline": CIMMLC(arch, CompilerOptions(
            max_level="CG", pipeline=True, duplicate=False)).compile(graph),
        "duplication": CIMMLC(arch, CompilerOptions(
            max_level="CG", pipeline=False, duplicate=True)).compile(graph),
        "pd": CIMMLC(arch, CompilerOptions(max_level="CG")).compile(graph),
        "mvm": CIMMLC(arch, CompilerOptions(max_level="MVM")).compile(graph),
        "vvm": CIMMLC(arch).compile(graph),
    }
    return runs


def fig21(depths: Sequence[int] = DEPTHS) -> Dict[str, ExperimentResult]:
    """Run all four panels; returns ``{"a": ..., "b": ..., "c": ..., "d": ...}``."""
    arch = isaac_baseline()
    a = ExperimentResult("Fig21a", "CG-grained speedup over no optimization")
    b = ExperimentResult("Fig21b", "CG+MVM speedup normalized to CG-P&D")
    c = ExperimentResult("Fig21c", "CG+MVM+VVM speedup normalized to CG+MVM")
    d = ExperimentResult("Fig21d", "normalized peak power", notes=(
        "CG raises peak power (more concurrent crossbars); the MVM "
        "staggered pipeline pulls it back down"))
    for depth in depths:
        graph = resnet(depth)
        runs = _variants(graph, arch)
        base = runs["noopt"].total_cycles
        name = f"resnet{depth}"
        a.add(f"{name} CG-Pipeline", base / runs["pipeline"].total_cycles,
              _PAPER_PIPELINE.get(depth))
        a.add(f"{name} CG-Duplication",
              base / runs["duplication"].total_cycles,
              _PAPER_DUPLICATION.get(depth))
        a.add(f"{name} CG-P&D", base / runs["pd"].total_cycles)
        b.add(f"{name} CG+MVM-Duplication",
              runs["pd"].total_cycles / runs["mvm"].total_cycles,
              _PAPER_MVM.get(depth))
        c.add(f"{name} CG+MVM+VVM-Remap",
              runs["mvm"].total_cycles / runs["vvm"].total_cycles,
              _PAPER_VVM.get(depth))
        noopt_peak = runs["noopt"].peak_power
        d.add(f"{name} peak power w/o opt", 1.0, 1.0, unit="")
        d.add(f"{name} peak power CG",
              runs["pd"].peak_power / noopt_peak, unit="")
        d.add(f"{name} peak power CG+MVM",
              runs["mvm"].peak_power / noopt_peak, unit="")
    return {"a": a, "b": b, "c": c, "d": d}
