"""Experiment drivers: one per table/figure of the paper's evaluation."""

from .common import ExperimentResult, Row
from .fig16 import fig16_codegen, fig16_stats
from .fig20 import fig20a_jia, fig20b_puma, fig20c_jain, fig20d_poly
from .fig21 import fig21
from .fig22 import (
    fig22a_cores,
    fig22b_xb_number,
    fig22c_xb_size,
    fig22d_parallel_row,
    sensitivity_base_arch,
)
from .table1 import table1

__all__ = [
    "ExperimentResult",
    "Row",
    "fig16_codegen",
    "fig16_stats",
    "fig20a_jia",
    "fig20b_puma",
    "fig20c_jain",
    "fig20d_poly",
    "fig21",
    "fig22a_cores",
    "fig22b_xb_number",
    "fig22c_xb_size",
    "fig22d_parallel_row",
    "sensitivity_base_arch",
    "table1",
]
