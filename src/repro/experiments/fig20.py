"""Fig. 20: CIM-MLC against vendor schedules and the Poly-Schedule compiler.

(a) speedup over Jia et al.'s CM accelerator schedule;
(b) peak-power reduction over PUMA's whole-VXB activation;
(c) speedup over Jain et al.'s WLM macro schedule;
(d) latency against Poly-Schedule on the Table 3 baseline.
"""

from __future__ import annotations

from ..arch import isaac_baseline, jain2021, jia2021, puma
from ..graph import Graph
from ..models import resnet18, vgg7, vgg16
from ..sched import (
    CIMMLC,
    CompilerOptions,
    no_optimization,
    poly_schedule,
    puma_schedule,
)
from .common import ExperimentResult


def fig20a_jia(graph: Graph = None) -> ExperimentResult:
    """Speedup over Jia et al. [29] (CM mode): CG pipeline alone vs CG
    pipeline + duplication (paper: 1.2x and 3.7x)."""
    graph = graph or vgg16()
    arch = jia2021()
    vendor = no_optimization(graph, arch)
    pipe = CIMMLC(arch, CompilerOptions(
        max_level="CG", pipeline=True, duplicate=False)).compile(graph)
    pd = CIMMLC(arch, CompilerOptions(max_level="CG")).compile(graph)
    result = ExperimentResult(
        "Fig20a", f"speedup over Jia et al. schedule ({graph.name})")
    result.add("Jia et al. (vendor)", 1.0, 1.0)
    result.add("CG-grained w/ Pipeline",
               vendor.total_cycles / pipe.total_cycles, 1.2)
    result.add("CG-grained w/ P&D",
               vendor.total_cycles / pd.total_cycles, 3.7)
    return result


def fig20b_puma(graph: Graph = None) -> ExperimentResult:
    """Peak-power reduction over PUMA [4] whole-VXB activation on VGG16
    (paper: 75% lower peak power with CG+MVM)."""
    graph = graph or vgg16()
    arch = puma()
    base = puma_schedule(graph, arch)
    ours = CIMMLC(arch).compile(graph)
    result = ExperimentResult(
        "Fig20b", f"peak power vs PUMA schedule ({graph.name})")
    result.add("PUMA normalized peak power", 1.0, 1.0, unit="")
    result.add("CG+MVM normalized peak power",
               ours.peak_power / base.peak_power, 0.25, unit="")
    result.add("peak power reduction",
               100 * (1 - ours.peak_power / base.peak_power), 75.0,
               unit="%")
    result.add("peak active crossbars (PUMA)",
               base.report.power.peak_active_crossbars, unit="")
    result.add("peak active crossbars (ours)",
               ours.report.power.peak_active_crossbars, unit="")
    return result


def fig20c_jain(graph: Graph = None) -> ExperimentResult:
    """Speedup over Jain et al. [27] (WLM mode) on VGG7 (paper: CG 1.2x,
    CG+MVM 1.2x, CG+MVM+VVM 2.3x)."""
    graph = graph or vgg7()
    arch = jain2021()
    vendor = no_optimization(graph, arch)
    cg = CIMMLC(arch, CompilerOptions(max_level="CG")).compile(graph)
    mvm = CIMMLC(arch, CompilerOptions(max_level="MVM")).compile(graph)
    vvm = CIMMLC(arch).compile(graph)
    result = ExperimentResult(
        "Fig20c", f"speedup over Jain et al. schedule ({graph.name})")
    result.add("Jain et al. (vendor)", 1.0, 1.0)
    result.add("CG-grained", vendor.total_cycles / cg.total_cycles, 1.2)
    result.add("CG+MVM-grained", vendor.total_cycles / mvm.total_cycles, 1.2)
    result.add("CG+MVM+VVM-grained",
               vendor.total_cycles / vvm.total_cycles, 2.3)
    return result


def fig20d_poly(graph: Graph = None) -> ExperimentResult:
    """Latency vs Poly-Schedule [22] on the Table 3 baseline (paper: 84%
    cycle reduction for Poly-Schedule, 95% for CIM-MLC, 3.2x speedup)."""
    graph = graph or resnet18()
    arch = isaac_baseline()
    base = no_optimization(graph, arch)
    poly = poly_schedule(graph, arch)
    ours = CIMMLC(arch).compile(graph)
    result = ExperimentResult(
        "Fig20d", f"latency vs Poly-Schedule ({graph.name})")
    result.add("w/o optimization (cycles)", base.total_cycles, unit="")
    result.add("Poly-Schedule (cycles)", poly.total_cycles, unit="")
    result.add("CIM-MLC (cycles)", ours.total_cycles, unit="")
    result.add("Poly-Schedule cycle reduction",
               100 * (1 - poly.total_cycles / base.total_cycles), 84.0,
               unit="%")
    result.add("CIM-MLC cycle reduction",
               100 * (1 - ours.total_cycles / base.total_cycles), 95.0,
               unit="%")
    result.add("CIM-MLC speedup over Poly-Schedule",
               poly.total_cycles / ours.total_cycles, 3.2)
    return result
