"""Datacenter-scale serving: replicated fleets, routing, admission,
autoscaling.

The serve package answers "what does one chip (or one sharded system)
deliver under live traffic"; this package lifts that one level to the
ROADMAP's north star — *millions of users* against a **fleet** of
replicas behind a front end:

* :mod:`~repro.fleet.plan` — :class:`FleetPlan`: N replica plans (each
  an ordinary serve plan, possibly heterogeneous) plus the
  :class:`~repro.arch.ChipLink`-priced front-end hop;
  :func:`build_fleet` compiles a homogeneous fleet through one shared
  :class:`~repro.perf.CompileCache` (each unique model compiles once).
* :mod:`~repro.fleet.router` — pluggable routing policies: round-robin,
  least-loaded, session-affinity, power-aware first-fit packing.
* :mod:`~repro.fleet.admission` — queue-depth / SLO-budget rejection
  with per-tenant fairness; every rejection carries a reason.
* :mod:`~repro.fleet.autoscaler` — threshold scaling with asymmetric
  response (up immediately, down with hysteresis); every spin-up pays
  the power model's full weight-program deployment cost.
* :mod:`~repro.fleet.engine` — the shared deterministic DES core
  (:class:`~repro.serve.engine.EventLoop` +
  :class:`~repro.serve.engine.ReplicaCore`) run with one core per
  replica; same seed ⇒ bit-identical :class:`FleetReport`.
* :mod:`~repro.fleet.sweep` — replica-count × router grids riding the
  :mod:`repro.explore` cache (fleet size costs no extra compiles).

Quickstart
----------
>>> from repro.arch import functional_testbed
>>> from repro.fleet import build_fleet, simulate_fleet
>>> from repro.serve import TenantSpec, make_trace
>>> specs = [TenantSpec("lenet", "lenet"), TenantSpec("mlp", "mlp")]
>>> fleet = build_fleet(functional_testbed(), specs, replicas=2)
>>> trace = make_trace("poisson", specs, rate=1e-5, num_requests=40)
>>> report = simulate_fleet(fleet, trace)
>>> report.completed == 40 and report.fleet_size == 2
True
"""

from .admission import REASONS, AdmissionControl
from .autoscaler import Autoscaler
from .engine import FleetEngine, simulate_fleet
from .plan import FleetPlan, build_fleet
from .report import FleetReport, ReplicaStats
from .router import (
    ROUTERS,
    LeastLoaded,
    PowerAware,
    RoundRobin,
    SessionAffinity,
    parse_router,
)
from .sweep import (
    FleetSweepPoint,
    build_fleet_cached,
    fleet_sweep,
    fleet_table,
)

__all__ = [
    "AdmissionControl",
    "Autoscaler",
    "FleetEngine",
    "FleetPlan",
    "FleetReport",
    "FleetSweepPoint",
    "LeastLoaded",
    "PowerAware",
    "REASONS",
    "ROUTERS",
    "ReplicaStats",
    "RoundRobin",
    "SessionAffinity",
    "build_fleet",
    "build_fleet_cached",
    "fleet_sweep",
    "fleet_table",
    "parse_router",
    "simulate_fleet",
]
