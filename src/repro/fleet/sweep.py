"""Fleet sweeps: replica count × routing policy grids, one compile total.

The whole point of sweeping fleet *size* is that it costs no extra
compilation: every cell shares the same per-replica
:class:`~repro.serve.partition.ServingPlan`, built once through
:func:`repro.serve.sweep.build_plans` — i.e. through the
:mod:`repro.explore` content-addressed disk cache — and tiled to each
replica count with
:meth:`~repro.fleet.plan.FleetPlan.with_replicas`.  Only the cheap
discrete-event simulations fan out across the grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch import ChipLink, CIMArchitecture
from ..explore import SweepRunner
from ..sched import CompilerOptions
from ..serve.engine import BatchPolicy
from ..serve.sweep import build_plans
from ..serve.workload import Request, TenantSpec
from .admission import AdmissionControl
from .autoscaler import Autoscaler
from .engine import simulate_fleet
from .plan import REQUEST_BITS, RESPONSE_BITS, FleetPlan
from .report import FleetReport
from .router import Router, parse_router


@dataclass(frozen=True)
class FleetSweepPoint:
    """One cell of the (replica count × router) grid."""

    replicas: int
    router: str
    report: FleetReport


def build_fleet_cached(arch: CIMArchitecture, specs: Sequence[TenantSpec],
                       replicas: int, mode: str = "spatial",
                       options: Optional[CompilerOptions] = None,
                       runner: Optional[SweepRunner] = None,
                       power_budget: Optional[float] = None,
                       link: Optional[ChipLink] = None,
                       request_bits: float = REQUEST_BITS,
                       response_bits: float = RESPONSE_BITS) -> FleetPlan:
    """A homogeneous fleet whose one replica plan rides the explore
    disk cache (the sweep-bridge twin of
    :func:`~repro.fleet.plan.build_fleet`)."""
    plans = build_plans(arch, specs, modes=(mode,), options=options,
                        runner=runner, power_budget=power_budget)
    return FleetPlan(replicas=(plans[mode],) * replicas,
                     link=link if link is not None else ChipLink(),
                     request_bits=request_bits,
                     response_bits=response_bits)


def fleet_sweep(plan: FleetPlan, trace: Sequence[Request],
                replica_counts: Sequence[int],
                routers: Sequence[str] = ("rr", "least-loaded"),
                policy: Optional[BatchPolicy] = None,
                admission: Optional[AdmissionControl] = None,
                autoscaler: Optional[Autoscaler] = None,
                max_queue: Optional[int] = None,
                slo_factor: float = 10.0) -> List[FleetSweepPoint]:
    """Simulate ``trace`` over every (replica count, router) cell.

    ``plan`` supplies the per-replica template (tiled per count); every
    cell replays the *same* trace, so cells differ only in fleet
    configuration.  ``routers`` are CLI specs
    (:func:`~repro.fleet.router.parse_router`).
    """
    out: List[FleetSweepPoint] = []
    for count in replica_counts:
        sized = plan.with_replicas(count)
        for spec in routers:
            report = simulate_fleet(
                sized, trace, policy=policy, router=parse_router(spec),
                admission=admission, autoscaler=autoscaler,
                max_queue=max_queue, slo_factor=slo_factor)
            out.append(FleetSweepPoint(replicas=count,
                                       router=report.router,
                                       report=report))
    return out


def fleet_table(points: Sequence[FleetSweepPoint]) -> str:
    """Text grid: one row per replica count, p99 / SLO / energy-per-
    request per router."""
    routers: List[str] = []
    for p in points:
        if p.router not in routers:
            routers.append(p.router)
    header = f"{'replicas':>8}"
    for r in routers:
        header += f" {r + ' p99':>16} {r + ' SLO':>14} {r + ' E/req':>14}"
    lines = [header]
    cells: Dict[Tuple[int, str], FleetSweepPoint] = {
        (p.replicas, p.router): p for p in points}
    counts: List[int] = []
    for p in points:
        if p.replicas not in counts:
            counts.append(p.replicas)
    for count in counts:
        row = f"{count:>8}"
        for r in routers:
            p = cells.get((count, r))
            if p is None:
                row += f" {'-':>16} {'-':>14} {'-':>14}"
            else:
                row += (f" {p.report.p99:>16,.0f} "
                        f"{p.report.slo_attainment:>13.1%} "
                        f"{p.report.energy_per_request:>14,.1f}")
        lines.append(row)
    return "\n".join(lines)
