"""Front-end request routing: which replica serves the next request.

A router is duck-typed like the serve batch policies: ``route(req, now,
cores, candidates)`` picks a replica id from ``candidates`` (the active,
non-saturated replicas that serve the request's tenant, ascending id
order — admission control filters them *before* the router runs), and
``describe()`` yields the CLI-parsable label.  All policies are
deterministic: ties break on replica id, session keys are pure functions
of the request, and no policy consumes randomness — the house invariant
(same seed ⇒ bit-identical report) extends through the front end.

* :class:`RoundRobin` — classic rotation; equalizes request *counts*,
  blind to request cost and queue depth.
* :class:`LeastLoaded` — minimum estimated backlog cycles; the
  join-shortest-queue workhorse that absorbs bursts.
* :class:`SessionAffinity` — requests hash to sessions, sessions stick
  to replicas (cache/weight residency story one level up); falls back to
  least-loaded when the preferred replica is unavailable.
* :class:`PowerAware` — first-fit packing onto the lowest-id replica
  with backlog headroom, concentrating load so the autoscaler can drain
  and power down the tail of the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ScheduleError
from ..serve.engine import ReplicaCore
from ..serve.workload import Request


def _least_loaded(cores: Sequence[ReplicaCore],
                  candidates: Sequence[int]) -> int:
    """Lowest estimated backlog among ``candidates``; ties by id."""
    return min(candidates, key=lambda rid: (cores[rid].backlog_cycles, rid))


class RoundRobin:
    """Rotate over the candidate replicas in id order."""

    def __init__(self) -> None:
        self._next = 0

    def route(self, req: Request, now: float,
              cores: Sequence[ReplicaCore],
              candidates: Sequence[int]) -> int:
        """The next replica in rotation that is currently a candidate."""
        pick = candidates[self._next % len(candidates)]
        self._next += 1
        return pick

    def describe(self) -> str:
        """CLI-parsable router label."""
        return "rr"


class LeastLoaded:
    """Route to the replica with the smallest estimated backlog."""

    def route(self, req: Request, now: float,
              cores: Sequence[ReplicaCore],
              candidates: Sequence[int]) -> int:
        """Candidate with minimum ``backlog_cycles`` (ties by id)."""
        return _least_loaded(cores, candidates)

    def describe(self) -> str:
        """CLI-parsable router label."""
        return "least-loaded"


@dataclass
class SessionAffinity:
    """Stick each session to a home replica; spill to least-loaded.

    The request's session is ``req.index % sessions`` (a deterministic
    stand-in for a user/session id the trace generators do not model);
    its home replica is the session id taken modulo the *maximum* fleet
    size, so a session's home does not move as the autoscaler resizes
    the active set — it just spills while its home is away.
    """

    sessions: int = 1024

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise ScheduleError(
                f"sessions must be >= 1, got {self.sessions}")

    def route(self, req: Request, now: float,
              cores: Sequence[ReplicaCore],
              candidates: Sequence[int]) -> int:
        """The session's home replica when available, else least-loaded."""
        home = (req.index % self.sessions) % len(cores)
        if home in candidates:
            return home
        return _least_loaded(cores, candidates)

    def describe(self) -> str:
        """CLI-parsable router label."""
        return f"affinity:{self.sessions}"


@dataclass
class PowerAware:
    """First-fit packing: fill the lowest-id replica before spilling.

    A replica is "full" once its estimated backlog exceeds
    ``headroom_cycles``; the first candidate with room wins, so load
    concentrates on the head of the fleet and the tail idles — exactly
    what the autoscaler's scale-down hysteresis needs to see to power
    replicas off.  When every candidate is full the least-loaded one
    takes the overflow.
    """

    headroom_cycles: float = 50_000.0

    def __post_init__(self) -> None:
        if self.headroom_cycles < 0:
            raise ScheduleError(
                f"headroom_cycles must be >= 0, got {self.headroom_cycles}")

    def route(self, req: Request, now: float,
              cores: Sequence[ReplicaCore],
              candidates: Sequence[int]) -> int:
        """Lowest-id candidate with headroom, else least-loaded."""
        for rid in candidates:
            if cores[rid].backlog_cycles <= self.headroom_cycles:
                return rid
        return _least_loaded(cores, candidates)

    def describe(self) -> str:
        """CLI-parsable router label."""
        return f"power:{self.headroom_cycles:g}"


#: Router registry for the CLI (name -> zero-config constructor).
ROUTERS = {
    "rr": RoundRobin,
    "least-loaded": LeastLoaded,
    "affinity": SessionAffinity,
    "power": PowerAware,
}

Router = object  # duck-typed: RoundRobin | LeastLoaded | ...


def parse_router(text: str) -> Router:
    """Parse a CLI router spec: ``rr``, ``least-loaded``,
    ``affinity[:SESSIONS]``, or ``power[:HEADROOM]``."""
    parts = text.split(":")
    try:
        if parts[0] == "rr" and len(parts) == 1:
            return RoundRobin()
        if parts[0] == "least-loaded" and len(parts) == 1:
            return LeastLoaded()
        if parts[0] == "affinity" and len(parts) <= 2:
            return SessionAffinity(int(parts[1])) if len(parts) == 2 \
                else SessionAffinity()
        if parts[0] == "power" and len(parts) <= 2:
            return PowerAware(float(parts[1])) if len(parts) == 2 \
                else PowerAware()
    except ValueError:
        pass
    raise ScheduleError(
        f"bad router {text!r}; expected rr, least-loaded, "
        f"affinity[:SESSIONS], or power[:HEADROOM]")
