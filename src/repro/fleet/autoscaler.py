"""Replica autoscaling with asymmetric response: fast up, damped down.

The autoscaler samples the fleet every ``tick_cycles`` of simulated time
and compares the mean outstanding-per-active-replica against two
thresholds:

* above ``up_threshold`` → **scale up immediately** (one replica per
  tick): under a diurnal peak or a burst, waiting costs SLO violations
  right now.  The new replica is *not free* — it pays the deployment
  cost from the power model (the full crossbar weight program:
  ``deploy_cycles`` before it can serve, ``deploy_energy`` into the
  fleet ledger) via :meth:`~repro.fleet.plan.FleetPlan.deploy_cost`.
* below ``down_threshold`` for ``hold_ticks`` *consecutive* ticks →
  scale down by one.  The hold is the hysteresis that prevents flapping:
  a single quiet tick inside a bursty stretch must not power a replica
  off only to redeploy it (and re-pay the weight program) a tick later.
  Any tick at or above the threshold — or any scale event — resets the
  hold counter.

Scale-up activates the lowest-id inactive replica; scale-down drains the
highest-id active one (it stops receiving traffic immediately and
finishes what it holds).  Together with the prefix-ordered activation
this keeps the active set a contiguous prefix — deterministic, and the
shape first-fit routing (:class:`~repro.fleet.router.PowerAware`)
expects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ScheduleError

#: Autoscaler decisions (the ``action`` field of scale events).
ACTIONS = ("up", "down")


@dataclass
class Autoscaler:
    """Threshold autoscaler with scale-down hysteresis.

    ``min_replicas`` is the floor the fleet never drains below (and the
    initial active set); ``max_replicas`` caps growth (``None`` = the
    whole :class:`~repro.fleet.plan.FleetPlan`).  Thresholds are mean
    outstanding requests per active replica.
    """

    tick_cycles: float = 1_000_000.0
    min_replicas: int = 1
    max_replicas: Optional[int] = None
    up_threshold: float = 12.0
    down_threshold: float = 3.0
    hold_ticks: int = 3

    def __post_init__(self) -> None:
        """Validate thresholds, floors, and the hysteresis window."""
        if self.tick_cycles <= 0:
            raise ScheduleError(
                f"tick_cycles must be positive, got {self.tick_cycles}")
        if self.min_replicas < 1:
            raise ScheduleError(
                f"min_replicas must be >= 1, got {self.min_replicas}")
        if self.max_replicas is not None and \
                self.max_replicas < self.min_replicas:
            raise ScheduleError(
                f"max_replicas ({self.max_replicas}) below min_replicas "
                f"({self.min_replicas})")
        if self.down_threshold < 0 or \
                self.up_threshold <= self.down_threshold:
            raise ScheduleError(
                f"need 0 <= down_threshold < up_threshold, got "
                f"{self.down_threshold} / {self.up_threshold}")
        if self.hold_ticks < 1:
            raise ScheduleError(
                f"hold_ticks must be >= 1, got {self.hold_ticks}")
        self._low_ticks = 0

    def describe(self) -> str:
        """Human/CLI label of the scaling rule."""
        cap = self.max_replicas if self.max_replicas is not None else "fleet"
        return (f"auto[{self.min_replicas}..{cap}] "
                f"up>{self.up_threshold:g} down<{self.down_threshold:g}"
                f"x{self.hold_ticks}")

    # ------------------------------------------------------------------

    def decide(self, outstanding: int, active: int, fleet_size: int
               ) -> Optional[str]:
        """One tick: ``"up"``, ``"down"``, or ``None`` (hold).

        ``outstanding`` is the fleet-wide queued-or-in-flight count over
        ``active`` replicas (deploying replicas count as active — their
        capacity is already bought).  Scale-up is immediate; scale-down
        requires ``hold_ticks`` consecutive quiet ticks.
        """
        cap = min(fleet_size, self.max_replicas
                  if self.max_replicas is not None else fleet_size)
        per_replica = outstanding / active if active else float("inf")
        if per_replica > self.up_threshold:
            self._low_ticks = 0
            return "up" if active < cap else None
        if per_replica < self.down_threshold:
            self._low_ticks += 1
            if self._low_ticks >= self.hold_ticks and \
                    active > self.min_replicas:
                self._low_ticks = 0
                return "down"
            return None
        self._low_ticks = 0
        return None
