"""Fleet-level serving outcome: tails, rejections, and the energy ledger.

A :class:`FleetReport` aggregates one fleet simulation three ways:

* **per tenant** — the same :class:`~repro.serve.report.TenantStats`
  rows the single-system report uses, merged across replicas (latency
  percentiles are fleet-wide, measured at the front end: link hops
  included).
* **per replica** — :class:`ReplicaStats` occupancy rows, plus how many
  times the autoscaler deployed each replica.
* **the energy ledger** — three strictly separated entries:
  ``replica_energy`` (batches + tenant switches, from the serve cores),
  ``deploy_energy`` (every spin-up's full weight program), and
  ``link_energy`` (front-end↔replica hops).  ``energy_per_request``
  divides their sum by completed requests — the headline metric that
  makes overprovisioning visible: idle replicas still cost deployment
  energy, which amortizes over fewer requests each.

``digest()`` hashes the canonical JSON export — the currency of the
determinism pin (same seed ⇒ bit-identical report) and of the
``repro bench`` fleet workload's reference/fast equality check.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..serve.report import TenantStats, percentile


@dataclass(frozen=True)
class ReplicaStats:
    """Occupancy and energy of one replica over the scenario."""

    rid: int
    mode: str
    arch: str
    completed: int
    busy_cycles: float
    switch_cycles: float
    switches: int
    utilization: float
    energy: float
    deployments: int

    def to_dict(self) -> Dict:
        """JSON-able export of this replica's row."""
        return {
            "rid": self.rid,
            "mode": self.mode,
            "arch": self.arch,
            "completed": self.completed,
            "busy_cycles": self.busy_cycles,
            "switch_cycles": self.switch_cycles,
            "switches": self.switches,
            "utilization": self.utilization,
            "energy": self.energy,
            "deployments": self.deployments,
        }


@dataclass(frozen=True)
class FleetReport:
    """Complete outcome of one fleet scenario."""

    arch: str
    fleet_size: int
    policy: str
    router: str
    admission: str
    autoscaler: Optional[str]
    horizon_cycles: float
    tenants: Tuple[TenantStats, ...]
    replicas: Tuple[ReplicaStats, ...]
    #: Front-end rejections by reason (``no_capacity`` / ``queue`` /
    #: ``slo`` / ``fairness``), plus ``replica_queue`` for requests that
    #: bounced off a replica-local ``max_queue`` bound after admission.
    rejections: Dict[str, int]
    #: ``(time, action, rid)`` autoscaler decisions, in decision order.
    scale_events: Tuple[Tuple[float, str, int], ...]
    replica_energy: float
    deploy_energy: float
    link_energy: float
    #: Replicas active at t=0 (the autoscaler's floor, or the whole
    #: fleet when scaling is off).
    initial_active: int = 0
    #: Digest of the span timeline recorded alongside this run (None
    #: when recording was off — the export, and therefore the report
    #: digest, is then bit-identical to pre-trace builds).
    trace_digest: Optional[str] = None
    #: Fault-injection ledger (:mod:`repro.faults`): the fault model,
    #: drift rewrite count/stall/energy, the chip-death record, and
    #: availability.  ``None`` on fault-free runs — the export, and
    #: therefore the digest, is then bit-identical to pre-fault builds.
    fault: Optional[Dict] = None

    # -- aggregates ----------------------------------------------------

    @property
    def completed(self) -> int:
        """Requests finished across the whole fleet."""
        return sum(t.completed for t in self.tenants)

    @property
    def rejected(self) -> int:
        """Requests rejected anywhere (front end or replica bound)."""
        return sum(t.rejected for t in self.tenants)

    @property
    def active_peak(self) -> int:
        """Largest concurrently active replica count reached (replays
        the scale-event ledger forward from ``initial_active``)."""
        running = peak = self.initial_active
        for _, action, _rid in self.scale_events:
            running += 1 if action == "up" else -1
            peak = max(peak, running)
        return peak

    def _all_latencies(self):
        return [lat for t in self.tenants for lat in t.latencies]

    @property
    def p50(self) -> float:
        """Median front-end latency over every completed request."""
        return percentile(self._all_latencies(), 50)

    @property
    def p95(self) -> float:
        """95th-percentile front-end latency."""
        return percentile(self._all_latencies(), 95)

    @property
    def p99(self) -> float:
        """99th-percentile (tail) front-end latency."""
        return percentile(self._all_latencies(), 99)

    @property
    def slo_attainment(self) -> float:
        """Share of *arrivals* finishing within SLO (rejections count
        against attainment — a dropped request did not meet its SLO)."""
        arrived = sum(t.arrived for t in self.tenants)
        if arrived == 0:
            return 1.0
        met = sum(sum(1 for lat in t.latencies if lat <= t.slo_cycles)
                  for t in self.tenants)
        return met / arrived

    @property
    def fault_energy(self) -> float:
        """Energy charged to injected faults (drift weight rewrites)."""
        return self.fault.get("fault_energy", 0.0) if self.fault else 0.0

    @property
    def availability(self) -> float:
        """Capacity-weighted availability through the scenario: 1 minus
        the share of fleet capacity-cycles lost to a chip death (1.0 on
        fault-free runs)."""
        if self.fault is None:
            return 1.0
        return self.fault.get("availability", 1.0)

    @property
    def recovery_cycles(self) -> Optional[float]:
        """Cycles from chip death to the replacement replica being
        ready (``None``: no death, or no spare was left)."""
        death = self.fault.get("chip_death") if self.fault else None
        return death.get("recovery_cycles") if death else None

    @property
    def drift_rewrites(self) -> int:
        """Drift-forced weight rewrites the fault injection performed."""
        return self.fault.get("drift_rewrites", 0) if self.fault else 0

    @property
    def total_energy(self) -> float:
        """The full ledger: replicas + deployments + link hops (+ drift
        rewrites when faults were injected)."""
        return (self.replica_energy + self.deploy_energy
                + self.link_energy + self.fault_energy)

    @property
    def energy_per_request(self) -> float:
        """Total fleet energy amortized over completed requests."""
        return self.total_energy / self.completed if self.completed else 0.0

    @property
    def avg_power(self) -> float:
        """Mean fleet draw over the horizon."""
        if self.horizon_cycles <= 0:
            return 0.0
        return self.total_energy / self.horizon_cycles

    @property
    def utilization(self) -> float:
        """Mean replica occupancy over the horizon (all replicas)."""
        if not self.replicas:
            return 0.0
        return sum(r.utilization for r in self.replicas) / len(self.replicas)

    @property
    def deployments(self) -> int:
        """Total replica spin-ups charged to the ledger."""
        return sum(r.deployments for r in self.replicas)

    # -- export --------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-able export of the whole fleet outcome."""
        out = {
            "arch": self.arch,
            "fleet_size": self.fleet_size,
            "policy": self.policy,
            "router": self.router,
            "admission": self.admission,
            "autoscaler": self.autoscaler,
            "horizon_cycles": self.horizon_cycles,
            "completed": self.completed,
            "rejected": self.rejected,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "slo_attainment": self.slo_attainment,
            "utilization": self.utilization,
            "replica_energy": self.replica_energy,
            "deploy_energy": self.deploy_energy,
            "link_energy": self.link_energy,
            "total_energy": self.total_energy,
            "energy_per_request": self.energy_per_request,
            "avg_power": self.avg_power,
            "deployments": self.deployments,
            "initial_active": self.initial_active,
            "active_peak": self.active_peak,
            "rejections": dict(sorted(self.rejections.items())),
            "scale_events": [list(e) for e in self.scale_events],
            "tenants": [t.to_dict() for t in self.tenants],
            "replicas": [r.to_dict() for r in self.replicas],
        }
        if self.trace_digest is not None:
            out["trace_digest"] = self.trace_digest
        if self.fault is not None:
            out["fault"] = self.fault
        return out

    def to_json(self, indent: Optional[int] = 1) -> str:
        """The :meth:`to_dict` export as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    def digest(self) -> str:
        """SHA-256 of the canonical export — the determinism currency."""
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    def table(self) -> str:
        """Readable fleet summary."""
        scaler = self.autoscaler or "static"
        lines = [
            f"fleet {self.arch} x{self.fleet_size} router={self.router} "
            f"policy={self.policy} admission={self.admission} "
            f"scaler={scaler}",
            f"horizon: {self.horizon_cycles:,.0f} cycles | completed "
            f"{self.completed:,} | rejected {self.rejected:,} | "
            f"deployments {self.deployments}",
            f"latency p50/p95/p99: {self.p50:,.0f} / {self.p95:,.0f} / "
            f"{self.p99:,.0f} cycles | SLO attainment "
            f"{self.slo_attainment:.1%}",
            f"energy/request {self.energy_per_request:,.1f} "
            f"(replicas {self.replica_energy:,.0f} + deploy "
            f"{self.deploy_energy:,.0f} + link {self.link_energy:,.0f})",
        ]
        if self.rejections:
            parts = ", ".join(f"{k}={v}" for k, v in
                              sorted(self.rejections.items()) if v)
            if parts:
                lines.append(f"rejections: {parts}")
        if self.fault is not None:
            death = self.fault.get("chip_death")
            line = (f"faults: availability {self.availability:.4%} | "
                    f"drift rewrites {self.drift_rewrites} "
                    f"(stall {self.fault.get('drift_stall_cycles', 0.0):,.0f} "
                    f"cyc, energy {self.fault_energy:,.0f})")
            if death is not None:
                rec = death.get("recovery_cycles")
                line += (f" | replica {death['rid']} died at "
                         f"{death['time']:,.0f}, "
                         + (f"recovered in {rec:,.0f} cyc"
                            if rec is not None else "no spare left"))
            lines.append(line)
        header = (f"  {'replica':>7} {'mode':<9} {'done':>8} {'util':>7} "
                  f"{'switches':>8} {'deploys':>7} {'energy':>14}")
        lines.append(header)
        for r in self.replicas:
            lines.append(
                f"  {r.rid:>7} {r.mode:<9} {r.completed:>8,} "
                f"{r.utilization:>6.1%} {r.switches:>8} "
                f"{r.deployments:>7} {r.energy:>14,.0f}")
        header = (f"  {'tenant':<14} {'done':>8} {'rej':>6} {'p50':>10} "
                  f"{'p99':>12} {'SLO':>7}")
        lines.append(header)
        for t in self.tenants:
            lines.append(
                f"  {t.tenant:<14} {t.completed:>8,} {t.rejected:>6,} "
                f"{t.p50:>10,.0f} {t.p99:>12,.0f} "
                f"{t.slo_attainment:>6.1%}")
        return "\n".join(lines)
