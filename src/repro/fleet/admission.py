"""Front-end admission control: reject early, reject fairly.

An overloaded fleet that queues everything converts overload into
unbounded tail latency; admission control converts it into explicit,
attributable rejections instead.  :class:`AdmissionControl` screens every
request *before* the router runs and yields one of four deterministic
outcomes (:data:`REASONS`):

* ``no_capacity`` — no active replica serves the tenant at all (e.g. the
  autoscaler has everything beyond the minimum drained and the minimum
  set is still deploying).
* ``queue`` — every capable replica already holds ``max_outstanding``
  requests (queue-depth saturation).
* ``slo`` — even the best candidate's estimated completion (backlog +
  isolated latency + both link hops) would overshoot the tenant's SLO by
  more than ``slo_budget``; admitting would burn cycles on a request
  that is already lost.
* ``fairness`` — the tenant holds more than its traffic-weighted share
  of the fleet's outstanding slots while other tenants are competing; a
  bursting tenant is clipped before it starves the rest.

Checks run in exactly that order; the first failure names the reason in
the fleet report's rejection ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ScheduleError
from ..serve.engine import ReplicaCore
from ..serve.workload import Request

#: Rejection reasons, in check order.
REASONS = ("no_capacity", "queue", "slo", "fairness")


@dataclass
class AdmissionControl:
    """Queue-depth / SLO-budget admission with per-tenant fairness.

    ``max_outstanding`` caps requests queued-or-in-flight per replica;
    ``slo_budget`` multiplies each tenant's SLO into an admission
    deadline for the estimated completion time (``None`` disables the
    check); ``fairness`` clips any tenant exceeding its traffic-weighted
    share of the fleet-wide outstanding budget (requires
    ``max_outstanding``).
    """

    max_outstanding: Optional[int] = None
    slo_budget: Optional[float] = None
    fairness: bool = False

    def __post_init__(self) -> None:
        """Validate knob ranges and combinations."""
        if self.max_outstanding is not None and self.max_outstanding < 1:
            raise ScheduleError(
                f"max_outstanding must be >= 1, got {self.max_outstanding}")
        if self.slo_budget is not None and self.slo_budget <= 0:
            raise ScheduleError(
                f"slo_budget must be positive, got {self.slo_budget}")
        if self.fairness and self.max_outstanding is None:
            raise ScheduleError(
                "fairness clipping needs max_outstanding to define the "
                "fleet-wide outstanding budget")

    def describe(self) -> str:
        """Human/CLI label of the configured checks."""
        parts = []
        if self.max_outstanding is not None:
            parts.append(f"queue<={self.max_outstanding}")
        if self.slo_budget is not None:
            parts.append(f"slo<={self.slo_budget:g}x")
        if self.fairness:
            parts.append("fair")
        return "+".join(parts) if parts else "open"

    # ------------------------------------------------------------------

    def screen(self, req: Request, capable: Sequence[int],
               cores: Sequence[ReplicaCore],
               slo_cycles: Dict[str, float],
               hop_cycles: float,
               tenant_outstanding: Dict[str, int],
               tenant_share: Dict[str, float]
               ) -> Tuple[List[int], Optional[str]]:
        """Filter ``capable`` replica ids for one request.

        Returns ``(candidates, None)`` when the request may be routed
        (the router picks among ``candidates``) or ``(, reason)`` when
        it must be rejected.  ``hop_cycles`` is the round-trip link
        latency every admitted request will pay; ``tenant_outstanding``
        and ``tenant_share`` feed the fairness check.
        """
        if not capable:
            return [], "no_capacity"
        candidates = list(capable)
        if self.max_outstanding is not None:
            candidates = [rid for rid in candidates
                          if cores[rid].outstanding < self.max_outstanding]
            if not candidates:
                return [], "queue"
        if self.slo_budget is not None:
            deadline = self.slo_budget * slo_cycles[req.tenant]
            candidates = [
                rid for rid in candidates
                if cores[rid].backlog_cycles + cores[rid].isolated_latency(
                    req.tenant) + hop_cycles <= deadline
            ]
            if not candidates:
                return [], "slo"
        if self.fairness:
            budget = self.max_outstanding * sum(
                1 for rid in capable) * tenant_share[req.tenant]
            if tenant_outstanding[req.tenant] + 1 > max(1.0, budget):
                return [], "fairness"
        return candidates, None
