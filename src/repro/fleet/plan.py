"""Fleet topology: N serving replicas behind one link-priced front end.

A :class:`FleetPlan` is the static description the fleet engine
simulates: an ordered tuple of :class:`~repro.serve.partition.ServingPlan`
replicas (each a complete single-system plan — spatial, temporal, or
sharded multi-chip; homogeneous fleets repeat one plan object,
heterogeneous fleets mix them), the :class:`~repro.arch.ChipLink` pricing
the front-end↔replica hop, and the request/response payload sizes that
hop carries.

:func:`build_fleet` is the compile-side helper: it plans ``replicas``
identical systems through **one shared**
:class:`~repro.perf.CompileCache`, so an N-replica homogeneous fleet
compiles each unique model exactly once — replica 2..N hit the cache for
every profile, duplication search, and segment simulation (the cache's
hit counters make this assertable in tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch import ChipLink, CIMArchitecture
from ..errors import ScheduleError
from ..perf import CompileCache, default_compile_cache, fastpath_enabled
from ..sched import CompilerOptions
from ..serve import ServingPlan, TenantSpec, make_plan
from ..perf.incremental import IncrementalCompiler

#: Default payload sizes for the front-end↔replica hop: a request ships
#: an input activation tensor (say a 32x32x3 image at 8 bits), a
#: response ships logits — small, so the response leg is mostly the
#: link's head latency.
REQUEST_BITS = 24_576.0
RESPONSE_BITS = 256.0


@dataclass(frozen=True)
class FleetPlan:
    """Everything the fleet engine needs: replicas, link, payloads.

    ``replicas`` is the *maximum* fleet — the autoscaler activates and
    drains a prefix-ordered subset at runtime.  Every replica must serve
    the same tenant set (capacities may differ); requests for a tenant no
    replica serves are a planning error, not a routing outcome.
    """

    replicas: Tuple[ServingPlan, ...]
    link: ChipLink = field(default_factory=ChipLink)
    request_bits: float = REQUEST_BITS
    response_bits: float = RESPONSE_BITS

    def __post_init__(self) -> None:
        """Validate replica count, payloads, and tenant-set agreement."""
        if not self.replicas:
            raise ScheduleError("a fleet needs at least one replica")
        if self.request_bits < 0 or self.response_bits < 0:
            raise ScheduleError("hop payload sizes must be >= 0")
        names = {t.spec.name for t in self.replicas[0].tenants}
        for rid, plan in enumerate(self.replicas[1:], start=1):
            if {t.spec.name for t in plan.tenants} != names:
                raise ScheduleError(
                    f"replica {rid} serves a different tenant set than "
                    f"replica 0; every replica must serve every tenant")

    @property
    def size(self) -> int:
        """Maximum replica count."""
        return len(self.replicas)

    @property
    def arch_name(self) -> str:
        """Display name: the common arch, or ``mixed`` when heterogeneous."""
        archs = {p.arch_name for p in self.replicas}
        return archs.pop() if len(archs) == 1 else "mixed"

    @property
    def tenant_names(self) -> Tuple[str, ...]:
        """Tenant names in replica-0 plan order."""
        return tuple(t.spec.name for t in self.replicas[0].tenants)

    def hop_cycles(self, inbound: bool) -> float:
        """One-way front-end↔replica hop latency (request or response)."""
        bits = self.request_bits if inbound else self.response_bits
        return self.link.transfer_cycles(bits, hops=1)

    def roundtrip_energy(self) -> float:
        """Link energy one served request pays (both directions)."""
        return self.link.roundtrip_energy(self.request_bits,
                                          self.response_bits)

    def deploy_cost(self, rid: int) -> Tuple[float, float]:
        """``(cycles, energy)`` to bring replica ``rid`` up from cold.

        Every tenant's full weight program must land before the replica
        serves.  Energy always sums across tenants; cycles sum on a
        shared (temporal) executor but run concurrently across spatial
        regions or sharded chips, so there the slowest tenant bounds the
        spin-up latency.
        """
        plan = self.replicas[rid]
        cycles = [t.service.deploy_cycles for t in plan.tenants]
        energy = sum(t.service.deploy_energy for t in plan.tenants)
        if not cycles:
            return 0.0, 0.0
        return (sum(cycles) if plan.shared_executor else max(cycles)), energy

    def with_replicas(self, n: int) -> "FleetPlan":
        """The same fleet truncated (or grown by repeating replica 0)
        to ``n`` replicas — the replica-count sweep axis."""
        if n < 1:
            raise ScheduleError(f"fleet size must be >= 1, got {n}")
        if n <= self.size:
            reps = self.replicas[:n]
        else:
            reps = self.replicas + self.replicas[:1] * (n - self.size)
        return FleetPlan(replicas=reps, link=self.link,
                         request_bits=self.request_bits,
                         response_bits=self.response_bits)


def build_fleet(arch: CIMArchitecture, specs: Sequence[TenantSpec],
                replicas: int, mode: str = "spatial",
                options: Optional[CompilerOptions] = None,
                cache: Optional[CompileCache] = None,
                link: Optional[ChipLink] = None,
                request_bits: float = REQUEST_BITS,
                response_bits: float = RESPONSE_BITS,
                **plan_kwargs) -> FleetPlan:
    """Plan a homogeneous ``replicas``-wide fleet, compiling each unique
    model exactly once.

    All replica plans run through one shared
    :class:`~repro.perf.CompileCache` (supplied or created here): replica
    0 pays the compiles, replicas 1..N-1 are pure cache hits.  With the
    fast path on, one shared :class:`~repro.perf.IncrementalCompiler`
    additionally delta-patches the spatial water-filling probes across
    replicas (and, downstream, across autoscaler resizes).
    ``plan_kwargs`` reach :func:`~repro.serve.partition.make_plan`
    (e.g. ``power_budget=``, ``chips=`` for sharded mode).
    """
    if replicas < 1:
        raise ScheduleError(f"fleet size must be >= 1, got {replicas}")
    cache = cache or default_compile_cache()
    if "incremental" not in plan_kwargs and fastpath_enabled():
        plan_kwargs = dict(plan_kwargs,
                           incremental=IncrementalCompiler(cache=cache))
    plans: List[ServingPlan] = [
        make_plan(mode, arch, specs, options, cache=cache, **plan_kwargs)
        for _ in range(replicas)
    ]
    return FleetPlan(replicas=tuple(plans),
                     link=link if link is not None else ChipLink(),
                     request_bits=request_bits,
                     response_bits=response_bits)
