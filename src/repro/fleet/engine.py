"""The fleet discrete-event engine: one loop, many replica cores.

This is the serve engine lifted one level: the same
:class:`~repro.serve.engine.EventLoop` and
:class:`~repro.serve.engine.ReplicaCore` machinery, but with N cores —
one per replica — behind a front end that admits
(:class:`~repro.fleet.admission.AdmissionControl`), routes
(:mod:`repro.fleet.router`), and autoscales
(:class:`~repro.fleet.autoscaler.Autoscaler`).  Five event kinds drive
it: the three replica-level kinds the serve engine already uses
(arrival, batch timer, batch complete — payloads tagged with the replica
id) plus two fleet-level ones (front-end routing, autoscaler ticks).

Time and energy accounting:

* A routed request travels the front-end→replica hop (priced by the
  plan's :class:`~repro.arch.ChipLink`) before it can queue; its latency
  is measured *at the front end* — from trace arrival to batch
  completion plus the response hop — so fleet percentiles include both
  link legs.
* The energy ledger separates replica compute energy (the serve cores'
  tally), link energy (request leg charged at routing, response leg per
  completion), and deployment energy (every spin-up's full weight
  program, plus one charge per initially active replica — capacity is
  never free, which is what makes energy-per-request vs. replica count
  an honest trade-off).

Determinism is inherited, not re-proven: the shared event loop orders
ties by push sequence, routers and the autoscaler are rebuilt from their
own ``describe()``/config before every run (so their mutable state never
leaks across runs), and nothing consumes randomness — same plan, trace,
and knobs ⇒ bit-identical :class:`~repro.fleet.report.FleetReport`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ScheduleError
from ..serve.engine import (
    _ARRIVAL,
    _COMPLETE,
    _TIMER,
    BatchPolicy,
    EventLoop,
    ReplicaCore,
    TimeoutBatch,
)
from ..serve.report import TenantStats, percentile
from ..serve.workload import Request
from .admission import AdmissionControl
from .autoscaler import Autoscaler
from .plan import FleetPlan
from .report import FleetReport, ReplicaStats
from .router import LeastLoaded, Router, parse_router

#: Fleet-level event kinds (replica-level kinds are 0..2).  ``_READY``
#: wakes one executor after a fault-injected stall; ``_FAIL`` kills a
#: replica mid-trace; ``_DRIFT`` fires a drift-forced weight rewrite.
_ROUTE, _TICK, _READY = 3, 4, 5
_FAIL, _DRIFT = 6, 7


class FleetEngine:
    """Runs one (fleet plan, trace) scenario to completion."""

    def __init__(self, plan: FleetPlan,
                 policy: Optional[BatchPolicy] = None,
                 router: Optional[Router] = None,
                 admission: Optional[AdmissionControl] = None,
                 autoscaler: Optional[Autoscaler] = None,
                 max_queue: Optional[int] = None,
                 slo_factor: float = 10.0,
                 fault=None) -> None:
        self.plan = plan
        self.policy = policy or TimeoutBatch(max_size=8, timeout=50_000.0)
        self.router = router or LeastLoaded()
        self.admission = admission or AdmissionControl()
        self.autoscaler = autoscaler
        self.max_queue = max_queue
        self.slo_factor = slo_factor
        # A zero fault model is the fault-free engine, bit for bit.
        self.fault = None if fault is not None and fault.is_zero() else fault
        if self.fault is not None \
                and self.fault.chip_death_time is not None \
                and self.fault.chip_death_rid >= plan.size:
            raise ScheduleError(
                f"chip death targets replica {self.fault.chip_death_rid}; "
                f"the fleet has replicas 0..{plan.size - 1}")
        if autoscaler is not None and autoscaler.min_replicas > plan.size:
            raise ScheduleError(
                f"autoscaler floor {autoscaler.min_replicas} exceeds the "
                f"fleet's {plan.size} replicas")
        # Validate plans/policy eagerly (constructor contract).
        for rid, replica in enumerate(plan.replicas):
            ReplicaCore(replica, self.policy, max_queue=max_queue, rid=rid)

    # ------------------------------------------------------------------

    def _resolve_slos(self, cores: Sequence[ReplicaCore]
                      ) -> Dict[str, float]:
        """Per-tenant SLO in cycles: the spec's absolute value, else
        ``slo_factor`` times the *slowest* replica's isolated latency
        (conservative under heterogeneous capacities)."""
        slos: Dict[str, float] = {}
        for t in self.plan.replicas[0].tenants:
            if t.spec.slo_cycles is not None:
                slos[t.spec.name] = t.spec.slo_cycles
            else:
                slos[t.spec.name] = self.slo_factor * max(
                    core.isolated_latency(t.spec.name) for core in cores)
        return slos

    def run(self, trace: Sequence[Request],
            recorder=None) -> FleetReport:
        """Simulate the whole trace and build the fleet report.

        ``recorder`` (a :class:`repro.trace.TraceRecorder`) optionally
        captures the run as a span timeline — per-replica queue/batch/
        switch spans plus the front-end link hops and autoscaler
        deployments; ``None`` (the default) records nothing and adds no
        work.  When recording, the report's digest incorporates the
        trace digest.
        """
        plan = self.plan
        fault = self.fault
        if fault is not None and fault.link_derate != 1.0:
            # A degraded front-end link stretches both hops and raises
            # per-bit cycles; energy per bit is unchanged.
            plan = dataclasses.replace(plan,
                                       link=fault.degrade_link(plan.link))
        # Fresh stateful collaborators per run: a router's rotation
        # pointer or the autoscaler's hold counter must not leak between
        # runs (determinism contract).  Custom routers that do not
        # round-trip through parse_router() must reset themselves.
        try:
            router = parse_router(self.router.describe())
        except ScheduleError:
            router = self.router
        autoscaler = (dataclasses.replace(self.autoscaler)
                      if self.autoscaler is not None else None)
        hop_in = plan.hop_cycles(inbound=True)
        hop_out = plan.hop_cycles(inbound=False)
        hop_rt = hop_in + hop_out
        cores = [ReplicaCore(p, self.policy, max_queue=self.max_queue,
                             rid=rid, recorder=recorder,
                             track_prefix=f"replica:{rid}/",
                             enqueue_offset=hop_in)
                 for rid, p in enumerate(plan.replicas)]
        slo_cycles = self._resolve_slos(cores)
        specs = [t.spec for t in plan.replicas[0].tenants]
        total_weight = sum(s.weight for s in specs)
        tenant_share = {s.name: s.weight / total_weight for s in specs}
        req_energy = plan.link.transfer_energy(plan.request_bits, 1)
        resp_energy = plan.link.transfer_energy(plan.response_bits, 1)

        initial = (autoscaler.min_replicas if autoscaler is not None
                   else plan.size)
        active: List[int] = list(range(initial))     # ascending rids
        ready_at = {rid: 0.0 for rid in active}
        deployments = {rid: 0 for rid in range(plan.size)}
        deploy_energy = 0.0
        link_energy = 0.0
        horizon = 0.0
        # Initially active replicas were deployed before t=0: their spin
        # -up latency is outside the window but the weight program's
        # energy is on the ledger — capacity is never free.
        for rid in active:
            _, energy = plan.deploy_cost(rid)
            deploy_energy += energy
            deployments[rid] += 1

        front_rejected: Dict[str, int] = {name: 0 for name in slo_cycles}
        reasons: Dict[str, int] = {}
        tenant_outstanding: Dict[str, int] = {n: 0 for n in slo_cycles}
        backlog_est: Dict[Tuple[int, str], float] = {}
        scale_events: List[Tuple[float, str, int]] = []

        loop = EventLoop()
        for req in trace:
            loop.push(req.arrival, _ROUTE, req)
        if autoscaler is not None and trace:
            last = trace[-1].arrival
            k = 1
            while k * autoscaler.tick_cycles <= last:
                loop.push(k * autoscaler.tick_cycles, _TICK, None)
                k += 1

        # -- fault injection state (all dormant when fault is None) ----
        dead: set = set()
        drift_rewrites = 0
        drift_stall = 0.0
        fault_energy = 0.0
        lost = 0
        rerouted = 0
        rerouted_hops: List[Tuple[int, str, float]] = []
        death_info: Optional[Dict] = None
        last_arrival = trace[-1].arrival if trace else 0.0
        if fault is not None:
            if fault.drift_interval is not None \
                    and fault.drift_interval <= last_arrival:
                loop.push(fault.drift_interval, _DRIFT, 1)
            if fault.chip_death_time is not None:
                loop.push(fault.chip_death_time, _FAIL,
                          fault.chip_death_rid)

        def est(rid: int, tenant: str) -> float:
            key = (rid, tenant)
            if key not in backlog_est:
                backlog_est[key] = cores[rid].interval(tenant)
            return backlog_est[key]

        while loop:
            now, kind, payload = loop.pop()
            horizon = max(horizon, now)
            if kind == _ROUTE:
                req = payload
                capable = [rid for rid in active
                           if ready_at[rid] <= now
                           and cores[rid].serves(req.tenant)]
                candidates, reason = self.admission.screen(
                    req, capable, cores, slo_cycles, hop_rt,
                    tenant_outstanding, tenant_share)
                if reason is not None:
                    front_rejected[req.tenant] += 1
                    reasons[reason] = reasons.get(reason, 0) + 1
                    continue
                rid = router.route(req, now, cores, candidates)
                core = cores[rid]
                core.note_pending(req.tenant)
                core.outstanding += 1
                core.backlog_cycles += est(rid, req.tenant)
                tenant_outstanding[req.tenant] += 1
                link_energy += req_energy
                loop.push(now + hop_in, _ARRIVAL, (rid, req))
            elif kind == _ARRIVAL:
                rid, req = payload
                core = cores[rid]
                if rid in dead:
                    # Landed on a chip that died while the request was in
                    # flight: unwind the routing bookkeeping and re-route
                    # (the request re-pays the inbound hop).
                    core.pending[req.tenant] -= 1
                    core.outstanding -= 1
                    core.backlog_cycles -= est(rid, req.tenant)
                    tenant_outstanding[req.tenant] -= 1
                    rerouted += 1
                    loop.push(now, _ROUTE, req)
                elif not core.on_arrival(req, now, loop):
                    # Bounced off the replica-local queue bound after
                    # admission let it through (the front end's load
                    # signals are estimates, not reservations).
                    core.outstanding -= 1
                    core.backlog_cycles -= est(rid, req.tenant)
                    tenant_outstanding[req.tenant] -= 1
                    reasons["replica_queue"] = \
                        reasons.get("replica_queue", 0) + 1
                elif recorder is not None:
                    # The inbound hop the request just completed (only
                    # admitted requests carry link spans — the replayer
                    # regenerates hops from batch membership).
                    recorder.span(f"hop_in:{req.index}", "link",
                                  req.arrival, hop_in,
                                  f"replica:{rid}/link", index=req.index,
                                  tenant=req.tenant, rid=rid)
            elif kind == _TIMER:
                rid, tenant = payload
                if rid not in dead:
                    cores[rid].on_timer(tenant, now, loop)
            elif kind == _COMPLETE:
                rid, ex_name, batch, dispatched = payload
                core = cores[rid]
                if rid in dead:
                    # The chip died with this batch in flight: the work
                    # is lost, the requests count as rejected (they
                    # arrived and were never answered).
                    for req in batch:
                        core.outstanding -= 1
                        core.backlog_cycles -= est(rid, req.tenant)
                        tenant_outstanding[req.tenant] -= 1
                        front_rejected[req.tenant] += 1
                        lost += 1
                    reasons["chip_death"] = \
                        reasons.get("chip_death", 0) + len(batch)
                    continue
                core.on_complete(ex_name, batch, now, loop,
                                 latency_at=now + hop_out,
                                 dispatched=dispatched)
                horizon = max(horizon, now + hop_out)
                for req in batch:
                    core.outstanding -= 1
                    core.backlog_cycles -= est(rid, req.tenant)
                    tenant_outstanding[req.tenant] -= 1
                    link_energy += resp_energy
                    if recorder is not None:
                        recorder.span(f"hop_out:{req.index}", "link",
                                      now, hop_out,
                                      f"replica:{rid}/link",
                                      index=req.index, tenant=req.tenant,
                                      rid=rid)
            elif kind == _TICK:
                outstanding = sum(cores[rid].outstanding for rid in active)
                action = autoscaler.decide(outstanding, len(active),
                                           plan.size)
                if action == "up":
                    spares = [r for r in range(plan.size)
                              if r not in active and r not in dead]
                    if spares:
                        rid = spares[0]
                        cycles, energy = plan.deploy_cost(rid)
                        active.append(rid)
                        active.sort()
                        ready_at[rid] = now + cycles
                        deploy_energy += energy
                        deployments[rid] += 1
                        scale_events.append((now, "up", rid))
                        if recorder is not None:
                            # Initial actives were deployed before t=0
                            # and get no spans; only in-window ones do.
                            recorder.span(f"deploy:{rid}",
                                          "reconfiguration",
                                          now, cycles,
                                          f"replica:{rid}/deploy",
                                          rid=rid, energy=energy)
                elif action == "down":
                    rid = active.pop()   # highest id drains
                    scale_events.append((now, "down", rid))
            elif kind == _READY:
                # An executor finished a fault-injected stall: re-check
                # its queues (nothing else wakes it if no traffic lands).
                rid, ex_name = payload
                if rid not in dead:
                    cores[rid].wake(ex_name, now, loop)
            elif kind == _DRIFT:
                round_no = payload
                for rid in active:
                    if ready_at[rid] > now:
                        continue   # still programming: weights are fresh
                    core = cores[rid]
                    for ex in core.executors:
                        tenant = ex.resident or ex.tenants[0].spec.name
                        service = ex.plan(tenant).service
                        cycles = service.deploy_cycles
                        energy = service.deploy_energy
                        if cycles <= 0 and energy <= 0:
                            continue
                        start = max(now, ex.busy_until)
                        ex.busy_until = start + cycles
                        ex.busy_cycles += cycles
                        drift_rewrites += 1
                        drift_stall += cycles
                        fault_energy += energy
                        if recorder is not None:
                            recorder.span(
                                f"drift:{round_no}:{ex.name}", "fault",
                                start, cycles,
                                f"replica:{rid}/ex:{ex.name}",
                                rid=rid, executor=ex.name, tenant=tenant,
                                deadline=now, cycles=cycles,
                                energy=energy, round=round_no)
                        loop.push(ex.busy_until, _READY, (rid, ex.name))
                nxt = (round_no + 1) * fault.drift_interval
                if nxt <= last_arrival:
                    loop.push(nxt, _DRIFT, round_no + 1)
            else:  # _FAIL
                rid = payload
                was_active = rid in active
                n_active = len(active)
                dead.add(rid)
                recovery = None
                spare = None
                if was_active:
                    active.remove(rid)
                    scale_events.append((now, "fail", rid))
                    core = cores[rid]
                    # Flush undispatched queues back through the front
                    # end: the requests re-route (and re-pay the hop).
                    for tenant, q in core.queues.items():
                        for req in q:
                            core.outstanding -= 1
                            core.backlog_cycles -= est(rid, tenant)
                            tenant_outstanding[tenant] -= 1
                            rerouted += 1
                            rerouted_hops.append(
                                (req.index, tenant, req.arrival))
                            loop.push(now, _ROUTE, req)
                        q.clear()
                    spares = [r for r in range(plan.size)
                              if r not in active and r not in dead]
                    if spares:
                        spare = spares[0]
                        cycles, energy = plan.deploy_cost(spare)
                        active.append(spare)
                        active.sort()
                        ready_at[spare] = now + cycles
                        deploy_energy += energy
                        deployments[spare] += 1
                        scale_events.append((now, "up", spare))
                        recovery = cycles
                        if recorder is not None:
                            recorder.span(f"deploy:{spare}",
                                          "reconfiguration",
                                          now, cycles,
                                          f"replica:{spare}/deploy",
                                          rid=spare, energy=energy)
                    if recorder is not None:
                        recorder.span(f"chip_death:{rid}", "fault", now,
                                      recovery if recovery is not None
                                      else 0.0,
                                      f"replica:{rid}/fault", rid=rid,
                                      recovered=spare is not None,
                                      replacement=spare)
                death_info = {
                    "time": now, "rid": rid, "was_active": was_active,
                    "replicas_at_death": n_active,
                    "replacement": spare, "recovery_cycles": recovery,
                }

        for core in cores:
            core.assert_drained()

        fault_ledger = None
        if fault is not None:
            availability = 1.0
            if death_info is not None and death_info["was_active"] \
                    and horizon > 0:
                t0 = death_info["time"]
                down = (death_info["recovery_cycles"]
                        if death_info["recovery_cycles"] is not None
                        else max(0.0, horizon - t0))
                down = min(down, max(0.0, horizon - t0))
                denom = horizon * death_info["replicas_at_death"]
                availability = 1.0 - (down / denom if denom > 0 else 0.0)
            fault_ledger = {
                "model": fault.to_dict(),
                "drift_rewrites": drift_rewrites,
                "drift_stall_cycles": drift_stall,
                "fault_energy": fault_energy,
                "availability": availability,
                "chip_death": death_info,
                "lost_requests": lost,
                "rerouted_requests": rerouted,
            }

        trace_digest = None
        if recorder is not None:
            if fault is not None:
                recorder.configure(fault={
                    "chip_death_time": fault.chip_death_time,
                    "chip_death_rid": fault.chip_death_rid,
                    "drift_interval": fault.drift_interval,
                    "rerouted_hops": [list(h) for h in rerouted_hops],
                })
            link = plan.link
            recorder.configure(
                kind="fleet", policy=self.policy.describe(),
                max_size=self.policy.max_size,
                batch_timeout=getattr(self.policy, "timeout", None),
                router=self.router.describe(),
                admission=self.admission.describe(),
                fleet_size=plan.size,
                hop_in=hop_in, hop_out=hop_out,
                request_bits=plan.request_bits,
                response_bits=plan.response_bits,
                link={"bandwidth_bits": link.bandwidth_bits,
                      "latency_cycles": link.latency_cycles,
                      "serialization_overhead":
                          link.serialization_overhead,
                      "energy_per_bit": link.energy_per_bit},
                completed=sum(len(v) for core in cores
                              for v in core.finished.values()),
                rejected=sum(front_rejected.values()) + sum(
                    n for core in cores
                    for n in core.rejected.values()))
            trace_digest = recorder.finish().digest()
        return self._build_report(cores, slo_cycles, horizon,
                                  front_rejected, reasons, scale_events,
                                  deployments, deploy_energy, link_energy,
                                  initial, autoscaler, trace_digest,
                                  fault_ledger)

    # ------------------------------------------------------------------

    def _build_report(self, cores, slo_cycles, horizon, front_rejected,
                      reasons, scale_events, deployments, deploy_energy,
                      link_energy, initial, autoscaler,
                      trace_digest=None, fault_ledger=None) -> FleetReport:
        """Merge per-core tallies into one :class:`FleetReport`."""
        plan = self.plan
        tenant_stats: List[TenantStats] = []
        for t in plan.replicas[0].tenants:
            name = t.spec.name
            lats = [f.latency for core in cores
                    for f in core.finished[name]]
            completed = len(lats)
            rejected = front_rejected[name] + sum(
                core.rejected[name] for core in cores)
            sizes = [s for core in cores for s in core.batch_sizes[name]]
            slo = slo_cycles[name]
            arrived = completed + rejected
            tenant_stats.append(TenantStats(
                tenant=name,
                model=t.spec.model,
                arrived=arrived,
                completed=completed,
                rejected=rejected,
                throughput_per_mcycle=(completed * 1e6 / horizon
                                       if horizon > 0 else 0.0),
                p50=percentile(lats, 50),
                p95=percentile(lats, 95),
                p99=percentile(lats, 99),
                mean_latency=sum(lats) / completed if completed else 0.0,
                max_latency=max(lats) if lats else 0.0,
                slo_cycles=slo,
                slo_attainment=(sum(1 for lat in lats if lat <= slo)
                                / arrived if arrived else 1.0),
                batches=len(sizes),
                mean_batch=sum(sizes) / len(sizes) if sizes else 0.0,
                latencies=tuple(lats),
                energy=sum(core.tenant_energy[name] for core in cores),
            ))
        replica_stats = []
        replica_energy = 0.0
        for core in cores:
            busy = sum(ex.busy_cycles for ex in core.executors)
            energy = sum(ex.energy for ex in core.executors)
            replica_energy += energy
            replica_stats.append(ReplicaStats(
                rid=core.rid,
                mode=core.plan.mode,
                arch=core.plan.arch_name,
                completed=sum(len(v) for v in core.finished.values()),
                busy_cycles=busy,
                switch_cycles=sum(ex.switch_cycles
                                  for ex in core.executors),
                switches=sum(ex.switches for ex in core.executors),
                # Mean over the replica's executors (spatial regions run
                # concurrently, so raw busy cycles can exceed the horizon).
                utilization=(busy / (len(core.executors) * horizon)
                             if horizon > 0 else 0.0),
                energy=energy,
                deployments=deployments[core.rid],
            ))
        return FleetReport(
            arch=plan.arch_name,
            fleet_size=plan.size,
            policy=self.policy.describe(),
            router=self.router.describe(),
            admission=self.admission.describe(),
            autoscaler=(autoscaler.describe()
                        if autoscaler is not None else None),
            horizon_cycles=horizon,
            tenants=tuple(tenant_stats),
            replicas=tuple(replica_stats),
            rejections=reasons,
            scale_events=tuple(scale_events),
            replica_energy=replica_energy,
            deploy_energy=deploy_energy,
            link_energy=link_energy,
            initial_active=initial,
            trace_digest=trace_digest,
            fault=fault_ledger,
        )


def simulate_fleet(plan: FleetPlan, trace: Sequence[Request],
                   policy: Optional[BatchPolicy] = None,
                   router: Optional[Router] = None,
                   admission: Optional[AdmissionControl] = None,
                   autoscaler: Optional[Autoscaler] = None,
                   max_queue: Optional[int] = None,
                   slo_factor: float = 10.0,
                   recorder=None, fault=None) -> FleetReport:
    """One-call facade: run ``trace`` through the fleet.

    Defaults: timeout batching (as single-system serving), least-loaded
    routing, open admission, no autoscaling (the whole fleet active).
    ``recorder`` optionally captures the run as a span timeline (see
    :mod:`repro.trace`); ``fault`` (a :class:`~repro.faults.FaultModel`)
    injects run-time faults — drift-forced weight rewrites, a mid-trace
    chip death with re-routing and recovery, a derated front-end link.
    A ``None`` or zero fault is the fault-free engine, bit for bit.
    """
    return FleetEngine(plan, policy=policy, router=router,
                       admission=admission, autoscaler=autoscaler,
                       max_queue=max_queue, slo_factor=slo_factor,
                       fault=fault).run(trace, recorder=recorder)
