"""Serving metrics: tail latency, throughput, utilization, SLO attainment.

A :class:`ServeReport` is a plain frozen value object built once per
simulation.  It keeps every per-request latency (traces are short), so
``to_dict()`` round-trips the complete outcome — the determinism tests
assert bit-identical dicts across runs — and renders the classic serving
table (per-tenant p50/p95/p99, throughput in requests per mega-cycle,
executor utilization, reconfiguration share).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


def percentile(latencies: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not latencies:
        return 0.0
    if not 0 < q <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {q}")
    ordered = sorted(latencies)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class TenantStats:
    """Serving outcome of one tenant."""

    tenant: str
    model: str
    arrived: int
    completed: int
    rejected: int
    throughput_per_mcycle: float
    p50: float
    p95: float
    p99: float
    mean_latency: float
    max_latency: float
    slo_cycles: float
    slo_attainment: float
    batches: int
    mean_batch: float
    latencies: Tuple[float, ...]   # per-request, completion order
    #: Energy this tenant's traffic consumed: every batch it dispatched
    #: plus every weight reprogram its switches triggered.
    energy: float = 0.0

    @property
    def energy_per_request(self) -> float:
        """Mean energy per completed request (switch energy amortized)."""
        return self.energy / self.completed if self.completed else 0.0

    def to_dict(self) -> Dict:
        """JSON-able export of this tenant's statistics."""
        return {
            "tenant": self.tenant,
            "model": self.model,
            "arrived": self.arrived,
            "completed": self.completed,
            "rejected": self.rejected,
            "throughput_per_mcycle": self.throughput_per_mcycle,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "mean_latency": self.mean_latency,
            "max_latency": self.max_latency,
            "slo_cycles": self.slo_cycles,
            "slo_attainment": self.slo_attainment,
            "batches": self.batches,
            "mean_batch": self.mean_batch,
            "energy": self.energy,
            "energy_per_request": self.energy_per_request,
            "latencies": list(self.latencies),
        }


@dataclass(frozen=True)
class ExecutorStats:
    """Occupancy of one hardware share."""

    name: str
    tenants: Tuple[str, ...]
    busy_cycles: float
    switch_cycles: float
    switches: int
    utilization: float
    #: Energy this hardware share consumed over the scenario.
    energy: float = 0.0
    #: Worst-case draw of this share (its hungriest tenant's peak).
    peak_power: float = 0.0

    def to_dict(self) -> Dict:
        """JSON-able export of this executor's occupancy."""
        return {
            "name": self.name,
            "tenants": list(self.tenants),
            "busy_cycles": self.busy_cycles,
            "switch_cycles": self.switch_cycles,
            "switches": self.switches,
            "utilization": self.utilization,
            "energy": self.energy,
            "peak_power": self.peak_power,
        }


@dataclass(frozen=True)
class ServeReport:
    """Complete outcome of one serving scenario."""

    mode: str
    arch: str
    policy: str
    horizon_cycles: float
    tenants: Tuple[TenantStats, ...]
    executors: Tuple[ExecutorStats, ...]
    #: The chip-level peak-power cap the plan honoured (None = uncapped).
    power_budget: Optional[float] = None
    #: Digest of the span timeline recorded alongside this run (None
    #: when recording was off — the export, and therefore the report
    #: digest, is then bit-identical to pre-trace builds).
    trace_digest: Optional[str] = None

    # -- aggregates ----------------------------------------------------

    @property
    def completed(self) -> int:
        """Requests finished across all tenants."""
        return sum(t.completed for t in self.tenants)

    @property
    def rejected(self) -> int:
        """Requests dropped by queue bounds across all tenants."""
        return sum(t.rejected for t in self.tenants)

    @property
    def throughput_per_mcycle(self) -> float:
        """Completed requests per mega-cycle of simulated time."""
        if self.horizon_cycles <= 0:
            return 0.0
        return self.completed * 1e6 / self.horizon_cycles

    def _all_latencies(self) -> List[float]:
        return [lat for t in self.tenants for lat in t.latencies]

    @property
    def p50(self) -> float:
        """Median end-to-end latency over every completed request."""
        return percentile(self._all_latencies(), 50)

    @property
    def p95(self) -> float:
        """95th-percentile end-to-end latency."""
        return percentile(self._all_latencies(), 95)

    @property
    def p99(self) -> float:
        """99th-percentile (tail) end-to-end latency."""
        return percentile(self._all_latencies(), 99)

    @property
    def slo_attainment(self) -> float:
        """Share of arrivals finishing within their tenant's SLO."""
        arrived = sum(t.arrived for t in self.tenants)
        if arrived == 0:
            return 1.0
        met = sum(
            sum(1 for lat in t.latencies if lat <= t.slo_cycles)
            for t in self.tenants
        )
        return met / arrived

    @property
    def utilization(self) -> float:
        """Mean executor occupancy (a spatial plan averages regions)."""
        if not self.executors:
            return 0.0
        return sum(e.utilization for e in self.executors) / \
            len(self.executors)

    @property
    def switch_cycles(self) -> float:
        """Total cycles burnt reprogramming weights on tenant switches."""
        return sum(e.switch_cycles for e in self.executors)

    @property
    def total_energy(self) -> float:
        """Energy the whole scenario consumed (all executors summed)."""
        return sum(e.energy for e in self.executors)

    @property
    def avg_power(self) -> float:
        """Mean draw over the horizon: total energy / simulated cycles."""
        if self.horizon_cycles <= 0:
            return 0.0
        return self.total_energy / self.horizon_cycles

    @property
    def peak_power(self) -> float:
        """Worst-case concurrent draw: regions sum (they compute at the
        same time); a temporal chip runs one tenant at a time, so its
        single executor already carries the max."""
        if not self.executors:
            return 0.0
        peaks = [e.peak_power for e in self.executors]
        return max(peaks) if self.mode == "temporal" else sum(peaks)

    # -- export --------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-able export of the whole scenario outcome."""
        out = {
            "mode": self.mode,
            "arch": self.arch,
            "policy": self.policy,
            "horizon_cycles": self.horizon_cycles,
            "completed": self.completed,
            "rejected": self.rejected,
            "throughput_per_mcycle": self.throughput_per_mcycle,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "slo_attainment": self.slo_attainment,
            "utilization": self.utilization,
            "switch_cycles": self.switch_cycles,
            "total_energy": self.total_energy,
            "avg_power": self.avg_power,
            "peak_power": self.peak_power,
            "power_budget": self.power_budget,
            "tenants": [t.to_dict() for t in self.tenants],
            "executors": [e.to_dict() for e in self.executors],
        }
        if self.trace_digest is not None:
            out["trace_digest"] = self.trace_digest
        return out

    def to_json(self, indent: Optional[int] = 1) -> str:
        """The :meth:`to_dict` export as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    def digest(self) -> str:
        """SHA-256 of the canonical JSON export.

        When the run was recorded, the export embeds the trace digest,
        so the report digest also pins the exact timeline the run
        produced (a recorded run is verifiably the run analyzed).
        """
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    def table(self) -> str:
        """Readable serving summary."""
        lines = [
            f"serve {self.arch} mode={self.mode} policy={self.policy}",
            f"horizon: {self.horizon_cycles:,.0f} cycles | "
            f"completed {self.completed} | rejected {self.rejected} | "
            f"throughput {self.throughput_per_mcycle:.2f} req/Mcycle",
            f"latency p50/p95/p99: {self.p50:,.0f} / {self.p95:,.0f} / "
            f"{self.p99:,.0f} cycles | SLO attainment "
            f"{self.slo_attainment:.1%}",
            f"utilization {self.utilization:.1%} | reconfiguration "
            f"{self.switch_cycles:,.0f} cycles",
            f"energy {self.total_energy:,.0f} | avg power "
            f"{self.avg_power:,.3f} | peak power {self.peak_power:,.1f}"
            + (f" (budget {self.power_budget:,.1f})"
               if self.power_budget is not None else ""),
        ]
        header = (f"  {'tenant':<14} {'done':>6} {'rej':>5} {'p50':>10} "
                  f"{'p99':>12} {'req/Mcyc':>9} {'SLO':>7} {'batch':>6}")
        lines.append(header)
        for t in self.tenants:
            lines.append(
                f"  {t.tenant:<14} {t.completed:>6} {t.rejected:>5} "
                f"{t.p50:>10,.0f} {t.p99:>12,.0f} "
                f"{t.throughput_per_mcycle:>9.2f} "
                f"{t.slo_attainment:>6.1%} {t.mean_batch:>6.1f}"
            )
        return "\n".join(lines)


def build_report(plan, policy_label: str,
                 finished: Dict[str, List[Tuple]],
                 rejected: Dict[str, int],
                 batch_sizes: Dict[str, List[int]],
                 horizon: float,
                 executors: Sequence[Tuple],
                 slo_factor: float = 10.0,
                 tenant_energy: Optional[Dict[str, float]] = None,
                 trace_digest: Optional[str] = None
                 ) -> ServeReport:
    """Assemble a :class:`ServeReport` from raw engine tallies.

    Each tenant's SLO is its spec's absolute ``slo_cycles`` when set,
    otherwise ``slo_factor`` times its isolated single-inference latency
    under this plan.  ``executors`` rows are ``(name, tenant names, busy,
    switch cycles, switches, energy)``; ``tenant_energy`` carries the
    engine's per-tenant energy tally (defaults to zero).
    """
    tenant_energy = tenant_energy or {}
    tenant_stats: List[TenantStats] = []
    for tp in plan.tenants:
        name = tp.spec.name
        lats = [f.latency for f in finished[name]]
        completed = len(lats)
        slo = tp.spec.slo_cycles if tp.spec.slo_cycles is not None \
            else slo_factor * tp.service.latency_cycles
        sizes = batch_sizes[name]
        tenant_stats.append(TenantStats(
            tenant=name,
            model=tp.spec.model,
            arrived=completed + rejected[name],
            completed=completed,
            rejected=rejected[name],
            throughput_per_mcycle=(completed * 1e6 / horizon
                                   if horizon > 0 else 0.0),
            p50=percentile(lats, 50),
            p95=percentile(lats, 95),
            p99=percentile(lats, 99),
            mean_latency=sum(lats) / completed if completed else 0.0,
            max_latency=max(lats) if lats else 0.0,
            slo_cycles=slo,
            slo_attainment=(sum(1 for lat in lats if lat <= slo)
                            / (completed + rejected[name])
                            if completed + rejected[name] else 1.0),
            batches=len(sizes),
            mean_batch=sum(sizes) / len(sizes) if sizes else 0.0,
            latencies=tuple(lats),
            energy=tenant_energy.get(name, 0.0),
        ))
    exec_stats = tuple(
        ExecutorStats(
            name=name,
            tenants=tuple(tenant_names),
            busy_cycles=busy,
            switch_cycles=switch,
            switches=switches,
            utilization=busy / horizon if horizon > 0 else 0.0,
            energy=energy,
            peak_power=max((plan.tenant(t).service.peak_power
                            for t in tenant_names), default=0.0),
        )
        for name, tenant_names, busy, switch, switches, energy in executors
    )
    return ServeReport(
        mode=plan.mode,
        arch=plan.arch_name,
        policy=policy_label,
        horizon_cycles=horizon,
        tenants=tuple(tenant_stats),
        executors=exec_stats,
        power_budget=getattr(plan, "power_budget", None),
        trace_digest=trace_digest,
    )
