"""Multi-tenant inference serving simulator.

The compiler stack answers "how fast is one inference"; this package
answers the *online* question the ROADMAP's north star poses: what
throughput, tail latency, and SLO attainment does a compiled schedule
deliver under a live request stream, when segment reconfiguration — the
dominant cost of weight movement on ReRAM/FLASH crossbars (Section 2.1)
— is paid whenever the chip switches tenants?

* :mod:`~repro.serve.workload` — seeded request traces (Poisson, bursty
  MMPP, diurnal ramp) over mixed model populations.
* :mod:`~repro.serve.partition` — spatial chip partitioning (per-tenant
  core regions, region-constrained placement, weights stay resident)
  versus the time-multiplexed baseline that reprograms crossbars on
  every tenant switch; :func:`~repro.serve.partition.plan_sharded`
  spans each tenant across several chips of a
  :class:`~repro.arch.MultiChipSystem` (via :mod:`repro.scale`).
* :mod:`~repro.serve.engine` — deterministic discrete-event loop with
  per-model queues and dynamic batching (fixed-size / timeout).
* :mod:`~repro.serve.report` — p50/p95/p99 latency, throughput,
  utilization, and SLO attainment.
* :mod:`~repro.serve.sweep` — capacity grids (arrival rate x partition x
  batch policy) riding the :mod:`repro.explore` result cache.

Quickstart
----------
>>> from repro.arch import isaac_baseline
>>> from repro.serve import TenantSpec, make_plan, poisson_trace, simulate
>>> tenants = [TenantSpec("resnet18", "resnet18"),
...            TenantSpec("mobilenet", "mobilenet")]
>>> plan = make_plan("spatial", isaac_baseline(), tenants)
>>> trace = poisson_trace(tenants, rate=10e-6, num_requests=50, seed=0)
>>> report = simulate(plan, trace)
>>> 0 < report.p99 and report.completed == 50
True
"""

from .engine import (
    EventLoop,
    FixedBatch,
    ReplicaCore,
    ServingEngine,
    TimeoutBatch,
    parse_policy,
    simulate,
)
from .partition import (
    MODES,
    ServiceProfile,
    ServingPlan,
    TenantPlan,
    fit_power_budget,
    make_plan,
    min_cores,
    partition_cores,
    plan_sharded,
    plan_spatial,
    plan_temporal,
    resolve_graphs,
)
from .report import ExecutorStats, ServeReport, TenantStats, percentile
from .sweep import ServeSweepPoint, build_plans, capacity_table, serve_sweep
from .workload import (
    TRACES,
    Request,
    TenantSpec,
    bursty_trace,
    diurnal_bursty_trace,
    diurnal_trace,
    make_trace,
    poisson_trace,
    tenant_counts,
    trace_digest,
)

__all__ = [
    "EventLoop",
    "ExecutorStats",
    "FixedBatch",
    "MODES",
    "ReplicaCore",
    "Request",
    "ServeReport",
    "ServeSweepPoint",
    "ServiceProfile",
    "ServingEngine",
    "ServingPlan",
    "TRACES",
    "TenantPlan",
    "TenantSpec",
    "TenantStats",
    "TimeoutBatch",
    "build_plans",
    "bursty_trace",
    "capacity_table",
    "diurnal_bursty_trace",
    "diurnal_trace",
    "fit_power_budget",
    "make_plan",
    "make_trace",
    "min_cores",
    "parse_policy",
    "partition_cores",
    "percentile",
    "plan_sharded",
    "plan_spatial",
    "plan_temporal",
    "poisson_trace",
    "resolve_graphs",
    "serve_sweep",
    "simulate",
    "tenant_counts",
    "trace_digest",
]
