"""Deterministic discrete-event serving engine.

One :class:`Executor` models a hardware share: the whole chip (temporal
plan) or one tenant's core region (spatial plan).  Requests land in
per-tenant FIFO queues; a :class:`BatchPolicy` decides when a queue's
head becomes a dispatchable batch; dispatch occupies the executor for
``switch + latency + (B - 1) * interval`` cycles, where ``switch`` is the
tenant's weight-(re)program cost paid only when the executor's resident
tenant changes.

Everything is driven off a single event heap keyed ``(time, seq)`` with a
monotonically increasing sequence number, so simulation order — and
therefore every reported number — is a pure function of the trace, the
plan, and the policy.  No wall clock, no RNG.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ScheduleError
from .partition import ServingPlan, TenantPlan
from .report import ServeReport, build_report
from .workload import Request

_ARRIVAL, _TIMER, _COMPLETE = 0, 1, 2


# ---------------------------------------------------------------------------
# Batching policies
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FixedBatch:
    """Dispatch exactly ``size`` requests at a time.

    A queue is ready once ``size`` requests wait; smaller remainders are
    flushed only when no further arrival can top the queue up (the trace
    is finite, so the tail never deadlocks).
    """

    size: int

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ScheduleError(f"batch size must be >= 1, got {self.size}")

    @property
    def max_size(self) -> int:
        """Largest batch this policy ever dispatches."""
        return self.size

    def ready(self, queue_len: int, oldest_wait: float,
              more_arrivals: bool) -> bool:
        """Whether the queue head can dispatch now."""
        return queue_len >= self.size or (queue_len > 0 and not more_arrivals)

    def deadline(self, oldest_arrival: float) -> Optional[float]:
        """Fixed batching never forces a flush; no timer needed."""
        return None

    def describe(self) -> str:
        """CLI-parsable policy label (``fixed:N``)."""
        return f"fixed:{self.size}"


@dataclass(frozen=True)
class TimeoutBatch:
    """Dispatch up to ``max_size`` requests, or whatever has queued once
    the oldest request has waited ``timeout`` cycles.

    The classic dynamic-batching compromise: full batches under load,
    bounded queueing delay when traffic is thin.
    """

    max_size: int
    timeout: float

    def __post_init__(self) -> None:
        if self.max_size < 1:
            raise ScheduleError(
                f"batch size must be >= 1, got {self.max_size}")
        if self.timeout < 0:
            raise ScheduleError(
                f"batch timeout must be >= 0, got {self.timeout}")

    def ready(self, queue_len: int, oldest_wait: float,
              more_arrivals: bool) -> bool:
        """Whether the queue head can dispatch now."""
        if queue_len >= self.max_size:
            return True
        if queue_len > 0 and not more_arrivals:
            return True
        return queue_len > 0 and oldest_wait >= self.timeout

    def deadline(self, oldest_arrival: float) -> Optional[float]:
        """When the oldest request's timeout forces a flush."""
        return oldest_arrival + self.timeout

    def describe(self) -> str:
        """CLI-parsable policy label (``timeout:N:CYCLES``)."""
        return f"timeout:{self.max_size}:{self.timeout:g}"


def parse_policy(text: str) -> "BatchPolicy":
    """Parse a CLI policy spec: ``fixed:N`` or ``timeout:N:CYCLES``."""
    parts = text.split(":")
    try:
        if parts[0] == "fixed" and len(parts) == 2:
            return FixedBatch(int(parts[1]))
        if parts[0] == "timeout" and len(parts) == 3:
            return TimeoutBatch(int(parts[1]), float(parts[2]))
    except ValueError:
        pass
    raise ScheduleError(
        f"bad batch policy {text!r}; expected fixed:N or timeout:N:CYCLES")


BatchPolicy = object  # duck-typed: FixedBatch | TimeoutBatch


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------


@dataclass
class _Executor:
    """One hardware share serving one or more tenant queues."""

    name: str
    tenants: List[TenantPlan]
    busy_until: float = 0.0
    resident: Optional[str] = None   # tenant whose weights are loaded
    busy_cycles: float = 0.0
    switch_cycles: float = 0.0
    switches: int = 0
    energy: float = 0.0              # batches + weight reprograms

    def plan(self, tenant: str) -> TenantPlan:
        for t in self.tenants:
            if t.spec.name == tenant:
                return t
        raise ScheduleError(f"executor {self.name}: unknown tenant {tenant!r}")


class ServingEngine:
    """Runs one (plan, trace, policy) scenario to completion."""

    def __init__(self, plan: ServingPlan, policy: BatchPolicy,
                 max_queue: Optional[int] = None) -> None:
        if max_queue is not None and max_queue < 1:
            raise ScheduleError(f"max_queue must be >= 1, got {max_queue}")
        self.plan = plan
        self.policy = policy
        self.max_queue = max_queue
        if plan.shared_executor:
            self.executors = [_Executor("chip", list(plan.tenants))]
        else:
            self.executors = [
                _Executor(f"region:{t.spec.name}", [t])
                for t in plan.tenants
            ]
        self._by_tenant = {
            t.spec.name: ex
            for ex in self.executors for t in ex.tenants
        }

    # ------------------------------------------------------------------

    def run(self, trace: Sequence[Request],
            slo_factor: float = 10.0) -> ServeReport:
        """Simulate the whole trace and build the report."""
        queues: Dict[str, List[Request]] = {
            t.spec.name: [] for t in self.plan.tenants
        }
        pending = {name: 0 for name in queues}
        for req in trace:
            if req.tenant not in queues:
                raise ScheduleError(
                    f"trace request for unknown tenant {req.tenant!r}")
            pending[req.tenant] += 1

        events: List[Tuple[float, int, int, object]] = []
        seq = 0
        for req in trace:
            heapq.heappush(events, (req.arrival, seq, _ARRIVAL, req))
            seq += 1

        finished: Dict[str, List[Tuple[Request, float]]] = {
            name: [] for name in queues
        }
        rejected = {name: 0 for name in queues}
        batch_sizes: Dict[str, List[int]] = {name: [] for name in queues}
        tenant_energy: Dict[str, float] = {name: 0.0 for name in queues}
        horizon = 0.0

        def try_dispatch(ex: _Executor, now: float) -> None:
            nonlocal seq, horizon
            if ex.busy_until > now:
                return
            # Ready tenants on this executor, FIFO across queues: serve
            # the earliest-waiting head; ties fall back to tenant order.
            best: Optional[TenantPlan] = None
            for t in ex.tenants:
                q = queues[t.spec.name]
                if not q:
                    continue
                wait = now - q[0].arrival
                if self.policy.ready(len(q), wait,
                                     pending[t.spec.name] > 0):
                    if best is None or q[0].arrival < \
                            queues[best.spec.name][0].arrival:
                        best = t
                else:
                    deadline = self.policy.deadline(q[0].arrival)
                    if deadline is not None and deadline > now:
                        heapq.heappush(
                            events, (deadline, seq, _TIMER, t.spec.name))
                        seq += 1
            if best is None:
                return
            q = queues[best.spec.name]
            batch = q[:self.policy.max_size]
            del q[:len(batch)]
            switch = 0.0
            switch_energy = 0.0
            if ex.resident != best.spec.name:
                switch = best.service.switch_cycles
                switch_energy = best.service.switch_energy
                if ex.resident is not None or switch > 0:
                    ex.switches += 1
                ex.resident = best.spec.name
            service = best.service.batch_cycles(len(batch))
            done = now + switch + service
            ex.busy_until = done
            ex.busy_cycles += switch + service
            ex.switch_cycles += switch
            energy = switch_energy + best.service.batch_energy(len(batch))
            ex.energy += energy
            tenant_energy[best.spec.name] += energy
            batch_sizes[best.spec.name].append(len(batch))
            horizon = max(horizon, done)
            heapq.heappush(events, (done, seq, _COMPLETE,
                                    (ex.name, tuple(batch))))
            seq += 1

        by_name = {ex.name: ex for ex in self.executors}
        while events:
            now, _, kind, payload = heapq.heappop(events)
            horizon = max(horizon, now)
            if kind == _ARRIVAL:
                req = payload
                pending[req.tenant] -= 1
                q = queues[req.tenant]
                if self.max_queue is not None and \
                        len(q) >= self.max_queue:
                    rejected[req.tenant] += 1
                else:
                    q.append(req)
                try_dispatch(self._by_tenant[req.tenant], now)
            elif kind == _TIMER:
                try_dispatch(self._by_tenant[payload], now)
            else:  # _COMPLETE
                ex_name, batch = payload
                ex = by_name[ex_name]
                for req in batch:
                    finished[req.tenant].append((req, now - req.arrival))
                try_dispatch(ex, now)

        for name, q in queues.items():
            if q:  # pragma: no cover - defensive; flush rules drain queues
                raise ScheduleError(
                    f"engine finished with {len(q)} undispatched "
                    f"requests for {name!r}")

        return build_report(
            plan=self.plan,
            policy_label=self.policy.describe(),
            finished=finished,
            rejected=rejected,
            batch_sizes=batch_sizes,
            horizon=horizon,
            executors=[
                (ex.name, [t.spec.name for t in ex.tenants],
                 ex.busy_cycles, ex.switch_cycles, ex.switches, ex.energy)
                for ex in self.executors
            ],
            slo_factor=slo_factor,
            tenant_energy=tenant_energy,
        )


def simulate(plan: ServingPlan, trace: Sequence[Request],
             policy: Optional[BatchPolicy] = None,
             max_queue: Optional[int] = None,
             slo_factor: float = 10.0) -> ServeReport:
    """One-call facade: run ``trace`` through ``plan`` under ``policy``.

    ``slo_factor`` derives each tenant's latency SLO as ``factor x`` its
    isolated single-inference latency unless the spec pins an absolute
    ``slo_cycles``.
    """
    policy = policy or TimeoutBatch(max_size=8, timeout=50_000.0)
    return ServingEngine(plan, policy, max_queue=max_queue).run(
        trace, slo_factor=slo_factor)
