"""Deterministic discrete-event serving engine.

One :class:`_Executor` models a hardware share: the whole chip (temporal
plan) or one tenant's core region (spatial plan).  Requests land in
per-tenant FIFO queues; a :class:`BatchPolicy` decides when a queue's
head becomes a dispatchable batch; dispatch occupies the executor for
``switch + latency + (B - 1) * interval`` cycles, where ``switch`` is the
tenant's weight-(re)program cost paid only when the executor's resident
tenant changes.

Everything is driven off a single event heap keyed ``(time, seq)`` with a
monotonically increasing sequence number, so simulation order — and
therefore every reported number — is a pure function of the trace, the
plan, and the policy.  No wall clock, no RNG.

The queue/dispatch machinery is factored into :class:`ReplicaCore` so
that the same deterministic core drives both this single-system engine
and the datacenter-scale fleet engine (:mod:`repro.fleet.engine`), which
runs many cores — one per replica — off one shared :class:`EventLoop`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..errors import ScheduleError
from .partition import ServingPlan, TenantPlan
from .report import ServeReport, build_report
from .workload import Request

#: Event kinds shared by the serve and fleet engines.  Ordering ties on
#: the heap are broken by the per-loop sequence number, never by kind.
_ARRIVAL, _TIMER, _COMPLETE = 0, 1, 2


class FinishedRequest(NamedTuple):
    """One completed request with its internal timestamps exposed.

    ``latency`` is measured at the engine's front end (for the fleet:
    completion plus the response hop, minus trace arrival);
    ``dispatched`` / ``completed`` are the request's batch's executor
    begin/end times — kept on the record (instead of being discarded
    after aggregation) so the trace layer and post-hoc analyses can
    reconstruct per-request timelines.
    """

    request: Request
    latency: float
    dispatched: float
    completed: float


class EventLoop:
    """A deterministic ``(time, seq)``-keyed event heap.

    The single source of simulated time for one scenario.  Every pushed
    event gets the next value of a monotonically increasing sequence
    number, so two events at the same timestamp pop in push order —
    simulation order is a pure function of the inputs, never of hash
    order or wall clock.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, object]] = []
        self._seq = 0

    def push(self, time: float, kind: int, payload: object) -> None:
        """Schedule ``payload`` of event ``kind`` at ``time``."""
        heapq.heappush(self._heap, (time, self._seq, kind, payload))
        self._seq += 1

    def pop(self) -> Tuple[float, int, object]:
        """The earliest ``(time, kind, payload)`` event."""
        time, _, kind, payload = heapq.heappop(self._heap)
        return time, kind, payload

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


# ---------------------------------------------------------------------------
# Batching policies
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FixedBatch:
    """Dispatch exactly ``size`` requests at a time.

    A queue is ready once ``size`` requests wait; smaller remainders are
    flushed only when no further arrival can top the queue up (the trace
    is finite, so the tail never deadlocks).
    """

    size: int

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ScheduleError(f"batch size must be >= 1, got {self.size}")

    @property
    def max_size(self) -> int:
        """Largest batch this policy ever dispatches."""
        return self.size

    def ready(self, queue_len: int, oldest_wait: float,
              more_arrivals: bool) -> bool:
        """Whether the queue head can dispatch now."""
        return queue_len >= self.size or (queue_len > 0 and not more_arrivals)

    def deadline(self, oldest_arrival: float) -> Optional[float]:
        """Fixed batching never forces a flush; no timer needed."""
        return None

    def describe(self) -> str:
        """CLI-parsable policy label (``fixed:N``)."""
        return f"fixed:{self.size}"


@dataclass(frozen=True)
class TimeoutBatch:
    """Dispatch up to ``max_size`` requests, or whatever has queued once
    the oldest request has waited ``timeout`` cycles.

    The classic dynamic-batching compromise: full batches under load,
    bounded queueing delay when traffic is thin.
    """

    max_size: int
    timeout: float

    def __post_init__(self) -> None:
        if self.max_size < 1:
            raise ScheduleError(
                f"batch size must be >= 1, got {self.max_size}")
        if self.timeout < 0:
            raise ScheduleError(
                f"batch timeout must be >= 0, got {self.timeout}")

    def ready(self, queue_len: int, oldest_wait: float,
              more_arrivals: bool) -> bool:
        """Whether the queue head can dispatch now."""
        if queue_len >= self.max_size:
            return True
        if queue_len > 0 and not more_arrivals:
            return True
        return queue_len > 0 and oldest_wait >= self.timeout

    def deadline(self, oldest_arrival: float) -> Optional[float]:
        """When the oldest request's timeout forces a flush."""
        return oldest_arrival + self.timeout

    def describe(self) -> str:
        """CLI-parsable policy label (``timeout:N:CYCLES``)."""
        return f"timeout:{self.max_size}:{self.timeout:g}"


def parse_policy(text: str) -> "BatchPolicy":
    """Parse a CLI policy spec: ``fixed:N`` or ``timeout:N:CYCLES``."""
    parts = text.split(":")
    try:
        if parts[0] == "fixed" and len(parts) == 2:
            return FixedBatch(int(parts[1]))
        if parts[0] == "timeout" and len(parts) == 3:
            return TimeoutBatch(int(parts[1]), float(parts[2]))
    except ValueError:
        pass
    raise ScheduleError(
        f"bad batch policy {text!r}; expected fixed:N or timeout:N:CYCLES")


BatchPolicy = object  # duck-typed: FixedBatch | TimeoutBatch


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------


@dataclass
class _Executor:
    """One hardware share serving one or more tenant queues."""

    name: str
    tenants: List[TenantPlan]
    busy_until: float = 0.0
    resident: Optional[str] = None   # tenant whose weights are loaded
    busy_cycles: float = 0.0
    switch_cycles: float = 0.0
    switches: int = 0
    energy: float = 0.0              # batches + weight reprograms

    def plan(self, tenant: str) -> TenantPlan:
        """This executor's plan entry for ``tenant``."""
        for t in self.tenants:
            if t.spec.name == tenant:
                return t
        raise ScheduleError(f"executor {self.name}: unknown tenant {tenant!r}")


class ReplicaCore:
    """The queue/batch/dispatch state machine of one serving system.

    Owns per-tenant FIFO queues, the executors of one
    :class:`~repro.serve.partition.ServingPlan`, and every tally a
    :class:`~repro.serve.report.ServeReport` is built from.  It is
    driven externally: the caller owns the :class:`EventLoop`, pops
    events, and calls back into :meth:`on_arrival` / :meth:`on_timer` /
    :meth:`on_complete`.  Event payloads are tagged with ``rid`` (the
    replica id) so many cores can share one loop — the fleet engine
    (:mod:`repro.fleet.engine`) runs one core per replica; the
    single-system :class:`ServingEngine` runs exactly one.
    """

    def __init__(self, plan: ServingPlan, policy: BatchPolicy,
                 max_queue: Optional[int] = None, rid: int = 0,
                 recorder=None, track_prefix: str = "",
                 enqueue_offset: float = 0.0) -> None:
        if max_queue is not None and max_queue < 1:
            raise ScheduleError(f"max_queue must be >= 1, got {max_queue}")
        self.plan = plan
        self.policy = policy
        self.max_queue = max_queue
        self.rid = rid
        #: Optional :class:`repro.trace.TraceRecorder`; ``None`` (the
        #: default) records nothing and adds no work on the hot path.
        self.recorder = recorder
        #: Span track namespace (the fleet engine prefixes each core's
        #: tracks with ``replica:<rid>/``).
        self.track_prefix = track_prefix
        #: Enqueue time minus trace arrival (the fleet's front-end →
        #: replica hop); only consulted when recording.
        self.enqueue_offset = enqueue_offset
        if plan.shared_executor:
            self.executors = [_Executor("chip", list(plan.tenants))]
        else:
            self.executors = [
                _Executor(f"region:{t.spec.name}", [t])
                for t in plan.tenants
            ]
        self._by_tenant = {
            t.spec.name: ex
            for ex in self.executors for t in ex.tenants
        }
        self._by_name = {ex.name: ex for ex in self.executors}
        self.queues: Dict[str, List[Request]] = {
            t.spec.name: [] for t in plan.tenants
        }
        #: Arrivals still en route to this core's queues (per tenant);
        #: the batch policies' "more arrivals may come" signal.
        self.pending: Dict[str, int] = {name: 0 for name in self.queues}
        self.finished: Dict[str, List[FinishedRequest]] = {
            name: [] for name in self.queues
        }
        self.rejected: Dict[str, int] = {name: 0 for name in self.queues}
        self.batch_sizes: Dict[str, List[int]] = {
            name: [] for name in self.queues
        }
        self.tenant_energy: Dict[str, float] = {
            name: 0.0 for name in self.queues
        }
        self.horizon = 0.0
        #: How many requests are queued or in service right now —
        #: the router's load signal (maintained incrementally).
        self.outstanding = 0
        #: Estimated cycles of work queued or in service right now
        #: (per-request steady-state intervals; maintained incrementally).
        self.backlog_cycles = 0.0

    # ------------------------------------------------------------------

    def serves(self, tenant: str) -> bool:
        """Whether this core has a queue (and executor) for ``tenant``."""
        return tenant in self.queues

    def note_pending(self, tenant: str) -> None:
        """Announce one future arrival for ``tenant`` (routed but not
        yet landed); pairs with the decrement inside :meth:`on_arrival`."""
        if tenant not in self.pending:
            raise ScheduleError(
                f"trace request for unknown tenant {tenant!r}")
        self.pending[tenant] += 1

    def interval(self, tenant: str) -> float:
        """The tenant's steady-state service interval on this core."""
        return self._by_tenant[tenant].plan(tenant).service.interval_cycles

    def isolated_latency(self, tenant: str) -> float:
        """The tenant's isolated single-inference latency on this core."""
        return self._by_tenant[tenant].plan(tenant).service.latency_cycles

    def try_dispatch(self, ex: _Executor, now: float,
                     loop: EventLoop) -> None:
        """Dispatch the best ready batch on ``ex``, arming flush timers
        for queues that are waiting on their timeout."""
        if ex.busy_until > now:
            return
        # Ready tenants on this executor, FIFO across queues: serve
        # the earliest-waiting head; ties fall back to tenant order.
        best: Optional[TenantPlan] = None
        for t in ex.tenants:
            q = self.queues[t.spec.name]
            if not q:
                continue
            wait = now - q[0].arrival
            if self.policy.ready(len(q), wait,
                                 self.pending[t.spec.name] > 0):
                if best is None or q[0].arrival < \
                        self.queues[best.spec.name][0].arrival:
                    best = t
            else:
                deadline = self.policy.deadline(q[0].arrival)
                if deadline is not None and deadline > now:
                    loop.push(deadline, _TIMER, (self.rid, t.spec.name))
        if best is None:
            return
        q = self.queues[best.spec.name]
        batch = q[:self.policy.max_size]
        del q[:len(batch)]
        switch = 0.0
        switch_energy = 0.0
        if ex.resident != best.spec.name:
            switch = best.service.switch_cycles
            switch_energy = best.service.switch_energy
            if ex.resident is not None or switch > 0:
                ex.switches += 1
            ex.resident = best.spec.name
        service = best.service.batch_cycles(len(batch))
        done = now + switch + service
        ex.busy_until = done
        ex.busy_cycles += switch + service
        ex.switch_cycles += switch
        energy = switch_energy + best.service.batch_energy(len(batch))
        ex.energy += energy
        self.tenant_energy[best.spec.name] += energy
        self.batch_sizes[best.spec.name].append(len(batch))
        self.horizon = max(self.horizon, done)
        if self.recorder is not None:
            self._record_batch(ex, best.spec.name, batch, now, switch,
                               service)
        loop.push(done, _COMPLETE, (self.rid, ex.name, tuple(batch), now))

    def _record_batch(self, ex: _Executor, tenant: str,
                      batch: Sequence[Request], now: float,
                      switch: float, service: float) -> None:
        """Emit the dispatched batch's spans (recording runs only).

        ``ready`` pins *why* the batch became dispatchable — ``full``
        (hit ``max_size``), ``deadline`` (the oldest request's batching
        timeout), or ``now`` (a tail flush) — and ``t_ready`` the
        corresponding readiness time, exactly what the what-if replayer
        re-derives under mutated parameters.
        """
        from ..trace.capture import emit_batch_spans

        oldest = batch[0].arrival
        filled = batch[-1].arrival + self.enqueue_offset
        deadline = self.policy.deadline(oldest)
        if len(batch) >= self.policy.max_size:
            ready, t_ready = "full", filled
        elif deadline is not None and deadline <= now:
            ready, t_ready = "deadline", deadline
        else:
            ready, t_ready = "now", filled
        emit_batch_spans(
            self.recorder, self.track_prefix, ex.name, tenant,
            [req.index for req in batch],
            [req.arrival for req in batch],
            self.enqueue_offset, now, switch, service,
            t_ready, filled, oldest, ready)

    def on_arrival(self, req: Request, now: float, loop: EventLoop) -> bool:
        """One request lands: enqueue (or bounce off ``max_queue``) and
        attempt a dispatch.  Returns ``False`` when the queue bound
        rejected the request."""
        self.pending[req.tenant] -= 1
        q = self.queues[req.tenant]
        admitted = True
        if self.max_queue is not None and len(q) >= self.max_queue:
            self.rejected[req.tenant] += 1
            admitted = False
        else:
            q.append(req)
        self.try_dispatch(self._by_tenant[req.tenant], now, loop)
        return admitted

    def on_timer(self, tenant: str, now: float, loop: EventLoop) -> None:
        """A batching-timeout timer fired for ``tenant``'s queue."""
        self.try_dispatch(self._by_tenant[tenant], now, loop)

    def wake(self, ex_name: str, now: float, loop: EventLoop) -> None:
        """Re-check dispatch on one executor by name.

        Used by fault injection: a drift-forced weight rewrite occupies
        an executor outside any batch, so nothing else would re-examine
        its queues when the stall ends."""
        self.try_dispatch(self._by_name[ex_name], now, loop)

    def on_complete(self, ex_name: str, batch: Sequence[Request],
                    now: float, loop: EventLoop,
                    latency_at: Optional[float] = None,
                    dispatched: float = 0.0) -> None:
        """A batch finished: record per-request latencies and re-dispatch.

        ``latency_at`` lets the fleet engine measure latency at the
        front end (completion plus the response hop) while the executor
        frees up at ``now``; ``dispatched`` is the batch's executor
        begin time (carried on the completion event payload).
        """
        measured = now if latency_at is None else latency_at
        for req in batch:
            self.finished[req.tenant].append(FinishedRequest(
                req, measured - req.arrival, dispatched, now))
        self.try_dispatch(self._by_name[ex_name], now, loop)

    def drained(self) -> bool:
        """Whether every queue is empty (trace fully dispatched)."""
        return not any(self.queues.values())

    def assert_drained(self) -> None:
        """Raise when undispatched requests remain after the loop ended."""
        for name, q in self.queues.items():
            if q:  # pragma: no cover - defensive; flush rules drain queues
                raise ScheduleError(
                    f"engine finished with {len(q)} undispatched "
                    f"requests for {name!r}")

    def executor_rows(self) -> List[Tuple]:
        """``build_report``-shaped executor tallies."""
        return [
            (ex.name, [t.spec.name for t in ex.tenants],
             ex.busy_cycles, ex.switch_cycles, ex.switches, ex.energy)
            for ex in self.executors
        ]


class ServingEngine:
    """Runs one (plan, trace, policy) scenario to completion."""

    def __init__(self, plan: ServingPlan, policy: BatchPolicy,
                 max_queue: Optional[int] = None) -> None:
        self.plan = plan
        self.policy = policy
        self.max_queue = max_queue
        # Validate the plan/policy eagerly (constructor contract).
        self._core = ReplicaCore(plan, policy, max_queue=max_queue)

    # ------------------------------------------------------------------

    def run(self, trace: Sequence[Request], slo_factor: float = 10.0,
            recorder=None) -> ServeReport:
        """Simulate the whole trace and build the report.

        ``recorder`` (a :class:`repro.trace.TraceRecorder`) optionally
        captures the run as a span timeline; ``None`` (the default)
        records nothing and adds no work.  When recording, the report's
        digest incorporates the trace digest, so a recorded run is
        verifiably the run that was analyzed.
        """
        core = ReplicaCore(self.plan, self.policy, max_queue=self.max_queue,
                           recorder=recorder)
        loop = EventLoop()
        for req in trace:
            core.note_pending(req.tenant)
        for req in trace:
            loop.push(req.arrival, _ARRIVAL, req)

        while loop:
            now, kind, payload = loop.pop()
            core.horizon = max(core.horizon, now)
            if kind == _ARRIVAL:
                core.on_arrival(payload, now, loop)
            elif kind == _TIMER:
                core.on_timer(payload[1], now, loop)
            else:  # _COMPLETE
                _, ex_name, batch, dispatched = payload
                core.on_complete(ex_name, batch, now, loop,
                                 dispatched=dispatched)

        core.assert_drained()
        trace_digest = None
        if recorder is not None:
            recorder.configure(
                kind="serve", policy=self.policy.describe(),
                max_size=self.policy.max_size,
                batch_timeout=getattr(self.policy, "timeout", None),
                mode=self.plan.mode, arch=self.plan.arch_name,
                completed=sum(len(v) for v in core.finished.values()),
                rejected=sum(core.rejected.values()),
                slo_factor=slo_factor)
            trace_digest = recorder.finish().digest()
        return build_report(
            plan=self.plan,
            policy_label=self.policy.describe(),
            finished=core.finished,
            rejected=core.rejected,
            batch_sizes=core.batch_sizes,
            horizon=core.horizon,
            executors=core.executor_rows(),
            slo_factor=slo_factor,
            tenant_energy=core.tenant_energy,
            trace_digest=trace_digest,
        )


def simulate(plan: ServingPlan, trace: Sequence[Request],
             policy: Optional[BatchPolicy] = None,
             max_queue: Optional[int] = None,
             slo_factor: float = 10.0,
             recorder=None) -> ServeReport:
    """One-call facade: run ``trace`` through ``plan`` under ``policy``.

    ``slo_factor`` derives each tenant's latency SLO as ``factor x`` its
    isolated single-inference latency unless the spec pins an absolute
    ``slo_cycles``.  ``recorder`` optionally captures the run as a span
    timeline (see :mod:`repro.trace`).
    """
    policy = policy or TimeoutBatch(max_size=8, timeout=50_000.0)
    return ServingEngine(plan, policy, max_queue=max_queue).run(
        trace, slo_factor=slo_factor, recorder=recorder)
