"""Capacity sweeps: (arrival rate x partition mode x batch policy) grids
riding the :mod:`repro.explore` result cache.

The expensive part of a serving study is *compilation* — one compile per
(tenant, chip share).  This bridge expresses those compilations as
:class:`~repro.explore.space.SweepPoint` entries and evaluates them
through a :class:`~repro.explore.runner.SweepRunner`, so repeated and
overlapping capacity sweeps reuse the content-addressed disk cache; the
discrete-event simulations themselves are cheap and always run fresh
from the cached service summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch import CIMArchitecture
from ..explore import SweepPoint, SweepRunner, SweepSpace
from ..sched import CompilerOptions
from .engine import BatchPolicy, TimeoutBatch, simulate
from .partition import (
    MODES,
    ServiceProfile,
    ServingPlan,
    TenantPlan,
    fit_power_budget,
    min_cores,
    partition_cores,
    resolve_graphs,
    _regions,
)
from .report import ServeReport
from .workload import TenantSpec, make_trace


@dataclass(frozen=True)
class ServeSweepPoint:
    """One cell of the capacity grid."""

    rate: float                 # requests per cycle
    mode: str
    policy: str
    report: ServeReport

    @property
    def rate_per_mcycle(self) -> float:
        """Arrival rate in requests per mega-cycle (display units)."""
        return self.rate * 1e6


def _summaries(runner: SweepRunner, points: List[SweepPoint]) -> List[Dict]:
    sweep = runner.run(SweepSpace.explicit(points))
    return [r.summary for r in sweep]


def build_plans(arch: CIMArchitecture, specs: Sequence[TenantSpec],
                modes: Sequence[str] = MODES,
                options: Optional[CompilerOptions] = None,
                runner: Optional[SweepRunner] = None,
                power_budget: Optional[float] = None
                ) -> Dict[str, ServingPlan]:
    """Serving plans per mode, compiled through the explore cache.

    Unlike :func:`~repro.serve.partition.make_plan` (live compiles and
    region placement), plans built here carry no schedules — only the
    cached service summaries the engine needs — so a warm cache makes
    them essentially free.  A ``power_budget`` is honoured exactly like
    the live planners: the spatial allocation is shrunk via
    :func:`~repro.serve.partition.fit_power_budget` (every probe riding
    the cache) and an over-budget temporal tenant raises
    :class:`~repro.errors.CapacityError`.
    """
    for mode in modes:
        if mode not in MODES:
            from ..errors import ScheduleError
            raise ScheduleError(
                f"unknown serving mode {mode!r}; choose one of {MODES}")
    runner = runner or SweepRunner()
    options = options or CompilerOptions()
    graphs = resolve_graphs(specs)
    summaries: Dict[Tuple[str, int], Dict] = {}

    def _point(spec: TenantSpec, cores: int) -> SweepPoint:
        return SweepPoint(f"serve {spec.name}", f"cores={cores}",
                          arch.with_cores(cores), graphs[spec.name],
                          options)

    def prefetch(pairs: List[Tuple[TenantSpec, int]]) -> None:
        """Evaluate independent points in one batch so the runner's
        worker pool (and cache) sees them together."""
        todo = [(s, c) for s, c in pairs if (s.name, c) not in summaries]
        results = _summaries(runner, [_point(s, c) for s, c in todo])
        for (s, c), summary in zip(todo, results):
            summaries[(s.name, c)] = summary

    def summary_for(spec: TenantSpec, cores: int) -> Dict:
        if (spec.name, cores) not in summaries:
            prefetch([(spec, cores)])
        return summaries[(spec.name, cores)]

    plans: Dict[str, ServingPlan] = {}
    # All full-chip compiles and every tenant's residency-floor compile
    # are independent of each other: batch them so ``runner``'s process
    # pool actually fans out (the water-filling grants that follow are
    # inherently sequential, one compile per grant).
    batch: List[Tuple[TenantSpec, int]] = []
    floors: Dict[str, int] = {}
    if "temporal" in modes:
        batch.extend((s, arch.chip.core_number) for s in specs)
    if "spatial" in modes:
        floors = {s.name: min_cores(graphs[s.name], arch) for s in specs}
        batch.extend((s, floors[s.name]) for s in specs)
    prefetch(batch)
    if "temporal" in modes:
        if power_budget is not None:
            from ..errors import CapacityError

            for s in specs:
                peak = float(
                    summary_for(s, arch.chip.core_number)["peak_power"])
                if peak > power_budget:
                    raise CapacityError(
                        f"tenant {s.name!r} peaks at {peak:,.1f} on the "
                        f"full chip, over the {power_budget:,.1f} budget; "
                        f"use spatial partitioning or reject the tenant")
        all_cores = tuple(range(arch.chip.core_number))
        plans["temporal"] = ServingPlan(
            mode="temporal", arch_name=arch.name,
            tenants=tuple(
                TenantPlan(
                    spec=s, cores=all_cores,
                    service=ServiceProfile.from_summary(
                        summary_for(s, arch.chip.core_number)))
                for s in specs
            ),
            power_budget=power_budget)
    if "spatial" in modes:
        alloc = partition_cores(
            arch, specs, floors,
            lambda spec, cores: summary_for(spec, cores)["total_cycles"])
        if power_budget is not None:
            surplus = arch.chip.core_number - sum(floors.values())
            alloc = fit_power_budget(
                specs, alloc, floors,
                lambda spec, cores: float(
                    summary_for(spec, cores)["peak_power"]),
                block=max(1, surplus // 8),
                power_budget=power_budget)
        regions = _regions(specs, alloc)
        plans["spatial"] = ServingPlan(
            mode="spatial", arch_name=arch.name,
            tenants=tuple(
                TenantPlan(
                    spec=s, cores=regions[s.name],
                    service=ServiceProfile.from_summary(
                        summary_for(s, alloc[s.name]), switch_cycles=0.0))
                for s in specs
            ),
            power_budget=power_budget)
    return plans


def serve_sweep(arch: CIMArchitecture, specs: Sequence[TenantSpec],
                rates: Sequence[float],
                modes: Sequence[str] = MODES,
                policies: Sequence[BatchPolicy] = (),
                trace_kind: str = "poisson",
                num_requests: int = 400,
                seed: int = 0,
                slo_factor: float = 10.0,
                max_queue: Optional[int] = None,
                options: Optional[CompilerOptions] = None,
                runner: Optional[SweepRunner] = None,
                power_budget: Optional[float] = None
                ) -> List[ServeSweepPoint]:
    """Run the full capacity grid; compilations hit the explore cache.

    ``rates`` are requests per cycle.  Each rate generates one seeded
    trace shared by every (mode, policy) cell, so cells differ only in
    the serving configuration.  ``power_budget`` caps every plan's
    concurrent peak power (see :func:`build_plans`).
    """
    policies = list(policies) or [TimeoutBatch(max_size=8, timeout=50_000.0)]
    plans = build_plans(arch, specs, modes=modes, options=options,
                        runner=runner, power_budget=power_budget)
    out: List[ServeSweepPoint] = []
    for rate in rates:
        trace = make_trace(trace_kind, specs, rate, num_requests, seed=seed)
        for mode in modes:
            for policy in policies:
                report = simulate(plans[mode], trace, policy=policy,
                                  max_queue=max_queue,
                                  slo_factor=slo_factor)
                out.append(ServeSweepPoint(rate=rate, mode=mode,
                                           policy=policy.describe(),
                                           report=report))
    return out


def capacity_table(points: Sequence[ServeSweepPoint]) -> str:
    """Text grid: one row per (rate, policy), p99 + SLO per mode."""
    modes = []
    for p in points:
        if p.mode not in modes:
            modes.append(p.mode)
    header = f"{'rate/Mcyc':>10} {'policy':<18}"
    for mode in modes:
        header += f" {mode + ' p99':>14} {mode + ' SLO':>13}"
    lines = [header]
    cells: Dict[Tuple[float, str], Dict[str, ServeSweepPoint]] = {}
    order: List[Tuple[float, str]] = []
    for p in points:
        key = (p.rate, p.policy)
        if key not in cells:
            cells[key] = {}
            order.append(key)
        cells[key][p.mode] = p
    for rate, policy in order:
        row = f"{rate * 1e6:>10.2f} {policy:<18}"
        for mode in modes:
            p = cells[(rate, policy)].get(mode)
            if p is None:
                row += f" {'-':>14} {'-':>13}"
            else:
                row += (f" {p.report.p99:>14,.0f} "
                        f"{p.report.slo_attainment:>12.1%}")
        lines.append(row)
    return "\n".join(lines)
