"""Multi-tenant chip partitioning: spatial regions vs. time multiplexing.

Two ways to share one chip among co-resident models:

* **Spatial** (:func:`plan_spatial`) — the chip's cores are split into
  disjoint regions, one per tenant, sized by traffic-weighted demand.
  Each model is compiled for its sub-chip and placed onto its region with
  the region-constrained NoC placement
  (:func:`repro.sched.placement.annotate_placement`).  Weights stay
  resident, so same-model requests never pay reconfiguration — the whole
  point, given that a segment swap rewrites crossbars (Section 2.1).
* **Temporal** (:func:`plan_temporal`) — the baseline: every tenant is
  compiled for the full chip and the serving engine pays
  ``weight_load_cycles`` (a full crossbar reprogram) whenever consecutive
  batches belong to different tenants.

Both planners return a :class:`ServingPlan` the engine consumes; the
explore bridge (:mod:`repro.serve.sweep`) builds the same plans from
cached performance summaries instead of live compilations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..arch import CIMArchitecture
from ..errors import CapacityError, ScheduleError
from ..graph import Graph
from ..models import get_model
from ..perf import CompileCache, default_compile_cache, fastpath_enabled
from ..sched import CIMMLC, CompilerOptions
from ..sched.costs import CostModel
from ..sched.placement import annotate_placement
from ..sched.schedule import Schedule
from ..perf.incremental import IncrementalCompiler
from .workload import TenantSpec

#: Serving plan modes.
MODES = ("spatial", "temporal")


def _implicit_cache() -> Optional[CompileCache]:
    """A planner-owned :class:`~repro.perf.CompileCache` — an *implicit*
    acceleration layer, so it is gated on the fast-path switch (an
    explicit ``cache=`` argument is honoured regardless).  Honours the
    ``REPRO_DISK_CACHE`` opt-in via
    :func:`~repro.perf.default_compile_cache`."""
    return default_compile_cache() if fastpath_enabled() else None


@dataclass(frozen=True)
class ServiceProfile:
    """Steady-state service behaviour of one compiled tenant.

    ``latency_cycles`` is one isolated inference end to end;
    ``interval_cycles`` the pipelined steady-state admission interval;
    ``switch_cycles`` what the hardware pays to bring this tenant's
    weights onto its crossbars (zero when the tenant owns its region).
    ``energy_per_inference`` / ``switch_energy`` are the energy twins of
    the two service costs, and ``peak_power`` the tenant's worst-case
    draw while computing — what a chip-level power budget water-fills
    against.

    ``deploy_cycles`` / ``deploy_energy`` are what bringing this tenant
    up *from cold* costs — the full crossbar weight program
    (``weight_load_cycles`` / ``weight_write_energy`` from the power
    model), charged regardless of mode: even a spatial tenant that never
    pays switch cost paid deployment once.  The fleet autoscaler charges
    them on every replica spin-up.
    """

    latency_cycles: float
    interval_cycles: float
    switch_cycles: float = 0.0
    energy_per_inference: float = 0.0
    switch_energy: float = 0.0
    peak_power: float = 0.0
    deploy_cycles: float = 0.0
    deploy_energy: float = 0.0

    def batch_cycles(self, n: int) -> float:
        """Service cycles for ``n`` back-to-back inferences (no switch)."""
        if n < 1:
            return 0.0
        return self.latency_cycles + (n - 1) * self.interval_cycles

    def batch_energy(self, n: int) -> float:
        """Service energy for ``n`` back-to-back inferences (no switch)."""
        if n < 1:
            return 0.0
        return n * self.energy_per_inference

    @classmethod
    def from_report(cls, report, switch_cycles: float = 0.0
                    ) -> "ServiceProfile":
        """From a live :class:`~repro.sim.performance.PerformanceReport`.

        Switch energy mirrors switch cycles: a tenant that pays the
        weight reprogram latency on a switch also pays its energy
        (``report.weight_write_energy``); a resident tenant pays neither.
        """
        return cls(latency_cycles=report.total_cycles,
                   interval_cycles=report.steady_state_interval,
                   switch_cycles=switch_cycles,
                   energy_per_inference=report.energy_per_inference,
                   switch_energy=(report.weight_write_energy
                                  if switch_cycles > 0 else 0.0),
                   peak_power=report.power.peak_power,
                   deploy_cycles=report.weight_load_cycles,
                   deploy_energy=report.weight_write_energy)

    @classmethod
    def from_summary(cls, summary: Dict,
                     switch_cycles: Optional[float] = None
                     ) -> "ServiceProfile":
        """From a cached explore summary dict (sweep-bridge path).

        ``switch_cycles`` defaults to the summary's ``weight_load_cycles``
        (the temporal-baseline cost); pass ``0.0`` for resident tenants.
        Switch energy follows switch cycles (see :meth:`from_report`).
        """
        if switch_cycles is None:
            switch_cycles = float(summary.get("weight_load_cycles", 0.0))
        return cls(latency_cycles=float(summary["total_cycles"]),
                   interval_cycles=float(summary["steady_state_interval"]),
                   switch_cycles=switch_cycles,
                   energy_per_inference=float(
                       summary.get("energy_per_inference", 0.0)),
                   switch_energy=(float(
                       summary.get("weight_write_energy", 0.0))
                       if switch_cycles > 0 else 0.0),
                   peak_power=float(summary.get("peak_power", 0.0)),
                   deploy_cycles=float(
                       summary.get("weight_load_cycles", 0.0)),
                   deploy_energy=float(
                       summary.get("weight_write_energy", 0.0)))


@dataclass(frozen=True)
class TenantPlan:
    """One tenant's share of the hardware plus its service profile."""

    spec: TenantSpec
    cores: Tuple[int, ...]            # physical core region
    service: ServiceProfile
    schedule: Optional[Schedule] = None   # live-compile path only


@dataclass(frozen=True)
class ServingPlan:
    """Everything the engine needs: mode, tenants, and hardware shares.

    ``shared_executor`` is True for the temporal baseline (one chip-wide
    executor multiplexes all tenants) and False for spatial partitioning
    (one executor per region, running concurrently).  ``power_budget``
    records the chip-level peak-power cap the planner honoured
    (``None`` = uncapped).
    """

    mode: str
    arch_name: str
    tenants: Tuple[TenantPlan, ...]
    power_budget: Optional[float] = None

    @property
    def shared_executor(self) -> bool:
        """True when one chip-wide executor multiplexes all tenants."""
        return self.mode == "temporal"

    @property
    def peak_power(self) -> float:
        """Worst-case concurrent draw of the whole plan.

        Spatial/sharded tenants compute concurrently, so peaks sum; a
        temporal chip runs one tenant at a time, so the worst single
        tenant is the plan's peak.
        """
        peaks = [t.service.peak_power for t in self.tenants]
        if not peaks:
            return 0.0
        return max(peaks) if self.shared_executor else sum(peaks)

    def tenant(self, name: str) -> TenantPlan:
        """Look up one tenant's plan by name."""
        for t in self.tenants:
            if t.spec.name == name:
                return t
        raise KeyError(f"no tenant {name!r} in plan")


def resolve_graphs(specs: Sequence[TenantSpec]) -> Dict[str, Graph]:
    """Model-zoo graphs per tenant name."""
    return {spec.name: get_model(spec.model) for spec in specs}


def min_cores(graph: Graph, arch: CIMArchitecture,
              cache: Optional[CompileCache] = None) -> int:
    """Smallest core count keeping the whole model resident (duplication
    1, single segment) — the floor a spatial region must clear."""
    profiles = CostModel(arch, cache=cache).profiles(graph)
    return sum(p.cores_per_replica for p in profiles.values() if p.is_cim)


def partition_cores(arch: CIMArchitecture, specs: Sequence[TenantSpec],
                    floors: Dict[str, int],
                    latency_fn: Callable[[TenantSpec, int], float],
                    blocks: int = 8,
                    budget: Optional[int] = None) -> Dict[str, int]:
    """Split a hardware budget among tenants by min-max water-filling.

    Every tenant starts at its residency floor; the surplus is granted in
    ``blocks`` equal chunks, each to the tenant with the highest *traffic-
    weighted isolated latency* — share of requests times
    ``latency_fn(spec, units)``.  Tail latency rides on the slowest
    tenant's single-inference latency, so equalizing this quantity is the
    p99-oriented split; it also discovers parallelism saturation (a model
    whose latency stops improving stops attracting units), which a
    demand-proportional split cannot.

    The unit is ``arch``'s cores by default; pass ``budget`` to split a
    different resource with the same policy — multi-chip serving
    (:func:`plan_sharded`) water-fills whole *chips* among tenants.

    ``latency_fn`` is measured, so each grant costs one compilation of
    the receiving tenant; callers memoize (and the sweep bridge routes it
    through the explore disk cache).
    """
    total_floor = sum(floors[s.name] for s in specs)
    hint = ("add chips" if budget is not None
            else "use temporal multiplexing")
    if budget is None:
        budget = arch.chip.core_number
    if total_floor > budget:
        raise CapacityError(
            f"tenants need {total_floor} units resident but only "
            f"{budget} are available; {hint}")
    alloc = {s.name: floors[s.name] for s in specs}
    surplus = budget - total_floor
    block = max(1, surplus // max(1, blocks))
    total_weight = sum(s.weight for s in specs)
    while surplus > 0:
        needy = None
        needy_load = -1.0
        for s in specs:
            load = s.weight / total_weight * latency_fn(s, alloc[s.name])
            if load > needy_load:
                needy, needy_load = s, load
        grant = min(block, surplus)
        alloc[needy.name] += grant
        surplus -= grant
    return alloc


def fit_power_budget(specs: Sequence[TenantSpec],
                     alloc: Dict[str, int],
                     floors: Dict[str, int],
                     peak_fn: Callable[[TenantSpec, int], float],
                     block: int,
                     power_budget: float) -> Dict[str, int]:
    """Shrink core allocations until concurrent peak power fits the budget.

    The reverse water-fill of :func:`partition_cores`: while the sum of
    per-tenant peaks (``peak_fn(spec, units)``) exceeds ``power_budget``,
    the hungriest tenant — highest peak power, name-ordered on ties — is
    *down-duplicated* by shrinking its region ``block`` cores toward its
    residency floor (fewer cores → less operator duplication → fewer
    simultaneously active crossbars).  Freed cores are left dark: the
    plan is power-bound, not core-bound.  Raises
    :class:`~repro.errors.CapacityError` when every tenant already sits
    at its floor and the mix still cannot fit — the tenant mix must be
    rejected (or given more chips).
    """
    alloc = dict(alloc)

    def total_peak() -> float:
        return sum(peak_fn(s, alloc[s.name]) for s in specs)

    while total_peak() > power_budget:
        shrinkable = [s for s in specs if alloc[s.name] > floors[s.name]]
        if not shrinkable:
            raise CapacityError(
                f"tenant mix needs peak power {total_peak():,.1f} even at "
                f"residency floors but the budget is {power_budget:,g}; "
                f"reject a tenant or raise the budget")
        worst = max(shrinkable,
                    key=lambda s: (peak_fn(s, alloc[s.name]), s.name))
        alloc[worst.name] = max(floors[worst.name],
                                alloc[worst.name] - max(1, block))
    return alloc


def _regions(specs: Sequence[TenantSpec],
             alloc: Dict[str, int],
             pool: Optional[Sequence[int]] = None
             ) -> Dict[str, Tuple[int, ...]]:
    """Contiguous physical-core blocks in tenant order (adjacent ids are
    adjacent on the mesh/H-tree generators, keeping regions compact).

    With ``pool`` the blocks are sliced from that explicit id list
    instead of ``range(...)`` — the degraded-hardware path hands in the
    surviving physical cores so dead ids are routed around."""
    regions: Dict[str, Tuple[int, ...]] = {}
    cursor = 0
    for spec in specs:
        n = alloc[spec.name]
        if pool is None:
            regions[spec.name] = tuple(range(cursor, cursor + n))
        else:
            block = tuple(pool[cursor:cursor + n])
            if len(block) < n:
                raise CapacityError(
                    f"tenant {spec.name!r} needs {n} cores but the "
                    f"surviving pool has only {len(block)} left "
                    f"(pool mask: {list(pool)})")
            regions[spec.name] = block
        cursor += n
    return regions


def plan_spatial(arch: CIMArchitecture, specs: Sequence[TenantSpec],
                 options: Optional[CompilerOptions] = None,
                 place: bool = True,
                 alloc: Optional[Dict[str, int]] = None,
                 blocks: int = 8,
                 cache: Optional[CompileCache] = None,
                 power_budget: Optional[float] = None,
                 core_pool: Optional[Sequence[int]] = None,
                 die_cores: Optional[int] = None,
                 incremental: Optional[IncrementalCompiler] = None
                 ) -> ServingPlan:
    """Compile every tenant onto its own region of the chip.

    ``core_pool`` / ``die_cores`` serve the degraded-hardware path
    (:func:`repro.faults.plan_degraded`): regions are carved from the
    explicit surviving-core id list instead of ``range(core_number)``
    and placement hop costs use the *physical* die size, so plans route
    around dead cores.  Both default to the healthy behaviour.

    Region sizes come from :func:`partition_cores` (min-max water-filling
    on measured service intervals) unless ``alloc`` pins them explicitly;
    each tenant is compiled for its region's core count and (optionally)
    placed onto the region's physical cores with the communication-aware
    greedy placement.  One :class:`~repro.perf.CompileCache` (supplied
    or created here) is shared by every water-filling compilation.

    With a ``power_budget`` the allocation is then shrunk by
    :func:`fit_power_budget` until the tenants' summed peak power fits —
    down-duplicating the hungriest tenants (the budget wins over an
    explicit ``alloc``), or raising
    :class:`~repro.errors.CapacityError` when the mix cannot fit even at
    residency floors.

    The water-filling probe compiles each tenant against a family of
    core counts — exactly the one-axis mutation
    :class:`~repro.perf.IncrementalCompiler` delta-patches.  Pass one
    via ``incremental`` to share its splice store across calls (the
    fleet builder does); otherwise one is created per call whenever the
    fast path is on and a cache is in play.
    """
    cache = cache or _implicit_cache()
    if incremental is None and cache is not None and fastpath_enabled():
        incremental = IncrementalCompiler(cache=cache)
    graphs = resolve_graphs(specs)
    floors = {s.name: min_cores(graphs[s.name], arch, cache=cache)
              for s in specs}
    results: Dict[Tuple[str, int], "CompilationResult"] = {}

    def compiled(spec: TenantSpec, cores: int):
        key = (spec.name, cores)
        if key not in results:
            if incremental is not None:
                results[key] = incremental.compile(
                    graphs[spec.name], arch.with_cores(cores), options)
            else:
                results[key] = CIMMLC(arch.with_cores(cores), options,
                                      cache=cache).compile(graphs[spec.name])
        return results[key]

    if alloc is None:
        alloc = partition_cores(
            arch, specs, floors,
            lambda spec, cores: compiled(spec, cores).report.total_cycles,
            blocks=blocks)
    else:
        used = sum(alloc[s.name] for s in specs)
        if used > arch.chip.core_number:
            raise CapacityError(
                f"allocation uses {used} cores; {arch.name} has "
                f"{arch.chip.core_number}")
        for s in specs:
            if alloc[s.name] < floors[s.name]:
                raise CapacityError(
                    f"tenant {s.name!r} needs {floors[s.name]} cores "
                    f"resident, allocated {alloc[s.name]}")
    if power_budget is not None:
        surplus = arch.chip.core_number - sum(floors.values())
        alloc = fit_power_budget(
            specs, alloc, floors,
            lambda spec, cores: compiled(spec, cores).report.power.peak_power,
            block=max(1, surplus // max(1, blocks)),
            power_budget=power_budget)
    regions = _regions(specs, alloc, pool=core_pool)
    die = arch.chip.core_number if die_cores is None else die_cores
    tenants: List[TenantPlan] = []
    for spec in specs:
        result = compiled(spec, alloc[spec.name])
        if place:
            for seg in range(len(result.schedule.segments)):
                annotate_placement(result.schedule, segment=seg,
                                   region=regions[spec.name],
                                   die_cores=die)
        tenants.append(TenantPlan(
            spec=spec,
            cores=regions[spec.name],
            service=ServiceProfile.from_report(result.report,
                                               switch_cycles=0.0),
            schedule=result.schedule,
        ))
    return ServingPlan(mode="spatial", arch_name=arch.name,
                       tenants=tuple(tenants), power_budget=power_budget)


def plan_temporal(arch: CIMArchitecture, specs: Sequence[TenantSpec],
                  options: Optional[CompilerOptions] = None,
                  cache: Optional[CompileCache] = None,
                  power_budget: Optional[float] = None,
                  core_pool: Optional[Sequence[int]] = None,
                  die_cores: Optional[int] = None) -> ServingPlan:
    """The time-multiplexed baseline: full chip per tenant, a complete
    weight reprogram (``weight_load_cycles``) on every tenant switch.

    ``core_pool`` / ``die_cores`` support degraded hardware exactly as
    in :func:`plan_spatial`: the shared executor occupies the surviving
    physical ids and schedules are placed onto them against the
    physical die size.

    A temporal chip runs one tenant at a time, so a ``power_budget``
    binds on the single hungriest tenant; a full-chip compilation cannot
    be down-duplicated, so an over-budget tenant is *rejected*
    (:class:`~repro.errors.CapacityError` — spatial partitioning can
    reshape instead).
    """
    cache = cache or _implicit_cache()
    graphs = resolve_graphs(specs)
    tenants: List[TenantPlan] = []
    if core_pool is not None:
        if len(core_pool) < arch.chip.core_number:
            raise CapacityError(
                f"core pool supplies {len(core_pool)} cores; {arch.name} "
                f"schedules need {arch.chip.core_number} "
                f"(pool mask: {list(core_pool)})")
        all_cores = tuple(core_pool)
    else:
        all_cores = tuple(range(arch.chip.core_number))
    die = arch.chip.core_number if die_cores is None else die_cores
    for spec in specs:
        result = CIMMLC(arch, options, cache=cache).compile(graphs[spec.name])
        peak = result.report.power.peak_power
        if power_budget is not None and peak > power_budget:
            raise CapacityError(
                f"tenant {spec.name!r} peaks at {peak:,.1f} on the full "
                f"chip, over the {power_budget:,.1f} budget; use spatial "
                f"partitioning (it can down-duplicate) or reject the "
                f"tenant")
        if core_pool is not None:
            for seg in range(len(result.schedule.segments)):
                annotate_placement(result.schedule, segment=seg,
                                   region=all_cores, die_cores=die)
        tenants.append(TenantPlan(
            spec=spec,
            cores=all_cores,
            service=ServiceProfile.from_report(
                result.report,
                switch_cycles=result.report.weight_load_cycles),
            schedule=result.schedule,
        ))
    return ServingPlan(mode="temporal", arch_name=arch.name,
                       tenants=tuple(tenants), power_budget=power_budget)


def plan_sharded(system: "MultiChipSystem", specs: Sequence[TenantSpec],
                 options: Optional[CompilerOptions] = None,
                 blocks: int = 4,
                 cache: Optional[CompileCache] = None) -> ServingPlan:
    """Serve tenants that each *span several chips* of a multi-chip system.

    The system's chips are water-filled among tenants with the same
    min-max policy as :func:`partition_cores` (budget = chips, floors =
    each tenant's :func:`repro.scale.min_chips`); every tenant's model is
    then sharded across its chip block with :func:`repro.scale.shard`,
    giving a pipelined multi-chip service profile.  Weights stay resident
    on every chip, so tenants never pay switch cost — the spatial story
    one level up.

    Each tenant's block is priced as :meth:`MultiChipSystem.block` — a
    contiguous sub-block with no wraparound link and no shortcuts
    through other tenants' chips.  ``TenantPlan.cores`` holds *global*
    chip ids under this mode (stage/chip indices inside each tenant's
    :class:`~repro.scale.ShardPlan` report are block-local).

    Example
    -------
    >>> from repro.arch import MultiChipSystem, functional_testbed
    >>> from repro.serve import TenantSpec, plan_sharded
    >>> plan = plan_sharded(
    ...     MultiChipSystem(functional_testbed(), 4),
    ...     [TenantSpec("lenet", "lenet"), TenantSpec("mlp", "mlp")])
    >>> plan.mode
    'sharded'
    """
    from ..scale import min_chips, shard

    cache = cache or _implicit_cache()
    graphs = resolve_graphs(specs)
    floor_cm = CostModel(system.chip, cache=cache)
    floors = {s.name: min_chips(graphs[s.name], system.chip,
                                cost_model=floor_cm)
              for s in specs}
    plans: Dict[Tuple[str, int], "ShardPlan"] = {}

    def sharded(spec: TenantSpec, chips: int):
        key = (spec.name, chips)
        if key not in plans:
            plans[key] = shard(graphs[spec.name],
                               system.block(chips), options, cache=cache)
        return plans[key]

    alloc = partition_cores(
        system.chip, specs, floors,
        lambda spec, chips: sharded(spec, chips).report.total_cycles,
        blocks=blocks, budget=system.num_chips)
    tenants: List[TenantPlan] = []
    cursor = 0
    for spec in specs:
        n = alloc[spec.name]
        plan = sharded(spec, n)
        tenants.append(TenantPlan(
            spec=spec,
            cores=tuple(range(cursor, cursor + n)),   # chip ids
            service=ServiceProfile(
                latency_cycles=plan.report.total_cycles,
                interval_cycles=plan.report.steady_state_interval,
                switch_cycles=0.0,
                energy_per_inference=plan.report.energy_per_inference,
                switch_energy=0.0,
                peak_power=plan.report.peak_power,
                deploy_cycles=float(getattr(
                    plan.report, "weight_load_cycles", 0.0)),
                deploy_energy=float(getattr(
                    plan.report, "weight_write_energy", 0.0))),
        ))
        cursor += n
    return ServingPlan(mode="sharded", arch_name=system.name,
                       tenants=tuple(tenants))


def make_plan(mode: str, arch: CIMArchitecture, specs: Sequence[TenantSpec],
              options: Optional[CompilerOptions] = None,
              **kwargs) -> ServingPlan:
    """Dispatch on ``mode`` (:data:`MODES`, or ``"sharded"`` with a
    ``system=`` :class:`~repro.arch.MultiChipSystem` keyword); ``kwargs``
    reach the planner (e.g. ``alloc=``/``blocks=`` for spatial)."""
    if mode == "spatial":
        return plan_spatial(arch, specs, options, **kwargs)
    if mode == "temporal":
        # Forward only what plan_temporal accepts; spatial-only kwargs
        # (alloc=/blocks=) stay ignored here, as they always were.
        return plan_temporal(arch, specs, options,
                             cache=kwargs.get("cache"),
                             power_budget=kwargs.get("power_budget"),
                             core_pool=kwargs.get("core_pool"),
                             die_cores=kwargs.get("die_cores"))
    if mode == "sharded":
        # Incremental recompilation is a single-chip planner affordance;
        # the sharded planner compiles per shard stage itself.
        kwargs.pop("incremental", None)
        if kwargs.pop("power_budget", None) is not None:
            raise ScheduleError(
                "power budgets apply to spatial/temporal plans; the "
                "sharded planner has no per-chip down-duplication yet")
        system = kwargs.pop("system", None)
        if system is None:
            from ..arch import MultiChipSystem

            system = MultiChipSystem(arch, kwargs.pop("chips", 2))
        return plan_sharded(system, specs, options, **kwargs)
    raise ScheduleError(
        f"unknown serving mode {mode!r}; choose one of "
        f"{MODES + ('sharded',)}")
