"""Seeded request-trace generators over mixed model populations.

A *trace* is a list of :class:`Request` in arrival order — the open-loop
input of the serving engine.  Four arrival processes cover the classic
serving regimes:

* :func:`poisson_trace` — memoryless arrivals at a constant rate (the
  M/·/1 baseline every capacity study starts from).
* :func:`bursty_trace` — a two-state Markov-modulated Poisson process
  (MMPP-2): calm stretches punctuated by bursts, the shape that stresses
  queues and tail latency.
* :func:`diurnal_trace` — a sinusoidally ramped rate (thinning sampler),
  the day/night envelope of user-facing traffic.
* :func:`diurnal_bursty_trace` — the MMPP riding the diurnal envelope:
  the datacenter-fleet shape (day/night swing *and* bursts), what
  ``repro fleet`` autoscales against.

All generators are pure functions of their arguments: the same seed and
config yield the bit-identical trace on every run.  Generation is
*vectorized*: the CPython ``random.Random(seed)`` Mersenne-Twister state
is transplanted into a pair of ``numpy.random.RandomState`` clones
(``set_state``) that materialize the identical underlying uniform stream
in numpy batches — once as raw uniforms (``random_sample``) and once
exp-transformed (``standard_exponential``, the same ``-log(1 - u)`` that
``Random.expovariate`` computes, through the same C ``log``).  Arrival
clocks come from sequential ``np.cumsum`` accumulation, so every float
matches the scalar reference generators (kept as ``_*_scalar``, pinned
bit-identical by digest tests) while fleet-scale traces (10^6+ requests)
generate in seconds.  Rates are expressed in requests per cycle; the CLI
converts from the friendlier requests per mega-cycle.
"""

from __future__ import annotations

import hashlib
import math
import random
import struct
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Sequence

import numpy as np

from ..errors import ScheduleError


@dataclass(frozen=True)
class TenantSpec:
    """One co-resident model population.

    ``weight`` is the tenant's share of request traffic; ``slo_cycles``
    optionally pins an absolute latency SLO (otherwise the engine derives
    one from the tenant's isolated latency).
    """

    name: str
    model: str
    weight: float = 1.0
    slo_cycles: Optional[float] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ScheduleError(
                f"tenant {self.name!r}: weight must be positive")


class Request(NamedTuple):
    """One inference request: global index, tenant, arrival cycle.

    (A ``NamedTuple`` rather than a dataclass: construction cost and
    footprint dominate fleet-scale traces of millions of requests.)
    """

    index: int
    tenant: str
    arrival: float


def _validate(tenants: Sequence[TenantSpec], rate: float,
              num_requests: int) -> None:
    if not tenants:
        raise ScheduleError("trace needs at least one tenant")
    if len({t.name for t in tenants}) != len(tenants):
        raise ScheduleError("tenant names must be unique")
    if rate <= 0:
        raise ScheduleError(f"arrival rate must be positive, got {rate}")
    if num_requests < 0:
        raise ScheduleError(f"num_requests must be >= 0, got {num_requests}")


def _pick(rng: random.Random, tenants: Sequence[TenantSpec]) -> str:
    """Weighted tenant choice (inverse-CDF; stable across platforms)."""
    total = sum(t.weight for t in tenants)
    x = rng.random() * total
    for t in tenants:
        x -= t.weight
        if x < 0:
            return t.name
    return tenants[-1].name


# ---------------------------------------------------------------------------
# Vectorized uniform-stream machinery
# ---------------------------------------------------------------------------


class _TwinStream:
    """The ``random.Random(seed)`` uniform stream, materialized in numpy
    batches under two synchronized views.

    Both views consume the *same* Mersenne-Twister positions: ``u[i]`` is
    the raw ``Random.random()`` draw at stream position ``i`` and ``e[i]``
    is its exponential transform ``-log(1 - u[i])`` (what
    ``Random.expovariate(lambd)`` returns, pre-division) — so a caller can
    interpret each position as either kind after the fact, which is what
    makes interleaved gap/choice streams batchable.
    """

    def __init__(self, seed: int, block: int = 1 << 15) -> None:
        py_state = random.Random(seed).getstate()[1]
        key = np.array(py_state[:-1], dtype=np.uint32)
        pos = py_state[-1]
        self._exp = np.random.RandomState()
        self._exp.set_state(("MT19937", key, pos))
        self._uni = np.random.RandomState()
        self._uni.set_state(("MT19937", key, pos))
        self._block = block
        self._e = np.empty(0)
        self._u = np.empty(0)
        self._off = 0

    def peek(self, n: int):
        """Views of the next ``n`` stream entries, without consuming."""
        avail = len(self._e) - self._off
        if avail < n:
            draw = max(self._block, n - avail)
            self._e = np.concatenate(
                (self._e[self._off:], self._exp.standard_exponential(draw)))
            self._u = np.concatenate(
                (self._u[self._off:], self._uni.random_sample(draw)))
            self._off = 0
        return (self._e[self._off:self._off + n],
                self._u[self._off:self._off + n])

    def consume(self, n: int) -> None:
        """Advance past ``n`` peeked entries."""
        self._off += n

    def take(self, n: int):
        """Peek and consume ``n`` entries in one step."""
        e, u = self.peek(n)
        self._off += n
        return e, u


def _pick_batch(u: np.ndarray,
                tenants: Sequence[TenantSpec]) -> List[int]:
    """Vectorized :func:`_pick`: tenant indices for a batch of uniforms,
    reproducing the scalar sequential-subtraction arithmetic bit for
    bit."""
    total = sum(t.weight for t in tenants)
    x = u * total
    idx = np.full(len(u), len(tenants) - 1, dtype=np.intp)
    open_ = np.ones(len(u), dtype=bool)
    for k, t in enumerate(tenants[:-1]):
        x = x - t.weight
        hit = open_ & (x < 0)
        idx[hit] = k
        open_ &= ~hit
    return idx.tolist()


def _emit(out: List[Request], tenants: Sequence[TenantSpec],
          picks: np.ndarray, clocks: np.ndarray) -> None:
    """Append one vectorized batch of requests to ``out``."""
    names = [t.name for t in tenants]
    base = len(out)
    out.extend(
        Request(base + i, names[k], c)
        for i, (k, c) in enumerate(zip(_pick_batch(picks, tenants),
                                       clocks.tolist())))


# ---------------------------------------------------------------------------
# Scalar reference generators (digest-pinned twins of the public API)
# ---------------------------------------------------------------------------


def _poisson_trace_scalar(tenants, rate, num_requests, seed=0):
    """Scalar reference for :func:`poisson_trace` (one RNG call per
    event); the vectorized path is pinned bit-identical to this."""
    rng = random.Random(seed)
    clock = 0.0
    out: List[Request] = []
    for i in range(num_requests):
        clock += rng.expovariate(rate)
        out.append(Request(i, _pick(rng, tenants), clock))
    return out


def _bursty_trace_scalar(tenants, rate, num_requests, seed=0,
                         burst_factor=1.75, calm_factor=0.25,
                         mean_dwell_requests=16.0):
    """Scalar reference for :func:`bursty_trace`; the vectorized path is
    pinned bit-identical to this."""
    rng = random.Random(seed)
    clock = 0.0
    bursting = False
    mean_dwell = mean_dwell_requests / rate
    state_ends = rng.expovariate(1.0 / mean_dwell)
    out: List[Request] = []
    for i in range(num_requests):
        while True:
            state_rate = rate * (burst_factor if bursting else calm_factor)
            gap = rng.expovariate(state_rate)
            if clock + gap <= state_ends:
                clock += gap
                break
            # The state flips before this arrival would land; restart the
            # (memoryless) draw from the flip instant.
            clock = state_ends
            bursting = not bursting
            state_ends = clock + rng.expovariate(1.0 / mean_dwell)
        out.append(Request(i, _pick(rng, tenants), clock))
    return out


def _diurnal_trace_scalar(tenants, rate, num_requests, seed=0,
                          period=2_000_000.0, depth=0.8):
    """Scalar reference for :func:`diurnal_trace`; the batched path is
    pinned bit-identical to this."""
    rng = random.Random(seed)
    peak = rate * (1.0 + depth)
    clock = 0.0
    out: List[Request] = []
    while len(out) < num_requests:
        clock += rng.expovariate(peak)
        current = rate * (1.0 + depth * math.sin(2 * math.pi * clock / period))
        if rng.random() * peak <= current:
            out.append(Request(len(out), _pick(rng, tenants), clock))
    return out


# ---------------------------------------------------------------------------
# Public generators
# ---------------------------------------------------------------------------


def poisson_trace(tenants: Sequence[TenantSpec], rate: float,
                  num_requests: int, seed: int = 0) -> List[Request]:
    """Constant-rate Poisson arrivals, tenants drawn by weight.

    Fully vectorized: the stream alternates gap/choice draws, so one
    twin-view batch of ``2 n`` positions yields every gap (even
    positions, exp view) and every tenant choice (odd positions, raw
    view) at once.
    """
    _validate(tenants, rate, num_requests)
    if num_requests == 0:
        return []
    stream = _TwinStream(seed)
    e, u = stream.take(2 * num_requests)
    clocks = np.cumsum(e[0::2] / rate)
    out: List[Request] = []
    _emit(out, tenants, u[1::2], clocks)
    return out


def bursty_trace(tenants: Sequence[TenantSpec], rate: float,
                 num_requests: int, seed: int = 0,
                 burst_factor: float = 1.75, calm_factor: float = 0.25,
                 mean_dwell_requests: float = 16.0) -> List[Request]:
    """Two-state MMPP: bursts at ``rate * burst_factor`` alternating with
    calm stretches at ``rate * calm_factor``.

    With the default factors (averaging to 1) and equal mean dwell times
    the long-run rate stays ``rate``, so bursty and Poisson traces are
    directly comparable at the same nominal load.

    Vectorized per dwell period: within one state the stream is a regular
    gap/choice alternation, so each dwell is one batched cumsum plus a
    crossing search; only the state flips (one per
    ``mean_dwell_requests`` arrivals) run in Python.
    """
    _validate(tenants, rate, num_requests)
    if burst_factor <= 0 or calm_factor <= 0:
        raise ScheduleError("burst/calm factors must be positive")
    stream = _TwinStream(seed)
    clock = 0.0
    bursting = False
    mean_dwell = mean_dwell_requests / rate
    dwell_rate = 1.0 / mean_dwell
    e0, _ = stream.take(1)
    state_ends = e0[0] / dwell_rate
    out: List[Request] = []
    chunk = max(64, int(4 * mean_dwell_requests))
    while len(out) < num_requests:
        state_rate = rate * (burst_factor if bursting else calm_factor)
        need = num_requests - len(out)
        k = min(need, chunk)
        e, u = stream.peek(2 * k)
        gaps = e[0::2] / state_rate
        clocks = np.cumsum(np.concatenate(((clock,), gaps)))[1:]
        crossed = clocks > state_ends
        cross_at = int(np.argmax(crossed)) if crossed.any() else k
        emit = min(cross_at, need)
        if emit:
            _emit(out, tenants, u[1:2 * emit:2], clocks[:emit])
            stream.consume(2 * emit)
            clock = float(clocks[emit - 1])
        if len(out) >= num_requests:
            break
        if cross_at < k and emit == cross_at:
            # The next gap overshoots the dwell: its draw is discarded,
            # the state flips, and a fresh dwell length is drawn.
            e2, _ = stream.take(2)
            clock = state_ends
            bursting = not bursting
            state_ends = clock + e2[1] / dwell_rate
    return out


def diurnal_trace(tenants: Sequence[TenantSpec], rate: float,
                  num_requests: int, seed: int = 0,
                  period: float = 2_000_000.0,
                  depth: float = 0.8) -> List[Request]:
    """Sinusoidal rate ramp: ``rate * (1 + depth * sin(2 pi t / period))``
    sampled by thinning a Poisson process at the peak rate.

    ``depth`` in [0, 1) sets the peak-to-trough swing; the long-run mean
    stays ``rate``.

    The thinning decision stream is data-dependent (an accepted candidate
    consumes one extra choice draw), so candidates run through a batched
    buffer: uniforms and their exponential transforms are materialized in
    numpy blocks and the light accept/reject state machine walks them as
    plain Python floats.
    """
    _validate(tenants, rate, num_requests)
    if not 0 <= depth < 1:
        raise ScheduleError(f"depth must be in [0, 1), got {depth}")
    stream = _TwinStream(seed)
    peak = rate * (1.0 + depth)
    two_pi = 2 * math.pi
    sin = math.sin
    clock = 0.0
    out: List[Request] = []
    append = out.append
    names = [t.name for t in tenants]
    weights = [t.weight for t in tenants]
    total_w = sum(weights)
    last = len(tenants) - 1
    while len(out) < num_requests:
        e_v, u_v = stream.peek(3 * max(64, num_requests - len(out)))
        e, u = e_v.tolist(), u_v.tolist()
        m = len(e)
        i = 0
        while i + 3 <= m and len(out) < num_requests:
            clock += e[i] / peak
            current = rate * (1.0 + depth * sin(two_pi * clock / period))
            if u[i + 1] * peak <= current:
                x = u[i + 2] * total_w
                pick = last
                for k, w in enumerate(weights):
                    x -= w
                    if x < 0:
                        pick = k
                        break
                append(Request(len(out), names[pick], clock))
                i += 3
            else:
                i += 2
        stream.consume(i)
    return out


def diurnal_bursty_trace(tenants: Sequence[TenantSpec], rate: float,
                         num_requests: int, seed: int = 0,
                         period: float = 2_000_000.0, depth: float = 0.8,
                         burst_factor: float = 1.75,
                         calm_factor: float = 0.25,
                         mean_dwell_requests: float = 16.0
                         ) -> List[Request]:
    """The fleet-headline shape: an MMPP-2 riding the diurnal envelope.

    Candidates come from the :func:`bursty_trace` state machine run at
    ``(1 + depth)`` times its nominal rates and are thinned by the
    sinusoidal envelope (accept probability
    ``(1 + depth sin) / (1 + depth)``), so the long-run rate stays
    ``rate`` while the trace carries *both* the day/night swing an
    autoscaler tracks and the bursts that stress routing and admission.
    Same batched-buffer scheme as :func:`diurnal_trace`.
    """
    _validate(tenants, rate, num_requests)
    if not 0 <= depth < 1:
        raise ScheduleError(f"depth must be in [0, 1), got {depth}")
    if burst_factor <= 0 or calm_factor <= 0:
        raise ScheduleError("burst/calm factors must be positive")
    stream = _TwinStream(seed)
    envelope = 1.0 + depth
    two_pi = 2 * math.pi
    sin = math.sin
    clock = 0.0
    bursting = False
    mean_dwell = mean_dwell_requests / rate
    dwell_rate = 1.0 / mean_dwell
    e0, _ = stream.take(1)
    state_ends = e0[0] / dwell_rate
    out: List[Request] = []
    append = out.append
    names = [t.name for t in tenants]
    weights = [t.weight for t in tenants]
    total_w = sum(weights)
    last = len(tenants) - 1
    while len(out) < num_requests:
        e_v, u_v = stream.peek(4 * max(64, num_requests - len(out)))
        e, u = e_v.tolist(), u_v.tolist()
        m = len(e)
        i = 0
        while i + 4 <= m and len(out) < num_requests:
            cand_rate = rate * envelope * \
                (burst_factor if bursting else calm_factor)
            gap = e[i] / cand_rate
            if clock + gap > state_ends:
                # Dwell boundary: discard the gap, flip, draw a new dwell.
                clock = state_ends
                bursting = not bursting
                state_ends = clock + e[i + 1] / dwell_rate
                i += 2
                continue
            clock += gap
            current = rate * (1.0 + depth * sin(two_pi * clock / period))
            if u[i + 1] * (rate * envelope) <= current:
                x = u[i + 2] * total_w
                pick = last
                for k, w in enumerate(weights):
                    x -= w
                    if x < 0:
                        pick = k
                        break
                append(Request(len(out), names[pick], clock))
                i += 3
            else:
                i += 2
        stream.consume(i)
    return out


#: Trace kinds the CLI exposes.
TRACES = {
    "poisson": poisson_trace,
    "bursty": bursty_trace,
    "diurnal": diurnal_trace,
    "diurnal-bursty": diurnal_bursty_trace,
}


def make_trace(kind: str, tenants: Sequence[TenantSpec], rate: float,
               num_requests: int, seed: int = 0, **kwargs) -> List[Request]:
    """Dispatch on trace ``kind`` (:data:`TRACES`)."""
    try:
        gen = TRACES[kind]
    except KeyError:
        raise ScheduleError(
            f"unknown trace kind {kind!r}; choose one of {sorted(TRACES)}"
        ) from None
    return gen(tenants, rate, num_requests, seed=seed, **kwargs)


def trace_digest(trace: Sequence[Request]) -> str:
    """Content hash of a trace (index, tenant, exact arrival bits).

    The pinned-determinism currency: two traces digest equal iff every
    request matches bit for bit, without hauling megabytes of floats
    into a test expectation.
    """
    h = hashlib.sha256()
    for req in trace:
        h.update(req.tenant.encode())
        h.update(struct.pack("<qd", req.index, req.arrival))
    return h.hexdigest()


def tenant_counts(trace: Sequence[Request]) -> Dict[str, int]:
    """Requests per tenant (insertion order follows first appearance)."""
    counts: Dict[str, int] = {}
    for req in trace:
        counts[req.tenant] = counts.get(req.tenant, 0) + 1
    return counts
