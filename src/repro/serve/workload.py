"""Seeded request-trace generators over mixed model populations.

A *trace* is a list of :class:`Request` in arrival order — the open-loop
input of the serving engine.  Three arrival processes cover the classic
serving regimes:

* :func:`poisson_trace` — memoryless arrivals at a constant rate (the
  M/·/1 baseline every capacity study starts from).
* :func:`bursty_trace` — a two-state Markov-modulated Poisson process
  (MMPP-2): calm stretches punctuated by bursts, the shape that stresses
  queues and tail latency.
* :func:`diurnal_trace` — a sinusoidally ramped rate (thinning sampler),
  the day/night envelope of user-facing traffic.

All generators are pure functions of their arguments: the same seed and
config yield the bit-identical trace on every run and platform (only
``random.Random`` and float arithmetic are used).  Rates are expressed in
requests per cycle; the CLI converts from the friendlier requests per
mega-cycle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..errors import ScheduleError


@dataclass(frozen=True)
class TenantSpec:
    """One co-resident model population.

    ``weight`` is the tenant's share of request traffic; ``slo_cycles``
    optionally pins an absolute latency SLO (otherwise the engine derives
    one from the tenant's isolated latency).
    """

    name: str
    model: str
    weight: float = 1.0
    slo_cycles: Optional[float] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ScheduleError(
                f"tenant {self.name!r}: weight must be positive")


@dataclass(frozen=True)
class Request:
    """One inference request: global index, tenant, arrival cycle."""

    index: int
    tenant: str
    arrival: float


def _validate(tenants: Sequence[TenantSpec], rate: float,
              num_requests: int) -> None:
    if not tenants:
        raise ScheduleError("trace needs at least one tenant")
    if len({t.name for t in tenants}) != len(tenants):
        raise ScheduleError("tenant names must be unique")
    if rate <= 0:
        raise ScheduleError(f"arrival rate must be positive, got {rate}")
    if num_requests < 0:
        raise ScheduleError(f"num_requests must be >= 0, got {num_requests}")


def _pick(rng: random.Random, tenants: Sequence[TenantSpec]) -> str:
    """Weighted tenant choice (inverse-CDF; stable across platforms)."""
    total = sum(t.weight for t in tenants)
    x = rng.random() * total
    for t in tenants:
        x -= t.weight
        if x < 0:
            return t.name
    return tenants[-1].name


def poisson_trace(tenants: Sequence[TenantSpec], rate: float,
                  num_requests: int, seed: int = 0) -> List[Request]:
    """Constant-rate Poisson arrivals, tenants drawn by weight."""
    _validate(tenants, rate, num_requests)
    rng = random.Random(seed)
    clock = 0.0
    out: List[Request] = []
    for i in range(num_requests):
        clock += rng.expovariate(rate)
        out.append(Request(i, _pick(rng, tenants), clock))
    return out


def bursty_trace(tenants: Sequence[TenantSpec], rate: float,
                 num_requests: int, seed: int = 0,
                 burst_factor: float = 1.75, calm_factor: float = 0.25,
                 mean_dwell_requests: float = 16.0) -> List[Request]:
    """Two-state MMPP: bursts at ``rate * burst_factor`` alternating with
    calm stretches at ``rate * calm_factor``.

    With the default factors (averaging to 1) and equal mean dwell times
    the long-run rate stays ``rate``, so bursty and Poisson traces are
    directly comparable at the same nominal load.
    """
    _validate(tenants, rate, num_requests)
    if burst_factor <= 0 or calm_factor <= 0:
        raise ScheduleError("burst/calm factors must be positive")
    rng = random.Random(seed)
    clock = 0.0
    bursting = False
    mean_dwell = mean_dwell_requests / rate
    state_ends = rng.expovariate(1.0 / mean_dwell)
    out: List[Request] = []
    for i in range(num_requests):
        while True:
            state_rate = rate * (burst_factor if bursting else calm_factor)
            gap = rng.expovariate(state_rate)
            if clock + gap <= state_ends:
                clock += gap
                break
            # The state flips before this arrival would land; restart the
            # (memoryless) draw from the flip instant.
            clock = state_ends
            bursting = not bursting
            state_ends = clock + rng.expovariate(1.0 / mean_dwell)
        out.append(Request(i, _pick(rng, tenants), clock))
    return out


def diurnal_trace(tenants: Sequence[TenantSpec], rate: float,
                  num_requests: int, seed: int = 0,
                  period: float = 2_000_000.0,
                  depth: float = 0.8) -> List[Request]:
    """Sinusoidal rate ramp: ``rate * (1 + depth * sin(2 pi t / period))``
    sampled by thinning a Poisson process at the peak rate.

    ``depth`` in [0, 1) sets the peak-to-trough swing; the long-run mean
    stays ``rate``.
    """
    import math

    _validate(tenants, rate, num_requests)
    if not 0 <= depth < 1:
        raise ScheduleError(f"depth must be in [0, 1), got {depth}")
    rng = random.Random(seed)
    peak = rate * (1.0 + depth)
    clock = 0.0
    out: List[Request] = []
    while len(out) < num_requests:
        clock += rng.expovariate(peak)
        current = rate * (1.0 + depth * math.sin(2 * math.pi * clock / period))
        if rng.random() * peak <= current:
            out.append(Request(len(out), _pick(rng, tenants), clock))
    return out


#: Trace kinds the CLI exposes.
TRACES = {
    "poisson": poisson_trace,
    "bursty": bursty_trace,
    "diurnal": diurnal_trace,
}


def make_trace(kind: str, tenants: Sequence[TenantSpec], rate: float,
               num_requests: int, seed: int = 0, **kwargs) -> List[Request]:
    """Dispatch on trace ``kind`` (:data:`TRACES`)."""
    try:
        gen = TRACES[kind]
    except KeyError:
        raise ScheduleError(
            f"unknown trace kind {kind!r}; choose one of {sorted(TRACES)}"
        ) from None
    return gen(tenants, rate, num_requests, seed=seed, **kwargs)


def tenant_counts(trace: Sequence[Request]) -> Dict[str, int]:
    """Requests per tenant (insertion order follows first appearance)."""
    counts: Dict[str, int] = {}
    for req in trace:
        counts[req.tenant] = counts.get(req.tenant, 0) + 1
    return counts
