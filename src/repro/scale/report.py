"""Text rendering of a :class:`~repro.scale.ShardPlan` for the CLI.

Two tables: per-chip placement (ops, cores, resident weights, timings)
and the link schedule (who sends what to whom, and what it costs), plus
a one-line pipeline summary.
"""

from __future__ import annotations

from typing import Optional

from ..sim.performance import PerformanceReport
from .shard import ShardPlan


def placement_table(plan: ShardPlan) -> str:
    """Per-chip stage table: operators, core/weight occupancy, timings.

    Example
    -------
    >>> from repro.arch import MultiChipSystem, isaac_baseline
    >>> from repro.models import lenet
    >>> from repro.scale import shard
    >>> plan = shard(lenet(), MultiChipSystem(isaac_baseline(), 2))
    >>> "chip 0" in placement_table(plan)
    True
    """
    chip = plan.system.chip
    lines = [f"{plan.graph.name} on {plan.system.name}"]
    for i, names in enumerate(plan.stages):
        used = plan.stage_cores_used(i)
        bits = plan.stage_weight_bits(i)
        rep = plan.report.stages[i]
        lines.append(
            f" chip {i}: {len(names)} ops, cores {used}/"
            f"{chip.chip.core_number}, weights "
            f"{bits / 8e6:.2f}/{chip.chip_capacity_bits / 8e6:.2f} MB, "
            f"latency {rep.total_cycles:,.0f}, interval "
            f"{rep.steady_state_interval:,.0f}, peak power "
            f"{rep.power.peak_power:,.1f}")
        lines.append(f"   {names[0]} ... {names[-1]}"
                     if len(names) > 2 else f"   {', '.join(names)}")
    return "\n".join(lines)


def link_table(plan: ShardPlan) -> str:
    """Link schedule: one row per inter-chip transfer.

    Example
    -------
    >>> from repro.arch import MultiChipSystem, isaac_baseline
    >>> from repro.models import lenet
    >>> from repro.scale import shard
    >>> plan = shard(lenet(), MultiChipSystem(isaac_baseline(), 2))
    >>> "bits" in link_table(plan)
    True
    """
    if not plan.report.transfers:
        return "no inter-chip transfers (single stage)"
    lines = [f"{'link':>10} {'stages':>10} {'bits':>12} {'hops':>5} "
             f"{'cycles':>10} {'occupancy':>10} {'energy':>10}"]
    for t in plan.report.transfers:
        lines.append(
            f"{t.src_chip:>4} -> {t.dst_chip:<3} "
            f"{t.src_stage:>4}->{t.dst_stage:<4} {t.bits:>12,} "
            f"{t.hops:>5} {t.cycles:>10,.0f} {t.occupancy:>10,.1f} "
            f"{t.energy:>10,.1f}")
    return "\n".join(lines)


def pipeline_summary(plan: ShardPlan,
                     single: Optional[PerformanceReport] = None) -> str:
    """One-block pipeline totals, optionally vs. a 1-chip compilation.

    Example
    -------
    >>> from repro.arch import MultiChipSystem, isaac_baseline
    >>> from repro.models import lenet
    >>> from repro.scale import shard
    >>> plan = shard(lenet(), MultiChipSystem(isaac_baseline(), 2))
    >>> "steady-state interval" in pipeline_summary(plan)
    True
    """
    rep = plan.report
    lines = [
        f"pipeline latency: {rep.total_cycles:,.0f} cycles "
        f"(fill); steady-state interval: "
        f"{rep.steady_state_interval:,.0f} cycles "
        f"({rep.throughput * 1e6:.2f} inf/Mcycle)",
        f"peak power (all chips): {rep.peak_power:,.1f} "
        f"(per chip: {', '.join(f'{p:,.1f}' for p in rep.chip_peak_powers)})",
        f"energy/inference: {rep.total_energy:,.1f} "
        f"(inter-chip links {rep.link_energy:,.1f})",
    ]
    if single is not None:
        lines.append(
            f"vs 1 chip: throughput {rep.speedup_over(single):.2f}x, "
            f"latency {rep.total_cycles / single.total_cycles:.2f}x")
    return "\n".join(lines)
