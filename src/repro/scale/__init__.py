"""Multi-chip model sharding: scale one model beyond a single die.

A single CIM chip bounds both resident weight capacity and duplication
headroom; this package lifts both limits by pipelining a model across a
:class:`~repro.arch.MultiChipSystem` — N identical chips joined by
explicit :class:`~repro.arch.ChipLink` channels (ring, fully-connected,
or mesh).  It is the layer every further scaling study (data-parallel
replication, hierarchical NoCs) builds on:

* :mod:`~repro.scale.partition` — min-cut style contiguous layer
  partitioning under weight-capacity and compute-balance constraints.
* :mod:`~repro.scale.shard` — :func:`shard`: partition, compile every
  stage with the full multi-level scheduler, place cores around the
  link port, and price inter-chip traffic into a
  :class:`~repro.sim.performance.MultiChipReport`.
* :mod:`~repro.scale.report` — CLI tables: per-chip placement, link
  schedule, pipeline summary.

Multi-chip sweep axes (``chips=...``, ``link_bw=...``) plug into
:mod:`repro.explore`, and :func:`repro.serve.plan_sharded` serves
tenants that each span several chips.

Quickstart
----------
>>> from repro.arch import MultiChipSystem, isaac_baseline
>>> from repro.models import resnet18
>>> from repro.scale import shard
>>> plan = shard(resnet18(), MultiChipSystem(isaac_baseline(), 2))
>>> plan.num_stages
2
>>> plan.report.throughput > 0
True
"""

from .partition import (
    boundary_cut_bits,
    min_chips,
    partition_layers,
    stage_transfers,
)
from .report import link_table, pipeline_summary, placement_table
from .shard import LINK_PORT_CORE, ShardPlan, shard, stage_subgraph

__all__ = [
    "LINK_PORT_CORE",
    "ShardPlan",
    "boundary_cut_bits",
    "link_table",
    "min_chips",
    "partition_layers",
    "pipeline_summary",
    "placement_table",
    "shard",
    "stage_subgraph",
    "stage_transfers",
]
