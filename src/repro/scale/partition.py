"""Min-cut style layer partitioning of a model graph across N chips.

The partitioner splits the topological operator order into contiguous
*stages*, one per chip, under two hard constraints and one objective:

* **Weight capacity** — every stage's weights must be simultaneously
  resident on its chip (cores at duplication 1, plus raw crossbar
  capacity).  Residency is the whole point of sharding: a stage never
  pays the Section 2.1 reconfiguration cost, unlike a single chip forced
  to swap segments.
* **Compute balance** — the maximum per-stage work is minimized, because
  the slowest stage paces the inter-chip pipeline.
* **Min cut** — among balanced partitions, the one moving the fewest
  activation bits across chip boundaries wins (every crossing tensor pays
  link serialization per inference).

Contiguous splits keep stage ``i`` -> ``i+1`` traffic on adjacent chips of
a ring, which is why the dynamic program optimizes boundary positions
(exactly, in O(nodes^2 x chips)) rather than arbitrary node sets.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch import CIMArchitecture
from ..errors import CapacityError
from ..graph import Graph
from ..sched.costs import CostModel, OpProfile

def _floor(p: OpProfile) -> float:
    """Duplication-independent interval floor of one operator.

    No amount of replication beats data movement (replicas re-read input
    halos), one MVM wave, or the digital tail — the quantities a stage's
    steady-state interval can never undercut on one chip.
    """
    if not p.is_cim:
        return max(p.alu_cycles, p.mov_cycles)
    return max(p.mov_cycles, float(p.mvm_cycles_base)) + p.alu_cycles


def _load(p: OpProfile) -> float:
    """Core-cycles of compute one inference demands of this operator.

    Duplication spreads ``num_mvms`` windows over replicas, so an
    operator targeted at interval ``T`` needs about ``load / T`` cores
    (never fewer than one replica's worth) — the balance term of the
    partition objective.
    """
    if not p.is_cim:
        return 0.0
    return float(p.num_mvms * p.mvm_cycles_base * p.cores_per_replica)


def _predict_interval(ops: Sequence[OpProfile], floor: float,
                      budget: int) -> float:
    """Best steady-state interval a stage can reach on one chip.

    Continuous relaxation of the duplication search
    (:func:`repro.sched.cg.duplicate_min_bottleneck`): interval ``T`` is
    feasible when ``sum(max(cores_i, load_i / T)) <= budget`` — every
    operator keeps at least one replica and elastic operators take
    ``load / T`` cores.  Feasibility is monotone in ``T``, so binary
    search between the floor and the duplication-1 latency.
    """
    cim = [(float(p.cores_per_replica), _load(p)) for p in ops if p.is_cim]
    if not cim:
        return floor

    def cores_at(target: float) -> float:
        return sum(max(c, load / target) for c, load in cim)

    lo = max(floor, 1.0)
    if cores_at(lo) <= budget:
        return lo
    hi = max(lo, max(load / c for c, load in cim if c > 0))
    for _ in range(48):
        mid = (lo + hi) / 2
        if cores_at(mid) <= budget:
            hi = mid
        else:
            lo = mid
    return hi


def _prefix_sums(order: Sequence[str], profiles: Dict[str, OpProfile]
                 ) -> Tuple[List[float], List[int], List[int]]:
    """Cumulative (load, cores, weight_bits) over the topological order."""
    loads = [0.0]
    cores = [0]
    weights = [0]
    for name in order:
        p = profiles[name]
        loads.append(loads[-1] + _load(p))
        cores.append(cores[-1] + (p.cores_per_replica if p.is_cim else 0))
        weights.append(weights[-1] + (p.weight_bits if p.is_cim else 0))
    return loads, cores, weights


def boundary_cut_bits(graph: Graph, order: Sequence[str],
                      position: int) -> int:
    """Activation bits crossing a split after ``order[:position]``.

    Counts every tensor produced by a node before the boundary and
    consumed by a node at/after it (weights excluded — they are resident,
    never streamed).  A tensor spanning several boundaries is counted at
    each, matching the physical cost of relaying it through intermediate
    chips on a ring.
    """
    before = set(order[:position])
    after = set(order[position:])
    bits = 0
    for name in before:
        node = graph.node(name)
        for out in node.outputs:
            if any(c.name in after for c in graph.consumers(out)):
                spec = graph.tensors.get(out)
                if spec is not None and not spec.is_weight:
                    bits += spec.size_bits
    return bits


def _stage_fits(cores_used: int, weight_bits: int,
                arch: CIMArchitecture) -> bool:
    return (cores_used <= arch.chip.core_number
            and weight_bits <= arch.chip_capacity_bits)


def min_chips(graph: Graph, arch: CIMArchitecture,
              cost_model: Optional[CostModel] = None) -> int:
    """Fewest chips keeping the whole model resident (contiguous stages).

    Greedy longest-prefix packing is optimal for minimizing the number of
    contiguous stages under monotone per-stage constraints.

    Example
    -------
    >>> from repro.arch import functional_testbed
    >>> from repro.models import lenet
    >>> min_chips(lenet(), functional_testbed())
    1
    """
    profiles = (cost_model or CostModel(arch)).profiles(graph)
    order = [n.name for n in graph.topological()]
    chips = 1
    cores = 0
    weights = 0
    for name in order:
        p = profiles[name]
        need_cores = p.cores_per_replica if p.is_cim else 0
        need_bits = p.weight_bits if p.is_cim else 0
        if not _stage_fits(need_cores, need_bits, arch):
            raise CapacityError(
                f"operator {name!r} alone exceeds one {arch.name} chip "
                f"({need_cores} cores / {need_bits} weight bits)")
        if not _stage_fits(cores + need_cores, weights + need_bits, arch):
            chips += 1
            cores, weights = need_cores, need_bits
        else:
            cores += need_cores
            weights += need_bits
    return chips


def partition_layers(graph: Graph, num_chips: int, arch: CIMArchitecture,
                     cost_model: Optional[CostModel] = None,
                     chip_archs: Optional[Sequence[CIMArchitecture]] = None
                     ) -> List[List[str]]:
    """Split ``graph`` into ``num_chips`` contiguous resident stages.

    Dynamic program over boundary positions: minimize the lexicographic
    objective ``(max predicted stage interval, total boundary cut bits)``
    subject to every stage fitting its chip (cores at duplication 1 and
    weight capacity).  The predicted interval of a stage is
    ``max(per-op floors, core-cycle load / core_number)`` — what the
    duplication search can achieve at best, so balancing it balances the
    *pipelined* stages rather than raw work.  Returns per-stage node-name
    lists in topological order; raises
    :class:`~repro.errors.CapacityError` when even ``num_chips`` stages
    cannot hold the model resident.

    ``chip_archs`` (degraded hardware) gives each chip its *own*
    architecture: stage ``k`` must fit ``chip_archs[k-1]`` and is
    interval-balanced against that chip's surviving core budget, so the
    DP shifts work off weakened chips.  Stage→chip identity mapping is
    kept (stage ``k`` runs on chip ``k-1``).  ``None`` (the default) is
    the uniform, fault-free path, bit-identical to before.

    Example
    -------
    >>> from repro.arch import isaac_baseline
    >>> from repro.models import lenet
    >>> stages = partition_layers(lenet(), 2, isaac_baseline())
    >>> len(stages)
    2
    """
    if num_chips < 1:
        raise CapacityError(f"num_chips must be >= 1, got {num_chips}")
    if chip_archs is not None:
        chip_archs = list(chip_archs)
        if len(chip_archs) != num_chips:
            raise CapacityError(
                f"chip_archs supplies {len(chip_archs)} architectures "
                f"for {num_chips} chips")
    order = [n.name for n in graph.topological()]
    n = len(order)
    if not order:
        raise CapacityError("cannot partition an empty graph")
    stages_wanted = min(num_chips, n)
    if chip_archs is None:
        needed = min_chips(graph, arch, cost_model)
        if needed > num_chips:
            raise CapacityError(
                f"{graph.name} needs at least {needed} {arch.name} chips "
                f"to stay resident ({graph.total_weight_bits():,} weight "
                f"bits, chip capacity {arch.chip_capacity_bits:,}); got "
                f"{num_chips}")

    cuts = [0] + [boundary_cut_bits(graph, order, p) for p in range(1, n)] \
        + [0]

    def _interval_matrix(stage_arch: CIMArchitecture,
                         cm: Optional[CostModel]) -> List[List[float]]:
        """interval[j][i]: predicted optimized interval of stage
        order[j:i] on ``stage_arch`` (inf where it does not fit)."""
        profiles = (cm or CostModel(stage_arch)).profiles(graph)
        _, cores, weights = _prefix_sums(order, profiles)
        floors = [_floor(profiles[name]) for name in order]
        budget = max(1, stage_arch.chip.core_number)
        mat = [[math.inf] * (n + 1) for _ in range(n)]
        for i in range(1, n + 1):
            floor = 0.0
            for j in range(i - 1, -1, -1):
                floor = max(floor, floors[j])
                if not _stage_fits(cores[i] - cores[j],
                                   weights[i] - weights[j], stage_arch):
                    break  # larger stages only get heavier
                mat[j][i] = _predict_interval(
                    [profiles[name] for name in order[j:i]], floor, budget)
        return mat

    if chip_archs is None:
        shared = _interval_matrix(arch, cost_model)
        mats = [shared] * stages_wanted
    else:
        # One matrix per *distinct* degraded shape — chips sharing a
        # shape share the tables.
        by_sig: Dict[Tuple, List[List[float]]] = {}
        mats = []
        for a in chip_archs[:stages_wanted]:
            sig = (a.chip.core_number, a.core.xb_number,
                   a.chip_capacity_bits)
            if sig not in by_sig:
                by_sig[sig] = _interval_matrix(a, None)
            mats.append(by_sig[sig])

    inf = (math.inf, math.inf)
    # best[k][i]: minimal (max predicted interval, cut_bits) splitting
    # order[:i] into k feasible stages; choice[k][i] the previous boundary.
    best = [[inf] * (n + 1) for _ in range(stages_wanted + 1)]
    choice = [[-1] * (n + 1) for _ in range(stages_wanted + 1)]
    best[0][0] = (0.0, 0.0)
    for k in range(1, stages_wanted + 1):
        interval = mats[k - 1]
        for i in range(k, n + 1):
            for j in range(k - 1, i):
                prev = best[k - 1][j]
                if prev == inf or interval[j][i] == math.inf:
                    continue
                cand = (max(prev[0], interval[j][i]),
                        prev[1] + (cuts[j] if j > 0 else 0))
                if cand < best[k][i]:
                    best[k][i] = cand
                    choice[k][i] = j
    if best[stages_wanted][n] == inf:
        if chip_archs is not None:
            raise CapacityError(
                f"no feasible {stages_wanted}-stage partition of "
                f"{graph.name} on the degraded system (surviving cores "
                f"per chip: {[a.chip.core_number for a in chip_archs]}, "
                f"capacity bits per chip: "
                f"{[a.chip_capacity_bits for a in chip_archs]})")
        # Feasible with `needed` stages but not with exactly stages_wanted
        # non-empty ones (can happen only when stages_wanted < needed —
        # already raised — so this is defensive).
        raise CapacityError(  # pragma: no cover
            f"no feasible {stages_wanted}-stage partition of {graph.name}")

    bounds: List[int] = []
    i = n
    for k in range(stages_wanted, 0, -1):
        bounds.append(i)
        i = choice[k][i]
    bounds.append(0)
    bounds.reverse()
    return [order[bounds[s]:bounds[s + 1]] for s in range(stages_wanted)]


def stage_transfers(graph: Graph, stages: Sequence[Sequence[str]]
                    ) -> List[Tuple[int, int, int]]:
    """Cross-stage activation traffic: ``(src_stage, dst_stage, bits)``.

    One entry per directed stage pair with any crossing tensors; a tensor
    consumed by several later stages contributes to each destination
    (it is re-sent — stages share no memory).
    """
    stage_of: Dict[str, int] = {}
    for idx, names in enumerate(stages):
        for name in names:
            stage_of[name] = idx
    traffic: Dict[Tuple[int, int], int] = {}
    for node in graph.nodes:
        src = stage_of[node.name]
        for out in node.outputs:
            spec = graph.tensors.get(out)
            if spec is None or spec.is_weight:
                continue
            dsts = {stage_of[c.name] for c in graph.consumers(out)}
            for dst in sorted(dsts):
                if dst != src:
                    key = (src, dst)
                    traffic[key] = traffic.get(key, 0) + spec.size_bits
    return [(s, d, bits) for (s, d), bits in sorted(traffic.items())]
