"""Compile one model across a :class:`~repro.arch.MultiChipSystem`.

:func:`shard` is the multi-chip analogue of
:meth:`repro.sched.compiler.CIMMLC.compile`: partition the graph into
resident stages (:mod:`repro.scale.partition`), compile every stage with
the full multi-level scheduler onto its own chip, place each stage's
cores with the link port as I/O anchor, price the inter-chip activation
traffic with the system's :class:`~repro.arch.ChipLink`, and assemble a
:class:`~repro.sim.performance.MultiChipReport` for the pipelined whole.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Union)

from ..arch import MultiChipSystem
from ..errors import CapacityError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.model import FaultModel
    from ..perf import CompileCache
from ..graph import Graph
from ..sched import CIMMLC, CompilerOptions, no_optimization
from ..sched.placement import annotate_placement
from ..sched.schedule import Schedule
from ..sim.performance import (
    LinkTransfer,
    MultiChipReport,
    PerformanceReport,
    pipeline_multichip,
)
from .partition import partition_layers, stage_transfers

#: Physical core where the inter-chip link attaches on every die.
LINK_PORT_CORE = 0


def stage_subgraph(graph: Graph, names: Sequence[str], index: int) -> Graph:
    """Extract one stage as a standalone :class:`~repro.graph.Graph`.

    Inputs are the tensors the stage consumes but does not produce
    (weights stay weights); outputs are the tensors it produces that the
    rest of the model — or the model output — consumes.  Node objects are
    shared with the parent graph, so schedule annotations (placement,
    duplication) written while compiling the stage remain visible on the
    original model.
    """
    chosen = [graph.node(n) for n in names]
    inside = set(names)
    produced = {out for node in chosen for out in node.outputs}
    tensors = {}
    inputs: List[str] = []
    outputs: List[str] = []
    graph_outputs = set(graph.outputs)
    for node in chosen:
        for name in list(node.inputs) + list(node.outputs):
            spec = graph.tensors.get(name)
            if spec is not None:
                tensors[name] = spec
        for inp in node.inputs:
            spec = graph.tensors.get(inp)
            if inp in produced or (spec is not None and spec.is_weight):
                continue
            if inp not in inputs:
                inputs.append(inp)
    for node in chosen:
        for out in node.outputs:
            consumed_outside = any(
                c.name not in inside for c in graph.consumers(out))
            if (consumed_outside or out in graph_outputs) \
                    and out not in outputs:
                outputs.append(out)
    return Graph(
        name=f"{graph.name}@stage{index}",
        inputs=inputs,
        outputs=outputs,
        tensors=tensors,
        nodes=chosen,
    )


@dataclass(frozen=True)
class ShardPlan:
    """The complete result of sharding one model across chips.

    ``stages[i]`` (node names) runs on chip ``i`` under ``schedules[i]``;
    ``report`` is the pipelined multi-chip estimate.  The plan is what
    the ``repro shard`` CLI renders and what multi-chip serving tenants
    consume.

    Example
    -------
    >>> from repro.arch import MultiChipSystem, isaac_baseline
    >>> from repro.models import lenet
    >>> plan = shard(lenet(), MultiChipSystem(isaac_baseline(), 2))
    >>> len(plan.stages) == 2 and plan.report.throughput > 0
    True
    """

    system: MultiChipSystem
    graph: Graph
    stages: Tuple[Tuple[str, ...], ...]
    schedules: Tuple[Schedule, ...]
    report: MultiChipReport

    @property
    def num_stages(self) -> int:
        """Stage (= active chip) count."""
        return len(self.stages)

    def stage_weight_bits(self, index: int) -> int:
        """Resident weight footprint of one stage."""
        sched = self.schedules[index]
        return sum(d.profile.weight_bits
                   for d in sched.decisions.values() if d.profile.is_cim)

    def stage_cores_used(self, index: int) -> int:
        """Cores the stage occupies on its chip (all replicas)."""
        return self.schedules[index].cores_used(0)

    def to_dict(self) -> Dict:
        """JSON-able export: placement, link schedule, and timings."""
        chip = self.system.chip
        return {
            "model": self.graph.name,
            "system": self.system.describe(),
            "stages": [
                {
                    "stage": i,
                    "chip": i,
                    "ops": list(names),
                    "cores_used": self.stage_cores_used(i),
                    "cores_available": chip.chip.core_number,
                    "weight_bits": self.stage_weight_bits(i),
                    "capacity_bits": chip.chip_capacity_bits,
                    "latency_cycles": self.report.stages[i].total_cycles,
                    "interval_cycles":
                        self.report.stages[i].steady_state_interval,
                    "peak_power": self.report.stages[i].power.peak_power,
                    "energy_per_inference":
                        self.report.stages[i].power.total_energy,
                }
                for i, names in enumerate(self.stages)
            ],
            "links": [
                {
                    "src_chip": t.src_chip, "dst_chip": t.dst_chip,
                    "src_stage": t.src_stage, "dst_stage": t.dst_stage,
                    "bits": t.bits, "hops": t.hops,
                    "cycles": t.cycles, "occupancy": t.occupancy,
                    "energy": t.energy,
                }
                for t in self.report.transfers
            ],
            "pipeline": {
                "total_cycles": self.report.total_cycles,
                "steady_state_interval": self.report.steady_state_interval,
                "throughput": self.report.throughput,
                "peak_power": self.report.peak_power,
                "energy_per_inference": self.report.total_energy,
                "link_energy": self.report.link_energy,
                "weight_write_energy": self.report.weight_write_energy,
            },
        }


def _compile_stage(graph: Graph, arch,
                   options: Optional[CompilerOptions],
                   optimize: bool,
                   cache: Optional["CompileCache"] = None):
    if not optimize:
        return no_optimization(graph, arch, cache=cache)
    return CIMMLC(arch, options, cache=cache).compile(graph)


def _effective_faults(faults, num_chips: int):
    """Normalise ``faults`` to ``(core-masking map, link derate)``.

    ``faults`` may be ``None``, one :class:`~repro.faults.FaultModel`
    (applied to every chip), or a ``{chip: FaultModel}`` mapping.  The
    returned map keeps only chips whose model actually masks cores; the
    derate is the worst ``link_derate`` across all entries.
    """
    if faults is None:
        return {}, 1.0
    from ..faults.model import FaultModel

    if isinstance(faults, FaultModel):
        mapping = {k: faults for k in range(num_chips)}
    else:
        mapping = dict(faults)
    derate = 1.0
    for k in sorted(mapping):
        if not 0 <= k < num_chips:
            raise CapacityError(
                f"fault injected on chip {k}; system has chips "
                f"0..{num_chips - 1}")
        derate = min(derate, mapping[k].link_derate)
    masked = {k: f for k, f in mapping.items() if f.masks_cores()}
    return masked, derate


def shard(graph: Graph, system: MultiChipSystem,
          options: Optional[CompilerOptions] = None,
          optimize: bool = True,
          place: bool = True,
          cache: Optional["CompileCache"] = None,
          faults: Optional[Union["FaultModel",
                                 Mapping[int, "FaultModel"]]] = None
          ) -> ShardPlan:
    """Partition, compile, place, and price ``graph`` on ``system``.

    ``options`` feed every stage's :class:`~repro.sched.CIMMLC`
    compilation (``optimize=False`` uses the un-optimized baseline
    scheduler instead, for ablations); ``place`` runs the greedy NoC
    placement per stage with the link port (core 0) as I/O anchor.
    ``cache`` is shared across every stage compilation (all stages run
    the same die architecture, so NoC averages, duplication curves, and
    any stage-identical profiles are computed once).
    Raises :class:`~repro.errors.CapacityError` when the model cannot
    stay resident on ``system.num_chips`` chips.

    ``faults`` injects degraded hardware: one
    :class:`~repro.faults.FaultModel` (every chip equally) or a
    ``{chip: FaultModel}`` mapping.  Stages are rebalanced against each
    chip's surviving capacity, compiled for the degraded die, placed
    onto the surviving physical cores (link port still the anchor), and
    the link is derated by the worst ``link_derate``.  A zero fault
    model takes the fault-free path verbatim.

    Example
    -------
    >>> from repro.arch import MultiChipSystem, isaac_baseline
    >>> from repro.models import resnet18
    >>> one = shard(resnet18(), MultiChipSystem(isaac_baseline(), 1))
    >>> two = shard(resnet18(), MultiChipSystem(isaac_baseline(), 2))
    >>> two.report.throughput >= one.report.throughput
    True
    """
    graph.infer_shapes()
    masked, derate = _effective_faults(faults, system.num_chips)
    if derate != 1.0:
        system = replace(system, link=replace(
            system.link,
            bandwidth_bits=system.link.bandwidth_bits * derate))
    if masked:
        die = system.chip
        chip_archs = [masked[k].degrade_arch(die) if k in masked else die
                      for k in range(system.num_chips)]
        pools = {k: masked[k].surviving_cores(die) for k in masked}
        stages = partition_layers(graph, system.num_chips, die,
                                  chip_archs=chip_archs)
    else:
        chip_archs = [system.chip] * max(1, system.num_chips)
        pools = {}
        stages = partition_layers(graph, system.num_chips, system.chip)
    schedules: List[Schedule] = []
    reports: List[PerformanceReport] = []
    for idx, names in enumerate(stages):
        sub = stage_subgraph(graph, names, idx)
        result = _compile_stage(sub, chip_archs[idx], options, optimize,
                                cache)
        if place:
            pool = pools.get(idx)
            for seg in range(len(result.schedule.segments)):
                if pool is None:
                    annotate_placement(result.schedule, segment=seg,
                                       io_anchor=LINK_PORT_CORE)
                else:
                    annotate_placement(
                        result.schedule, segment=seg, region=pool,
                        die_cores=system.chip.chip.core_number,
                        io_anchor=LINK_PORT_CORE)
        schedules.append(result.schedule)
        reports.append(result.report)
    transfers = [
        LinkTransfer(
            src_stage=src, dst_stage=dst, src_chip=src, dst_chip=dst,
            bits=bits, hops=system.hops(src, dst),
            cycles=system.transfer_cycles(src, dst, bits),
            occupancy=system.link.serialization_cycles(bits),
            energy=system.transfer_energy(src, dst, bits),
        )
        for src, dst, bits in stage_transfers(graph, stages)
    ]
    report = pipeline_multichip(reports, list(range(len(stages))), transfers)
    return ShardPlan(
        system=system,
        graph=graph,
        stages=tuple(tuple(s) for s in stages),
        schedules=tuple(schedules),
        report=report,
    )
