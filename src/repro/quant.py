"""Quantization and crossbar weight encoding.

The paper quantizes all weights/activations to 8-bit (Section 4.1) and maps
each weight across ``ceil(w_bits / cell_bits)`` adjacent cells (dimension B
bound to XBC, Fig. 7).  Signed weights use offset-binary encoding: the cell
array stores ``w + 2^(bits-1)`` decomposed into unsigned base-``2^cell_bits``
digits, and the digital shift-and-add subtracts ``2^(bits-1) * sum(inputs)``
— the standard ISAAC-style correction, performed here by the ``shiftadd``
DCOM meta-operator.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .errors import SimulationError
from .graph import Graph


def quantize(x: np.ndarray, bits: int = 8) -> np.ndarray:
    """Symmetric per-tensor quantization of floats to signed integers."""
    if bits <= 1:
        raise SimulationError(f"cannot quantize to {bits} bits")
    qmax = 2 ** (bits - 1) - 1
    scale = np.max(np.abs(x))
    if scale == 0:
        return np.zeros_like(x, dtype=np.int64)
    return np.clip(np.round(x / scale * qmax), -qmax - 1, qmax).astype(np.int64)


def random_weights(graph: Graph, seed: int = 0,
                   low: Optional[int] = None,
                   high: Optional[int] = None) -> Dict[str, np.ndarray]:
    """Deterministic random integer weights for every weight tensor.

    Ranges default to the full signed range of each tensor's bit-width.
    Used by the functional-verification tests (the paper verifies its
    functional simulator against a reference framework; we verify against
    the numpy reference executor with identical weights).
    """
    rng = np.random.default_rng(seed)
    weights: Dict[str, np.ndarray] = {}
    for name, spec in graph.tensors.items():
        if not spec.is_weight:
            continue
        lo = -(2 ** (spec.bits - 1)) if low is None else low
        hi = 2 ** (spec.bits - 1) - 1 if high is None else high
        weights[name] = rng.integers(lo, hi + 1, size=spec.shape,
                                     dtype=np.int64)
    return weights


def random_input(graph: Graph, seed: int = 1) -> Dict[str, np.ndarray]:
    """Deterministic random integer activations for the graph inputs."""
    rng = np.random.default_rng(seed)
    inputs: Dict[str, np.ndarray] = {}
    for name in graph.inputs:
        spec = graph.tensors[name]
        lo = -(2 ** (spec.bits - 1))
        hi = 2 ** (spec.bits - 1) - 1
        inputs[name] = rng.integers(lo, hi + 1, size=spec.shape,
                                    dtype=np.int64)
    return inputs


def encode_matrix(matrix: np.ndarray, bits: int,
                  cell_bits: int) -> np.ndarray:
    """Offset-binary cell encoding of a signed (R, C) weight matrix.

    Returns an unsigned (R, C * slices) array of base-``2^cell_bits`` digits,
    least-significant slice first: column block ``c*slices + j`` holds digit
    ``j`` of ``matrix[:, c] + 2^(bits-1)``.
    """
    if matrix.ndim != 2:
        raise SimulationError(f"weight matrix must be 2-D, got {matrix.shape}")
    offset = 2 ** (bits - 1)
    shifted = matrix.astype(np.int64) + offset
    if shifted.min() < 0 or shifted.max() >= 2 ** bits:
        raise SimulationError(
            f"weights outside [{-offset}, {offset - 1}] for {bits}-bit encoding"
        )
    slices = -(-bits // cell_bits)
    base = 2 ** cell_bits
    r, c = shifted.shape
    cells = np.zeros((r, c * slices), dtype=np.int64)
    rem = shifted.copy()
    for j in range(slices):
        cells[:, j::slices] = rem % base
        rem //= base
    return cells


def decode_columns(raw: np.ndarray, slices: int, cell_bits: int,
                   offset_correction: int = 0) -> np.ndarray:
    """Digital shift-and-add: combine raw per-slice column sums.

    ``raw`` has length ``C * slices`` (slice-major per output column as laid
    out by :func:`encode_matrix`); the result has length ``C``.
    ``offset_correction`` (``2^(bits-1) * sum(inputs)``) undoes the
    offset-binary encoding.
    """
    if raw.size % slices != 0:
        raise SimulationError(
            f"raw length {raw.size} not divisible by slices {slices}"
        )
    cols = raw.size // slices
    out = np.zeros(cols, dtype=np.int64)
    for j in range(slices):
        out += raw[j::slices].astype(np.int64) << (cell_bits * j)
    return out - offset_correction
