"""Canonical result digests: the currency of golden validation.

Every registry entry reduces its run to a JSON-able *payload*;
:func:`result_digest` hashes its canonical serialization.  Two rules
make the digest a safe golden:

* **Order independence.**  Keys are sorted, so semantically identical
  payloads built in different dict orders digest identically.
* **Value sensitivity.**  Serialization is ``repr``-exact for floats
  (CPython's shortest round-trip repr), so *any* changed field — a
  cycle count, a Pareto flag, an SLO percentage — changes the digest.
  ``tests/test_reproduce.py`` fuzzes this property with hypothesis.

NaN and infinity are rejected (``allow_nan=False``): a payload that
produces them is a bug, not a result worth pinning.
"""

from __future__ import annotations

import hashlib
import json


def canonical_json(payload) -> str:
    """Serialize a payload deterministically (sorted keys, no spaces).

    Raises ``ValueError`` on NaN/infinity and ``TypeError`` on
    non-JSON-able objects — both mean the entry's payload builder is
    broken and must not be silently pinned.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def result_digest(payload) -> str:
    """SHA-256 hex digest of the canonical serialization."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")) \
        .hexdigest()
