"""Headline generators: the post-paper EXPERIMENTS.md sections.

Each function runs one subsystem headline (serving, sharding, energy,
fleet, trace replay, faults) and returns a :class:`HeadlineResult` —
the JSON-able payload that gets digested against the committed golden,
the prose paragraph between the section heading and the code block, and
the rendered code-block body.  The bodies are rendered *from* the
payload values, so a golden digest match implies the published text
matches too.

These used to live inside ``scripts/generate_experiments_md.py``; they
moved here so the doc generator and the ``repro reproduce`` validator
run literally the same code (the registry in
:mod:`repro.reproduce.registry` is the single source of truth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..explore import SweepRunner


@dataclass(frozen=True)
class HeadlineResult:
    """One generated headline: digestable payload + rendered section."""

    payload: Dict
    prose: str
    body: str


def serve_headline(runner: SweepRunner) -> HeadlineResult:
    """The PR-2 serving headline: spatial vs temporal p99 on isaac-flash.

    Mixed resnet18 (4x traffic) + mobilenet tenants under a seeded
    Poisson trace; compilations ride ``runner``'s result cache.  The
    shape claim (pinned by ``tests/test_serve.py``): spatial partitioning
    beats time multiplexing on p99 because resident weights never pay the
    FLASH reprogram cost.
    """
    from ..arch import isaac_flash
    from ..serve import TenantSpec, build_plans, make_trace, simulate

    arch = isaac_flash()
    specs = [TenantSpec("resnet18", "resnet18", weight=4.0),
             TenantSpec("mobilenet", "mobilenet", weight=1.0)]
    plans = build_plans(arch, specs, runner=runner)
    trace = make_trace("poisson", specs, 22e-6, 400, seed=0)
    lines = []
    modes: Dict[str, Dict] = {}
    for mode in ("spatial", "temporal"):
        report = simulate(plans[mode], trace)
        modes[mode] = {
            "p50": report.p50, "p99": report.p99,
            "slo_attainment": report.slo_attainment,
            "switch_cycles": report.switch_cycles,
            "digest": report.digest(),
        }
        r = modes[mode]
        lines.append(f"{mode:<9} p50={r['p50']:>12,.0f}  "
                     f"p99={r['p99']:>12,.0f}  "
                     f"SLO={r['slo_attainment']:6.1%}  "
                     f"switch={r['switch_cycles']:>14,.0f}")
    ratio = modes["temporal"]["p99"] / max(modes["spatial"]["p99"], 1e-9)
    lines.append(f"p99 speedup of spatial partitioning: {ratio:.2f}x")
    return HeadlineResult(
        payload={"modes": modes, "p99_speedup": ratio},
        prose="resnet18:4 + mobilenet:1 on isaac-flash, Poisson 22 "
              "req/Mcycle, 400 requests, timeout:8:50000 batching "
              "(`repro serve` defaults; pinned by `tests/test_serve.py`).",
        body="\n".join(lines))


def shard_headline(runner: SweepRunner) -> HeadlineResult:
    """The PR-3 sharding headline: resnet18 across 1..4 chips.

    A capacity-constrained 200-core ISAAC-like chip; ring links of
    512 bits/cycle.  Evaluated as a chips-axis sweep through ``runner``
    so regeneration rides the explore result cache.  The shape claim
    (pinned by ``tests/test_scale.py``): 2 chips beat 1 by ~2x and the
    pipeline saturates at the first conv's data-movement floor.
    """
    from ..arch import isaac_baseline
    from ..explore import SweepSpace
    from ..models import resnet18
    from ..sched import CompilerOptions

    chip = isaac_baseline().with_cores(200)
    space = SweepSpace.grid(
        chip, resnet18(),
        {"chips": [1, 2, 3, 4], "link_bw": [512], "link_latency": [100]},
        series=[("CIM-MLC", CompilerOptions())])
    sweep = runner.run(space)
    base = sweep.results[0].summary["steady_state_interval"]
    rows: List[Dict] = []
    lines = []
    for result in sweep:
        s = result.summary
        row = {
            "chips": s.get("scale", {}).get("num_chips", 1),
            "steady_state_interval": s["steady_state_interval"],
            "total_cycles": s["total_cycles"],
            "throughput_x": base / s["steady_state_interval"],
        }
        rows.append(row)
        lines.append(
            f"chips={row['chips']}: "
            f"interval={row['steady_state_interval']:>9,.0f}"
            f"  latency={row['total_cycles']:>9,.0f}"
            f"  throughput={row['throughput_x']:5.2f}x "
            f"vs 1 chip")
    return HeadlineResult(
        payload={"rows": rows},
        prose="200-core isaac-baseline chips, 512 b/cycle links "
              "(`repro shard`; pinned by `tests/test_scale.py`).  The "
              "first conv's data-movement floor paces the pipeline past "
              "3 chips.",
        body="\n".join(lines))


def energy_headline(runner: SweepRunner) -> HeadlineResult:
    """The PR-5 energy headline: resnet18's latency x energy x area
    frontier across presets and core counts.

    Swept through ``runner`` (energy metrics ride the same result
    cache); the frontier uses
    :data:`repro.explore.ENERGY_OBJECTIVES` — single-inference
    latency, energy per inference, resident crossbar area, all
    minimized.  The shape claim (pinned by ``tests/test_energy.py``):
    no point wins all three objectives, so energy-constrained
    deployment picks from a genuine frontier.
    """
    from ..arch import isaac_baseline, isaac_flash, puma
    from ..explore import ENERGY_OBJECTIVES, SweepSpace, pareto_frontier
    from ..models import resnet18
    from ..sched import CompilerOptions

    graph = resnet18()
    space = SweepSpace.grid(
        isaac_baseline(), graph, {"cores": [256, 512, 1024]},
        series=[("CIM-MLC", CompilerOptions())])
    for label, arch in (("isaac-flash", isaac_flash()), ("puma", puma())):
        space.add_point(label, arch, graph)
    sweep = runner.run(space)
    frontier = {id(r) for r in pareto_frontier(list(sweep),
                                               ENERGY_OBJECTIVES)}
    rows: List[Dict] = []
    lines = [f"{'point':<24} {'cycles':>12} {'energy/inf':>14} "
             f"{'crossbars':>10} {'pareto':>7}"]
    for r in sweep:
        s = r.summary
        row = {
            "label": r.label,
            "total_cycles": s["total_cycles"],
            "energy_per_inference": s["energy_per_inference"],
            "area_crossbars": s["area_crossbars"],
            "pareto": id(r) in frontier,
        }
        rows.append(row)
        lines.append(
            f"{row['label']:<24} {row['total_cycles']:>12,.0f} "
            f"{row['energy_per_inference']:>14,.0f} "
            f"{row['area_crossbars']:>10,} "
            f"{'*' if row['pareto'] else '':>7}")
    return HeadlineResult(
        payload={"rows": rows},
        prose="Presets and core counts swept with `repro sweep --pareto "
              "--objectives latency,energy,area` (energy model: "
              "docs/ENERGY.md; pinned by `tests/test_energy.py`).  More "
              "cores buy duplication (latency) but keep more crossbars "
              "resident and active (area, energy) — a genuine three-way "
              "frontier.",
        body="\n".join(lines))


def power_capped_serve_headline(runner: SweepRunner) -> HeadlineResult:
    """Power-capped vs. uncapped spatial serving of the PR-2 mix.

    The uncapped plan's peak power sets the scale; capping at 60% of it
    forces the planner to down-duplicate the hungriest tenant
    (``fit_power_budget``), trading tail latency for feasibility.
    Pinned by ``tests/test_serve.py`` (``TestPowerBudget``).
    """
    from ..arch import isaac_flash
    from ..serve import TenantSpec, build_plans, make_trace, simulate

    arch = isaac_flash()
    specs = [TenantSpec("resnet18", "resnet18", weight=4.0),
             TenantSpec("mobilenet", "mobilenet", weight=1.0)]
    trace = make_trace("poisson", specs, 22e-6, 400, seed=0)
    uncapped = build_plans(arch, specs, modes=("spatial",),
                           runner=runner)["spatial"]
    budget = 0.6 * uncapped.peak_power
    capped = build_plans(arch, specs, modes=("spatial",), runner=runner,
                         power_budget=budget)["spatial"]
    rows: List[Dict] = []
    lines = []
    for title, plan in (("uncapped", uncapped), ("capped", capped)):
        report = simulate(plan, trace)
        row = {
            "title": title,
            "peak_power": plan.peak_power,
            "allocation": {t.spec.name: len(t.cores)
                           for t in plan.tenants},
            "p99": report.p99,
            "slo_attainment": report.slo_attainment,
            "total_energy": report.total_energy,
        }
        rows.append(row)
        alloc = " ".join(f"{name}={cores}c"
                         for name, cores in row["allocation"].items())
        lines.append(
            f"{title:<9} peak={row['peak_power']:>9,.1f}  [{alloc}]  "
            f"p99={row['p99']:>12,.0f}  "
            f"SLO={row['slo_attainment']:6.1%}  "
            f"energy={row['total_energy']:>16,.0f}")
    lines.append(f"budget: {budget:,.1f} (60% of the uncapped peak); the "
                 f"planner down-duplicated the hungriest tenant to fit")
    return HeadlineResult(
        payload={"rows": rows, "budget": budget},
        prose="resnet18:4 + mobilenet:1 on isaac-flash, Poisson 22 "
              "req/Mcycle, 400 requests (`repro serve --power-budget`; "
              "pinned by `tests/test_serve.py::TestPowerBudget`).",
        body="\n".join(lines))


def fleet_headline(runner: SweepRunner) -> HeadlineResult:
    """The PR-6 fleet headline: SLO attainment and energy-per-request
    vs. replica count for two routing policies under bursty load.

    The PR-2 tenant mix behind a front end, replicated 2/4/8 times and
    driven by a 50k-request diurnal+bursty trace (vectorized generation;
    the per-replica plan compiles once through ``runner``'s result
    cache, so the whole grid costs one compile).  The shape claim
    (pinned by ``tests/test_fleet.py::TestFleetPipeline``): backlog-
    aware least-loaded routing beats blind round-robin on p99 under
    bursty traffic — bursts land on whichever replica is drained
    instead of whichever is next — and adding replicas buys tail
    latency at roughly flat energy-per-request (the ledger charges
    inference, deployment, and link hops, not idleness).
    """
    from ..fleet import AdmissionControl, build_fleet_cached, \
        fleet_sweep, fleet_table
    from ..arch import isaac_flash
    from ..serve import TenantSpec, make_trace

    arch = isaac_flash()
    specs = [TenantSpec("resnet18", "resnet18", weight=4.0),
             TenantSpec("mobilenet", "mobilenet", weight=1.0)]
    plan = build_fleet_cached(arch, specs, replicas=8, runner=runner)
    trace = make_trace("diurnal-bursty", specs, 200e-6, 50_000, seed=0)
    points = fleet_sweep(plan, trace, replica_counts=[2, 4, 8],
                         routers=("rr", "least-loaded"),
                         admission=AdmissionControl(max_outstanding=64))
    cells = {f"{p.replicas}/{p.router}": {
        "p99": p.report.p99,
        "slo_attainment": p.report.slo_attainment,
        "energy_per_request": p.report.energy_per_request,
        "digest": p.report.digest(),
    } for p in points}
    ratio = cells["8/rr"]["p99"] / max(cells["8/least-loaded"]["p99"],
                                       1e-9)
    body = "\n".join([
        fleet_table(points),
        f"p99 advantage of least-loaded over round-robin at 8 "
        f"replicas: {ratio:.2f}x"])
    return HeadlineResult(
        payload={"cells": cells, "p99_advantage": ratio},
        prose="resnet18:4 + mobilenet:1 on isaac-flash replicas, "
              "diurnal+bursty 200 req/Mcycle, 50,000 requests, admission "
              "max_outstanding=64 (`repro fleet --counts 2,4,8 --routers "
              "rr,least-loaded`; pinned by `tests/test_fleet.py`).  "
              "Least-loaded beats round-robin on p99 under bursty load; "
              "energy-per-request stays roughly flat with fleet size.",
        body=body)


def trace_headline(runner: SweepRunner) -> HeadlineResult:
    """The PR-7 trace headline: replay prefilter vs. the full sweep on
    a link-dominated resnet18 grid.

    288 points (chips x link_bw x link_latency), of which only three
    differ in anything but link parameters: the prefilter fully
    evaluates one anchor per group, re-prices the rest from the
    anchor's recorded timeline (exact for link axes — pinned by
    ``tests/test_trace.py``), and fully simulates only the frontier.
    The generated check below asserts the frontier equals the full
    sweep's; the wall-clock claim (51.4x, cold cache, single worker:
    0.61 s vs 31.50 s) is measured offline because regeneration rides
    the result cache.
    """
    from dataclasses import asdict

    from ..arch import isaac_baseline
    from ..explore import SweepSpace, pareto_frontier, replay_prefilter
    from ..models import resnet18
    from ..sched import CompilerOptions

    chip = isaac_baseline()
    grid = {"chips": [2, 3, 4],
            "link_bw": [4, 8, 16, 24, 32, 48, 64, 96, 128, 192, 256, 512],
            "link_latency": [5, 10, 20, 30, 40, 60, 80, 120]}
    space = SweepSpace.grid(chip, resnet18(), grid,
                            series=[("CIM-MLC", CompilerOptions())])
    pre = replay_prefilter(space, runner)
    full = runner.run(space)
    frontier_full = pareto_frontier(list(full))
    key = lambda r: (r.label, r.series)  # noqa: E731
    identical = [key(r) for r in pre.frontier] == \
        [key(r) for r in frontier_full]
    rows: List[Dict] = []
    lines = [pre.stats.describe(),
             "frontier (min total_cycles, steady_state_interval):"]
    for r in pre.frontier:
        s = r.summary
        row = {"label": r.label,
               "total_cycles": s["total_cycles"],
               "steady_state_interval": s["steady_state_interval"]}
        rows.append(row)
        lines.append(f"  {row['label']}: "
                     f"total={row['total_cycles']:,.0f}  "
                     f"interval={row['steady_state_interval']:,.0f}")
    lines.append(f"frontier identical to the full {len(full.results)}-"
                 f"point sweep: {identical}")
    return HeadlineResult(
        payload={"stats": asdict(pre.stats), "frontier": rows,
                 "identical": identical,
                 "points": len(full.results)},
        prose="resnet18 on isaac-baseline chips, a 288-point chips x "
              "link_bw x link_latency grid (`repro sweep --prefilter "
              "replay`; replay exactness pinned by `tests/test_trace.py`"
              ").  Link re-pricing from one recorded anchor timeline "
              "per chip count reproduces the full sweep's Pareto "
              "frontier from ~50x fewer simulations; measured "
              "wall-clock on a cold cache, single worker: **0.61 s vs "
              "31.50 s (51.4x)**.  See docs/TRACE.md.",
        body="\n".join(lines))


#: The exact faults-headline configurations EXPERIMENTS.md reports;
#: shared with ``tests/test_faults.py``'s digest pins.
FAULTS_SWEEP_DEAD = (0, 38, 76, 153, 307)
FAULTS_DEATH_REQUESTS = 3000


def faults_degradation_headline(runner: SweepRunner) -> HeadlineResult:
    """The PR-8 degradation headline: serving quality vs. dead cores.

    Kills an evenly-spread mask of the isaac-baseline die (0/5/10/20/
    40%), rebuilds the spatial serving plan on the survivors, and
    replays the same seeded Poisson trace.  The sweep digest is the
    EXPERIMENTS.md pin (``tests/test_faults.py``); zero dead cores
    reproduces the fault-free plan bit for bit.
    """
    from ..arch import isaac_baseline
    from ..faults import degradation_sweep, sweep_digest, sweep_rows, \
        sweep_table
    from ..serve import TenantSpec

    arch = isaac_baseline()
    specs = [TenantSpec("resnet18", "resnet18", weight=4.0),
             TenantSpec("mobilenet", "mobilenet", weight=1.0)]
    points = degradation_sweep(arch, specs, list(FAULTS_SWEEP_DEAD),
                               50e-6, num_requests=400, seed=0,
                               runner=runner)
    digest = sweep_digest(points)
    table = "\n".join(line[2:] for line in
                      sweep_table(points).splitlines())
    body = "\n".join([
        table,
        f"sweep digest: {digest[:16]} (zero dead cores reproduces the "
        f"fault-free plan bit for bit)"])
    dead_list = ",".join(str(d) for d in FAULTS_SWEEP_DEAD)
    return HeadlineResult(
        payload={"rows": sweep_rows(points), "sweep_digest": digest},
        prose=f"resnet18:4 + mobilenet:1 on isaac-baseline "
              f"({arch.chip.core_number} cores), poisson 50 req/Mcycle, "
              f"400 requests, seed 0; each row kills an evenly-spread "
              f"mask (0/5/10/20/40% of the die), rebuilds the spatial "
              f"plan on the surviving cores (`repro faults --sweep-dead "
              f"{dead_list}`; digest pinned by `tests/test_faults.py`). "
              f" Tail latency absorbs the damage first — p99 is already "
              f"1.8x at 20% dead while p50 moves 12% — and SLO "
              f"attainment only collapses once the die is 40% dead.",
        body=body)


def faults_availability_headline(runner: SweepRunner) -> HeadlineResult:
    """The PR-8 availability headline: a mid-trace chip death, with and
    without a spare.

    Replica 0 dies at half the horizon.  A static 4-replica fleet has
    no spare, so capacity stays down; an autoscaled 6-replica fleet
    deploys one immediately, paying the real weight-program cost.
    Digest-pinned by ``tests/test_faults.py``.
    """
    from ..arch import isaac_baseline
    from ..faults import FaultModel
    from ..fleet import Autoscaler, build_fleet_cached, simulate_fleet
    from ..serve import TenantSpec, make_trace

    arch = isaac_baseline()
    specs = [TenantSpec("resnet18", "resnet18", weight=4.0),
             TenantSpec("mobilenet", "mobilenet", weight=1.0)]
    trace = make_trace("diurnal-bursty", specs, 80e-6,
                       FAULTS_DEATH_REQUESTS, seed=0)
    death_time = trace[-1].arrival / 2
    fault = FaultModel(chip_death_time=death_time, chip_death_rid=0)
    scenarios = (
        ("static x4, no spare",
         build_fleet_cached(arch, specs, replicas=4, runner=runner),
         None),
        ("autoscaled x6, spare deploys",
         build_fleet_cached(arch, specs, replicas=6, runner=runner),
         Autoscaler(min_replicas=2)),
    )
    rows: List[Dict] = []
    lines = [f"{'fleet':<28} {'availability':>14} {'recovery (cyc)':>16} "
             f"{'completed':>11} {'lost':>6} {'SLO':>5}"]
    for title, plan, autoscaler in scenarios:
        report = simulate_fleet(plan, trace, autoscaler=autoscaler,
                                fault=fault)
        row = {
            "title": title,
            "availability": report.availability,
            "recovery_cycles": report.recovery_cycles,
            "completed": report.completed,
            "lost_requests": report.fault["lost_requests"],
            "slo_attainment": report.slo_attainment,
            "digest": report.digest(),
        }
        rows.append(row)
        recovery = f"{row['recovery_cycles']:,.0f}" \
            if row["recovery_cycles"] is not None else "none"
        lines.append(
            f"{title:<28} {row['availability']:>14.4%} {recovery:>16} "
            f"{row['completed']:>11,} {row['lost_requests']:>6,} "
            f"{row['slo_attainment']:>6.1%}")
    return HeadlineResult(
        payload={"rows": rows, "death_time": death_time},
        prose=f"Same tenants on isaac-baseline fleets, diurnal-bursty "
              f"80 req/Mcycle, {FAULTS_DEATH_REQUESTS:,} requests, seed "
              f"0; replica 0 dies at half the horizon ({death_time:,.0f} "
              f"cycles), killing its in-flight batches and re-routing "
              f"its queue (`repro faults --chip-death ... --death-rid "
              f"0`; digests pinned by `tests/test_faults.py`).  A "
              f"static 4-replica fleet has no spare — capacity stays "
              f"down for the rest of the trace.  An autoscaled "
              f"6-replica fleet deploys a spare immediately, paying the "
              f"real weight-program cost: availability recovers to four "
              f"nines and the SLO holds.",
        body="\n".join(lines))
