"""``repro.reproduce`` — the artifact-grade one-command reproduction
harness.

One registry (:mod:`~repro.reproduce.registry`) declares every
EXPERIMENTS.md figure/table and the BENCH suite; :func:`~repro.
reproduce.harness.run_profile` runs it under a ``quick`` (warm-cache,
~5 min) or ``full`` (cold-cache) profile, validates fresh result
digests against the committed goldens in ``benchmarks/goldens/``, and
emits ``reproduce_report.json`` plus a human pass/fail table.  The doc
generator (``scripts/generate_experiments_md.py``) renders the same
registry, so the published document and the validator cannot drift.

Entry points: ``repro reproduce`` (CLI), ``scripts/run_all.sh``
(wrapper), ``repro reproduce --bless`` (golden-update workflow — see
docs/REPRODUCE.md).
"""

from .digest import canonical_json, result_digest
from .goldens import (
    DEFAULT_GOLDENS_DIR,
    load_golden,
    make_golden,
    save_golden,
    validate,
)
from .harness import (
    check_registry,
    isolated_disk_cache,
    render_document,
    run_profile,
)
from .registry import (
    EXEMPT_TITLES,
    EXPERIMENTS_HEADER,
    REGISTRY,
    EntryOutcome,
    ReproEntry,
    RunContext,
    Section,
    document_titles,
    entry_names,
    find,
    registered_titles,
)
from .report import (
    PROFILE_BUDGETS_S,
    REPORT_SCHEMA_VERSION,
    EntryReport,
    ReproduceReport,
)

__all__ = [
    "DEFAULT_GOLDENS_DIR",
    "EXEMPT_TITLES",
    "EXPERIMENTS_HEADER",
    "EntryOutcome",
    "EntryReport",
    "PROFILE_BUDGETS_S",
    "REGISTRY",
    "REPORT_SCHEMA_VERSION",
    "ReproEntry",
    "ReproduceReport",
    "RunContext",
    "Section",
    "canonical_json",
    "check_registry",
    "document_titles",
    "entry_names",
    "find",
    "isolated_disk_cache",
    "load_golden",
    "make_golden",
    "registered_titles",
    "render_document",
    "result_digest",
    "run_profile",
    "save_golden",
    "validate",
]
