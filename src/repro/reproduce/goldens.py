"""Committed goldens under ``benchmarks/goldens/`` and their validation.

One JSON file per registry entry (``<golden_key>.json``), written by
``repro reproduce --bless`` and compared on every validation run.
Experiment goldens pin the exact :func:`~repro.reproduce.digest.
result_digest` of the payload — the determinism house invariant means a
byte of drift anywhere in the pipeline fails the entry.  BENCH goldens
cannot be exact (speedups are ratios of wall clocks); they reuse the
``benchmarks/perf/check_regression.py`` band policy instead: names and
point counts exact, speedups within a tolerance floor, near-1x ratios
informational.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from .digest import result_digest

#: Default location of the committed goldens, relative to the repo root
#: (``repro reproduce`` is run from the checkout, like the doc
#: generator).
DEFAULT_GOLDENS_DIR = os.path.join("benchmarks", "goldens")

#: BENCH band policy — mirrors ``benchmarks/perf/check_regression.py``:
#: only baselines at least MIN_ENFORCED_SPEEDUP are enforced (near-1x
#: ratios sit inside timer noise); enforced baselines may drop at most
#: TOLERANCE, or HIGH_TOLERANCE when the baseline is at least
#: HIGH_SPEEDUP (reference-leg noise dominates tens-of-ms fast walls).
MIN_ENFORCED_SPEEDUP = 2.0
TOLERANCE = 0.20
HIGH_SPEEDUP = 30.0
HIGH_TOLERANCE = 0.50

#: Speedups measured over a reference leg shorter than this are pure
#: scheduler noise regardless of the ratio (a 12 ms quick-size leg
#: swings 1.5x-4x run to run), so they are never enforced.  Goldens
#: blessed before ``ref_wall_s`` was recorded enforce unconditionally.
MIN_BAND_REF_WALL_S = 0.05


def golden_path(goldens_dir: str, key: str) -> str:
    """Where the golden for ``key`` lives."""
    return os.path.join(goldens_dir, f"{key}.json")


def load_golden(goldens_dir: str, key: str) -> Optional[Dict]:
    """The committed golden for ``key``, or None if never blessed."""
    try:
        with open(golden_path(goldens_dir, key)) as handle:
            return json.load(handle)
    except FileNotFoundError:
        return None


def make_golden(name: str, kind: str, validation: str, payload,
                version: str) -> Dict:
    """A golden document for ``payload`` (digest omitted for BENCH —
    band validation never consults it, and pinning a noisy hash would
    misleadingly suggest exactness)."""
    return {
        "name": name,
        "kind": kind,
        "validation": validation,
        "digest": result_digest(payload) if validation == "exact" else None,
        "payload": payload,
        "blessed_version": version,
    }


def save_golden(goldens_dir: str, key: str, golden: Dict) -> str:
    """Write one golden (pretty-printed: goldens are reviewed in PRs)."""
    os.makedirs(goldens_dir, exist_ok=True)
    path = golden_path(goldens_dir, key)
    with open(path, "w") as handle:
        json.dump(golden, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def validate_exact(payload, golden: Dict) -> List[str]:
    """Failure messages for an exact-digest entry (empty = pass)."""
    fresh = result_digest(payload)
    if fresh == golden["digest"]:
        return []
    return [f"digest mismatch: fresh {fresh[:16]} != "
            f"golden {str(golden['digest'])[:16]}"]


def validate_bench_band(payload, golden: Dict) -> List[str]:
    """Failure messages for a BENCH entry under the band policy.

    Row sets and point counts must match exactly (adding or removing a
    workload is a reviewed code change, so it must show up here);
    speedups fail only when an enforced baseline drops below its floor.
    """
    fresh_rows = {row["name"]: row for row in payload["rows"]}
    golden_rows = {row["name"]: row for row in golden["payload"]["rows"]}
    failures = []
    for name in sorted(set(fresh_rows) | set(golden_rows)):
        if name not in fresh_rows:
            failures.append(f"benchmark {name!r} missing from the fresh run")
            continue
        if name not in golden_rows:
            failures.append(f"benchmark {name!r} not in the golden "
                            f"(re-bless after adding a workload)")
            continue
        fresh, base = fresh_rows[name], golden_rows[name]
        if fresh["points"] != base["points"]:
            failures.append(
                f"benchmark {name!r}: points {fresh['points']} != "
                f"golden {base['points']} (workload size changed)")
        baseline = float(base["speedup_vs_reference"])
        tol = HIGH_TOLERANCE if baseline >= HIGH_SPEEDUP else TOLERANCE
        floor = baseline * (1.0 - tol)
        measured = float(fresh["speedup_vs_reference"])
        ref_wall = float(base.get("ref_wall_s", MIN_BAND_REF_WALL_S))
        enforced = (baseline >= MIN_ENFORCED_SPEEDUP
                    and ref_wall >= MIN_BAND_REF_WALL_S)
        if enforced and measured < floor:
            failures.append(
                f"benchmark {name!r}: speedup {measured:.2f}x below "
                f"floor {floor:.2f}x (golden {baseline:.2f}x)")
    return failures


def validate(validation: str, payload, golden: Optional[Dict],
             key: str) -> List[str]:
    """Dispatch on the entry's validation policy (empty list = pass)."""
    if golden is None:
        return [f"no committed golden {key!r} "
                f"(run `repro reproduce --bless` and commit it)"]
    if validation == "exact":
        return validate_exact(payload, golden)
    return validate_bench_band(payload, golden)
