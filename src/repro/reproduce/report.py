"""The machine-readable ``reproduce_report.json`` and its human table.

:class:`ReproduceReport` is what one ``repro reproduce`` run emits:
one :class:`EntryReport` per registered entry (status, wall clock,
digests, failure messages) plus run-level context (profile, version,
cold-cache verification, total wall against the profile's budget).
``to_dict``/``from_dict`` round-trip exactly — ``tests/
test_reproduce.py`` pins the schema — so CI artifacts stay parseable
across runs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

import json

#: Bump on any incompatible change to the report dict shape.
REPORT_SCHEMA_VERSION = 1

#: Informational wall-clock budgets per profile, seconds (the quick
#: budget is the artifact-evaluation promise; overruns are reported,
#: not failed — CI hardware varies).
PROFILE_BUDGETS_S = {"quick": 300.0, "full": 1800.0}


@dataclass
class EntryReport:
    """One entry's outcome: pass/fail/error/blessed plus evidence."""

    name: str
    kind: str
    validation: str
    status: str                    # "pass" | "fail" | "error" | "blessed"
    wall_s: float
    digest: Optional[str] = None         # fresh payload digest
    golden_digest: Optional[str] = None  # committed digest (exact entries)
    failures: List[str] = field(default_factory=list)


@dataclass
class ReproduceReport:
    """A full run: per-entry outcomes plus run-level context."""

    profile: str
    repro_version: str
    entries: List[EntryReport] = field(default_factory=list)
    schema_version: int = REPORT_SCHEMA_VERSION
    cold: bool = False             # ran against empty caches?
    blessed: bool = False          # goldens were (re)written, not checked
    budget_s: float = 0.0
    wall_s: float = 0.0

    @property
    def failures(self) -> List[str]:
        """Names of entries that did not pass (empty = reproduction OK)."""
        return [e.name for e in self.entries
                if e.status in ("fail", "error")]

    @property
    def ok(self) -> bool:
        """True when every entry passed (or was just blessed)."""
        return not self.failures

    def to_dict(self) -> Dict:
        """The JSON document (schema pinned by ``tests/test_reproduce.py``)."""
        doc = asdict(self)
        doc["failures"] = self.failures
        doc["ok"] = self.ok
        return doc

    @classmethod
    def from_dict(cls, doc: Dict) -> "ReproduceReport":
        """Rebuild a report from its JSON document (inverse of
        ``to_dict``; the derived ``failures``/``ok`` keys are ignored)."""
        entries = [EntryReport(**entry) for entry in doc["entries"]]
        fields = {k: doc[k] for k in ("profile", "repro_version",
                                      "schema_version", "cold", "blessed",
                                      "budget_s", "wall_s")}
        return cls(entries=entries, **fields)

    def to_json(self) -> str:
        """Pretty JSON for the CI artifact."""
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)

    def table(self) -> str:
        """The human pass/fail table printed after a run."""
        lines = [f"{'entry':<22} {'kind':<11} {'check':<11} "
                 f"{'wall':>8} {'status':<8}"]
        for e in self.entries:
            lines.append(f"{e.name:<22} {e.kind:<11} {e.validation:<11} "
                         f"{e.wall_s:>7.1f}s {e.status:<8}")
            for failure in e.failures:
                lines.append(f"  ! {failure}")
        verdict = "BLESSED" if self.blessed else \
            ("PASS" if self.ok else f"FAIL ({', '.join(self.failures)})")
        budget = f" (budget {self.budget_s:.0f}s)" if self.budget_s else ""
        lines.append(f"profile {self.profile}: {len(self.entries)} entries "
                     f"in {self.wall_s:.1f}s{budget} — {verdict}")
        return "\n".join(lines)
