"""One-command reproduction: run the registry, validate the goldens.

:func:`run_profile` is the engine behind ``repro reproduce`` and
``scripts/run_all.sh``: it materializes every :data:`~repro.reproduce.
registry.REGISTRY` entry under one of two profiles —

* ``quick`` — warm-cache friendly: experiments ride the user's explore
  result cache and BENCH runs its shrunk workloads.  The ~5-minute
  artifact-evaluation pass.
* ``full``  — cold by construction: the explore cache is redirected to
  an empty temporary directory (emptiness asserted before, misses
  asserted after) and BENCH runs its full workloads.

Both profiles isolate the persistent compile memo when
``REPRO_DISK_CACHE=1`` is set: the process cache is re-rooted into a
temporary directory for the duration of the run
(:func:`isolated_disk_cache`), because BENCH's cold-start protocol
*clears* the process cache — without isolation that would delete the
user's on-disk memo.  ``tests/test_reproduce.py`` regression-tests
this.

Fresh results are digested and compared against the committed goldens
(:mod:`repro.reproduce.goldens`); freshly rendered document sections
are compared against the committed EXPERIMENTS.md, so a stale document
fails the same run that a wrong number does.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
import time
from typing import Dict, List, Optional, Sequence

from .. import __version__
from ..explore import SweepRunner, default_cache_dir
from ..perf.diskcache import ENV_DIR, disk_cache_enabled
from . import goldens as goldens_mod
from .digest import result_digest
from .registry import (
    EXEMPT_TITLES,
    EXPERIMENTS_HEADER,
    REGISTRY,
    RunContext,
    document_titles,
    entry_names,
)
from .report import PROFILE_BUDGETS_S, EntryReport, ReproduceReport

#: Where the rendered document lives, relative to the repo root.
EXPERIMENTS_MD = "EXPERIMENTS.md"


@contextlib.contextmanager
def isolated_disk_cache():
    """Re-root the persistent compile memo into a temp dir for the run.

    No-op unless ``REPRO_DISK_CACHE=1``.  The explore process cache is
    rebound to a fresh :func:`~repro.perf.diskcache.
    default_compile_cache` under the redirected ``REPRO_COMPILE_CACHE_DIR``
    — the module global was constructed at import time against the
    user's directory, so flipping the environment alone would not
    protect it from BENCH's ``clear()`` (which deletes the on-disk
    store).  Environment and cache bindings are restored on exit;
    the temp store is discarded.
    """
    if not disk_cache_enabled():
        yield
        return
    from ..perf.diskcache import default_compile_cache
    from ..perf.incremental import IncrementalCompiler
    from ..explore import runner as runner_mod

    saved_env = os.environ.get(ENV_DIR)
    saved_cache = runner_mod._PROCESS_CACHE
    saved_incremental = runner_mod._PROCESS_INCREMENTAL
    with tempfile.TemporaryDirectory(prefix="repro-reproduce-memo-") as tmp:
        os.environ[ENV_DIR] = tmp
        runner_mod._PROCESS_CACHE = default_compile_cache()
        runner_mod._PROCESS_INCREMENTAL = IncrementalCompiler(
            cache=runner_mod._PROCESS_CACHE)
        try:
            yield
        finally:
            if saved_env is None:
                os.environ.pop(ENV_DIR, None)
            else:
                os.environ[ENV_DIR] = saved_env
            runner_mod._PROCESS_CACHE = saved_cache
            runner_mod._PROCESS_INCREMENTAL = saved_incremental


def _section_map(markdown: str) -> Dict[str, str]:
    """``{heading: content}`` for a rendered EXPERIMENTS.md text.

    Content is everything between one ``## `` heading and the next,
    with the generation-time footer dropped and whitespace stripped —
    the form the drift check compares.
    """
    sections: Dict[str, str] = {}
    title: Optional[str] = None
    lines: List[str] = []

    def flush() -> None:
        if title is not None:
            body = [ln for ln in lines
                    if not ln.startswith("*Total generation time")]
            sections[title] = "\n".join(body).strip()

    for line in markdown.splitlines():
        if line.startswith("## "):
            flush()
            title = line[3:].strip()
            lines = []
        elif title is not None:
            lines.append(line)
    flush()
    return sections


def _rendered_content(section) -> str:
    """A freshly rendered section in the drift check's comparable form."""
    rendered = section.render()
    return rendered.split("\n", 1)[1].strip()


def render_document(sections: Sequence, elapsed_s: float) -> str:
    """The complete EXPERIMENTS.md text from rendered sections."""
    parts = [EXPERIMENTS_HEADER]
    parts += [section.render() for section in sections]
    parts.append(f"\n*Total generation time: {elapsed_s:.0f}s*\n")
    return "".join(parts)


def run_profile(profile: str = "quick",
                only: Optional[Sequence[str]] = None,
                bless: bool = False,
                workers: int = 1,
                cache_dir: Optional[str] = None,
                goldens_dir: str = goldens_mod.DEFAULT_GOLDENS_DIR,
                experiments_md: str = EXPERIMENTS_MD,
                progress=None) -> ReproduceReport:
    """Run the registry under ``profile`` and validate (or bless) it.

    ``only`` narrows to the named entries (validation still runs; the
    document-drift check covers just their sections).  ``bless``
    rewrites the goldens from this run instead of checking them — and,
    when the run covered every entry, regenerates EXPERIMENTS.md too.
    ``progress`` (callable taking one string) receives per-entry status
    lines; ``repro reproduce`` points it at stderr.
    """
    say = progress or (lambda message: None)
    chosen = _select(only)
    report = ReproduceReport(profile=profile, repro_version=__version__,
                             blessed=bless, cold=(profile == "full"),
                             budget_s=PROFILE_BUDGETS_S.get(profile, 0.0))
    t_run = time.perf_counter()
    with contextlib.ExitStack() as stack:
        stack.enter_context(isolated_disk_cache())
        if profile == "full":
            explore_dir = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-reproduce-cold-"))
            if os.listdir(explore_dir):
                raise RuntimeError(
                    f"cold explore cache {explore_dir} is not empty")
        else:
            explore_dir = cache_dir or default_cache_dir()
        from ..perf.bench import clear_process_caches
        clear_process_caches()
        ctx = RunContext(
            runner=SweepRunner(workers=workers, cache_dir=explore_dir),
            profile=profile)
        rendered_sections = []
        for entry in chosen:
            say(f"running {entry.name} ...")
            entry_report, sections = _run_entry(entry, ctx, bless,
                                                goldens_dir)
            report.entries.append(entry_report)
            rendered_sections.extend(sections)
        swept = any(entry.uses_runner for entry in chosen)
        if profile == "full" and swept and not os.listdir(explore_dir):
            # Entries ran but the cold cache stayed empty: nothing was
            # actually recomputed, so the "cold" promise is broken.
            report.cold = False
            for entry_report in report.entries:
                if entry_report.kind == "experiment":
                    entry_report.status = "fail"
                    entry_report.failures.append(
                        "cold-cache assertion: no sweep results were "
                        "written to the fresh cache directory")
    report.wall_s = time.perf_counter() - t_run
    chosen_names = {entry.name for entry in chosen}
    full_coverage = all(entry.name in chosen_names
                        for entry in REGISTRY if entry.titles)
    if bless and full_coverage:
        doc = render_document(rendered_sections, report.wall_s)
        with open(experiments_md, "w") as handle:
            handle.write(doc)
        say(f"wrote {experiments_md}")
    elif not bless:
        _check_document_drift(report, rendered_sections, experiments_md)
    return report


def _select(only: Optional[Sequence[str]]):
    """The registry entries to run, preserving document order."""
    if not only:
        return list(REGISTRY)
    wanted = list(only)
    known = set(entry_names())
    unknown = [name for name in wanted if name not in known]
    if unknown:
        raise KeyError(f"unknown entries {unknown}; "
                       f"choose from {entry_names()}")
    return [entry for entry in REGISTRY if entry.name in wanted]


def _run_entry(entry, ctx, bless: bool, goldens_dir: str):
    """Run one entry, then bless or validate its golden.

    Returns ``(EntryReport, sections)`` — the rendered sections feed
    the document drift check (empty when the entry errored).
    """
    t0 = time.perf_counter()
    try:
        outcome = entry.run(ctx)
    except Exception as exc:  # noqa: BLE001 - an entry crashing must be
        # reported as that entry's failure, not abort the whole run.
        return EntryReport(
            name=entry.name, kind=entry.kind, validation=entry.validation,
            status="error", wall_s=time.perf_counter() - t0,
            failures=[f"{type(exc).__name__}: {exc}"]), ()
    wall = time.perf_counter() - t0
    key = entry.golden_key(ctx.profile)
    digest = result_digest(outcome.payload) \
        if entry.validation == "exact" else None
    if bless:
        golden = goldens_mod.make_golden(
            entry.name, entry.kind, entry.validation, outcome.payload,
            __version__)
        goldens_mod.save_golden(goldens_dir, key, golden)
        return EntryReport(
            name=entry.name, kind=entry.kind, validation=entry.validation,
            status="blessed", wall_s=wall,
            digest=digest), outcome.sections
    golden = goldens_mod.load_golden(goldens_dir, key)
    failures = goldens_mod.validate(entry.validation, outcome.payload,
                                    golden, key)
    return EntryReport(
        name=entry.name, kind=entry.kind, validation=entry.validation,
        status="pass" if not failures else "fail", wall_s=wall,
        digest=digest,
        golden_digest=(golden or {}).get("digest"),
        failures=failures), outcome.sections


def _check_document_drift(report: ReproduceReport, sections,
                          experiments_md: str) -> None:
    """Fail entries whose committed EXPERIMENTS.md section differs from
    the freshly rendered one (stale doc == failed reproduction)."""
    try:
        with open(experiments_md) as handle:
            committed = _section_map(handle.read())
    except FileNotFoundError:
        committed = {}
    drifted: Dict[str, str] = {}
    for section in sections:
        if section.title in EXEMPT_TITLES:
            continue
        have = committed.get(section.title)
        if have is None:
            drifted[section.title] = "section missing from the document"
        elif have != _rendered_content(section):
            drifted[section.title] = "section text differs from this run"
    if not drifted:
        return
    by_title = {title: entry_report
                for entry, entry_report in zip(_ordered_entries(report),
                                               report.entries)
                for title in entry.titles}
    for title, why in drifted.items():
        entry_report = by_title.get(title)
        if entry_report is None:
            continue
        if entry_report.status == "pass":
            entry_report.status = "fail"
        entry_report.failures.append(
            f"{experiments_md} drift — {title!r}: {why} "
            f"(regenerate with `repro reproduce --bless --profile full`)")


def _ordered_entries(report: ReproduceReport):
    """The registry entries this report ran, in report order."""
    by_name = {entry.name: entry for entry in REGISTRY}
    return [by_name[entry_report.name] for entry_report in report.entries]


def check_registry(goldens_dir: str = goldens_mod.DEFAULT_GOLDENS_DIR,
                   experiments_md: str = EXPERIMENTS_MD) -> List[str]:
    """The cheap consistency check behind ``repro reproduce --check``.

    Runs no generators.  Verifies (1) the committed EXPERIMENTS.md
    headings equal the registered section titles, in order; (2) every
    entry has its committed golden(s); (3) exact goldens are internally
    consistent (stored digest matches their stored payload).  Returns
    failure messages; empty means consistent.
    """
    failures: List[str] = []
    try:
        with open(experiments_md) as handle:
            titles = [t for t in document_titles(handle.read())
                      if t not in EXEMPT_TITLES]
    except FileNotFoundError:
        return [f"{experiments_md} does not exist"]
    from .registry import registered_titles
    expected = registered_titles()
    if titles != expected:
        missing = [t for t in expected if t not in titles]
        extra = [t for t in titles if t not in expected]
        detail = []
        if missing:
            detail.append(f"unrendered in the document: {missing}")
        if extra:
            detail.append(f"unregistered in the registry: {extra}")
        if not detail:
            detail.append("section order differs")
        failures.append(f"{experiments_md} headings != registry titles "
                        f"({'; '.join(detail)})")
    for entry in REGISTRY:
        keys = [entry.golden_key(p) for p in ("quick", "full")] \
            if entry.per_profile else [entry.golden_key("full")]
        for key in keys:
            golden = goldens_mod.load_golden(goldens_dir, key)
            if golden is None:
                failures.append(f"missing golden {key!r} under "
                                f"{goldens_dir}")
                continue
            if entry.validation == "exact" and \
                    golden.get("digest") != result_digest(golden["payload"]):
                failures.append(
                    f"golden {key!r}: stored digest does not match its "
                    f"stored payload (hand-edited?)")
    return failures
