"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``compile``   Compile a model onto an architecture preset and print the
              performance report (optionally per-level ablation).
``sweep``     Design-space sweep: vary preset parameters over a grid, run
              (optionally parallel + cached), print table/CSV/JSON.
``bench``     Time the compile→simulate hot path with the fast path off
              and on; verify identical results; report speedups.
``cache``     Inspect or clear the persistent cross-process compile memo
              (``REPRO_DISK_CACHE=1``; see docs/PERFORMANCE.md).
``shard``     Shard a model across a multi-chip system; print per-chip
              placement, the link schedule, and the pipeline estimate.
``serve``     Multi-tenant serving simulation (spatial / temporal /
              sharded multi-chip plans) under a request trace,
              optionally under a chip-level peak-power budget.
``fleet``     Datacenter-scale serving: a replicated fleet behind a
              router with admission control and autoscaling, under a
              diurnal + bursty trace.
``trace``     Record an execution trace (sim/shard/serve/fleet), extract
              its critical path and bottleneck attribution, or what-if
              replay it under mutated parameters without re-simulating.
``faults``    Inject hardware faults (dead cores/crossbars, drift, link
              derating, mid-trace chip death) into a fleet run, or sweep
              serving quality against dead-core count.
``reproduce`` One-command artifact reproduction: run every registered
              EXPERIMENTS.md figure/table and the BENCH suite, validate
              fresh digests against the committed goldens, emit
              ``reproduce_report.json`` (see docs/REPRODUCE.md).
``power``     Per-model energy/power breakdown table (Section 4.2
              components plus weight-write costs).
``describe``  Print the Abs-arch abstraction of a preset (Figs. 17-19 style).
``codegen``   Emit the meta-operator program for a small model.
``presets``   List architecture presets.
``models``    List model-zoo entries.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional

from .arch import PRESETS, get_preset
from .models import MODEL_ZOO, get_model
from .sched import CIMMLC, CompilerOptions, no_optimization

#: Kept as the public CLI alias of the zoo table.
MODELS: Dict[str, Callable] = MODEL_ZOO


def _model(name: str):
    try:
        return get_model(name)
    except KeyError as exc:
        raise SystemExit(str(exc.args[0]))


def _preset(name: str):
    """Resolve a preset name: exact, underscore-normalized, or unique
    prefix (``isaac`` -> ``isaac-baseline``)."""
    normalized = name.replace("_", "-")
    if normalized in PRESETS:
        return PRESETS[normalized]()
    matches = sorted(p for p in PRESETS if p.startswith(normalized))
    if len(matches) == 1:
        return PRESETS[matches[0]]()
    hint = f"ambiguous ({matches})" if matches else "no match"
    raise SystemExit(f"unknown preset {name!r}: {hint}; "
                     f"choose one of {sorted(PRESETS)}")


def cmd_presets(args) -> None:
    for name in sorted(PRESETS):
        print(f"{name:<20} {PRESETS[name]()}")


def cmd_models(args) -> None:
    for name in sorted(MODELS):
        graph = MODELS[name]()
        print(f"{name:<12} nodes={len(graph.nodes):<4} "
              f"weights={graph.total_weight_bits() / 8e6:8.1f} MB")


def cmd_describe(args) -> None:
    arch = get_preset(args.arch)
    print(json.dumps(arch.describe(), indent=1, default=str))


def cmd_compile(args) -> None:
    arch = get_preset(args.arch)
    graph = _model(args.model)
    print(f"compiling {graph.name} onto {arch}")
    baseline = no_optimization(graph, arch)
    print(f"w/o optimization: {baseline.total_cycles:,.0f} cycles")
    result = CIMMLC(arch).compile(graph)
    print(f"CIM-MLC [{'+'.join(result.schedule.levels)}]: "
          f"{result.total_cycles:,.0f} cycles "
          f"({baseline.total_cycles / result.total_cycles:.2f}x)")
    print(f"peak power: {result.peak_power:,.1f} "
          f"(baseline {baseline.peak_power:,.1f})")
    if args.ablation:
        for level in ("CG", "MVM", "VVM"):
            if not arch.supports(level):
                continue
            run = CIMMLC(arch,
                         CompilerOptions(max_level=level)).compile(graph)
            print(f"  up to {level:<4}: "
                  f"{baseline.total_cycles / run.total_cycles:8.2f}x")
    if args.schedule:
        print(result.schedule.summary())


def cmd_bench(args) -> None:
    from .perf import bench

    names = args.only.split(",") if args.only else None
    try:
        results = bench.run_bench(names, quick=args.quick)
    except KeyError as exc:
        raise SystemExit(str(exc.args[0]))
    if args.format == "json":
        print(bench.to_json(results))
    else:
        print(bench.table(results))
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(bench.to_json(results) + "\n")
        print(f"wrote {args.out}", file=sys.stderr)


def cmd_reproduce(args) -> None:
    from .reproduce import check_registry, run_profile

    if args.check:
        failures = check_registry(goldens_dir=args.goldens_dir)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            raise SystemExit(1)
        print("registry, EXPERIMENTS.md, and goldens are consistent")
        return
    only = args.only.split(",") if args.only else None
    try:
        report = run_profile(
            profile=args.profile, only=only, bless=args.bless,
            workers=args.workers, cache_dir=args.cache_dir,
            goldens_dir=args.goldens_dir,
            progress=lambda message: print(message, file=sys.stderr))
    except KeyError as exc:
        raise SystemExit(str(exc.args[0]))
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report.to_json() + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.table())
    if not report.ok:
        raise SystemExit(
            f"reproduce FAILED: {', '.join(report.failures)}")


def cmd_cache(args) -> None:
    from .perf import SCHEMA_VERSION, DiskCompileCache, disk_cache_enabled

    store = DiskCompileCache(args.dir)
    if args.action == "clear":
        removed = sum(store.entries().values())
        store.clear()
        print(f"cleared {removed} entries from {store.root}")
        return
    entries = store.entries()
    doc = {
        "root": store.root,
        "schema_version": SCHEMA_VERSION,
        "enabled": disk_cache_enabled(),
        "entries": entries,
        "total_entries": sum(entries.values()),
        "size_bytes": store.size_bytes(),
    }
    if args.format == "json":
        print(json.dumps(doc, indent=1))
        return
    state = "on" if doc["enabled"] else "off; set REPRO_DISK_CACHE=1"
    print(f"disk compile memo at {store.root} "
          f"(schema v{SCHEMA_VERSION}, {state})")
    if not entries:
        print("  empty")
        return
    for kind in sorted(entries):
        print(f"  {kind:<10} {entries[kind]:>8} entries")
    print(f"  {'total':<10} {doc['total_entries']:>8} entries  "
          f"{doc['size_bytes'] / 1e6:.2f} MB")


def cmd_power(args) -> None:
    from .errors import CIMError

    arch = _preset(args.arch)
    rows = []
    for name in args.models.split(","):
        name = name.strip()
        if not name:
            continue
        graph = _model(name)
        try:
            report = CIMMLC(arch).compile(graph).report
        except CIMError as exc:
            raise SystemExit(str(exc))
        p = report.power
        rows.append({
            "model": graph.name,
            "energy_per_inference": report.energy_per_inference,
            "peak_power": p.peak_power,
            "avg_power": p.avg_power,
            "peak_active_crossbars": p.peak_active_crossbars,
            "weight_write_energy": report.weight_write_energy,
            "breakdown": p.breakdown(),
        })
    if not rows:
        raise SystemExit("--models needs at least one model name")
    if args.format == "json":
        print(json.dumps({"arch": arch.name, "models": rows}, indent=1))
        return
    print(f"power/energy on {arch.name} "
          f"(cell {arch.xb.cell_type.value}, arbitrary units; "
          f"see docs/ENERGY.md)")
    print(f"{'model':<12} {'energy/inf':>14} {'peak':>10} {'avg':>9} "
          f"{'xb%':>5} {'conv%':>6} {'move%':>6} {'reconf%':>8} "
          f"{'write energy':>14}")
    for r in rows:
        b = r["breakdown"]
        print(f"{r['model']:<12} {r['energy_per_inference']:>14,.0f} "
              f"{r['peak_power']:>10,.1f} {r['avg_power']:>9,.2f} "
              f"{b['crossbar']:>5.0%} {b['converter']:>6.0%} "
              f"{b['movement']:>6.1%} {b['reconfiguration']:>8.1%} "
              f"{r['weight_write_energy']:>14,.0f}")


def cmd_codegen(args) -> None:
    from .mops import emit
    from .quant import random_weights
    from .sched.lowering import lower_to_flow

    arch = get_preset(args.arch)
    graph = _model(args.model)
    schedule = CIMMLC(arch).schedule(graph)
    program = lower_to_flow(
        schedule, random_weights(graph, seed=0, low=-4, high=4))
    text = emit(program.flow)
    lines = text.splitlines()
    if args.max_lines and len(lines) > args.max_lines:
        lines = lines[:args.max_lines] + \
            [f"... ({len(text.splitlines()) - args.max_lines} more lines)"]
    print("\n".join(lines))


def cmd_sweep(args) -> None:
    from .explore import (
        SweepRunner,
        SweepSpace,
        default_cache_dir,
        level_series,
        metric_result,
        pareto_frontier,
        resolve_objectives,
        speedup_result,
        to_csv,
        to_json,
    )

    base = _preset(args.preset)
    graph = _model(args.model)
    vary: Dict[str, List[str]] = {}
    for spec in args.vary or []:
        name, sep, values = spec.partition("=")
        if not sep or not values:
            raise SystemExit(
                f"--vary expects PARAM=V1,V2,... got {spec!r}")
        vary[name] = values.split(",")
    try:
        series = level_series(args.levels.split(","))
        space = SweepSpace.grid(base, graph, vary, series=series)
        objectives = resolve_objectives(
            [o.strip() for o in args.objectives.split(",") if o.strip()])
    except Exception as exc:
        raise SystemExit(str(exc))

    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    cache_dir = None if args.no_cache else \
        (args.cache_dir or default_cache_dir())
    runner = SweepRunner(workers=args.workers, cache_dir=cache_dir)

    if args.prefilter == "replay":
        from dataclasses import asdict

        from .explore import replay_prefilter

        pre = replay_prefilter(space, runner, objectives)
        print(pre.stats.describe(), file=sys.stderr)
        frontier = pre.frontier
        if args.power_budget is not None:
            frontier = [r for r in frontier
                        if r.peak_power <= args.power_budget]
        if args.format == "json":
            print(json.dumps({
                "stats": {**asdict(pre.stats),
                          "savings": pre.stats.savings},
                "objectives": list(objectives),
                "frontier": [
                    {"label": r.label, "series": r.series,
                     **{obj: r.summary[obj] for obj in objectives}}
                    for r in frontier],
            }, indent=1))
            return
        print(f"pareto frontier (min {', '.join(objectives)}):")
        for r in frontier:
            vals = ", ".join(f"{obj}={r.summary[obj]:,.6g}"
                             for obj in objectives)
            print(f"  {r.label}/{r.series}: {vals}")
        return

    sweep = runner.run(space)
    print(f"sweep: {len(sweep)} points "
          f"({sweep.cache_hits} cache hits, {sweep.cache_misses} misses"
          f"{'' if cache_dir else ', cache disabled'})", file=sys.stderr)

    if args.format == "json":
        print(to_json(sweep, pareto=args.pareto, objectives=objectives,
                      power_budget=args.power_budget))
        return
    if args.format == "csv":
        print(to_csv(sweep, pareto=args.pareto, objectives=objectives,
                     power_budget=args.power_budget), end="")
        return
    has_baseline = any(p.series == "baseline" for p in space)
    if has_baseline:
        table = speedup_result(
            sweep, "sweep", f"{graph.name} on {base.name} "
            f"(speedup over un-optimized)")
    else:
        table = metric_result(
            sweep, "sweep", f"{graph.name} on {base.name} (total cycles)",
            unit=" cyc")
    print(table.table())
    results = list(sweep)
    if args.power_budget is not None:
        results = [r for r in results
                   if r.peak_power <= args.power_budget]
        print(f"power budget {args.power_budget:g}: {len(results)}/"
              f"{len(sweep)} points feasible")
    if args.pareto:
        frontier = pareto_frontier(results, objectives)
        print(f"pareto frontier (min {', '.join(objectives)}): "
              + ", ".join(f"{r.label}/{r.series}" for r in frontier))


def _system(args):
    """Build a :class:`~repro.arch.MultiChipSystem` from CLI link flags."""
    from .arch import ChipLink, MultiChipSystem
    from .errors import CIMError

    arch = _preset(args.arch)
    try:
        link = ChipLink(bandwidth_bits=args.link_bw,
                        latency_cycles=args.link_latency)
        return MultiChipSystem(arch, args.chips, link=link,
                               topology=args.topology)
    except CIMError as exc:
        raise SystemExit(str(exc))


def _add_system_args(parser, default_chips: int) -> None:
    """Attach the shared multi-chip flags (shard + serve --mode sharded)."""
    from .arch import CHIP_TOPOLOGIES, ChipLink

    default_link = ChipLink()
    parser.add_argument("--chips", type=int, default=default_chips,
                        help="number of chips in the system")
    parser.add_argument("--topology", choices=CHIP_TOPOLOGIES,
                        default="ring", help="inter-chip wiring")
    parser.add_argument("--link-bw", type=float,
                        default=default_link.bandwidth_bits,
                        help="inter-chip link bandwidth (bits/cycle)")
    parser.add_argument("--link-latency", type=float,
                        default=default_link.latency_cycles,
                        help="per-hop link latency (cycles)")


def cmd_shard(args) -> None:
    from .errors import CIMError
    from .sched import CIMMLC
    from .scale import link_table, pipeline_summary, placement_table, shard

    system = _system(args)
    graph = _model(args.model)
    try:
        plan = shard(graph, system)
    except CIMError as exc:
        raise SystemExit(str(exc))
    single = None
    if args.baseline:
        try:
            single = CIMMLC(system.chip).compile(graph).report
        except CIMError:
            print("(model does not compile on one chip; no baseline)",
                  file=sys.stderr)
    if args.format == "json":
        doc = plan.to_dict()
        if single is not None:
            doc["single_chip"] = {
                "total_cycles": single.total_cycles,
                "steady_state_interval": single.steady_state_interval,
            }
        print(json.dumps(doc, indent=1))
        return
    print(placement_table(plan))
    print()
    print(link_table(plan))
    print()
    print(pipeline_summary(plan, single))


def _tenant_specs(text: str):
    from .serve import TenantSpec

    specs = []
    for term in text.split(","):
        term = term.strip()
        if not term:
            continue
        model, sep, weight = term.partition(":")
        try:
            w = float(weight) if sep else 1.0
        except ValueError:
            raise SystemExit(
                f"bad tenant spec {term!r}; expected MODEL or MODEL:WEIGHT")
        if model not in MODELS and model.replace("_", "-") not in MODELS:
            raise SystemExit(
                f"unknown model {model!r}; choose one of {sorted(MODELS)}")
        name = model
        suffix = 2
        while any(s.name == name for s in specs):
            name = f"{model}#{suffix}"
            suffix += 1
        specs.append(TenantSpec(name=name, model=model, weight=w))
    if not specs:
        raise SystemExit("--tenants needs at least one MODEL[:WEIGHT] term")
    return specs


def cmd_serve(args) -> None:
    from .errors import CIMError
    from .serve import (
        MODES,
        capacity_table,
        make_plan,
        make_trace,
        parse_policy,
        serve_sweep,
        simulate,
    )

    arch = _preset(args.arch)
    try:
        specs = _tenant_specs(args.tenants)
        policy = parse_policy(args.batch)
        modes = list(MODES) if args.mode == "both" else [args.mode]

        if args.mode == "sharded" and args.rates:
            raise SystemExit(
                "--rates capacity sweeps support spatial/temporal modes; "
                "run sharded mode with a single --rate")
        if args.mode == "sharded" and args.power_budget is not None:
            raise SystemExit(
                "--power-budget applies to spatial/temporal modes; the "
                "sharded planner has no per-chip down-duplication yet")

        if args.rates:
            from .explore import SweepRunner, default_cache_dir

            cache_dir = None if args.no_cache else \
                (args.cache_dir or default_cache_dir())
            try:
                rates = [float(r) * 1e-6 for r in args.rates.split(",")]
            except ValueError:
                raise SystemExit(
                    f"--rates expects comma-separated numbers, got "
                    f"{args.rates!r}")
            points = serve_sweep(
                arch, specs, rates, modes=modes, policies=[policy],
                trace_kind=args.trace, num_requests=args.requests,
                seed=args.seed, slo_factor=args.slo_factor,
                max_queue=args.max_queue,
                runner=SweepRunner(workers=args.workers,
                                   cache_dir=cache_dir),
                power_budget=args.power_budget)
            if args.format == "json":
                print(json.dumps([
                    {"rate_per_mcycle": p.rate_per_mcycle, "mode": p.mode,
                     "policy": p.policy, **p.report.to_dict()}
                    for p in points
                ], indent=1))
            else:
                print(capacity_table(points))
            return

        trace = make_trace(args.trace, specs, args.rate * 1e-6,
                           args.requests, seed=args.seed)
        reports = {}
        for mode in modes:
            if mode == "sharded":
                plan = make_plan(mode, arch, specs, system=_system(args))
            else:
                plan = make_plan(mode, arch, specs,
                                 power_budget=args.power_budget)
            reports[mode] = simulate(plan, trace, policy=policy,
                                     max_queue=args.max_queue,
                                     slo_factor=args.slo_factor)
    except CIMError as exc:
        raise SystemExit(str(exc))
    if args.format == "json":
        print(json.dumps({m: r.to_dict() for m, r in reports.items()},
                         indent=1))
        return
    for mode, report in reports.items():
        print(report.table())
    if len(reports) == 2:
        spatial, temporal = reports["spatial"], reports["temporal"]
        print(f"p99: spatial {spatial.p99:,.0f} vs temporal "
              f"{temporal.p99:,.0f} "
              f"({temporal.p99 / max(spatial.p99, 1e-9):.2f}x)")


def cmd_fleet(args) -> None:
    from .arch import ChipLink
    from .errors import CIMError
    from .explore import SweepRunner, default_cache_dir
    from .fleet import (
        AdmissionControl,
        Autoscaler,
        build_fleet_cached,
        fleet_sweep,
        fleet_table,
        parse_router,
        simulate_fleet,
    )
    from .serve import make_trace, parse_policy, trace_digest

    arch = _preset(args.arch)
    try:
        specs = _tenant_specs(args.tenants)
        policy = parse_policy(args.batch)
        link = ChipLink(bandwidth_bits=args.link_bw,
                        latency_cycles=args.link_latency)
        cache_dir = None if args.no_cache else \
            (args.cache_dir or default_cache_dir())
        runner = SweepRunner(workers=args.workers, cache_dir=cache_dir)
        plan = build_fleet_cached(
            arch, specs, replicas=args.replicas, mode=args.mode,
            runner=runner, power_budget=args.power_budget, link=link)
        admission = AdmissionControl(max_outstanding=args.admit_max,
                                     slo_budget=args.slo_budget,
                                     fairness=args.fair)
        autoscaler = None
        if args.autoscale:
            autoscaler = Autoscaler(tick_cycles=args.tick,
                                    min_replicas=args.min_replicas,
                                    up_threshold=args.up_threshold,
                                    down_threshold=args.down_threshold,
                                    hold_ticks=args.hold_ticks)
        trace = make_trace(args.trace, specs, args.rate * 1e-6,
                           args.requests, seed=args.seed)

        if args.counts:
            try:
                counts = [int(c) for c in args.counts.split(",")]
            except ValueError:
                raise SystemExit(
                    f"--counts expects comma-separated integers, got "
                    f"{args.counts!r}")
            points = fleet_sweep(
                plan, trace, counts, routers=args.routers.split(","),
                policy=policy, admission=admission, autoscaler=autoscaler,
                max_queue=args.max_queue, slo_factor=args.slo_factor)
            if args.format == "json":
                print(json.dumps([
                    {"replicas": p.replicas, "router": p.router,
                     **p.report.to_dict()} for p in points
                ], indent=1))
            else:
                print(f"fleet sweep: {len(trace)} requests "
                      f"({args.trace}, seed {args.seed}), trace digest "
                      f"{trace_digest(trace)[:16]}")
                print(fleet_table(points))
            return

        report = simulate_fleet(
            plan, trace, policy=policy, router=parse_router(args.router),
            admission=admission, autoscaler=autoscaler,
            max_queue=args.max_queue, slo_factor=args.slo_factor)
    except CIMError as exc:
        raise SystemExit(str(exc))
    if args.format == "json":
        print(report.to_json())
        return
    print(report.table())
    print(f"report digest: {report.digest()[:16]} "
          f"(same seed => same digest)")


def _parse_fault(args, die: int):
    """Build the :class:`~repro.faults.FaultModel` the flags describe."""
    from .faults import FaultModel, spread_mask

    dead = []
    if args.kill:
        dead.extend(spread_mask(die, args.kill))
    if args.dead_cores:
        try:
            dead.extend(int(c) for c in args.dead_cores.split(","))
        except ValueError:
            raise SystemExit(f"--dead-cores expects comma-separated core "
                             f"ids, got {args.dead_cores!r}")
    xbs = []
    if args.dead_xbs:
        try:
            xbs = [tuple(int(v) for v in pair.split(":"))
                   for pair in args.dead_xbs.split(",")]
            if any(len(p) != 2 for p in xbs):
                raise ValueError
        except ValueError:
            raise SystemExit(f"--dead-xbs expects CORE:XB,CORE:XB,..., "
                             f"got {args.dead_xbs!r}")
    return FaultModel(dead_cores=tuple(dead), dead_crossbars=tuple(xbs),
                      drift_interval=args.drift_interval,
                      link_derate=args.link_derate,
                      chip_death_time=args.chip_death,
                      chip_death_rid=args.death_rid)


def cmd_faults(args) -> None:
    from .arch import ChipLink
    from .errors import CIMError
    from .explore import SweepRunner, default_cache_dir
    from .faults import degradation_sweep, sweep_digest, sweep_rows, \
        sweep_table
    from .fleet import build_fleet, parse_router, simulate_fleet
    from .serve import make_trace, parse_policy

    arch = _preset(args.arch)
    try:
        specs = _tenant_specs(args.tenants)
        policy = parse_policy(args.batch)
        fault = _parse_fault(args, arch.chip.core_number)

        if args.sweep_dead:
            try:
                counts = [int(c) for c in args.sweep_dead.split(",")]
            except ValueError:
                raise SystemExit(
                    f"--sweep-dead expects comma-separated dead-core "
                    f"counts, got {args.sweep_dead!r}")
            cache_dir = None if args.no_cache else \
                (args.cache_dir or default_cache_dir())
            runner = SweepRunner(workers=args.workers,
                                 cache_dir=cache_dir)
            points = degradation_sweep(
                arch, specs, counts, args.rate * 1e-6, mode=args.mode,
                num_requests=args.requests, seed=args.seed,
                trace_kind=args.trace, policy=policy,
                slo_factor=args.slo_factor, max_queue=args.max_queue,
                runner=runner)
            if args.format == "json":
                print(json.dumps(sweep_rows(points), indent=1))
            else:
                print(f"degradation sweep on {arch.name} "
                      f"({arch.chip.core_number} cores, {args.trace} "
                      f"trace, seed {args.seed}):")
                print(sweep_table(points))
                print(f"sweep digest: {sweep_digest(points)[:16]} "
                      f"(same seed => same digest)")
            return

        link = ChipLink(bandwidth_bits=args.link_bw,
                        latency_cycles=args.link_latency)
        if fault.masks_cores():
            plan = build_fleet(
                fault.degrade_arch(arch), specs, replicas=args.replicas,
                mode=args.mode, link=link,
                core_pool=fault.surviving_cores(arch),
                die_cores=arch.chip.core_number)
        else:
            plan = build_fleet(arch, specs, replicas=args.replicas,
                               mode=args.mode, link=link)
        trace = make_trace(args.trace, specs, args.rate * 1e-6,
                           args.requests, seed=args.seed)
        report = simulate_fleet(
            plan, trace, policy=policy, router=parse_router(args.router),
            max_queue=args.max_queue, slo_factor=args.slo_factor,
            fault=fault)
    except CIMError as exc:
        raise SystemExit(str(exc))
    if args.format == "json":
        print(report.to_json())
        return
    print(f"injected: {fault.describe()}")
    print(report.table())
    print(f"report digest: {report.digest()[:16]} "
          f"(same seed => same digest)")


def _load_trace(path: str):
    from .trace import Trace

    try:
        return Trace.load(path)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise SystemExit(f"cannot load trace {path!r}: {exc}")


def _record_scenario(args):
    """Run the ``--kind`` scenario with recording on → (report, trace)."""
    from .trace import record_fleet, record_performance, record_serve, \
        record_shard

    arch = _preset(args.arch)
    if args.kind == "sim":
        result = CIMMLC(arch).compile(_model(args.model))
        return record_performance(arch, result.schedule)
    if args.kind == "shard":
        from .scale import shard

        plan = shard(_model(args.model), _system(args))
        return plan.report, record_shard(plan)
    from .serve import make_plan, make_trace, parse_policy

    specs = _tenant_specs(args.tenants)
    policy = parse_policy(args.batch)
    requests = make_trace(args.arrivals, specs, args.rate * 1e-6,
                          args.requests, seed=args.seed)
    if args.kind == "serve":
        plan = make_plan(args.mode, arch, specs)
        return record_serve(plan, requests, policy=policy,
                            max_queue=args.max_queue,
                            slo_factor=args.slo_factor)
    from .arch import ChipLink
    from .fleet import build_fleet, parse_router

    link = ChipLink(bandwidth_bits=args.link_bw,
                    latency_cycles=args.link_latency)
    plan = build_fleet(arch, specs, replicas=args.replicas,
                       mode=args.mode, link=link)
    return record_fleet(plan, requests, policy=policy,
                        router=parse_router(args.router),
                        max_queue=args.max_queue,
                        slo_factor=args.slo_factor)


def cmd_trace_record(args) -> None:
    from .errors import CIMError

    try:
        report, trace = _record_scenario(args)
    except CIMError as exc:
        raise SystemExit(str(exc))
    if args.out:
        trace.save(args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    if args.chrome:
        trace.save_chrome(args.chrome)
        print(f"wrote {args.chrome} (load in chrome://tracing or "
              f"ui.perfetto.dev)", file=sys.stderr)
    if args.format == "json":
        print(json.dumps({
            "kind": trace.kind, "spans": len(trace),
            "tracks": list(trace.tracks()), "digest": trace.digest(),
            "by_category": trace.by_category(), "meta": trace.meta,
        }, indent=1))
        return
    print(f"recorded {trace.kind} trace: {len(trace)} spans on "
          f"{len(trace.tracks())} tracks, digest {trace.digest()[:16]}")
    for cat, cycles in sorted(trace.by_category().items()):
        print(f"  {cat:>15}: {cycles:>14,.1f} busy cycles")
    if trace.kind in ("sim", "shard"):
        print(f"total: {trace.meta['total_cycles']:,.1f} cycles "
              f"(steady-state interval "
              f"{trace.meta['steady_state_interval']:,.1f})")
    else:
        print(f"completed {trace.meta['completed']}, "
              f"p99 {report.p99:,.1f} cycles")


def cmd_trace_analyze(args) -> None:
    from .trace import attribute, critical_path, replica_rollup, \
        tenant_rollup

    trace = _load_trace(args.trace)
    att = attribute(trace)
    try:
        cp = critical_path(trace, request=args.request)
    except KeyError as exc:
        raise SystemExit(str(exc.args[0]))
    serving = trace.kind in ("serve", "fleet")
    if args.format == "json":
        doc = {
            "kind": trace.kind, "spans": len(trace),
            "digest": trace.digest(), "attribution": att,
            "critical_path": {
                "total": cp.total, "by_category": cp.by_category,
                "spans": [
                    {"name": s.name, "cat": s.cat, "track": s.track,
                     "begin": s.begin, "dur": s.dur}
                    for s in cp.spans],
            },
        }
        if serving:
            doc["tenants"] = tenant_rollup(trace)
            doc["replicas"] = replica_rollup(trace)
        print(json.dumps(doc, indent=1))
        return
    print(f"{trace.kind} trace: {len(trace)} spans on "
          f"{len(trace.tracks())} tracks, digest {trace.digest()[:16]}")
    shares = ", ".join(f"{k} {v:.1%}"
                       for k, v in att["shares"].items())
    print(f"attribution: dominant {att['dominant']} ({shares})")
    print(cp.describe())
    if serving:
        print(f"{'tenant':<14} {'reqs':>6} {'batches':>8} "
              f"{'queue cyc':>13} {'service cyc':>13} {'switch cyc':>12} "
              f"{'mean lat':>12} {'max lat':>12}")
        for tenant, r in sorted(tenant_rollup(trace).items()):
            print(f"{tenant:<14} {r['requests']:>6.0f} "
                  f"{r['batches']:>8.0f} {r['queue_cycles']:>13,.0f} "
                  f"{r['service_cycles']:>13,.0f} "
                  f"{r['switch_cycles']:>12,.0f} "
                  f"{r['mean_latency']:>12,.0f} "
                  f"{r['max_latency']:>12,.0f}")
        print(f"{'replica':<8} {'done':>6} {'batches':>8} "
              f"{'busy cyc':>13} {'switch cyc':>12} {'queue cyc':>13} "
              f"{'link cyc':>12}")
        for rid, r in sorted(replica_rollup(trace).items()):
            print(f"{rid:<8} {r['completed']:>6.0f} "
                  f"{r['batches']:>8.0f} {r['busy_cycles']:>13,.0f} "
                  f"{r['switch_cycles']:>12,.0f} "
                  f"{r['queue_cycles']:>13,.0f} "
                  f"{r['link_cycles']:>12,.0f}")


def cmd_trace_whatif(args) -> None:
    from .errors import CIMError
    from .trace import parse_mutation, replay

    trace = _load_trace(args.trace)
    try:
        mutation = parse_mutation(args.mutate or "")
        result = replay(trace, mutation)
        baseline = replay(trace).metrics
    except CIMError as exc:
        raise SystemExit(str(exc))
    if args.out:
        result.trace.save(args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    if args.format == "json":
        print(json.dumps({
            "kind": trace.kind, "mutation": mutation.describe(),
            "recorded": baseline, "replayed": result.metrics,
            "digest": result.trace.digest(),
        }, indent=1))
        return
    print(f"what-if [{mutation.describe()}] on {trace.kind} trace "
          f"({len(trace)} spans)")
    for key, base in baseline.items():
        new = result.metrics.get(key)
        if not isinstance(base, (int, float)) or \
                not isinstance(new, (int, float)):
            continue
        ratio = new / base if base else float("inf")
        print(f"  {key:<24} {base:>16,.2f} -> {new:>16,.2f} "
              f"({ratio:.3f}x)")
    if mutation.is_identity():
        same = result.trace.digest() == trace.digest()
        print(f"identity replay digest match: {same}")


def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("presets", help="list architecture presets") \
        .set_defaults(fn=cmd_presets)
    sub.add_parser("models", help="list model-zoo entries") \
        .set_defaults(fn=cmd_models)

    p = sub.add_parser("describe", help="print a preset's Abs-arch")
    p.add_argument("arch", choices=sorted(PRESETS))
    p.set_defaults(fn=cmd_describe)

    p = sub.add_parser("compile", help="compile a model onto a preset")
    p.add_argument("--arch", default="isaac-baseline",
                   choices=sorted(PRESETS))
    p.add_argument("--model", default="resnet18")
    p.add_argument("--ablation", action="store_true",
                   help="also report per-level speedups")
    p.add_argument("--schedule", action="store_true",
                   help="print the per-operator schedule")
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser(
        "sweep",
        help="design-space sweep over a preset (parallel + cached)",
        description="Vary architecture parameters of a preset over a grid, "
                    "compile the model at every point, and report each "
                    "optimization level's speedup over the un-optimized "
                    "schedule.  Results are memoized in a content-addressed "
                    "disk cache, so repeated and overlapping sweeps are "
                    "near-free.")
    p.add_argument("--model", default="vit-tiny",
                   help="model-zoo entry (underscores accepted)")
    p.add_argument("--preset", "--arch", dest="preset",
                   default="isaac-baseline",
                   help="architecture preset (unique prefixes accepted, "
                        "e.g. 'isaac')")
    p.add_argument("--vary", action="append", metavar="PARAM=V1,V2,...",
                   help="sweep axis, e.g. cores=256,512,1024, "
                        "xb_size=64x512,128x256, chips=1,2,4, or "
                        "link_bw=256,1024; repeat for a grid")
    p.add_argument("--levels", default="baseline,CG,MVM,VVM",
                   help="comma list of series to run per point "
                        "(baseline,CG,MVM,VVM)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (1 = serial)")
    p.add_argument("--cache-dir", default=None,
                   help="result-cache root (default: $REPRO_CACHE_DIR or "
                        "~/.cache/repro-explore)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the result cache")
    p.add_argument("--format", choices=("table", "csv", "json"),
                   default="table")
    p.add_argument("--pareto", action="store_true",
                   help="report the Pareto frontier under --objectives")
    p.add_argument("--objectives", default="total_cycles,peak_power",
                   metavar="OBJ1,OBJ2,...",
                   help="Pareto objectives, all minimized: summary keys "
                        "or aliases (latency, energy, "
                        "energy_per_inference, power, area, cores); "
                        "e.g. latency,energy,area")
    p.add_argument("--power-budget", type=float, default=None,
                   metavar="POWER",
                   help="feasibility cap on peak power: annotates/filters "
                        "points and restricts the Pareto frontier")
    p.add_argument("--prefilter", choices=("none", "replay"),
                   default="none",
                   help="replay screening: fully evaluate one anchor per "
                        "link-axis group, re-price the rest from its "
                        "recorded trace (exact for link axes), and fully "
                        "evaluate only the Pareto frontier")
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser(
        "shard",
        help="shard a model across a multi-chip system",
        description="Partition a model graph into resident stages across "
                    "N chips (min-cut layer partitioning under weight-"
                    "capacity and compute-balance constraints), compile "
                    "every stage with the multi-level scheduler, and "
                    "report the per-chip placement, the inter-chip link "
                    "schedule, and the pipelined latency/throughput "
                    "estimate.")
    p.add_argument("--arch", "--preset", dest="arch",
                   default="isaac-baseline",
                   help="architecture preset for every chip (unique "
                        "prefixes accepted)")
    p.add_argument("--model", default="resnet18",
                   help="model-zoo entry (underscores accepted)")
    _add_system_args(p, default_chips=2)
    p.add_argument("--baseline", action="store_true",
                   help="also compile on one chip and report the "
                        "throughput/latency ratio")
    p.add_argument("--format", choices=("table", "json"), default="table")
    p.set_defaults(fn=cmd_shard)

    p = sub.add_parser(
        "serve",
        help="simulate multi-tenant serving under a request stream",
        description="Serve a seeded request trace over co-resident models "
                    "on one chip, either spatially partitioned (each tenant "
                    "owns a core region; weights stay resident) or "
                    "time-multiplexed (full chip per tenant, crossbars "
                    "reprogrammed on every tenant switch), and report "
                    "p50/p95/p99 latency, throughput, utilization, and SLO "
                    "attainment.  With --rates, run a capacity sweep whose "
                    "compilations ride the explore result cache.")
    p.add_argument("--arch", "--preset", dest="arch", default="isaac-flash",
                   help="architecture preset (unique prefixes accepted)")
    p.add_argument("--tenants", default="resnet18:4,mobilenet:1",
                   metavar="MODEL[:WEIGHT],...",
                   help="co-resident models with traffic weights")
    p.add_argument("--mode",
                   choices=("spatial", "temporal", "both", "sharded"),
                   default="both",
                   help="hardware sharing plan; 'sharded' spans each "
                        "tenant across chips of a multi-chip system "
                        "(see --chips/--topology/--link-bw)")
    _add_system_args(p, default_chips=2)
    p.add_argument("--trace",
                   choices=("poisson", "bursty", "diurnal",
                            "diurnal-bursty"),
                   default="poisson", help="arrival process")
    p.add_argument("--rate", type=float, default=22.0,
                   help="arrival rate in requests per mega-cycle")
    p.add_argument("--rates", default=None, metavar="R1,R2,...",
                   help="capacity sweep over these rates (req/Mcycle) "
                        "instead of a single --rate run")
    p.add_argument("--requests", type=int, default=400,
                   help="trace length in requests")
    p.add_argument("--seed", type=int, default=0, help="trace seed")
    p.add_argument("--batch", default="timeout:8:50000",
                   help="dynamic batching policy: fixed:N or "
                        "timeout:N:CYCLES")
    p.add_argument("--slo-factor", type=float, default=10.0,
                   help="per-tenant SLO = factor x isolated latency")
    p.add_argument("--max-queue", type=int, default=None,
                   help="per-tenant queue bound (arrivals beyond it are "
                        "rejected)")
    p.add_argument("--power-budget", type=float, default=None,
                   metavar="POWER",
                   help="chip-level peak-power budget: the spatial "
                        "planner down-duplicates tenants to fit it, the "
                        "temporal planner rejects over-budget tenants "
                        "(spatial/temporal modes only)")
    p.add_argument("--workers", type=int, default=1,
                   help="compile workers for --rates sweeps")
    p.add_argument("--cache-dir", default=None,
                   help="explore result-cache root for --rates sweeps")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the result cache for --rates sweeps")
    p.add_argument("--format", choices=("table", "json"), default="table")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "fleet",
        help="simulate a replicated serving fleet with routing, "
             "admission, and autoscaling",
        description="Serve a fleet-scale request trace (default: a "
                    "bursty MMPP riding a diurnal envelope) over N "
                    "replicas of a serving plan behind a front-end "
                    "router, with admission control and an optional "
                    "autoscaler whose spin-ups pay the power model's "
                    "weight-program deployment cost.  The front-end↔"
                    "replica hop is priced by the inter-chip link.  "
                    "Replica plans compile once through the explore "
                    "result cache; the whole simulation is "
                    "deterministic (same seed ⇒ bit-identical report).  "
                    "With --counts, sweep replica count × router.")
    p.add_argument("--arch", "--preset", dest="arch", default="isaac-flash",
                   help="architecture preset for every replica (unique "
                        "prefixes accepted)")
    p.add_argument("--tenants", default="resnet18:4,mobilenet:1",
                   metavar="MODEL[:WEIGHT],...",
                   help="co-resident models with traffic weights")
    p.add_argument("--mode", choices=("spatial", "temporal"),
                   default="spatial",
                   help="hardware sharing plan inside each replica")
    p.add_argument("--replicas", type=int, default=8,
                   help="maximum fleet size")
    p.add_argument("--counts", default=None, metavar="N1,N2,...",
                   help="sweep these replica counts x --routers instead "
                        "of a single run")
    p.add_argument("--router", default="least-loaded",
                   help="routing policy: rr, least-loaded, "
                        "affinity[:SESSIONS], power[:HEADROOM]")
    p.add_argument("--routers", default="rr,least-loaded",
                   metavar="R1,R2,...",
                   help="router specs for --counts sweeps")
    p.add_argument("--trace",
                   choices=("poisson", "bursty", "diurnal",
                            "diurnal-bursty"),
                   default="diurnal-bursty", help="arrival process")
    p.add_argument("--rate", type=float, default=120.0,
                   help="fleet-wide arrival rate in requests per "
                        "mega-cycle")
    p.add_argument("--requests", type=int, default=100_000,
                   help="trace length in requests (1e6+ is fine: "
                        "generation is vectorized)")
    p.add_argument("--seed", type=int, default=0, help="trace seed")
    p.add_argument("--batch", default="timeout:8:50000",
                   help="per-replica batching policy: fixed:N or "
                        "timeout:N:CYCLES")
    p.add_argument("--slo-factor", type=float, default=10.0,
                   help="per-tenant SLO = factor x isolated latency")
    p.add_argument("--max-queue", type=int, default=None,
                   help="replica-local per-tenant queue bound")
    p.add_argument("--admit-max", type=int, default=None,
                   metavar="N",
                   help="admission: max outstanding requests per replica")
    p.add_argument("--slo-budget", type=float, default=None,
                   metavar="FACTOR",
                   help="admission: reject when estimated completion "
                        "exceeds FACTOR x the tenant SLO")
    p.add_argument("--fair", action="store_true",
                   help="admission: clip tenants exceeding their "
                        "traffic-weighted share (needs --admit-max)")
    p.add_argument("--autoscale", action="store_true",
                   help="enable the autoscaler (otherwise the whole "
                        "fleet is active)")
    p.add_argument("--min-replicas", type=int, default=1,
                   help="autoscaler floor (and initial active set)")
    p.add_argument("--tick", type=float, default=1_000_000.0,
                   help="autoscaler sampling period (cycles)")
    p.add_argument("--up-threshold", type=float, default=12.0,
                   help="scale up when outstanding/replica exceeds this")
    p.add_argument("--down-threshold", type=float, default=3.0,
                   help="scale down when outstanding/replica stays "
                        "below this")
    p.add_argument("--hold-ticks", type=int, default=3,
                   help="consecutive quiet ticks before scaling down "
                        "(hysteresis)")
    p.add_argument("--power-budget", type=float, default=None,
                   metavar="POWER",
                   help="per-replica chip-level peak-power budget")
    p.add_argument("--link-bw", type=float, default=512.0,
                   help="front-end link bandwidth (bits/cycle)")
    p.add_argument("--link-latency", type=float, default=100.0,
                   help="front-end link per-hop latency (cycles)")
    p.add_argument("--workers", type=int, default=1,
                   help="compile workers for plan building")
    p.add_argument("--cache-dir", default=None,
                   help="explore result-cache root")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the result cache")
    p.add_argument("--format", choices=("table", "json"), default="table")
    p.set_defaults(fn=cmd_fleet)

    p = sub.add_parser(
        "faults",
        help="inject hardware faults into a fleet run, or sweep serving "
             "quality against dead-core count",
        description="Inject a fault model — dead cores (--kill / "
                    "--dead-cores), dead crossbar regions, conductance "
                    "drift forcing periodic weight rewrites, link "
                    "derating, and a mid-trace chip death — then run a "
                    "replicated fleet on the surviving hardware and "
                    "report availability, recovery time, and the fault "
                    "energy ledger.  Plans route around masked "
                    "resources at compile time; drift and death are "
                    "injected at run time.  With --sweep-dead, sweep a "
                    "single-chip serving plan over dead-core counts "
                    "(compiles ride the explore cache) instead.  Zero "
                    "injected faults reproduce the fault-free run bit "
                    "for bit.")
    p.add_argument("--arch", "--preset", dest="arch", default="isaac-flash",
                   help="architecture preset (unique prefixes accepted)")
    p.add_argument("--tenants", default="resnet18:4,mobilenet:1",
                   metavar="MODEL[:WEIGHT],...",
                   help="co-resident models with traffic weights")
    p.add_argument("--mode", choices=("spatial", "temporal"),
                   default="spatial",
                   help="hardware sharing plan inside each replica")
    p.add_argument("--replicas", type=int, default=4,
                   help="fleet size for the injection run")
    p.add_argument("--router", default="least-loaded",
                   help="routing policy: rr, least-loaded, "
                        "affinity[:SESSIONS], power[:HEADROOM]")
    p.add_argument("--kill", type=int, default=0, metavar="N",
                   help="kill N cores, spread evenly across the die")
    p.add_argument("--dead-cores", default=None, metavar="ID,ID,...",
                   help="explicit dead core ids (combines with --kill)")
    p.add_argument("--dead-xbs", default=None, metavar="CORE:XB,...",
                   help="dead crossbar regions as core:crossbar pairs")
    p.add_argument("--drift-interval", type=float, default=None,
                   metavar="CYCLES",
                   help="force a full weight rewrite every CYCLES "
                        "(priced by the write-energy model)")
    p.add_argument("--link-derate", type=float, default=1.0,
                   metavar="FACTOR",
                   help="multiply link bandwidth by FACTOR in (0, 1]")
    p.add_argument("--chip-death", type=float, default=None,
                   metavar="CYCLE",
                   help="kill one replica at this cycle mid-trace")
    p.add_argument("--death-rid", type=int, default=0,
                   help="which replica --chip-death kills")
    p.add_argument("--sweep-dead", default=None, metavar="N1,N2,...",
                   help="degradation sweep over these dead-core counts "
                        "(single-chip serve, not the fleet)")
    p.add_argument("--trace",
                   choices=("poisson", "bursty", "diurnal",
                            "diurnal-bursty"),
                   default="diurnal-bursty", help="arrival process")
    p.add_argument("--rate", type=float, default=80.0,
                   help="arrival rate in requests per mega-cycle")
    p.add_argument("--requests", type=int, default=20_000,
                   help="trace length in requests")
    p.add_argument("--seed", type=int, default=0, help="trace seed")
    p.add_argument("--batch", default="timeout:8:50000",
                   help="batching policy: fixed:N or timeout:N:CYCLES")
    p.add_argument("--slo-factor", type=float, default=10.0,
                   help="per-tenant SLO = factor x isolated latency")
    p.add_argument("--max-queue", type=int, default=None,
                   help="replica-local per-tenant queue bound")
    p.add_argument("--link-bw", type=float, default=512.0,
                   help="front-end link bandwidth (bits/cycle)")
    p.add_argument("--link-latency", type=float, default=100.0,
                   help="front-end link per-hop latency (cycles)")
    p.add_argument("--workers", type=int, default=1,
                   help="compile workers for --sweep-dead")
    p.add_argument("--cache-dir", default=None,
                   help="explore result-cache root (--sweep-dead)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the result cache (--sweep-dead)")
    p.add_argument("--format", choices=("table", "json"), default="table")
    p.set_defaults(fn=cmd_faults)

    p = sub.add_parser(
        "trace",
        help="record, analyze, and what-if-replay execution traces",
        description="Trace tooling over the whole stack: `record` runs "
                    "one scenario (single-chip sim, multi-chip shard, "
                    "serve DES, or fleet engine) with span capture on "
                    "and saves the digest-pinned compact trace and/or "
                    "Chrome-trace JSON; `analyze` extracts the critical "
                    "path, bottleneck attribution, and per-tenant / "
                    "per-replica rollups; `whatif` re-prices the "
                    "recording under mutated parameters (link bw/"
                    "latency, compute/reconf speed, batching timeout, "
                    "±chips) without re-running the simulator.")
    tsub = p.add_subparsers(dest="action", required=True)

    r = tsub.add_parser(
        "record", help="run a scenario with trace capture on")
    r.add_argument("--kind", choices=("sim", "shard", "serve", "fleet"),
                   default="sim", help="which engine to record")
    r.add_argument("--arch", "--preset", dest="arch",
                   default="isaac-baseline",
                   help="architecture preset (unique prefixes accepted)")
    r.add_argument("--model", default="lenet",
                   help="model-zoo entry (sim/shard kinds)")
    _add_system_args(r, default_chips=2)
    r.add_argument("--tenants", default="resnet18:4,mobilenet:1",
                   metavar="MODEL[:WEIGHT],...",
                   help="co-resident models (serve/fleet kinds)")
    r.add_argument("--mode", choices=("spatial", "temporal"),
                   default="spatial",
                   help="hardware sharing plan (serve/fleet kinds)")
    r.add_argument("--arrivals",
                   choices=("poisson", "bursty", "diurnal",
                            "diurnal-bursty"),
                   default="poisson",
                   help="arrival process (serve/fleet kinds)")
    r.add_argument("--rate", type=float, default=22.0,
                   help="arrival rate in requests per mega-cycle")
    r.add_argument("--requests", type=int, default=400,
                   help="request-stream length")
    r.add_argument("--seed", type=int, default=0,
                   help="request-stream seed")
    r.add_argument("--batch", default="timeout:8:50000",
                   help="batching policy: fixed:N or timeout:N:CYCLES")
    r.add_argument("--slo-factor", type=float, default=10.0,
                   help="per-tenant SLO = factor x isolated latency")
    r.add_argument("--max-queue", type=int, default=None,
                   help="per-tenant queue bound")
    r.add_argument("--replicas", type=int, default=4,
                   help="fleet size (fleet kind)")
    r.add_argument("--router", default="least-loaded",
                   help="fleet routing policy")
    r.add_argument("--out", default=None, metavar="PATH",
                   help="write the compact trace JSON "
                        "(repro.trace.Trace.load-able)")
    r.add_argument("--chrome", default=None, metavar="PATH",
                   help="write Chrome-trace JSON (chrome://tracing / "
                        "Perfetto)")
    r.add_argument("--format", choices=("table", "json"),
                   default="table")
    r.set_defaults(fn=cmd_trace_record)

    a = tsub.add_parser(
        "analyze",
        help="critical path, attribution, and rollups of a recording")
    a.add_argument("trace",
                   help="trace saved by `repro trace record --out`")
    a.add_argument("--request", type=int, default=None,
                   help="request index to path-analyze (serving traces; "
                        "default: the slowest request)")
    a.add_argument("--format", choices=("table", "json"),
                   default="table")
    a.set_defaults(fn=cmd_trace_analyze)

    w = tsub.add_parser(
        "whatif",
        help="re-price a recording under mutated parameters")
    w.add_argument("trace",
                   help="trace saved by `repro trace record --out`")
    w.add_argument("--mutate", default="", metavar="KEY=VALUE,...",
                   help="mutation spec: compute/reconf/link_bw/"
                        "link_latency multipliers, timeout=CYCLES, "
                        "chips=±N (empty: identity replay)")
    w.add_argument("--out", default=None, metavar="PATH",
                   help="write the replayed trace JSON")
    w.add_argument("--format", choices=("table", "json"),
                   default="table")
    w.set_defaults(fn=cmd_trace_whatif)

    p = sub.add_parser(
        "reproduce",
        help="one-command artifact reproduction against golden results",
        description="Run every registered EXPERIMENTS.md figure/table "
                    "and the BENCH suite, compare fresh result digests "
                    "against the committed goldens under "
                    "benchmarks/goldens/ (exact for experiments, "
                    "regression bands for BENCH speedups), check the "
                    "committed document against freshly rendered "
                    "sections, and emit a machine-readable report plus "
                    "a pass/fail table.  Profiles: quick (warm-cache "
                    "friendly, ~5 min) and full (cold caches asserted "
                    "empty, full BENCH workloads).  See "
                    "docs/REPRODUCE.md.")
    p.add_argument("--profile", choices=("quick", "full"),
                   default="quick",
                   help="quick = warm-cache subset sizing; full = "
                        "cold-cache regeneration of everything")
    p.add_argument("--only", default=None, metavar="NAME,...",
                   help="run a subset of registry entries")
    p.add_argument("--bless", action="store_true",
                   help="rewrite the goldens from this run (and "
                        "regenerate EXPERIMENTS.md when every entry ran) "
                        "instead of validating")
    p.add_argument("--check", action="store_true",
                   help="cheap consistency check only: registry titles "
                        "vs EXPERIMENTS.md headings and golden "
                        "self-consistency; runs no generators")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for the sweep-shaped entries")
    p.add_argument("--cache-dir", default=None,
                   help="explore result cache for the quick profile "
                        "(default: $REPRO_CACHE_DIR or "
                        "~/.cache/repro-explore); the full profile "
                        "always uses a fresh temporary directory")
    p.add_argument("--goldens-dir", default="benchmarks/goldens",
                   help="committed goldens directory")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="also write reproduce_report.json to PATH")
    p.add_argument("--format", choices=("table", "json"), default="table")
    p.set_defaults(fn=cmd_reproduce)

    p = sub.add_parser(
        "bench",
        help="time the compile→simulate hot path, reference vs fast",
        description="Run the performance benchmarks: each workload "
                    "(compile, duplication search, placement, performance "
                    "sim, the fig22 sensitivity sweep, a 2-tenant serve "
                    "capacity sweep) is timed with the fast path disabled "
                    "and enabled, the two result digests are verified "
                    "identical, and the speedups are reported "
                    "({name, wall_s, points, speedup_vs_reference}).")
    p.add_argument("--quick", action="store_true",
                   help="smaller workloads (CI smoke)")
    p.add_argument("--only", default=None, metavar="NAME,...",
                   help="run a subset of benchmarks")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="also write the JSON to PATH (e.g. BENCH_PR4.json)")
    p.add_argument("--format", choices=("table", "json"), default="table")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "cache",
        help="inspect or clear the persistent compile memo",
        description="The cross-process disk extension of the compile "
                    "cache (opt-in via REPRO_DISK_CACHE=1, located by "
                    "REPRO_COMPILE_CACHE_DIR) persists per-op profiles, "
                    "duplication searches, and segmentations so repeated "
                    "runs — CLI invocations, CI jobs, fleet workers — "
                    "warm-start each other bit-identically.  `stats` "
                    "reports entry counts and size for the current "
                    "schema version; `clear` deletes its entries.")
    csub = p.add_subparsers(dest="action", required=True)
    for action, text in (("stats", "entry counts and size of the store"),
                         ("clear", "delete this schema version's entries")):
        c = csub.add_parser(action, help=text)
        c.add_argument("--dir", default=None,
                       help="store root (default: $REPRO_COMPILE_CACHE_DIR "
                            "or ~/.cache/repro-compile)")
        if action == "stats":
            c.add_argument("--format", choices=("table", "json"),
                           default="table")
        c.set_defaults(fn=cmd_cache)

    p = sub.add_parser(
        "power",
        help="per-model energy/power breakdown on a preset",
        description="Compile each model with the full multi-level "
                    "scheduler and print its energy-per-inference, peak "
                    "and average power, and the Section 4.2 energy "
                    "breakdown (crossbar activation / ADC-DAC conversion "
                    "/ data movement / weight reconfiguration), plus the "
                    "full weight-write energy a serving system pays to "
                    "(re)deploy the model.  See docs/ENERGY.md for the "
                    "model behind the numbers.")
    p.add_argument("--arch", "--preset", dest="arch",
                   default="isaac-baseline",
                   help="architecture preset (unique prefixes accepted)")
    p.add_argument("--models", "--model", dest="models",
                   default="resnet18", metavar="MODEL,...",
                   help="comma list of model-zoo entries")
    p.add_argument("--format", choices=("table", "json"), default="table")
    p.set_defaults(fn=cmd_power)

    p = sub.add_parser("codegen",
                       help="emit a meta-operator program (small models)")
    p.add_argument("--arch", default="table2-example",
                   choices=sorted(PRESETS))
    p.add_argument("--model", default="conv-relu")
    p.add_argument("--max-lines", type=int, default=40)
    p.set_defaults(fn=cmd_codegen)
    return parser


def main(argv: Optional[List[str]] = None) -> None:
    args = build_parser().parse_args(argv)
    args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    main()
