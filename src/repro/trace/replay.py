"""What-if replay: re-price a recorded trace under mutated parameters.

A recorded trace stores the exact magnitudes every interval was priced
from (cycles, bits, hops, switch/service costs, batching readiness),
so re-evaluating a scenario under different hardware or policy knobs
does not need the DES: :func:`replay` regenerates the timeline through
the same emitters capture used, with the magnitudes re-priced.

Fidelity contract (pinned by ``tests/test_trace.py``):

* The **identity** mutation reproduces the recorded trace bit for bit
  (same digest) — replay re-runs the capture arithmetic, never
  transforms timestamps.
* **Link bandwidth/latency** mutations of shard traces are *exact*
  versus ground-truth re-simulation: stage structure is link-invariant
  (:func:`repro.scale.shard` partitions without link parameters), so
  re-pricing each transfer through a rescaled
  :class:`~repro.arch.ChipLink` reproduces the full pipeline numbers.
  This exactness is what lets ``repro sweep --prefilter replay`` prune
  link axes from one anchor evaluation per group.
* **Batching-timeout / compute-speed / hop** mutations of serving
  traces hold batch composition and per-executor dispatch order fixed
  and re-solve each executor's dispatch chain
  (``dispatch' = max(executor_free, ready', filled')``) — near-exact
  at moderate load, validated <5% on the pinned scenario set.
* **±chips** mutations of shard traces use an ideal-rebalance estimate
  (total compute split evenly, mean-boundary-traffic links) — a coarse
  screening signal, not an exact re-price.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from ..arch import ChipLink
from ..errors import ScheduleError
from .capture import (
    emit_batch_spans,
    emit_shard,
    emit_sim,
    shard_model_from_trace,
    shard_totals,
    sim_model_from_trace,
)
from .recorder import TraceRecorder
from .span import Trace

#: CLI mutation keys → :class:`Mutation` fields (scales are speedups:
#: ``compute=2`` halves compute durations; ``link_latency=2`` doubles
#: per-hop latency — it is a raw multiplier; ``timeout`` replaces the
#: batching timeout in cycles; ``chips`` is a signed replica delta).
MUTATION_KEYS = ("compute", "reconf", "link_bw", "link_latency",
                 "timeout", "chips")


@dataclass(frozen=True)
class Mutation:
    """One what-if: parameter changes to re-price a trace under.

    ``compute_scale`` / ``reconfiguration_scale`` / ``link_bandwidth_scale``
    are speed multipliers (durations divide by them);
    ``link_latency_scale`` multiplies per-hop latency;
    ``link_bandwidth`` / ``link_latency`` are absolute overrides (used
    by the sweep prefilter to land on exact grid values);
    ``batch_timeout`` replaces the batching timeout (cycles);
    ``chips_delta`` adds/removes pipeline chips (shard traces only).
    """

    compute_scale: float = 1.0
    reconfiguration_scale: float = 1.0
    link_bandwidth_scale: float = 1.0
    link_latency_scale: float = 1.0
    link_bandwidth: Optional[float] = None
    link_latency: Optional[float] = None
    batch_timeout: Optional[float] = None
    chips_delta: int = 0

    def is_identity(self) -> bool:
        """Whether this mutation changes nothing."""
        return (self.compute_scale == 1.0
                and self.reconfiguration_scale == 1.0
                and self.link_bandwidth_scale == 1.0
                and self.link_latency_scale == 1.0
                and self.link_bandwidth is None
                and self.link_latency is None
                and self.batch_timeout is None
                and self.chips_delta == 0)

    def describe(self) -> str:
        """CLI-style rendering of the non-identity fields."""
        parts = []
        if self.compute_scale != 1.0:
            parts.append(f"compute={self.compute_scale:g}")
        if self.reconfiguration_scale != 1.0:
            parts.append(f"reconf={self.reconfiguration_scale:g}")
        if self.link_bandwidth_scale != 1.0:
            parts.append(f"link_bw={self.link_bandwidth_scale:g}")
        if self.link_latency_scale != 1.0:
            parts.append(f"link_latency={self.link_latency_scale:g}")
        if self.link_bandwidth is not None:
            parts.append(f"link_bw_abs={self.link_bandwidth:g}")
        if self.link_latency is not None:
            parts.append(f"link_latency_abs={self.link_latency:g}")
        if self.batch_timeout is not None:
            parts.append(f"timeout={self.batch_timeout:g}")
        if self.chips_delta:
            parts.append(f"chips={self.chips_delta:+d}")
        return ",".join(parts) or "identity"

    def scaled_link(self, link: ChipLink) -> ChipLink:
        """``link`` with this mutation's bandwidth/latency applied."""
        bw = (self.link_bandwidth if self.link_bandwidth is not None
              else link.bandwidth_bits * self.link_bandwidth_scale)
        lat = (self.link_latency if self.link_latency is not None
               else link.latency_cycles * self.link_latency_scale)
        return replace(link, bandwidth_bits=bw, latency_cycles=lat)


def parse_mutation(text: str) -> Mutation:
    """Parse a CLI mutation spec: ``key=value[,key=value...]``.

    Keys: ``compute`` / ``reconf`` (speed multipliers), ``link_bw``
    (bandwidth multiplier), ``link_latency`` (latency multiplier),
    ``timeout`` (absolute cycles), ``chips`` (signed delta, e.g.
    ``+1``).  An empty string is the identity.
    """
    fields: Dict[str, Any] = {}
    for part in filter(None, (p.strip() for p in text.split(","))):
        if "=" not in part:
            raise ScheduleError(
                f"bad mutation {part!r}; expected key=value with keys "
                f"{'/'.join(MUTATION_KEYS)}")
        key, value = part.split("=", 1)
        key = key.strip()
        try:
            if key == "compute":
                fields["compute_scale"] = float(value)
            elif key == "reconf":
                fields["reconfiguration_scale"] = float(value)
            elif key == "link_bw":
                fields["link_bandwidth_scale"] = float(value)
            elif key == "link_latency":
                fields["link_latency_scale"] = float(value)
            elif key == "timeout":
                fields["batch_timeout"] = float(value)
            elif key == "chips":
                fields["chips_delta"] = int(value)
            else:
                raise ScheduleError(
                    f"unknown mutation key {key!r}; expected one of "
                    f"{', '.join(MUTATION_KEYS)}")
        except ValueError:
            raise ScheduleError(
                f"bad mutation value {value!r} for key {key!r}")
    for key in ("compute_scale", "reconfiguration_scale",
                "link_bandwidth_scale", "link_latency_scale"):
        if key in fields and fields[key] <= 0:
            raise ScheduleError(f"mutation {key} must be positive")
    return Mutation(**fields)


@dataclass(frozen=True)
class ReplayResult:
    """A replayed trace plus its headline metrics."""

    trace: Trace
    metrics: Dict[str, Any]
    mutation: Mutation


def _scaled(value: float, scale: float) -> float:
    """``value / scale`` — except the identity scale returns ``value``
    unchanged, so identity replay is bit-exact (float division by 1.0
    is exact anyway; this also skips it for speed and clarity)."""
    return value if scale == 1.0 else value / scale


def replay(trace: Trace, mutation: Optional[Mutation] = None
           ) -> ReplayResult:
    """Re-price ``trace`` under ``mutation`` without re-simulation."""
    mutation = mutation or Mutation()
    if trace.kind == "sim":
        return _replay_sim(trace, mutation)
    if trace.kind == "shard":
        return _replay_shard(trace, mutation)
    if trace.kind in ("serve", "fleet"):
        return _replay_serving(trace, mutation)
    raise ScheduleError(f"cannot replay trace kind {trace.kind!r}")


# ---------------------------------------------------------------------------
# Single-chip performance traces
# ---------------------------------------------------------------------------


def _replay_sim(trace: Trace, m: Mutation) -> ReplayResult:
    if m.chips_delta:
        raise ScheduleError(
            "chips mutations apply to shard traces, not single-chip sim "
            "traces")
    cs, rs = m.compute_scale, m.reconfiguration_scale
    model = sim_model_from_trace(trace)
    for seg in model["segments"]:
        seg["cycles"] = _scaled(seg["cycles"], cs)
        seg["reconfiguration"] = _scaled(seg["reconfiguration"], rs)
        seg["bottleneck_cycles"] = _scaled(seg["bottleneck_cycles"], cs)
        seg["noc"] = _scaled(seg["noc"], cs)
        seg["ops"] = tuple((name, _scaled(off, cs), _scaled(lat, cs))
                           for name, off, lat in seg["ops"])
    rec = TraceRecorder()
    emit_sim(model, rec)
    compute_total = 0.0
    reconf_total = 0.0
    for seg in model["segments"]:
        compute_total += seg["cycles"]
        reconf_total += seg["reconfiguration"]
    total = compute_total + reconf_total
    if model["pipelined"]:
        intervals = [max(seg["bottleneck_cycles"], seg["reconfiguration"])
                     for seg in model["segments"]]
        interval = max(1.0, *intervals) if intervals else 1.0
    else:
        interval = total
    meta = dict(trace.meta)
    meta.update(
        total_cycles=total, compute_cycles=compute_total,
        reconfiguration_cycles=reconf_total,
        noc_cycles=_scaled(meta.get("noc_cycles", 0.0), cs),
        steady_state_interval=interval)
    rec.configure(kind="sim", **meta)
    return ReplayResult(
        trace=rec.finish(),
        metrics={"total_cycles": total,
                 "steady_state_interval": interval,
                 "throughput": 1.0 / interval},
        mutation=m)


# ---------------------------------------------------------------------------
# Multi-chip shard traces
# ---------------------------------------------------------------------------


def _replay_shard(trace: Trace, m: Mutation) -> ReplayResult:
    cs = m.compute_scale
    model = shard_model_from_trace(trace)
    model["stage_latencies"] = [_scaled(v, cs)
                                for v in model["stage_latencies"]]
    model["stage_intervals"] = [_scaled(v, cs)
                                for v in model["stage_intervals"]]
    link_meta = trace.meta["link"]
    link = m.scaled_link(ChipLink(
        bandwidth_bits=link_meta["bandwidth_bits"],
        latency_cycles=link_meta["latency_cycles"],
        serialization_overhead=link_meta["serialization_overhead"],
        energy_per_bit=link_meta["energy_per_bit"]))
    if m.chips_delta:
        model = _rebalance_chips(model, m.chips_delta, link)
    else:
        for t in model["transfers"]:
            t["cycles"] = link.transfer_cycles(t["bits"], t["hops"])
            t["occupancy"] = link.serialization_cycles(t["bits"])
    rec = TraceRecorder()
    emit_shard(model, rec)
    totals = shard_totals(model)
    meta = dict(trace.meta)
    meta.update(
        num_chips=model["num_chips"],
        link={"bandwidth_bits": link.bandwidth_bits,
              "latency_cycles": link.latency_cycles,
              "serialization_overhead": link.serialization_overhead,
              "energy_per_bit": link.energy_per_bit},
        **totals)
    rec.configure(kind="shard", **meta)
    metrics = dict(totals)
    metrics["throughput"] = 1.0 / totals["steady_state_interval"]
    return ReplayResult(trace=rec.finish(), metrics=metrics, mutation=m)


def _rebalance_chips(model: Dict[str, Any], delta: int,
                     link: ChipLink) -> Dict[str, Any]:
    """Ideal-rebalance ±chips estimate: total compute split evenly
    across the new chip count, one mean-boundary-traffic transfer per
    consecutive pair.  A screening signal (monotone in the right
    direction), not an exact re-price — pipeline stages cannot always
    be split this evenly."""
    n = model["num_chips"] + delta
    if n < 1:
        raise ScheduleError(
            f"chips mutation leaves {n} chips; need at least 1")
    compute = sum(model["stage_latencies"])
    interval_sum = sum(model["stage_intervals"])
    chain_bits = [t["bits"] for t in model["transfers"]
                  if t["dst_stage"] == t["src_stage"] + 1]
    mean_bits = (int(round(sum(chain_bits) / len(chain_bits)))
                 if chain_bits else 0)
    transfers = []
    for i in range(n - 1):
        transfers.append({
            "seq": i, "src_stage": i, "dst_stage": i + 1,
            "src_chip": i, "dst_chip": i + 1, "bits": mean_bits,
            "hops": 1, "cycles": link.transfer_cycles(mean_bits, 1),
            "occupancy": link.serialization_cycles(mean_bits),
            "energy": link.transfer_energy(mean_bits, 1)})
    return {
        "num_chips": n,
        "chips": list(range(n)),
        "stage_latencies": [compute / n] * n,
        "stage_intervals": [interval_sum / n] * n,
        "transfers": transfers,
    }


# ---------------------------------------------------------------------------
# Serving traces (serve DES / fleet engine)
# ---------------------------------------------------------------------------


def _replay_serving(trace: Trace, m: Mutation) -> ReplayResult:
    if m.chips_delta:
        raise ScheduleError(
            "chips mutations apply to shard traces, not serving traces")
    meta = dict(trace.meta)
    fleet = trace.kind == "fleet"
    cs, rs = m.compute_scale, m.reconfiguration_scale

    hop_in = hop_out = 0.0
    link = None
    if fleet:
        link_meta = meta["link"]
        link = m.scaled_link(ChipLink(
            bandwidth_bits=link_meta["bandwidth_bits"],
            latency_cycles=link_meta["latency_cycles"],
            serialization_overhead=link_meta["serialization_overhead"],
            energy_per_bit=link_meta["energy_per_bit"]))
        hop_in = link.transfer_cycles(meta["request_bits"], 1)
        hop_out = link.transfer_cycles(meta["response_bits"], 1)
        meta.update(
            hop_in=hop_in, hop_out=hop_out,
            link={"bandwidth_bits": link.bandwidth_bits,
                  "latency_cycles": link.latency_cycles,
                  "serialization_overhead":
                      link_meta["serialization_overhead"],
                  "energy_per_bit": link_meta["energy_per_bit"]})
    timeout = (m.batch_timeout if m.batch_timeout is not None
               else meta.get("batch_timeout"))
    if m.batch_timeout is not None:
        meta["batch_timeout"] = m.batch_timeout
        if meta.get("policy", "").startswith("timeout:"):
            max_size = meta["policy"].split(":")[1]
            meta["policy"] = f"timeout:{max_size}:{m.batch_timeout:g}"

    # Recorded batches per executor track, in dispatch order.  Fault
    # spans on executor tracks (drift-forced weight rewrites) join the
    # per-track chain; fault spans elsewhere (chip-death markers) pass
    # through verbatim like deployments.
    tracks: Dict[str, List] = {}
    exec_faults: Dict[str, List] = {}
    deploys = []
    passthrough_faults = []
    for s in trace.spans:
        if s.cat == "batch":
            tracks.setdefault(s.track, []).append(s)
        elif s.cat == "reconfiguration" and s.track.endswith("/deploy"):
            deploys.append(s)
        elif s.cat == "fault":
            if "ex:" in s.track:
                exec_faults.setdefault(s.track, []).append(s)
            else:
                passthrough_faults.append(s)
    for batch_spans in tracks.values():
        batch_spans.sort(key=lambda s: s.arg("dispatch"))
    for fault_spans in exec_faults.values():
        fault_spans.sort(key=lambda s: s.begin)

    fmeta = meta.get("fault") if fleet else None
    death_time = fmeta.get("chip_death_time") if fmeta else None
    death_rid = fmeta.get("chip_death_rid") if fmeta else None

    rec = TraceRecorder()
    latencies: Dict[str, List[Tuple[int, float]]] = {}
    horizon = 0.0
    for track in set(tracks) | set(exec_faults):
        batch_spans = tracks.get(track, [])
        prefix = track[:track.rindex("ex:")]
        rid = (int(prefix.split(":", 1)[1].split("/", 1)[0])
               if prefix.startswith("replica:") else 0)
        # Merge the batch chain with the track's fault stalls by
        # recorded time (a stall beginning exactly at a dispatch time
        # happened first — it is what delayed the dispatch).
        items = [("batch", s, s.arg("dispatch")) for s in batch_spans]
        items += [("fault", s, s.begin) for s in exec_faults.get(track, [])]
        items.sort(key=lambda it: (it[2], 0 if it[0] == "fault" else 1))
        exec_free = 0.0
        for what, s, _ in items:
            if what == "fault":
                start = max(exec_free, s.arg("deadline"))
                dur = _scaled(s.dur, rs)
                rec.span(s.name, "fault", start, dur, track,
                         **dict(s.args))
                exec_free = start + dur
                horizon = max(horizon, exec_free)
                continue
            members = s.arg("members")
            arrivals = s.arg("arrivals")
            tenant = s.arg("tenant")
            oldest = s.arg("oldest")
            ready = s.arg("ready")
            filled = arrivals[-1] + hop_in
            if ready == "deadline" and timeout is not None:
                t_ready = oldest + timeout
            else:
                t_ready = filled
            dispatch = max(exec_free, t_ready, filled)
            switch = _scaled(s.arg("switch"), rs)
            service = _scaled(s.arg("service"), cs)
            emit_batch_spans(
                rec, prefix, s.arg("executor"), tenant, members,
                arrivals, hop_in, dispatch, switch, service,
                t_ready, filled, oldest, ready)
            complete = dispatch + switch + service
            exec_free = complete
            horizon = max(horizon, complete + hop_out)
            # A batch completing at/after the chip-death instant on the
            # dead replica was lost in flight: its requests landed (the
            # inbound hop happened) but never finished.
            lost = (death_time is not None and rid == death_rid
                    and complete >= death_time)
            rows = latencies.setdefault(tenant, [])
            for idx, arrival in zip(members, arrivals):
                if fleet:
                    rec.span(f"hop_in:{idx}", "link", arrival, hop_in,
                             f"replica:{rid}/link", index=idx,
                             tenant=tenant, rid=rid)
                    if lost:
                        continue
                    rec.span(f"hop_out:{idx}", "link", complete, hop_out,
                             f"replica:{rid}/link", index=idx,
                             tenant=tenant, rid=rid)
                if not lost:
                    rows.append((idx, complete + hop_out - arrival))
    for s in deploys:
        rec.span(s.name, s.cat, s.begin, _scaled(s.dur, rs), s.track,
                 **dict(s.args))
    for s in passthrough_faults:
        rec.span(s.name, s.cat, s.begin, _scaled(s.dur, rs), s.track,
                 **dict(s.args))
    if fmeta:
        # Requests flushed off the dead replica's queues re-routed and
        # (maybe) completed elsewhere — their *first* landing's inbound
        # hop is not derivable from any batch, so it rides the meta.
        for idx, tenant, arrival in fmeta.get("rerouted_hops", []):
            rec.span(f"hop_in:{idx}", "link", arrival, hop_in,
                     f"replica:{death_rid}/link", index=idx,
                     tenant=tenant, rid=death_rid)
    rec.configure(kind=trace.kind, **meta)
    return ReplayResult(trace=rec.finish(),
                        metrics=_serving_metrics(latencies, horizon),
                        mutation=m)


def _serving_metrics(latencies: Dict[str, List[Tuple[int, float]]],
                     horizon: float) -> Dict[str, Any]:
    """Latency percentiles per tenant + overall, from replayed chains."""
    from ..serve.report import percentile

    def stats(values: List[float]) -> Dict[str, float]:
        return {
            "completed": len(values),
            "p50": percentile(values, 50),
            "p95": percentile(values, 95),
            "p99": percentile(values, 99),
            "mean": sum(values) / len(values) if values else 0.0,
            "max": max(values) if values else 0.0,
        }

    tenants = {t: stats([lat for _, lat in rows])
               for t, rows in sorted(latencies.items())}
    everything = [lat for rows in latencies.values() for _, lat in rows]
    out = stats(everything)
    out["horizon"] = horizon
    out["tenants"] = tenants
    return out
