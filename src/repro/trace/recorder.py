"""The span sink the engines emit into.

A :class:`TraceRecorder` is handed to the performance simulator, the
serve DES, or the fleet engine as an optional ``recorder=`` argument.
Recording is strictly opt-in and zero-overhead when off: every engine
hook is a single ``if recorder is not None`` branch around code that
otherwise does not exist, so a ``recorder=None`` run executes the exact
instruction stream it did before tracing existed (pinned by the golden
digest suites).

The recorder is append-only during a run; :meth:`finish` freezes the
spans into a :class:`~repro.trace.span.Trace` under the deterministic
span order (capture order is a DES artifact and never reaches the
digest).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .span import Span, Trace, freeze_args, span_sort_key


class TraceRecorder:
    """Collects spans and scenario metadata into a :class:`Trace`.

    >>> from repro.trace import TraceRecorder
    >>> rec = TraceRecorder()
    >>> rec.span("op", "compute", begin=0.0, dur=5.0, track="chip")
    >>> len(rec.finish().spans)
    1
    """

    __slots__ = ("_kind", "_meta", "_spans", "_trace")

    def __init__(self, kind: str = "trace") -> None:
        self._kind = kind
        self._meta: Dict[str, Any] = {}
        self._spans: List[Span] = []
        self._trace: Optional[Trace] = None

    def span(self, name: str, cat: str, begin: float, dur: float,
             track: str, **args: Any) -> None:
        """Record one interval; ``args`` carry its pricing magnitudes."""
        self._trace = None
        self._spans.append(
            Span(name, cat, track, begin, dur, freeze_args(args)))

    def configure(self, kind: Optional[str] = None, **meta: Any) -> None:
        """Set the trace kind and merge scenario metadata."""
        self._trace = None
        if kind is not None:
            self._kind = kind
        self._meta.update(meta)

    def __len__(self) -> int:
        return len(self._spans)

    def finish(self) -> Trace:
        """Freeze into a :class:`Trace` (cached until the next emit)."""
        if self._trace is None:
            self._trace = Trace(
                kind=self._kind,
                meta=dict(self._meta),
                spans=tuple(sorted(self._spans, key=span_sort_key)))
        return self._trace

    @property
    def trace(self) -> Trace:
        """Alias of :meth:`finish`."""
        return self.finish()
