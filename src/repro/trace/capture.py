"""Capture helpers: engines → models → spans.

The layer between the simulators and the trace data model.  Every
producer (performance simulator, multi-chip shard, serve DES, fleet
engine) reduces to a small *timeline model* — plain dicts/lists of the
exact magnitudes each interval was priced from — and one shared
*emitter* turns a model into spans.  Capture and what-if replay both
run the same emitter (:func:`emit_sim`, :func:`emit_shard`,
:func:`emit_batch_spans`), which is what makes replay under the
identity mutation bit-identical to the recording: the replayer
regenerates the trace by re-running the capture arithmetic on the
stored magnitudes, never by transforming timestamps (float subtraction
does not round-trip).

Facades (``record_*``) wrap each subsystem's one-call entry point and
return ``(report, trace)``; :func:`trace_from_summary` rebuilds a trace
from a cached :mod:`repro.explore` summary without recompiling, which
is what the ``--prefilter replay`` sweep pass rides on.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .recorder import TraceRecorder
from .span import Trace

# ---------------------------------------------------------------------------
# Single-chip performance timelines
# ---------------------------------------------------------------------------


def sim_model_from_report(report, schedule=None) -> Dict[str, Any]:
    """Timeline model of a :class:`~repro.sim.PerformanceReport`.

    With the ``schedule``, per-operator detail (pipeline fill offsets,
    latencies) and per-segment NoC demand are included; without it the
    model carries segment-level timing only (the shape cached explore
    summaries can reproduce).
    """
    segments: List[Dict[str, Any]] = []
    for seg in report.segments:
        ops: Tuple[Tuple[str, float, float], ...] = ()
        noc = 0.0
        if schedule is not None:
            decisions = schedule.segment_decisions(seg.index)
            noc = sum(d.profile.mov_cycles for d in decisions)
            rows = []
            if report.pipelined:
                fill = 0.0
                for d in decisions:
                    rows.append((d.profile.name, fill, d.latency()))
                    fill += d.fill()
            else:
                clock = 0.0
                for d in decisions:
                    rows.append((d.profile.name, clock, d.latency()))
                    clock += d.latency()
            ops = tuple(rows)
        segments.append({
            "index": seg.index,
            "cycles": seg.cycles,
            "reconfiguration": seg.reconfiguration,
            "bottleneck": seg.bottleneck,
            "bottleneck_cycles": seg.bottleneck_cycles,
            "noc": noc,
            "ops": ops,
        })
    return {"pipelined": report.pipelined, "segments": segments}


def emit_sim(model: Mapping[str, Any], rec: TraceRecorder) -> None:
    """Emit a single-chip timeline model as spans.

    Per segment: a ``reconfiguration`` stall (the swap-in weight
    rewrite), then the segment's ``compute`` wave, with the overlapped
    NoC demand and per-operator detail as child tracks.  Summing the
    chip track's spans reproduces the report's ``total_cycles``
    exactly (capture accumulates in the simulator's order).
    """
    clock = 0.0
    for seg in model["segments"]:
        i = seg["index"]
        reconf = seg["reconfiguration"]
        if reconf > 0:
            rec.span(f"reconf:{i}", "reconfiguration", clock, reconf,
                     "chip", segment=i, cycles=reconf)
        clock += reconf
        cycles = seg["cycles"]
        rec.span(f"segment:{i}", "compute", clock, cycles, "chip",
                 segment=i, cycles=cycles,
                 bottleneck=seg["bottleneck"],
                 bottleneck_cycles=seg["bottleneck_cycles"])
        noc = seg["noc"]
        if noc > 0:
            dur = noc if noc <= cycles else cycles
            rec.span(f"noc:{i}", "noc", clock, dur, "noc",
                     segment=i, demand=noc)
        for name, offset, latency in seg["ops"]:
            rem = cycles - offset
            dur = latency if latency <= rem else rem
            if dur > 0:
                rec.span(name, "compute", clock + offset, dur,
                         f"segment:{i}", segment=i, offset=offset,
                         latency=latency)
        clock += cycles


def sim_model_from_trace(trace: Trace) -> Dict[str, Any]:
    """Exact inverse of :func:`emit_sim` (reads stored magnitudes)."""
    segments: Dict[int, Dict[str, Any]] = {}

    def seg(i: int) -> Dict[str, Any]:
        return segments.setdefault(i, {
            "index": i, "cycles": 0.0, "reconfiguration": 0.0,
            "bottleneck": "", "bottleneck_cycles": 0.0,
            "noc": 0.0, "ops": []})

    for s in trace.spans:
        i = s.arg("segment")
        if s.track == "chip" and s.cat == "reconfiguration":
            seg(i)["reconfiguration"] = s.arg("cycles")
        elif s.track == "chip" and s.cat == "compute":
            entry = seg(i)
            entry["cycles"] = s.arg("cycles")
            entry["bottleneck"] = s.arg("bottleneck")
            entry["bottleneck_cycles"] = s.arg("bottleneck_cycles")
        elif s.track == "noc":
            seg(i)["noc"] = s.arg("demand")
        elif s.track.startswith("segment:"):
            seg(i)["ops"].append(
                (s.name, s.arg("offset"), s.arg("latency")))
    for entry in segments.values():
        entry["ops"] = tuple(sorted(entry["ops"],
                                    key=lambda row: (row[1], row[0])))
    ordered = [segments[i] for i in sorted(segments)]
    return {"pipelined": bool(trace.meta.get("pipelined", True)),
            "segments": ordered}


def record_performance(arch, schedule) -> Tuple[Any, Trace]:
    """Simulate ``schedule`` on ``arch`` with recording on.

    Returns ``(PerformanceReport, Trace)``; the trace carries segment,
    per-op, NoC, and reconfiguration spans plus replay metadata.
    """
    from ..sim.performance import PerformanceSimulator

    rec = TraceRecorder()
    report = PerformanceSimulator(arch).run(schedule, recorder=rec)
    return report, rec.finish()


# ---------------------------------------------------------------------------
# Multi-chip (shard) timelines
# ---------------------------------------------------------------------------


def shard_model_from_plan(plan) -> Dict[str, Any]:
    """Timeline model of a :class:`~repro.scale.ShardPlan`."""
    report = plan.report
    return {
        "num_chips": report.num_chips,
        "chips": list(report.chips),
        "stage_latencies": [r.total_cycles for r in report.stages],
        "stage_intervals": [r.steady_state_interval
                            for r in report.stages],
        "transfers": [
            {"seq": i, "src_stage": t.src_stage, "dst_stage": t.dst_stage,
             "src_chip": t.src_chip, "dst_chip": t.dst_chip,
             "bits": t.bits, "hops": t.hops, "cycles": t.cycles,
             "occupancy": t.occupancy, "energy": t.energy}
            for i, t in enumerate(report.transfers)
        ],
    }


def shard_model_from_summary(summary: Mapping[str, Any]) -> Dict[str, Any]:
    """Timeline model from a cached multi-chip explore summary.

    Requires the v4 ``scale`` block (``transfers`` with per-transfer
    routing detail); older cached summaries are re-evaluated instead.
    """
    scale = summary["scale"]
    if "transfers" not in scale or "chips" not in scale:
        raise KeyError("summary lacks v4 scale.transfers detail")
    return {
        "num_chips": scale["num_chips"],
        "chips": list(scale["chips"]),
        "stage_latencies": list(scale["stage_latencies"]),
        "stage_intervals": list(scale["stage_intervals"]),
        "transfers": [dict(t) for t in scale["transfers"]],
    }


def emit_shard(model: Mapping[str, Any], rec: TraceRecorder) -> None:
    """Emit a multi-chip pipeline model as spans.

    One inference's traversal: each stage's ``compute`` span on its
    chip's track, chained with the consecutive-stage ``link`` transfers
    (the critical path); skip-connection transfers overlap the chain
    and begin at their source stage's end.  Chip-track plus chain-link
    span durations sum to the report's ``total_cycles`` exactly.
    """
    chain = {t["src_stage"]: t for t in model["transfers"]
             if t["dst_stage"] == t["src_stage"] + 1}
    clock = 0.0
    stage_ends: List[float] = []
    for i, lat in enumerate(model["stage_latencies"]):
        chip = model["chips"][i]
        rec.span(f"stage:{i}", "compute", clock, lat, f"chip:{chip}",
                 stage=i, chip=chip, cycles=lat,
                 interval=model["stage_intervals"][i])
        clock += lat
        stage_ends.append(clock)
        t = chain.get(i)
        if t is not None:
            rec.span(f"link:{t['src_chip']}->{t['dst_chip']}", "link",
                     clock, t["cycles"],
                     f"link:{t['src_chip']}->{t['dst_chip']}",
                     **_transfer_args(t, chain=True))
            clock += t["cycles"]
    for t in model["transfers"]:
        if t["dst_stage"] != t["src_stage"] + 1:
            rec.span(f"link:{t['src_chip']}->{t['dst_chip']}", "link",
                     stage_ends[t["src_stage"]], t["cycles"],
                     f"link:{t['src_chip']}->{t['dst_chip']}",
                     **_transfer_args(t, chain=False))


def _transfer_args(t: Mapping[str, Any], chain: bool) -> Dict[str, Any]:
    """Span args of one link transfer (its full pricing detail)."""
    return {"seq": t["seq"], "src_stage": t["src_stage"],
            "dst_stage": t["dst_stage"], "src_chip": t["src_chip"],
            "dst_chip": t["dst_chip"], "bits": t["bits"],
            "hops": t["hops"], "occupancy": t["occupancy"],
            "energy": t["energy"], "chain": chain}


def shard_model_from_trace(trace: Trace) -> Dict[str, Any]:
    """Exact inverse of :func:`emit_shard`."""
    stages: Dict[int, Tuple[int, float, float]] = {}
    transfers: Dict[int, Dict[str, Any]] = {}
    for s in trace.spans:
        if s.cat == "compute":
            stages[s.arg("stage")] = (s.arg("chip"), s.arg("cycles"),
                                      s.arg("interval"))
        elif s.cat == "link":
            transfers[s.arg("seq")] = {
                "seq": s.arg("seq"), "src_stage": s.arg("src_stage"),
                "dst_stage": s.arg("dst_stage"),
                "src_chip": s.arg("src_chip"),
                "dst_chip": s.arg("dst_chip"), "bits": s.arg("bits"),
                "hops": s.arg("hops"), "cycles": s.dur,
                "occupancy": s.arg("occupancy"),
                "energy": s.arg("energy")}
    ordered = [stages[i] for i in sorted(stages)]
    return {
        "num_chips": trace.meta["num_chips"],
        "chips": [chip for chip, _, _ in ordered],
        "stage_latencies": [lat for _, lat, _ in ordered],
        "stage_intervals": [iv for _, _, iv in ordered],
        "transfers": [transfers[i] for i in sorted(transfers)],
    }


def channel_busy(transfers: Sequence[Mapping[str, Any]],
                 num_chips: int) -> Dict[Tuple[int, int], float]:
    """Busy cycles per physical link channel — the exact mirror of
    :attr:`repro.sim.performance.MultiChipReport.channel_occupancies`
    over model-form transfers, so replayed steady-state intervals match
    a ground-truth re-simulation bit for bit."""
    n = num_chips
    busy: Dict[Tuple[int, int], float] = {}

    def charge(src: int, dst: int, step: int, modular: bool,
               occupancy: float) -> None:
        c = src
        while c != dst:
            nxt = (c + step) % n if modular else c + step
            busy[(c, nxt)] = busy.get((c, nxt), 0.0) + occupancy
            c = nxt

    for t in transfers:
        hops, src, dst = t["hops"], t["src_chip"], t["dst_chip"]
        occ = t["occupancy"]
        if hops <= 1:
            busy[(src, dst)] = busy.get((src, dst), 0.0) + occ
        elif hops == (dst - src) % n:
            charge(src, dst, +1, True, occ)
        elif hops == (src - dst) % n:
            charge(src, dst, -1, True, occ)
        else:
            charge(src, dst, 1 if dst >= src else -1, False, occ)
    return busy


def shard_totals(model: Mapping[str, Any]) -> Dict[str, float]:
    """(total_cycles, steady_state_interval, link_energy) of a shard
    model, accumulated in the report properties' exact order."""
    compute = sum(model["stage_latencies"])
    chain = sum(t["cycles"] for t in model["transfers"]
                if t["dst_stage"] == t["src_stage"] + 1)
    paced = list(model["stage_intervals"]) + list(
        channel_busy(model["transfers"], model["num_chips"]).values())
    return {
        "total_cycles": compute + chain,
        "steady_state_interval": max(paced) if paced else 1.0,
        "link_energy": sum(t["energy"] for t in model["transfers"]),
    }


def record_shard(plan) -> Trace:
    """Trace of one inference traversing a multi-chip shard plan."""
    model = shard_model_from_plan(plan)
    rec = TraceRecorder()
    emit_shard(model, rec)
    link = plan.system.link
    rec.configure(
        kind="shard", num_chips=model["num_chips"],
        topology=plan.system.topology,
        link={"bandwidth_bits": link.bandwidth_bits,
              "latency_cycles": link.latency_cycles,
              "serialization_overhead": link.serialization_overhead,
              "energy_per_bit": link.energy_per_bit},
        **shard_totals(model))
    return rec.finish()


def trace_from_summary(summary: Mapping[str, Any],
                       system=None) -> Trace:
    """Rebuild a trace from a cached explore summary (no recompile).

    Multi-chip summaries (with the v4 ``scale.transfers`` block) yield
    a ``shard`` trace priced by ``system``'s link; single-chip
    summaries yield a segment-level ``sim`` trace.  This is the cheap
    path the ``repro sweep --prefilter replay`` pass uses to re-price
    link axes from one anchor evaluation.
    """
    rec = TraceRecorder()
    if "scale" in summary:
        if system is None:
            raise ValueError("multi-chip summaries need the system for "
                             "link pricing metadata")
        model = shard_model_from_summary(summary)
        emit_shard(model, rec)
        link = system.link
        rec.configure(
            kind="shard", num_chips=model["num_chips"],
            topology=system.topology,
            link={"bandwidth_bits": link.bandwidth_bits,
                  "latency_cycles": link.latency_cycles,
                  "serialization_overhead": link.serialization_overhead,
                  "energy_per_bit": link.energy_per_bit},
            **shard_totals(model))
        return rec.finish()
    model = {
        "pipelined": summary["pipelined"],
        "segments": [
            {"index": seg["index"], "cycles": seg["cycles"],
             "reconfiguration": seg["reconfiguration"],
             "bottleneck": seg["bottleneck"],
             "bottleneck_cycles": seg["bottleneck_cycles"],
             "noc": 0.0, "ops": ()}
            for seg in summary["segments"]
        ],
    }
    emit_sim(model, rec)
    rec.configure(kind="sim", pipelined=summary["pipelined"],
                  total_cycles=summary["total_cycles"],
                  compute_cycles=summary["compute_cycles"],
                  reconfiguration_cycles=summary[
                      "reconfiguration_cycles"],
                  noc_cycles=summary["noc_cycles"],
                  steady_state_interval=summary["steady_state_interval"])
    return rec.finish()


# ---------------------------------------------------------------------------
# Serving timelines (serve DES + fleet engine)
# ---------------------------------------------------------------------------


def emit_batch_spans(rec: TraceRecorder, prefix: str, executor: str,
                     tenant: str, members: Sequence[int],
                     arrivals: Sequence[float], enq_offset: float,
                     dispatch: float, switch: float, service: float,
                     t_ready: float, filled: float, oldest: float,
                     ready: str) -> None:
    """Emit one dispatched batch: member ``queue`` waits, the tenant
    ``reconfiguration`` switch (when paid), and the ``batch`` service
    span whose args pin every magnitude the replayer re-prices from
    (``ready`` ∈ full/deadline/now records *why* the batch became
    dispatchable).  Shared verbatim by the live engines and the
    replayer — identity replay must regenerate these spans bit for bit.
    """
    for idx, arrival in zip(members, arrivals):
        enq = arrival + enq_offset
        rec.span(f"req:{idx}", "queue", enq, dispatch - enq,
                 f"{prefix}queue:{tenant}",
                 index=idx, tenant=tenant, arrival=arrival)
    track = f"{prefix}ex:{executor}"
    if switch > 0:
        rec.span(f"switch:{tenant}", "reconfiguration", dispatch, switch,
                 track, tenant=tenant, cycles=switch)
    rec.span(f"batch:{tenant}", "batch", dispatch + switch, service,
             track, tenant=tenant, executor=executor, n=len(members),
             members=tuple(members), arrivals=tuple(arrivals),
             dispatch=dispatch, switch=switch, service=service,
             t_ready=t_ready, filled=filled, oldest=oldest, ready=ready)


def record_serve(plan, requests, policy=None, max_queue=None,
                 slo_factor: float = 10.0) -> Tuple[Any, Trace]:
    """Run the serve DES with recording on → ``(ServeReport, Trace)``."""
    from ..serve.engine import ServingEngine, TimeoutBatch

    policy = policy or TimeoutBatch(max_size=8, timeout=50_000.0)
    rec = TraceRecorder()
    report = ServingEngine(plan, policy, max_queue=max_queue).run(
        requests, slo_factor=slo_factor, recorder=rec)
    return report, rec.finish()


def record_fleet(plan, requests, policy=None, router=None,
                 admission=None, autoscaler=None, max_queue=None,
                 slo_factor: float = 10.0, fault=None) -> Tuple[Any, Trace]:
    """Run the fleet engine with recording on → ``(FleetReport, Trace)``.

    ``fault`` (a :class:`~repro.faults.FaultModel`) records a degraded
    run: drift rewrites and chip-death outages appear as ``fault``
    spans and the fault metadata rides the trace for exact replay."""
    from ..fleet.engine import FleetEngine

    rec = TraceRecorder()
    report = FleetEngine(plan, policy=policy, router=router,
                         admission=admission, autoscaler=autoscaler,
                         max_queue=max_queue, slo_factor=slo_factor,
                         fault=fault).run(requests, recorder=rec)
    return report, rec.finish()
