"""The trace data model: spans, categories, and the :class:`Trace`.

A *span* is one timed interval on a named *track* (an executor, a chip,
a link wire, a tenant queue) with a category drawn from
:data:`CATEGORIES` and a flat tuple of key/value *args* carrying the
exact magnitudes the interval was priced from (cycles, bits, hops,
switch/service costs).  A :class:`Trace` is an immutable bag of spans
plus scenario metadata, serializable two ways:

* ``to_chrome()`` — Chrome trace format (``chrome://tracing`` /
  Perfetto-loadable JSON), for eyeballs;
* ``to_dict()`` / ``to_json()`` — the compact internal format whose
  canonical-JSON SHA-256 (:meth:`Trace.digest`) pins a recording
  bit-identically, for machines.

Durations are stored explicitly (``begin`` + ``dur``), never recovered
as ``end - begin``: float subtraction does not round-trip, and the
what-if replayer (:mod:`repro.trace.replay`) regenerates traces by
re-running the exact capture arithmetic on the stored magnitudes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, NamedTuple, Tuple

#: Span categories — the attribution axes of the stack:
#: ``compute`` (segment/stage/op execution), ``batch`` (a dispatched
#: serving batch's service time), ``noc`` (on-chip network transfers
#: overlapping compute), ``link`` (inter-chip and front-end↔replica
#: hops), ``reconfiguration`` (crossbar weight (re)programs: segment
#: swaps, tenant switches, replica deployments), ``queue``
#: (requests waiting for dispatch), and ``fault`` (injected-fault
#: effects: drift-forced weight rewrites, chip-death outages).
CATEGORIES = ("compute", "batch", "noc", "link", "reconfiguration",
              "queue", "fault")

#: Trace schema version (bumped on incompatible span/meta layout
#: changes; checked by :meth:`Trace.from_dict`).
SCHEMA_VERSION = 1


def _freeze(value: Any) -> Any:
    """Canonicalize an arg value: sequences become tuples, scalars pass
    through; anything else is rejected so traces stay serializable."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TypeError(f"unsupported span arg value: {value!r}")


def freeze_args(args: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Canonical (sorted, tuple-frozen) form of a span's arg mapping."""
    return tuple(sorted((k, _freeze(v)) for k, v in args.items()))


class Span(NamedTuple):
    """One timed interval on a track.

    ``args`` is a sorted tuple of ``(key, value)`` pairs — the exact
    magnitudes this interval was priced from, which is what makes a
    recorded trace re-priceable without re-simulation.
    """

    name: str
    cat: str
    track: str
    begin: float
    dur: float
    args: Tuple[Tuple[str, Any], ...] = ()

    @property
    def end(self) -> float:
        """The interval's end timestamp (``begin + dur``)."""
        return self.begin + self.dur

    def arg(self, key: str, default: Any = None) -> Any:
        """Look up one arg value by key."""
        for k, v in self.args:
            if k == key:
                return v
        return default


def span_sort_key(span: Span) -> Tuple:
    """Deterministic total order for spans (time, track, identity).

    The recorder sorts with this before building a :class:`Trace`, so
    capture order (a DES artifact) never leaks into the digest and a
    replayer may emit spans in any order.
    """
    return (span.begin, span.track, span.name, span.cat, span.dur,
            repr(span.args))


@dataclass(frozen=True)
class Trace:
    """An immutable recorded timeline: spans + scenario metadata.

    ``kind`` names the producing subsystem (``sim`` / ``shard`` /
    ``serve`` / ``fleet``); ``meta`` carries the scenario parameters a
    replayer needs (policy timeout, link pricing, totals) — never
    values derivable only from wall clock or capture order.
    """

    kind: str
    meta: Dict[str, Any] = field(default_factory=dict)
    spans: Tuple[Span, ...] = ()

    def __len__(self) -> int:
        return len(self.spans)

    @property
    def begin(self) -> float:
        """Earliest span begin (0.0 for an empty trace)."""
        return min((s.begin for s in self.spans), default=0.0)

    @property
    def end(self) -> float:
        """Latest span end (0.0 for an empty trace)."""
        return max((s.end for s in self.spans), default=0.0)

    @property
    def duration(self) -> float:
        """Wall-clock extent of the recording (``end - begin``)."""
        return self.end - self.begin

    def tracks(self) -> Tuple[str, ...]:
        """Track names in first-appearance order."""
        seen: Dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.track, None)
        return tuple(seen)

    def by_category(self) -> Dict[str, float]:
        """Total span cycles per category (busy time, not wall time)."""
        totals: Dict[str, float] = {}
        for s in self.spans:
            totals[s.cat] = totals.get(s.cat, 0.0) + s.dur
        return totals

    def filter(self, cat: str = None, track: str = None) -> Tuple[Span, ...]:
        """Spans matching a category and/or exact track name."""
        return tuple(s for s in self.spans
                     if (cat is None or s.cat == cat)
                     and (track is None or s.track == track))

    # -- compact internal format ---------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The compact internal form (digest substrate)."""
        return {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "meta": self.meta,
            "spans": [[s.name, s.cat, s.track, s.begin, s.dur,
                       [[k, v] for k, v in s.args]]
                      for s in self.spans],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Trace":
        """Rebuild a trace from :meth:`to_dict` output (or its JSON)."""
        if payload.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"trace schema {payload.get('schema')!r} != "
                f"{SCHEMA_VERSION}")
        spans = tuple(
            Span(name, cat, track, begin, dur,
                 tuple((k, _freeze(v)) for k, v in args))
            for name, cat, track, begin, dur, args in payload["spans"])
        return cls(kind=payload["kind"], meta=dict(payload["meta"]),
                   spans=spans)

    def to_json(self) -> str:
        """Canonical JSON of the compact form (what the digest hashes)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        """Inverse of :meth:`to_json` (floats round-trip exactly)."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        """Write the compact form to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Read a trace saved by :meth:`save`."""
        with open(path, encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def digest(self) -> str:
        """SHA-256 of the canonical JSON — the recording's identity.

        Replay under the identity mutation reproduces this digest
        bit-for-bit (pinned by ``tests/test_trace.py``).
        """
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    # -- Chrome trace format -------------------------------------------

    def to_chrome(self) -> Dict[str, Any]:
        """Chrome trace format (Perfetto / ``chrome://tracing``).

        One complete event (``ph: "X"``) per span; tracks map to
        thread ids with thread-name metadata.  Timestamps are emitted
        in the simulator's cycle units (load as microseconds).
        """
        tids = {track: i for i, track in enumerate(self.tracks())}
        events: List[Dict[str, Any]] = [{
            "ph": "M", "pid": 0, "tid": 0, "name": "process_name",
            "args": {"name": f"repro:{self.kind}"},
        }]
        for track, tid in tids.items():
            events.append({"ph": "M", "pid": 0, "tid": tid,
                           "name": "thread_name",
                           "args": {"name": track}})
        for s in self.spans:
            events.append({
                "ph": "X", "pid": 0, "tid": tids[s.track],
                "name": s.name, "cat": s.cat,
                "ts": s.begin, "dur": s.dur,
                "args": dict(s.args),
            })
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "otherData": dict(self.meta)}

    def save_chrome(self, path: str) -> None:
        """Write the Chrome-trace JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome(), fh)


def merge(traces: Iterable[Trace], kind: str = "merged") -> Trace:
    """Concatenate several traces onto one timeline (tracks prefixed by
    each trace's kind when they collide)."""
    spans: List[Span] = []
    seen_tracks: Dict[str, str] = {}
    meta: Dict[str, Any] = {}
    for i, t in enumerate(traces):
        for s in t.spans:
            track = s.track
            owner = seen_tracks.setdefault(track, t.kind)
            if owner != t.kind:
                track = f"{t.kind}:{track}"
            spans.append(s._replace(track=track))
        meta[f"part{i}"] = t.kind
    spans.sort(key=span_sort_key)
    return Trace(kind=kind, meta=meta, spans=tuple(spans))
