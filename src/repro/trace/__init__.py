"""Trace capture, critical-path attribution, and what-if replay.

The timeline layer of the stack: the performance simulator
(:mod:`repro.sim`), the serve DES (:mod:`repro.serve`), and the fleet
engine (:mod:`repro.fleet`) accept an optional
:class:`TraceRecorder` and emit per-segment / per-request
queue/batch/compute/NoC/link/reconfiguration spans — zero overhead
when off, Chrome-trace/Perfetto-loadable when on, digest-pinned either
way.  On top of a recording:

* :func:`critical_path` / :func:`attribute` — what dominated an
  inference or a request's latency (compute vs. NoC vs. link vs.
  reconfiguration vs. queueing), plus per-tenant / per-replica rollups;
* :func:`replay` — re-price the recording under mutated parameters
  (link bandwidth/latency, ±chips, batching timeout, compute speed)
  *without* re-running the DES; identity replay is bit-identical, link
  mutations of shard traces are exact, and the sweep prefilter
  (``repro sweep --prefilter replay``) rides that exactness.

>>> from repro import isaac_baseline, lenet, CIMMLC
>>> from repro.trace import record_performance, critical_path
>>> result = CIMMLC(isaac_baseline()).compile(lenet())
>>> report, trace = record_performance(isaac_baseline(),
...                                    result.schedule)
>>> critical_path(trace).total == report.total_cycles
True
"""

from .analysis import (
    CriticalPath,
    attribute,
    critical_path,
    replica_rollup,
    request_latencies,
    request_path,
    share_attribution,
    tenant_rollup,
)
from .capture import (
    channel_busy,
    emit_batch_spans,
    emit_shard,
    emit_sim,
    record_fleet,
    record_performance,
    record_serve,
    record_shard,
    shard_model_from_plan,
    shard_model_from_summary,
    shard_model_from_trace,
    shard_totals,
    sim_model_from_report,
    sim_model_from_trace,
    trace_from_summary,
)
from .recorder import TraceRecorder
from .replay import Mutation, ReplayResult, parse_mutation, replay
from .span import CATEGORIES, Span, Trace, merge

__all__ = [
    "CATEGORIES",
    "CriticalPath",
    "Mutation",
    "ReplayResult",
    "Span",
    "Trace",
    "TraceRecorder",
    "attribute",
    "channel_busy",
    "critical_path",
    "emit_batch_spans",
    "emit_shard",
    "emit_sim",
    "merge",
    "parse_mutation",
    "record_fleet",
    "record_performance",
    "record_serve",
    "record_shard",
    "replay",
    "replica_rollup",
    "request_latencies",
    "request_path",
    "share_attribution",
    "shard_model_from_plan",
    "shard_model_from_summary",
    "shard_model_from_trace",
    "shard_totals",
    "sim_model_from_report",
    "sim_model_from_trace",
    "tenant_rollup",
    "trace_from_summary",
]
