"""Critical-path extraction and bottleneck attribution over traces.

The span DAG of every trace kind reduces to a *critical path*: the
chain of intervals whose durations sum to the end-to-end metric
(``total_cycles`` for sim/shard pipelines, front-end latency for a
served request).  Attribution generalizes the explore layer's
bottleneck machinery (:func:`repro.explore.pareto.attribute_bottleneck`
now delegates to :func:`share_attribution` here) from three fixed
causes to the full category set: compute, NoC, inter-chip link,
reconfiguration, and queueing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .span import Span, Trace


def share_attribution(magnitudes: Mapping[str, float], total: float,
                      caps: Optional[Mapping[str, float]] = None
                      ) -> Dict[str, Any]:
    """Shares of ``total`` per cause, plus the dominant cause.

    ``caps`` bounds overlapped causes (e.g. NoC traffic hides under the
    compute window, so its share is capped at compute's) — the share
    then reports how much of the window the resource is busy, not an
    additive term.  Dominance is judged on raw magnitudes (ties break
    toward the first key in mapping order).
    """
    denom = total or 1.0
    caps = caps or {}
    shares = {
        k: (min(v, caps[k]) if k in caps else v) / denom
        for k, v in magnitudes.items()
    }
    dominant = max(magnitudes, key=magnitudes.get) if magnitudes else ""
    return {"shares": shares, "dominant": dominant}


@dataclass(frozen=True)
class CriticalPath:
    """One extracted critical path: its spans, their sum, and the
    per-category breakdown of that sum."""

    spans: Tuple[Span, ...]
    total: float
    by_category: Dict[str, float]

    def describe(self) -> str:
        """Readable one-line-per-span rendering."""
        lines = [f"critical path: {self.total:,.1f} cycles"]
        for cat, cycles in self.by_category.items():
            lines.append(f"  {cat}: {cycles:,.1f}")
        for s in self.spans:
            lines.append(f"  [{s.cat:>15}] {s.name:<24} "
                         f"@{s.begin:,.1f} +{s.dur:,.1f} ({s.track})")
        return "\n".join(lines)


def _path(spans: List[Span]) -> CriticalPath:
    spans.sort(key=lambda s: (s.begin, s.track, s.name))
    by_cat: Dict[str, float] = {}
    for s in spans:
        by_cat[s.cat] = by_cat.get(s.cat, 0.0) + s.dur
    # Per-category partial sums, then across categories — the exact
    # accumulation shape the reports use (compute total + reconf/link
    # total), so sim/shard path totals match ``total_cycles`` bit for
    # bit instead of drifting by association order.
    total = sum(by_cat.values())
    return CriticalPath(spans=tuple(spans), total=total,
                        by_category=by_cat)


def request_latencies(trace: Trace) -> Dict[int, float]:
    """Front-end latency per request index of a serve/fleet trace
    (batch completion plus the response hop, minus trace arrival —
    matching the engines' measurement point)."""
    hop_out = trace.meta.get("hop_out", 0.0)
    lats: Dict[int, float] = {}
    for s in trace.spans:
        if s.cat != "batch":
            continue
        complete = s.arg("dispatch") + s.arg("switch") + s.arg("service")
        for idx, arrival in zip(s.arg("members"), s.arg("arrivals")):
            lats[idx] = complete + hop_out - arrival
    return lats


def request_path(trace: Trace, index: int) -> CriticalPath:
    """Critical path of one served request: front-end hop (fleet),
    queue wait, tenant switch (when its batch paid one), batch service,
    response hop.  The span durations sum to the request's end-to-end
    latency (pinned by ``tests/test_trace.py``)."""
    spans: List[Span] = []
    batch: Optional[Span] = None
    for s in trace.spans:
        if s.cat == "batch" and index in s.arg("members"):
            batch = s
        elif s.cat in ("queue", "link") and s.arg("index") == index:
            spans.append(s)
    if batch is None:
        raise KeyError(f"request {index} has no batch in this trace")
    spans.append(batch)
    for s in trace.spans:
        if s.cat == "reconfiguration" and s.track == batch.track \
                and s.begin == batch.arg("dispatch") and s.dur > 0:
            spans.append(s)
            break
    return _path(spans)


def critical_path(trace: Trace,
                  request: Optional[int] = None) -> CriticalPath:
    """The trace's critical path.

    * ``sim``: the chip track's reconfiguration+compute chain (sums to
      ``total_cycles``).
    * ``shard``: stage computes plus consecutive-stage link transfers
      (skip-connection transfers overlap the chain; sums to
      ``total_cycles``).
    * ``serve`` / ``fleet``: the path of ``request`` (default: the
      slowest request; sums to its front-end latency).
    """
    if trace.kind == "sim":
        return _path([s for s in trace.spans if s.track == "chip"])
    if trace.kind == "shard":
        return _path([
            s for s in trace.spans
            if (s.cat == "compute" and s.track.startswith("chip:"))
            or (s.cat == "link" and s.arg("chain"))])
    if request is None:
        lats = request_latencies(trace)
        if not lats:
            return CriticalPath(spans=(), total=0.0, by_category={})
        request = max(lats, key=lambda i: (lats[i], i))
    return request_path(trace, request)


def attribute(trace: Trace) -> Dict[str, Any]:
    """Bottleneck attribution of a whole trace.

    sim/shard traces attribute ``total_cycles`` (NoC capped at compute
    — it overlaps); serving traces attribute the total request-cycle
    budget (queue + service + switches + hops) across categories.
    Returns ``{"shares", "dominant", "magnitudes", "total"}``.
    """
    meta = trace.meta
    if trace.kind == "sim":
        magnitudes = {
            "compute": meta.get("compute_cycles", 0.0),
            "reconfiguration": meta.get("reconfiguration_cycles", 0.0),
            "noc": meta.get("noc_cycles", 0.0),
        }
        total = meta.get("total_cycles", 0.0)
        caps = {"noc": magnitudes["compute"]}
    elif trace.kind == "shard":
        compute = link = 0.0
        for s in trace.spans:
            if s.cat == "compute" and s.track.startswith("chip:"):
                compute += s.dur
            elif s.cat == "link" and s.arg("chain"):
                link += s.dur
        magnitudes = {"compute": compute, "link": link}
        total = meta.get("total_cycles", compute + link)
        caps = None
    else:
        magnitudes = {"queue": 0.0, "compute": 0.0,
                      "reconfiguration": 0.0, "link": 0.0}
        for s in trace.spans:
            cat = "compute" if s.cat == "batch" else s.cat
            if cat == "fault":
                # Injected-fault stalls appear as an axis only on
                # degraded recordings (fault-free attributions are
                # unchanged, bit for bit).
                magnitudes["fault"] = magnitudes.get("fault", 0.0) + s.dur
            elif cat in magnitudes:
                magnitudes[cat] += s.dur
        total = sum(magnitudes.values())
        caps = None
    out = share_attribution(magnitudes, total, caps)
    out["magnitudes"] = magnitudes
    out["total"] = total
    out["kind"] = trace.kind
    return out


def tenant_rollup(trace: Trace) -> Dict[str, Dict[str, float]]:
    """Per-tenant aggregates of a serving trace: requests, batches,
    queue cycles, service cycles, switch cycles, mean/max latency."""
    lats = request_latencies(trace)
    out: Dict[str, Dict[str, float]] = {}

    def row(tenant: str) -> Dict[str, float]:
        return out.setdefault(tenant, {
            "requests": 0, "batches": 0, "queue_cycles": 0.0,
            "service_cycles": 0.0, "switch_cycles": 0.0,
            "mean_latency": 0.0, "max_latency": 0.0})

    per_tenant_lats: Dict[str, List[float]] = {}
    for s in trace.spans:
        tenant = s.arg("tenant")
        if tenant is None:
            continue
        r = row(tenant)
        if s.cat == "queue":
            r["requests"] += 1
            r["queue_cycles"] += s.dur
            per_tenant_lats.setdefault(tenant, []).append(
                lats.get(s.arg("index"), 0.0))
        elif s.cat == "batch":
            r["batches"] += 1
            r["service_cycles"] += s.dur
        elif s.cat == "reconfiguration":
            r["switch_cycles"] += s.dur
    for tenant, values in per_tenant_lats.items():
        if values:
            out[tenant]["mean_latency"] = sum(values) / len(values)
            out[tenant]["max_latency"] = max(values)
    return out


def replica_rollup(trace: Trace) -> Dict[int, Dict[str, float]]:
    """Per-replica aggregates of a serving trace: busy/switch/queue
    cycles and completed requests (single-system traces roll up under
    replica 0)."""
    out: Dict[int, Dict[str, float]] = {}

    def rid_of(track: str) -> int:
        if track.startswith("replica:"):
            return int(track.split(":", 1)[1].split("/", 1)[0])
        return 0

    def row(rid: int) -> Dict[str, float]:
        return out.setdefault(rid, {
            "completed": 0, "batches": 0, "busy_cycles": 0.0,
            "switch_cycles": 0.0, "queue_cycles": 0.0,
            "link_cycles": 0.0})

    for s in trace.spans:
        r = row(rid_of(s.track))
        if s.cat == "batch":
            r["batches"] += 1
            r["completed"] += s.arg("n")
            r["busy_cycles"] += s.dur
        elif s.cat == "reconfiguration":
            r["switch_cycles"] += s.dur
            r["busy_cycles"] += s.dur
        elif s.cat == "queue":
            r["queue_cycles"] += s.dur
        elif s.cat == "link":
            r["link_cycles"] += s.dur
    return out
