"""CIM-MLC: a multi-level compilation stack for computing-in-memory
accelerators (reproduction of Qu et al., ASPLOS 2024).

Quickstart
----------
>>> from repro import CIMMLC, isaac_baseline, resnet18
>>> result = CIMMLC(isaac_baseline()).compile(resnet18())
>>> result.total_cycles > 0
True

Packages
--------
``repro.graph``       ONNX-like computation-graph IR.
``repro.models``      Benchmark network zoo (VGG / ResNet / ViT / toys).
``repro.arch``        Hardware abstraction: tiers, modes, NoCs, presets.
``repro.mops``        Meta-operator sets, flows, BNF codegen, validation.
``repro.sched``       Multi-level scheduler (CG / MVM / VVM) + baselines.
``repro.sim``         Functional (value-exact) and performance simulators.
``repro.explore``     Design-space sweeps: parallel runner, result cache,
                      Pareto/bottleneck analysis.
``repro.serve``       Multi-tenant serving simulator: traces, partitioning,
                      dynamic batching, SLO analysis.
``repro.fleet``       Datacenter-scale serving: replicated fleets, request
                      routing, admission control, autoscaling.
``repro.scale``       Multi-chip sharding: layer partitioning, inter-chip
                      links, pipelined multi-chip estimation.
``repro.trace``       Trace capture across every engine, critical-path
                      attribution, what-if replay without re-simulation.
``repro.faults``      Fault injection: dead cores/crossbars, drift
                      rewrites, chip death, degraded-hardware planning.
``repro.experiments`` One driver per paper table/figure.
"""

from .arch import (
    ChipLink,
    CIMArchitecture,
    CellType,
    ChipTier,
    ComputingMode,
    CoreTier,
    CrossbarTier,
    MultiChipSystem,
    functional_testbed,
    isaac_baseline,
    jain2021,
    jia2021,
    puma,
    table2_example,
)
from .graph import Graph, GraphBuilder, Node, TensorSpec
from .models import (
    conv_relu_example,
    lenet,
    mlp,
    resnet,
    resnet18,
    resnet34,
    resnet50,
    resnet101,
    tiny_conv,
    vgg,
    vgg7,
    vgg16,
    vit,
    vit_base,
)
from .sched import (
    CIMMLC,
    CompilationResult,
    CompilerOptions,
    Schedule,
    no_optimization,
    poly_schedule,
)
from .sim import MultiChipReport, PerformanceReport, PerformanceSimulator
from .explore import SweepPoint, SweepResult, SweepRunner, SweepSpace
from .perf import CompileCache, fastpath, fastpath_enabled
from .scale import ShardPlan, shard
from .faults import FaultModel, plan_degraded, spread_mask

__version__ = "1.9.0"

__all__ = [
    "CIMArchitecture",
    "CIMMLC",
    "CellType",
    "ChipLink",
    "ChipTier",
    "CompilationResult",
    "CompileCache",
    "CompilerOptions",
    "ComputingMode",
    "CoreTier",
    "CrossbarTier",
    "FaultModel",
    "Graph",
    "GraphBuilder",
    "MultiChipReport",
    "MultiChipSystem",
    "Node",
    "PerformanceReport",
    "PerformanceSimulator",
    "Schedule",
    "ShardPlan",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
    "SweepSpace",
    "TensorSpec",
    "conv_relu_example",
    "fastpath",
    "fastpath_enabled",
    "functional_testbed",
    "isaac_baseline",
    "jain2021",
    "jia2021",
    "lenet",
    "mlp",
    "no_optimization",
    "plan_degraded",
    "poly_schedule",
    "puma",
    "resnet",
    "resnet101",
    "resnet18",
    "resnet34",
    "resnet50",
    "shard",
    "spread_mask",
    "table2_example",
    "tiny_conv",
    "vgg",
    "vgg16",
    "vgg7",
    "vit",
    "vit_base",
]
