"""Multi-level scheduling: the paper's core contribution (Section 3.3)."""

from .baselines import (
    no_optimization,
    poly_schedule,
    puma_schedule,
    vendor_schedule,
)
from .cg import (
    duplicate_min_bottleneck,
    duplicate_min_total,
    pipelined_latency,
    schedule_cg,
    segment_graph,
    sequential_latency,
)
from .compiler import CIMMLC, CompilationResult, CompilerOptions, capability_matrix
from .costs import CostModel, OpProfile, chip_fits, reconfiguration_cycles
from .mvm import refine_duplication, schedule_mvm
from .placement import (
    annotate_placement,
    place_greedy,
    place_linear,
    placement_cost,
)
from .schedule import OpDecision, Schedule
from .vvm import schedule_vvm, wave_reduction_for

__all__ = [
    "CIMMLC",
    "CompilationResult",
    "CompilerOptions",
    "CostModel",
    "OpDecision",
    "OpProfile",
    "Schedule",
    "annotate_placement",
    "capability_matrix",
    "chip_fits",
    "place_greedy",
    "place_linear",
    "placement_cost",
    "duplicate_min_bottleneck",
    "duplicate_min_total",
    "no_optimization",
    "pipelined_latency",
    "poly_schedule",
    "puma_schedule",
    "reconfiguration_cycles",
    "refine_duplication",
    "schedule_cg",
    "schedule_mvm",
    "schedule_vvm",
    "segment_graph",
    "sequential_latency",
    "vendor_schedule",
    "wave_reduction_for",
]
