"""VVM-grained optimization (Section 3.3.4, Fig. 14).

Applies only to WLM chips (partial-row activation).  When
``parallel_row < rows_used`` an MVM takes several sequential row waves — the
Fig. 14 example needs two cycles for output A because only half the rows may
fire.  The **data remapping strategy** spreads the row chunks that feed one
accumulation across crossbars that would otherwise sit idle, so chunks fire
concurrently and the wave count divides by the replication factor.

Crossbar budget for the remap comes from capacity the MVM level could not
turn into whole extra replicas: leftover crossbars in the cores assigned to
the operator.  Spreading rows of each replica over ``w`` column-strips costs
``(w - 1) * v_cols * slices`` extra crossbars per replica.
"""

from __future__ import annotations

import math
from typing import Dict

from ..arch import CIMArchitecture
from ..errors import ModeError
from .schedule import OpDecision, Schedule


def remap_plan(decision: OpDecision, arch: CIMArchitecture) -> tuple:
    """Jointly choose (duplication, wave reduction) for one operator.

    Replication and row spreading compete for the same crossbar budget
    (spreading each replica's rows over ``w`` concurrent chunks costs
    ``(w-1) * v_cols * slices`` extra crossbars per replica), but they divide
    latency differently because of integer rounding: ``ceil(n_mvms / D) *
    passes * ceil(waves / w)``.  The search is exhaustive over ``w`` (waves
    is small) with the best affordable ``D`` for each ``w``.
    """
    p = decision.profile
    if not p.is_cim or p.vxb is None:
        return decision.dup, 1
    base_dup, base_w = decision.dup, 1
    if p.row_waves <= 1:
        return base_dup, base_w
    cores_assigned = p.cores_per_replica * decision.dup_cg
    total_xbs = cores_assigned * arch.core.xb_number
    strip = p.vxb.v_cols * p.vxb.slices_per_xb

    def latency(dup: int, w: int) -> float:
        waves = math.ceil(p.row_waves / w)
        mvm = p.input_passes * waves
        return math.ceil(p.num_mvms / dup) * mvm

    best = (latency(base_dup, base_w), base_dup, base_w)
    for w in range(1, p.row_waves + 1):
        replica_xbs = p.n_xb + (w - 1) * strip
        dup = min(p.max_useful_dup, total_xbs // replica_xbs)
        if dup < 1:
            break
        cand = (latency(dup, w), dup, w)
        if cand[0] < best[0]:
            best = cand
    _, dup, w = best
    # Never regress below the MVM decision (the remap must be a refinement).
    if latency(dup, w) > latency(base_dup, base_w):
        return base_dup, base_w
    return dup, w


def wave_reduction_for(decision: OpDecision, arch: CIMArchitecture) -> int:
    """Wave-division factor of the joint remap plan (back-compat helper)."""
    return remap_plan(decision, arch)[1]


def seq_remap_waves(decision: OpDecision, arch: CIMArchitecture):
    """VVM remap of a time-multiplexed operator (one replica exceeds the
    chip): total waves per window, or ``None`` when no improvement.

    The naive packing loads full-height tiles (``row_waves`` waves per tile,
    ``seq_passes`` resident generations): ``seq_passes * row_waves`` waves
    per window in total.  The remap re-tiles the matrix into
    ``parallel_row``-high strips so every resident strip completes in one
    wave; the window then takes ``ceil(total_strips / resident_xbs)`` waves.
    The two differ by tile-rounding and partial-tile effects — exactly the
    slack the remap recovers (cf. Fig. 22(d): small ``parallel_row`` leaves
    more slack).
    """
    p = decision.profile
    if not p.is_cim or p.vxb is None or p.seq_passes <= 1:
        return None
    r_total = p.vxb.matrix[0]
    pr = arch.xb.effective_parallel_row
    strips = math.ceil(r_total / pr) * p.vxb.v_cols * p.vxb.slices_per_xb
    resident = p.cores_per_replica * arch.core.xb_number
    remap = math.ceil(strips / resident)
    naive = p.seq_passes * p.row_waves
    return remap if remap < naive else None


def schedule_vvm(mvm_schedule: Schedule) -> Schedule:
    """Apply VVM-grained data remapping on top of an MVM schedule."""
    arch = mvm_schedule.arch
    if not arch.supports("VVM"):
        raise ModeError(
            f"{arch.name} is {arch.mode}; VVM-grained optimization needs WLM"
        )
    decisions: Dict[str, OpDecision] = {}
    for name, d in mvm_schedule.decisions.items():
        dup, reduction = remap_plan(d, arch)
        window_waves = seq_remap_waves(d, arch)
        decisions[name] = OpDecision(
            profile=d.profile,
            segment=d.segment,
            dup_cg=d.dup_cg,
            dup_mvm=dup if d.profile.is_cim else d.dup_mvm,
            wave_reduction=reduction,
            mvm_pipelined=d.mvm_pipelined,
            window_waves=window_waves,
        )
        node = mvm_schedule.graph.node(name)
        node.annotations["wave_reduction"] = reduction
        if window_waves is not None:
            node.annotations["window_waves"] = window_waves
    return Schedule(
        mvm_schedule.graph, arch, decisions,
        [list(s) for s in mvm_schedule.segments],
        pipelined=mvm_schedule.pipelined,
        levels=tuple(mvm_schedule.levels) + ("VVM",),
    )
