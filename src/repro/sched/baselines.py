"""Baseline schedulers the paper compares against (Section 4.2).

* :func:`no_optimization` — sequential layer-by-layer execution, one replica
  per operator, whole-VXB activation.  This is also the behaviour of each
  accelerator's own hand mapping as described in the paper: Jia et al. [29]
  and Jain et al. [27] deploy networks layer-by-layer at their native
  granularity without cross-layer pipelining or duplication.
* :func:`vendor_schedule` — alias of :func:`no_optimization` with the
  vendor's name attached (used in the Fig. 20 comparisons).
* :func:`puma_schedule` — PUMA's compiler supports graph-level optimization
  (inter-layer pipeline + duplication) but activates every crossbar of a
  VXB simultaneously ("we usually wait until all crossbars receive their
  inputs before computing in the traditional scheduling").  Equivalent to
  CIM-MLC truncated at CG with no MVM staggering.
* :func:`poly_schedule` — Poly-Schedule [22]: greedy (latency-proportional)
  operator duplication plus a batch pipeline.  The batch pipeline raises
  throughput across images but not single-image latency, and there is no
  intra-image MVM/VVM-level scheduling — precisely the gap CIM-MLC exploits
  (Fig. 20(d)).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional

from ..arch import CIMArchitecture
from ..graph import Graph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..perf import CompileCache
from .cg import segment_graph
from .compiler import CIMMLC, CompilationResult, CompilerOptions
from .costs import CostModel
from .schedule import OpDecision, Schedule


def no_optimization(graph: Graph, arch: CIMArchitecture,
                    cache: Optional["CompileCache"] = None
                    ) -> CompilationResult:
    """Sequential, duplication-free execution (the Fig. 20(d) "w/o
    optimization" bar).  ``cache`` shares per-op profiles with the
    optimized compilations of the same (graph, architecture)."""
    options = CompilerOptions(max_level="CG", pipeline=False, duplicate=False,
                              mvm_stagger=False, mvm_refine=False)
    return CIMMLC(arch, options, cache=cache).compile(graph)


def vendor_schedule(graph: Graph, arch: CIMArchitecture) -> CompilationResult:
    """The accelerator's own hand mapping (layer-by-layer, Section 4.2)."""
    return no_optimization(graph, arch)


def puma_schedule(graph: Graph, arch: CIMArchitecture) -> CompilationResult:
    """PUMA-style compilation: graph-level pipeline + duplication, whole-VXB
    activation (no staggering), no crossbar-granularity refinement."""
    options = CompilerOptions(max_level="CG", pipeline=True, duplicate=True,
                              mvm_stagger=False, mvm_refine=False)
    return CIMMLC(arch, options).compile(graph)


def poly_schedule(graph: Graph, arch: CIMArchitecture) -> CompilationResult:
    """Poly-Schedule-style compilation [22].

    Duplication is allocated greedily, proportional to each operator's share
    of total latency (rounded down — the rounding slack CIM-MLC's DP
    recovers), and the only pipeline is across batch inputs, which leaves
    single-image latency sequential.
    """
    cost_model = CostModel(arch)
    profiles = cost_model.profiles(graph)
    segments = segment_graph(graph, profiles, arch, pipelined=False,
                             duplicate=False)
    decisions: Dict[str, OpDecision] = {}
    budget = arch.chip.core_number
    for seg_idx, seg in enumerate(segments):
        cim = [profiles[n] for n in seg if profiles[n].is_cim]
        total_latency = sum(p.latency(1) for p in cim) or 1.0
        dups: Dict[str, int] = {}
        used = 0
        for p in cim:
            share = p.latency(1) / total_latency
            target_cores = math.floor(budget * share)
            dup = max(1, target_cores // p.cores_per_replica)
            dup = min(dup, p.max_useful_dup)
            dups[p.name] = dup
            used += dup * p.cores_per_replica
        # Greedy overflow repair: shrink the biggest consumers first.
        while used > budget:
            victim = max(
                (p for p in cim if dups[p.name] > 1),
                key=lambda p: dups[p.name] * p.cores_per_replica,
                default=None,
            )
            if victim is None:
                break
            dups[victim.name] -= 1
            used -= victim.cores_per_replica
        for name in seg:
            decisions[name] = OpDecision(
                profiles[name], segment=seg_idx,
                dup_cg=dups.get(name, 1),
            )
    schedule = Schedule(graph, arch, decisions, segments,
                        pipelined=False, levels=("poly-greedy",))
    schedule.validate_resources()
    from ..sim.performance import PerformanceSimulator

    report = PerformanceSimulator(arch).run(schedule)
    return CompilationResult(schedule=schedule, report=report)
