"""The CIM-MLC compiler facade (Fig. 3 workflow).

:class:`CIMMLC` wires the whole stack together: it reads the architecture's
computing-mode abstraction, runs CG-grained optimization always, adds
MVM-grained optimization for XBM/WLM chips and VVM-grained optimization for
WLM chips, then evaluates the result on the performance simulator.  The
optimization levels can be truncated (``max_level``) or feature-gated
(``pipeline`` / ``duplicate``) to reproduce the paper's ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

from ..arch import CIMArchitecture, ComputingMode
from ..errors import ScheduleError
from ..graph import Graph
from .cg import schedule_cg
from .costs import CostModel
from .mvm import schedule_mvm
from .schedule import Schedule
from .vvm import schedule_vvm

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..perf import CompileCache

_LEVEL_ORDER = ("CG", "MVM", "VVM")


@dataclass(frozen=True)
class CompilerOptions:
    """Feature gates for ablation studies (Figs. 20-22).

    ``max_level``: truncate optimization at "CG", "MVM", or "VVM" (``None``
    = everything the mode supports).  ``pipeline``/``duplicate`` gate the two
    CG techniques (CG-Pipeline vs CG-Duplication vs CG-P&D in Fig. 21(a)).
    ``mvm_stagger``/``mvm_refine`` gate the two MVM techniques.
    """

    max_level: Optional[str] = None
    pipeline: bool = True
    duplicate: bool = True
    mvm_stagger: bool = True
    mvm_refine: bool = True

    def __post_init__(self) -> None:
        if self.max_level is not None and self.max_level not in _LEVEL_ORDER:
            raise ScheduleError(
                f"max_level must be one of {_LEVEL_ORDER}, got "
                f"{self.max_level!r}"
            )


@dataclass
class CompilationResult:
    """Schedule plus the performance report of one compilation."""

    schedule: Schedule
    report: "PerformanceReport"  # noqa: F821 - imported lazily below

    @property
    def total_cycles(self) -> float:
        return self.report.total_cycles

    @property
    def peak_power(self) -> float:
        return self.report.power.peak_power


class CIMMLC:
    """The multi-level compiler.

    Example
    -------
    >>> from repro.arch import isaac_baseline
    >>> from repro.models import resnet18
    >>> result = CIMMLC(isaac_baseline()).compile(resnet18())
    >>> result.total_cycles > 0
    True
    """

    def __init__(self, arch: CIMArchitecture,
                 options: Optional[CompilerOptions] = None,
                 cache: Optional["CompileCache"] = None) -> None:
        self.arch = arch
        self.options = options or CompilerOptions()
        self.cache = cache
        self.cost_model = CostModel(arch, cache=cache)

    # ------------------------------------------------------------------

    def levels(self) -> Tuple[str, ...]:
        """Optimization levels this compilation will run (mode-gated and
        possibly truncated by options)."""
        supported = self.arch.mode.optimization_levels
        if self.options.max_level is None:
            return tuple(supported)
        cut = _LEVEL_ORDER.index(self.options.max_level) + 1
        return tuple(lv for lv in supported if _LEVEL_ORDER.index(lv) < cut)

    def schedule(self, graph: Graph) -> Schedule:
        """Run the multi-level scheduler only (no simulation)."""
        opts = self.options
        levels = self.levels()
        sched = schedule_cg(
            graph, self.arch,
            pipelined=opts.pipeline,
            duplicate=opts.duplicate,
            cost_model=self.cost_model,
            cache=self.cache,
        )
        if "MVM" in levels:
            sched = schedule_mvm(sched, stagger=opts.mvm_stagger,
                                 refine=opts.mvm_refine)
        if "VVM" in levels:
            sched = schedule_vvm(sched)
        return sched

    def compile(self, graph: Graph) -> CompilationResult:
        """Schedule ``graph`` and evaluate it on the performance simulator."""
        from ..sim.performance import PerformanceSimulator

        sched = self.schedule(graph)
        report = PerformanceSimulator(self.arch).run(sched)
        return CompilationResult(schedule=sched, report=report)


def capability_matrix() -> dict:
    """The Table 1 generality claims of this implementation, as data.

    Returned structure mirrors the paper's comparison columns: supported
    device types, supported programming interfaces, and optimization
    granularity.
    """
    from ..arch import CellType

    return {
        "devices": sorted(ct.value for ct in CellType),
        "programming_interfaces": ["VVM", "MVM", "DNN Operators"],
        "optimization_granularity": ["VVM", "MVM", "DNN Operators"],
        "modes": [m.value for m in ComputingMode],
    }
