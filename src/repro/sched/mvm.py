"""MVM-grained optimization (Section 3.3.3, Fig. 12).

Applies only when the architecture exposes crossbars (XBM or WLM).  Two
techniques:

* **Duplication refinement** (Eq. 1): the CG level allocates whole cores,
  which strands crossbars whenever a replica's VXB does not divide the core
  evenly.  The refinement re-counts duplication at crossbar granularity::

      D' = floor(num_cores(op) * dup_cg * xbs_per_core / xbs_per_replica)

  recovering the stranded capacity (``Core_VXB / num_VXB`` in the paper's
  notation equals ``xb_number / n_xb`` here).

* **MVM-grained computing pipeline**: instead of waiting for every crossbar
  of a VXB to receive its input, each crossbar activates as soon as its
  input chunk arrives (Fig. 12(c)/(d)).  Latency is unchanged in steady
  state but the number of *simultaneously active* crossbars drops from the
  whole VXB to roughly one row-tile wave, cutting peak power (evaluated by
  :mod:`repro.sim.power`), and each pipeline stage moves half-size inputs,
  easing NoC pressure.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..arch import CIMArchitecture
from ..errors import ModeError
from ..graph import Graph
from .costs import CostModel
from .schedule import OpDecision, Schedule


def refine_duplication(decision: OpDecision, arch: CIMArchitecture) -> int:
    """Eq. 1: duplication at crossbar granularity for one operator."""
    p = decision.profile
    if not p.is_cim or p.n_xb == 0:
        return decision.dup_cg
    cores_assigned = p.cores_per_replica * decision.dup_cg
    refined = (cores_assigned * arch.core.xb_number) // p.n_xb
    return max(decision.dup_cg, min(refined, p.max_useful_dup))


def schedule_mvm(cg_schedule: Schedule,
                 stagger: bool = True,
                 refine: bool = True) -> Schedule:
    """Apply MVM-grained optimization on top of a CG schedule.

    Parameters
    ----------
    cg_schedule:
        Output of :func:`repro.sched.cg.schedule_cg`.
    stagger:
        Enable the staggered activation pipeline (peak-power optimization).
    refine:
        Enable Eq. 1 duplication refinement.
    """
    arch = cg_schedule.arch
    if not arch.supports("MVM"):
        raise ModeError(
            f"{arch.name} is {arch.mode}; MVM-grained optimization needs "
            f"XBM or WLM"
        )
    decisions: Dict[str, OpDecision] = {}
    for name, d in cg_schedule.decisions.items():
        dup_mvm = refine_duplication(d, arch) if refine else d.dup_cg
        decisions[name] = OpDecision(
            profile=d.profile,
            segment=d.segment,
            dup_cg=d.dup_cg,
            dup_mvm=dup_mvm,
            wave_reduction=d.wave_reduction,
            mvm_pipelined=stagger and d.profile.is_cim,
        )
        node = cg_schedule.graph.node(name)
        node.annotations["duplication_mvm"] = dup_mvm
    return Schedule(
        cg_schedule.graph, arch, decisions,
        [list(s) for s in cg_schedule.segments],
        pipelined=cg_schedule.pipelined,
        levels=tuple(cg_schedule.levels) + ("MVM",),
    )
