"""Lowering: schedules -> executable meta-operator flows (Fig. 16).

This is the compiler backend.  Given a :class:`Schedule` and concrete
integer weights it emits the meta-operator program for the architecture's
computing mode:

* **CM**  — one ``cim.readcore`` per operator replica (replicas partition
  the output feature map, Section 3.4 "CG-Grained"), DCOM ops for digital
  nodes.
* **XBM** — ``cim.writexb`` initialization of every crossbar tile, then per
  sliding window: ``mov`` staging, ``parallel { cim.readxb ... }``,
  ``shiftadd`` slice combination, vertical-tile accumulation, result
  write-back.
* **WLM** — like XBM but rows load with ``cim.writerow`` and activate with
  ``cim.readrow`` in ``parallel_row``-sized waves; when the schedule's VVM
  remap applies, row chunks spread across spare crossbars and fire
  concurrently (Fig. 14(c)).

The output :class:`FlowProgram` executes on
:class:`repro.sim.functional.CIMMachine` and must reproduce the reference
executor bit-exactly — that property is the functional-verification test.

Flows enumerate every sliding window, so lowering targets the small
networks used for functional verification (the performance simulator
handles ImageNet-scale models analytically).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..arch import CIMArchitecture, ComputingMode
from ..errors import AllocationError, CodegenError
from ..graph import Graph, Node
from ..graph.ops import _pair
from ..mops import (
    DigitalOp,
    MetaOperatorFlow,
    Mov,
    ReadCore,
    ReadRow,
    ReadXb,
    WriteRow,
    WriteXb,
    parallel,
)
from ..quant import encode_matrix
from ..sim.functional import CoreImage, FlowProgram
from ..sim.memory import BumpAllocator, MachineMemory
from .schedule import Schedule

#: Digital graph ops lowered to a single DCOM function.
_SIMPLE_DCOM = {"Relu": "relu", "Add": "add"}


class Lowering:
    """Lowers one schedule to a :class:`FlowProgram`."""

    def __init__(self, schedule: Schedule,
                 weights: Dict[str, np.ndarray],
                 l0_size: int = 1 << 24) -> None:
        self.schedule = schedule
        self.graph: Graph = schedule.graph
        self.arch: CIMArchitecture = schedule.arch
        self.weights = weights
        self.mem = MachineMemory(self.arch, l0_size=1)  # layout math only
        self.alloc = BumpAllocator(l0_size)
        self.flow = MetaOperatorFlow(
            f"{self.graph.name}@{self.arch.name}")
        self.offsets: Dict[str, int] = {}
        self.core_images: Dict[int, CoreImage] = {}
        self._next_xb = 0
        self._next_core = 0
        self._const_id = 0

    # ------------------------------------------------------------------

    def lower(self) -> FlowProgram:
        """Produce the complete program."""
        if len(self.schedule.segments) != 1:
            raise CodegenError(
                "lowering supports single-segment schedules (small "
                "functional-verification networks)"
            )
        for name in self.graph.inputs:
            self._place(name)
        mode = self.arch.mode
        if mode is not ComputingMode.CM:
            # Reserve the minimal (dup=1, full-height tiles) crossbar need
            # of every CIM op so early ops cannot starve later ones of
            # storage when granting duplication or remap chunking.
            self._reserved = 0
            self._min_tiles = {}
            for node in self.graph.topological():
                if self.graph.is_cim_supported(node):
                    matrix = self.graph.weight_matrix(node)
                    slices = self.arch.xb.bit_slices(matrix[2])
                    tiles = (len(_tile_bounds(matrix[0], self.arch.xb.rows))
                             * len(_tile_bounds(matrix[1] * slices,
                                                self.arch.xb.cols)))
                    self._min_tiles[node.name] = tiles
                    self._reserved += tiles
            if self._reserved > self.arch.total_crossbars:
                raise AllocationError(
                    f"graph needs {self._reserved} crossbars at minimum; "
                    f"chip has {self.arch.total_crossbars}"
                )
        for node in self.graph.topological():
            if self.graph.is_cim_supported(node):
                if mode is ComputingMode.CM:
                    self._lower_cim_cm(node)
                else:
                    self._lower_cim_xb(node, wlm=(mode is ComputingMode.WLM))
            else:
                self._lower_digital(node)
        return FlowProgram(
            flow=self.flow,
            tensor_offsets=dict(self.offsets),
            core_images=dict(self.core_images),
            meta={"mode": self.arch.mode.value},
        )

    # ------------------------------------------------------------------
    # Placement helpers
    # ------------------------------------------------------------------

    def _place(self, tensor: str) -> int:
        if tensor not in self.offsets:
            spec = self.graph.tensors[tensor]
            self.offsets[tensor] = self.alloc.alloc(spec.numel, tensor)
        return self.offsets[tensor]

    def _scratch(self, length: int, label: str) -> int:
        return self.alloc.alloc(length, label)

    def _const(self, value: np.ndarray, label: str) -> str:
        symbol = f"{label}_{self._const_id}"
        self._const_id += 1
        self.flow.add_constant(symbol, np.asarray(value, dtype=np.float64))
        return symbol

    def _take_crossbars(self, count: int) -> List[int]:
        if self._next_xb + count > self.arch.total_crossbars:
            raise AllocationError(
                f"out of crossbars: need {count}, "
                f"{self.arch.total_crossbars - self._next_xb} left"
            )
        ids = list(range(self._next_xb, self._next_xb + count))
        self._next_xb += count
        return ids

    def _take_core(self) -> int:
        if self._next_core >= self.arch.chip.core_number:
            raise AllocationError("out of cores")
        core = self._next_core
        self._next_core += 1
        return core

    # ------------------------------------------------------------------
    # CM lowering
    # ------------------------------------------------------------------

    def _lower_cim_cm(self, node: Node) -> None:
        decision = self.schedule.decision(node.name)
        dup = decision.dup_cg
        w = np.asarray(self.weights[self._weight_name(node)])
        src = self.offsets[node.inputs[0]]
        dst = self._place(node.outputs[0])
        out_shape = self.graph.output_spec(node).shape
        in_shape = self.graph.tensors[node.inputs[0]].shape
        if node.op_type == "Conv":
            rows_total = out_shape[2]
            row_stride = out_shape[3]  # elements per (channel-interleaved)
        else:
            rows_total = int(np.prod(out_shape[:-1]))
            row_stride = out_shape[-1]
        dup = min(dup, rows_total)
        bounds = _split_range(rows_total, dup)
        ops = []
        for (a, b) in bounds:
            core = self._take_core()
            self.core_images[core] = CoreImage(
                op_type=node.op_type, weights=w, attrs=dict(node.attrs),
                in_shape=tuple(in_shape), out_shape=tuple(out_shape),
                out_rows=(a, b),
            )
            # Every replica targets the canonical tensor base; the core's
            # memory controller scatters its row slice (machine semantics).
            ops.append(ReadCore(
                op_type="conv" if node.op_type == "Conv" else "gemm",
                coreaddr=core, src=src, dst=dst,
                params=(("rows", (a, b)),),
            ))
        self.flow.append(parallel(ops))

    # ------------------------------------------------------------------
    # XBM / WLM lowering
    # ------------------------------------------------------------------

    def _lower_cim_xb(self, node: Node, wlm: bool) -> None:
        decision = self.schedule.decision(node.name)
        arch = self.arch
        xb_rows, xb_cols = arch.xb.xb_size
        matrix = self.graph.weight_matrix(node)
        r_total, c_total, w_bits = matrix
        w = np.asarray(self.weights[self._weight_name(node)])
        flat = (w.reshape(w.shape[0], -1).T if node.op_type == "Conv"
                else w.T)   # (R, C)
        cells = encode_matrix(flat, w_bits, arch.xb.cell_bits)
        slices = arch.xb.bit_slices(w_bits)
        offset_value = 2 ** (w_bits - 1)
        phys_cols = c_total * slices

        dup = min(decision.dup, max(1, self.graph.num_mvms(node)))
        # Row chunking: the WLM remap splits rows at parallel_row
        # granularity (Fig. 14(c)) when enough crossbars remain; otherwise
        # fall back to full-height tiles with serialized waves.
        pr = arch.xb.effective_parallel_row
        # Budget for this op = free crossbars minus the minimum reserved for
        # the ops still to come.
        self._reserved -= self._min_tiles[node.name]
        budget = (self.arch.total_crossbars - self._next_xb
                  - self._reserved)
        chunk_height = xb_rows
        if wlm and decision.wave_reduction > 1 and pr < xb_rows:
            remap_tiles = (len(_tile_bounds(r_total, pr))
                           * len(_tile_bounds(phys_cols, xb_cols)))
            if dup * remap_tiles <= budget:
                chunk_height = pr
        row_bounds = _tile_bounds(r_total, chunk_height)
        col_bounds = _tile_bounds(phys_cols, xb_cols)
        needed = dup * len(row_bounds) * len(col_bounds)
        while dup > 1 and needed > budget:
            dup -= 1
            needed = dup * len(row_bounds) * len(col_bounds)
        if needed > budget + self._reserved + 0:
            raise AllocationError(
                f"{node.name}: needs {needed} crossbars, budget {budget}"
            )

        replicas = []
        for _ in range(dup):
            tile_map: Dict[Tuple[int, int], int] = {}
            xbs = self._take_crossbars(len(row_bounds) * len(col_bounds))
            it = iter(xbs)
            for ri in range(len(row_bounds)):
                for ci in range(len(col_bounds)):
                    tile_map[(ri, ci)] = next(it)
            replicas.append(tile_map)

        # --- Init: write weights ---------------------------------------
        for tile_map in replicas:
            for (ri, ci), xb in tile_map.items():
                r0, r1 = row_bounds[ri]
                c0, c1 = col_bounds[ci]
                payload = cells[r0:r1, c0:c1]
                symbol = self._const(payload, f"{node.name}_w")
                if wlm:
                    self.flow.append(
                        WriteRow(xb, 0, r1 - r0, symbol))
                else:
                    self.flow.append(WriteXb(xb, symbol))

        # --- Compute: one block per sliding window ---------------------
        src_matrix, n_windows = self._window_matrix(node)
        dst = self._place(node.outputs[0])
        out_shape = self.graph.output_spec(node).shape
        out_matrix = self._scratch(n_windows * c_total,
                                   f"{node.name}_outmat")
        for widx in range(n_windows):
            tile_map = replicas[widx % dup]
            self._emit_window(
                node, tile_map, row_bounds, col_bounds, widx,
                src_matrix, out_matrix, r_total, c_total, slices,
                offset_value, wlm, pr)

        self._finish_output(node, out_matrix, dst, out_shape, c_total)

    def _emit_window(self, node, tile_map, row_bounds, col_bounds, widx,
                     src_matrix, out_matrix, r_total, c_total, slices,
                     offset_value, wlm, pr) -> None:
        arch = self.arch
        xb_cols = arch.xb.cols
        # Stage input chunks into every tile-row's crossbars.
        movs = []
        for ri, (r0, r1) in enumerate(row_bounds):
            for ci in range(len(col_bounds)):
                xb = tile_map[(ri, ci)]
                movs.append(Mov(
                    src=src_matrix + widx * r_total + r0,
                    dst=self.mem.stage_addr(xb),
                    length=r1 - r0,
                    src_space="L0", dst_space="L1",
                ))
        self.flow.extend(movs)
        # Clear accumulators.
        zeros = [DigitalOp("zero", (self.mem.acc_addr(xb),),
                           self.mem.acc_addr(xb), xb_cols,
                           params=(("space", "L1"),))
                 for xb in tile_map.values()]
        self.flow.append(parallel(zeros))
        # Activate: whole crossbars (XBM) or row waves (WLM).
        reads = []
        for (ri, ci), xb in tile_map.items():
            r0, r1 = row_bounds[ri]
            height = r1 - r0
            if wlm:
                for wave0 in range(0, height, pr):
                    reads.append(ReadRow(
                        xb, wave0, min(pr, height - wave0)))
            else:
                reads.append(ReadXb(xb, 1))
        # All first-wave activations are concurrent; later waves of the
        # same crossbar serialize, which the emitter models by chunking
        # into parallel blocks of distinct crossbars.
        for block in _stagger(reads):
            self.flow.append(parallel(block))
        # Digital: shift-add per tile (slice combine + offset correction),
        # then accumulate vertical tiles, then write the window's outputs.
        for ci, (c0, c1) in enumerate(col_bounds):
            cols_here = (c1 - c0) // slices
            if cols_here == 0:
                raise CodegenError(
                    f"{node.name}: crossbar narrower than one weight "
                    f"({slices} slices)"
                )
            seg_scratch = []
            for ri, (r0, r1) in enumerate(row_bounds):
                xb = tile_map[(ri, ci)]
                self.flow.append(DigitalOp(
                    "shiftadd", (self.mem.acc_addr(xb),),
                    self.mem.scratch_addr(xb), cols_here,
                    params=(
                        ("space", "L1"), ("slices", slices),
                        ("cell_bits", arch.xb.cell_bits),
                        ("offset", offset_value),
                        ("stage", self.mem.stage_addr(xb)),
                        ("stage_len", r1 - r0),
                    ),
                ))
                seg_scratch.append(self.mem.scratch_addr(xb))
            acc = seg_scratch[0]
            for other in seg_scratch[1:]:
                self.flow.append(DigitalOp(
                    "add", (acc, other), acc, cols_here,
                    params=(("space", "L1"),),
                ))
            # Write this column segment of the window's output row.
            out_col0 = c0 // slices
            self.flow.append(Mov(
                src=acc, dst=out_matrix + widx * c_total + out_col0,
                length=cols_here, src_space="L1", dst_space="L0",
            ))

    # ------------------------------------------------------------------

    def _window_matrix(self, node: Node) -> Tuple[int, int]:
        """Materialize the (windows, R) input matrix in L0; returns
        (offset, n_windows)."""
        in_name = node.inputs[0]
        in_offset = self.offsets[in_name]
        in_spec = self.graph.tensors[in_name]
        if node.op_type == "Conv":
            matrix = self.graph.weight_matrix(node)
            n_windows = self.graph.num_mvms(node)
            dst = self._scratch(n_windows * matrix[0], f"{node.name}_im2col")
            kh, kw = np.asarray(self.weights[self._weight_name(node)]).shape[2:]
            self.flow.append(DigitalOp(
                "im2col", (in_offset,), dst, n_windows * matrix[0],
                params=(
                    ("in_shape", tuple(in_spec.shape)),
                    ("kernel", (int(kh), int(kw))),
                    ("stride", _pair(node.attr("stride", 1), "stride")),
                    ("padding", _pair(node.attr("padding", 0), "padding")),
                ),
            ))
            return dst, n_windows
        # Gemm: rows are already contiguous feature vectors.
        n_windows = self.graph.num_mvms(node)
        return in_offset, n_windows

    def _finish_output(self, node: Node, out_matrix: int, dst: int,
                       out_shape: Tuple[int, ...], c_total: int) -> None:
        if node.op_type == "Conv":
            n, c, oh, ow = out_shape
            self.flow.append(DigitalOp(
                "nhwc2nchw", (out_matrix,), dst, n * c * oh * ow,
                params=(("oh", oh), ("ow", ow), ("channels", c)),
            ))
        else:
            total = int(np.prod(out_shape))
            self.flow.append(DigitalOp("copy", (out_matrix,), dst, total))

    def _weight_name(self, node: Node) -> str:
        for name in node.inputs:
            if self.graph.tensors[name].is_weight:
                return name
        raise CodegenError(f"{node.name} has no weight input")

    # ------------------------------------------------------------------
    # Digital node lowering
    # ------------------------------------------------------------------

    def _lower_digital(self, node: Node) -> None:
        out_spec = self.graph.output_spec(node)
        dst = self._place(node.outputs[0])
        srcs = [self.offsets[i] for i in node.inputs]
        in_spec = self.graph.tensors[node.inputs[0]]
        if node.op_type in _SIMPLE_DCOM:
            self.flow.append(DigitalOp(
                _SIMPLE_DCOM[node.op_type], tuple(srcs), dst, out_spec.numel))
        elif node.op_type in ("MaxPool", "AveragePool"):
            fn = "maxpool" if node.op_type == "MaxPool" else "avgpool"
            self.flow.append(DigitalOp(
                fn, tuple(srcs), dst, out_spec.numel,
                params=(
                    ("in_shape", tuple(in_spec.shape)),
                    ("kernel", _pair(node.require_attr("kernel"), "kernel")),
                    ("stride", _pair(node.attr("stride",
                                               node.require_attr("kernel")),
                                     "stride")),
                    ("padding", _pair(node.attr("padding", 0), "padding")),
                ),
            ))
        elif node.op_type == "GlobalAveragePool":
            self.flow.append(DigitalOp(
                "gap", tuple(srcs), dst, out_spec.numel,
                params=(("in_shape", tuple(in_spec.shape)),),
            ))
        elif node.op_type in ("Flatten", "Reshape", "Identity", "BatchNorm"):
            # Layout-preserving in our canonical placement: plain copy.
            self.flow.append(DigitalOp(
                "copy", tuple(srcs), dst, out_spec.numel))
        elif node.op_type == "Slice":
            axis = node.require_attr("axis")
            if in_spec.shape[0] != 1 or axis != 1 or in_spec.rank != 4:
                raise CodegenError(
                    f"{node.name}: lowering supports channel slices of "
                    f"batch-1 NCHW tensors only"
                )
            plane = in_spec.shape[2] * in_spec.shape[3]
            start = node.require_attr("start")
            self.flow.append(DigitalOp(
                "copy", (srcs[0] + start * plane,), dst, out_spec.numel))
        elif node.op_type == "Concat":
            if node.attr("axis", 1) != 1 or out_spec.shape[0] != 1:
                raise CodegenError(
                    f"{node.name}: lowering supports channel concat of "
                    f"batch-1 tensors only"
                )
            cursor = dst
            for src_name, src_off in zip(node.inputs, srcs):
                length = self.graph.tensors[src_name].numel
                self.flow.append(DigitalOp(
                    "copy", (src_off,), cursor, length))
                cursor += length
        else:
            raise CodegenError(
                f"lowering has no DCOM mapping for {node.op_type!r}"
            )


def lower_to_flow(schedule: Schedule, weights: Dict[str, np.ndarray],
                  l0_size: int = 1 << 24) -> FlowProgram:
    """Convenience wrapper: lower ``schedule`` with concrete weights."""
    return Lowering(schedule, weights, l0_size).lower()


# ---------------------------------------------------------------------------


def _split_range(total: int, parts: int) -> List[Tuple[int, int]]:
    """Split [0, total) into ``parts`` near-equal contiguous ranges."""
    base = total // parts
    rem = total % parts
    bounds = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < rem else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def _tile_bounds(total: int, tile: int) -> List[Tuple[int, int]]:
    """[0, total) cut into tiles of at most ``tile``."""
    return [(i, min(i + tile, total)) for i in range(0, total, tile)]


def _stagger(reads: List) -> List[List]:
    """Group activations into parallel blocks with distinct crossbars.

    Multiple waves of the same crossbar must serialize; waves of distinct
    crossbars run concurrently (this is also what keeps the flow valid
    under :class:`repro.mops.validate.FlowValidator`).
    """
    blocks: List[List] = []
    for op in reads:
        placed = False
        for block in blocks:
            if all(getattr(b, "xbaddr", None) != op.xbaddr for b in block):
                block.append(op)
                placed = True
                break
        if not placed:
            blocks.append([op])
    return blocks
