"""Schedule containers: the scheduler's decisions for one compilation.

An :class:`OpDecision` collects, for one node, everything the multi-level
scheduler decided: CG-grained duplication and segment, MVM-grained refined
duplication and pipeline staggering, and the VVM-grained wave reduction.
A :class:`Schedule` bundles all decisions plus segment structure and is the
input of the performance simulator and meta-operator code generators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..arch import CIMArchitecture
from ..errors import ScheduleError
from ..graph import Graph
from .costs import OpProfile


@dataclass
class OpDecision:
    """All per-operator scheduling results."""

    profile: OpProfile
    segment: int = 0
    dup_cg: int = 1            # CG-grained duplication (core granularity)
    dup_mvm: Optional[int] = None   # MVM-grained refined duplication
    wave_reduction: int = 1    # VVM-grained row-wave division factor
    mvm_pipelined: bool = False  # staggered crossbar activation (Fig. 12)
    #: VVM remap of time-multiplexed ops: total waves per window across all
    #: passes (None = derive from row_waves / seq_passes).
    window_waves: Optional[int] = None

    @property
    def dup(self) -> int:
        """Effective duplication (MVM refinement wins when present)."""
        return self.dup_mvm if self.dup_mvm is not None else self.dup_cg

    @property
    def cores(self) -> int:
        """Cores occupied by all replicas of this operator."""
        return self.profile.cores_per_replica * self.dup_cg

    @property
    def crossbars(self) -> int:
        """Crossbars resident with this operator's weights."""
        return self.profile.n_xb * self.dup

    def latency(self) -> float:
        """End-to-end cycles of this operator under the decision."""
        return self.profile.latency(self.dup, self.wave_reduction,
                                    self.window_waves)

    def fill(self) -> float:
        """Pipeline-fill cycles contributed by this operator."""
        return self.profile.fill_cycles(self.dup, self.wave_reduction,
                                        self.window_waves)

    def active_crossbars(self) -> int:
        """Crossbars simultaneously activated while this op computes.

        Without the MVM-grained pipeline every crossbar of every replica
        fires together; with staggering only one row-tile wave per replica
        is active at a time (Section 3.3.3).
        """
        prof = self.profile
        if not prof.is_cim or prof.vxb is None:
            return 0
        per_replica = prof.n_xb
        if self.mvm_pipelined and prof.vxb.v_rows > 1:
            per_replica = math.ceil(prof.n_xb / prof.vxb.v_rows)
        return per_replica * self.dup


@dataclass
class Schedule:
    """The complete compilation result for (graph, architecture)."""

    graph: Graph
    arch: CIMArchitecture
    decisions: Dict[str, OpDecision]
    segments: List[List[str]]          # node names per segment, topo order
    pipelined: bool = True             # inter-operator (CG) pipeline on?
    levels: Sequence[str] = ("CG",)    # optimization levels applied

    def __post_init__(self) -> None:
        scheduled = {name for seg in self.segments for name in seg}
        missing = {n.name for n in self.graph.nodes} - scheduled
        if missing:
            raise ScheduleError(f"nodes missing from segments: {sorted(missing)}")
        for name in scheduled:
            if name not in self.decisions:
                raise ScheduleError(f"no decision for node {name!r}")

    # ------------------------------------------------------------------

    def decision(self, name: str) -> OpDecision:
        """Decision for one node."""
        try:
            return self.decisions[name]
        except KeyError:
            raise ScheduleError(f"no decision for node {name!r}") from None

    def segment_decisions(self, segment: int) -> List[OpDecision]:
        """Decisions of one segment in topological order."""
        return [self.decisions[name] for name in self.segments[segment]]

    def cores_used(self, segment: int) -> int:
        """Cores occupied by a segment's CIM operators."""
        return sum(d.cores for d in self.segment_decisions(segment)
                   if d.profile.is_cim)

    def crossbars_used(self, segment: int) -> int:
        """Crossbars resident in a segment."""
        return sum(d.crossbars for d in self.segment_decisions(segment)
                   if d.profile.is_cim)

    def validate_resources(self) -> None:
        """Every segment must fit the chip."""
        for seg in range(len(self.segments)):
            used = self.cores_used(seg)
            if used > self.arch.chip.core_number:
                raise ScheduleError(
                    f"segment {seg} uses {used} cores but chip has "
                    f"{self.arch.chip.core_number}"
                )

    def to_dict(self) -> Dict:
        """JSON-compatible export of every scheduling decision (for
        downstream toolchains and debugging)."""
        return {
            "graph": self.graph.name,
            "architecture": self.arch.name,
            "mode": self.arch.mode.value,
            "levels": list(self.levels),
            "pipelined": self.pipelined,
            "segments": [list(s) for s in self.segments],
            "decisions": {
                name: {
                    "segment": d.segment,
                    "dup_cg": d.dup_cg,
                    "dup_mvm": d.dup_mvm,
                    "wave_reduction": d.wave_reduction,
                    "mvm_pipelined": d.mvm_pipelined,
                    "window_waves": d.window_waves,
                    "cores": d.cores,
                    "crossbars": d.crossbars,
                    "latency_cycles": d.latency(),
                }
                for name, d in self.decisions.items()
            },
        }

    def summary(self) -> str:
        """Readable per-segment decision table."""
        lines = [f"Schedule {self.graph.name} on {self.arch.name} "
                 f"levels={'+'.join(self.levels)} pipelined={self.pipelined}"]
        for seg_idx, seg in enumerate(self.segments):
            lines.append(f" segment {seg_idx}: cores={self.cores_used(seg_idx)}"
                         f"/{self.arch.chip.core_number}")
            for name in seg:
                d = self.decisions[name]
                if d.profile.is_cim:
                    lines.append(
                        f"  {name:<24} dup={d.dup:<4} xbs={d.crossbars:<6} "
                        f"lat={d.latency():,.0f}"
                    )
        return "\n".join(lines)
