"""CG-grained optimization (Section 3.3.2, Fig. 9).

Three cooperating pieces:

* **Operator duplication** under the ``core_number`` budget.  Two objective
  variants are provided: :func:`duplicate_min_total` minimizes the *sum* of
  operator latencies (the right objective without a pipeline) via an
  exchange-optimal greedy on the convex latency curve, and
  :func:`duplicate_min_bottleneck` minimizes the *maximum* stage latency
  (the pipelined objective) via binary search over the bottleneck — both
  reproduce the paper's dynamic-programming search results exactly on small
  instances (verified against brute force in the test suite).
* **Pipeline balancing**: duplication numbers are trimmed so NoC/L0
  bandwidth and ALU throughput of adjacent digital ops are not oversubscribed
  (the paper's "dynamic balancing pipelined duplication").
* **Resource-adaptive compute-graph segmentation** when the model exceeds
  chip capacity: maximal subgraphs are grown in topological order and then
  refined by popping trailing nodes while the pipelined latency of the
  remaining subgraph keeps improving (Fig. 9(b)).
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..arch import CIMArchitecture
from ..errors import CapacityError, ScheduleError
from ..graph import Graph
from ..perf import CompileCache, fastpath_enabled
from ..perf.kernels import (
    BottleneckSearch,
    DupLatencyColumns,
    RefineExchange,
    level_latency_table,
    segment_cycles,
    useful_dup_options,
)
from .costs import CostModel, OpProfile
from .schedule import OpDecision, Schedule


# ---------------------------------------------------------------------------
# Duplication search
# ---------------------------------------------------------------------------


#: Process-wide memo backing the duplication searches when the caller
#: supplies no explicit cache while the fast path is on.  The searches
#: are pure functions of ``(profile tuple, budget)`` (frozen dataclasses
#: carrying every quantity they read), so content-addressed sharing
#: across otherwise-uncached compilations is value-exact.  ``repro
#: bench`` clears it between runs; an explicit ``cache=`` argument
#: always wins.
_IMPLICIT_SEARCH_CACHE = CompileCache()


def _search_cache(cache: Optional["CompileCache"]
                  ) -> Optional["CompileCache"]:
    """The cache a duplication search should use: the caller's, else
    the process-wide implicit memo on the fast path, else none."""
    if cache is not None:
        return cache
    return _IMPLICIT_SEARCH_CACHE if fastpath_enabled() else None


#: Budgets up to this size use the exact dynamic program (the paper's
#: "dynamic programming" search); larger budgets use the jump greedy, which
#: is optimal on the convex hull of useful duplication points.
_EXACT_DP_BUDGET = 64


def _useful_dups(p: OpProfile, budget: int,
                 cache: Optional["CompileCache"] = None) -> List[int]:
    """Duplication values where the latency actually changes.

    ``ceil(num_mvms / d)`` takes O(sqrt(num_mvms)) distinct values; only the
    smallest ``d`` achieving each value matters.  The fast path computes
    the same set with one vectorized scan (the reference walks every
    window count in Python) and memoizes the curve per
    ``(num_mvms, cap)`` — the only two quantities it depends on.
    """
    cap = min(p.max_useful_dup, budget // p.cores_per_replica)
    key = ("useful", p.num_mvms, cap)
    if cache is not None:
        hit = cache.get_useful_dups(key)
        if hit is not None:
            return hit
    if fastpath_enabled() and p.num_mvms >= _VECTORIZE_MIN_MVMS:
        result = useful_dup_options(p.num_mvms, cap).tolist()
    else:
        result = _useful_dups_scan(p.num_mvms, cap)
    if cache is not None:
        cache.put_useful_dups(key, result)
    return result


#: Below this window count the Python scan beats the numpy kernel (array
#: setup dominates); both produce the identical set, so the cutoff is a
#: pure tuning knob.
_VECTORIZE_MIN_MVMS = 512


def _useful_dups_scan(num_mvms: int, cap: int) -> List[int]:
    """Reference scan over window counts (see :func:`_useful_dups`)."""
    options = {1}
    windows = num_mvms
    k = math.ceil(windows / 1)
    while k > 1:
        k -= 1
        d = math.ceil(windows / k)
        if d > cap:
            continue
        options.add(d)
    options.add(max(1, cap))
    return sorted(options)


def _min_total_exact(cim: List[OpProfile], budget: int,
                     cache: Optional["CompileCache"] = None) -> Dict[str, int]:
    """Exact knapsack-style DP over (operator, cores-spent)."""
    inf = float("inf")
    dp = [0.0] + [inf] * budget
    choice: List[Dict[str, int]] = [dict() for _ in range(budget + 1)]
    for p in cim:
        ndp = [inf] * (budget + 1)
        nchoice: List[Dict[str, int]] = [dict() for _ in range(budget + 1)]
        for d in _useful_dups(p, budget, cache):
            cost = d * p.cores_per_replica
            lat = p.latency(d)
            for b in range(cost, budget + 1):
                if dp[b - cost] + lat < ndp[b]:
                    ndp[b] = dp[b - cost] + lat
                    nchoice[b] = dict(choice[b - cost], **{p.name: d})
        dp, choice = ndp, nchoice
    best_b = min(range(budget + 1), key=lambda b: dp[b])
    if dp[best_b] == inf:
        raise CapacityError(f"operators do not fit in {budget} cores")
    return {p.name: choice[best_b].get(p.name, 1) for p in cim}


def duplicate_min_total(profiles: Sequence[OpProfile], budget: int,
                        cache: Optional["CompileCache"] = None
                        ) -> Dict[str, int]:
    """Duplication counts minimizing total (un-pipelined) latency.

    Small instances solve exactly by dynamic programming; large instances
    use a marginal-gain greedy over *useful* duplication jumps (the latency
    curve restricted to those points is convex in spent cores, where greedy
    is optimal up to the final partial jump).

    With a :class:`~repro.perf.CompileCache` the whole search result is
    memoized on ``(profile tuple, budget)`` — profiles are frozen
    dataclasses carrying every quantity the search reads, so equal keys
    guarantee equal answers across segments, series, and sweep points.
    Without an explicit cache the fast path falls back to the
    process-wide implicit search memo.
    """
    cache = _search_cache(cache)
    key = None
    if cache is not None:
        key = ("min_total", budget, tuple(profiles))
        hit = cache.get_dups(key)
        if hit is not None:
            return hit
    dups = _duplicate_min_total(profiles, budget, cache)
    if key is not None:
        cache.put_dups(key, dups)
    return dups


def _duplicate_min_total(profiles: Sequence[OpProfile], budget: int,
                         cache: Optional["CompileCache"] = None
                         ) -> Dict[str, int]:
    """Uncached body of :func:`duplicate_min_total`."""
    dups = {p.name: 1 for p in profiles}
    cim = [p for p in profiles if p.is_cim]
    need = sum(p.cores_per_replica for p in cim)
    if need > budget:
        raise CapacityError(
            f"operators need {need} cores, chip has {budget}"
        )
    if not cim:
        return dups
    if budget <= _EXACT_DP_BUDGET:
        dups.update(_min_total_exact(cim, budget, cache))
        return dups

    remaining = budget - need
    by_name = {p.name: p for p in cim}

    if fastpath_enabled():
        # Precompute the four constants OpProfile.latency reads at
        # default arguments; the inlined formula applies the same IEEE
        # operations (ceil of the same float division, integer-valued
        # products exact in float64, max/add), so every latency the
        # greedy compares is bit-identical to the method call.
        consts = {p.name: (p.num_mvms, p.max_useful_dup,
                           p.mvm_cycles(1) * p.seq_passes,
                           p.seq_passes * p.reload_cycles,
                           p.mov_cycles, p.alu_cycles)
                  for p in cim}

        def _lat(p: OpProfile, d: int) -> float:
            num, max_dup, per_window, base, mov, alu = consts[p.name]
            eff = d if d < max_dup else max_dup
            compute = math.ceil(num / eff) * per_window + base
            return (compute if compute > mov else mov) + alu

        # next_jump from a useful level always lands on the *next* useful
        # level (the smallest duplication shrinking the window count by
        # one, clamped to max_useful_dup), so the whole jump chain and
        # its latencies can be tabulated vectorized up front — capped at
        # max_useful_dup, not the budget, exactly like next_jump.  Only
        # partial jumps leave the chain and fall back to the formula.
        chain_lists = [_useful_dups(p, p.max_useful_dup
                                    * p.cores_per_replica, cache)
                       for p in cim]
        _, chain_lat = level_latency_table(DupLatencyColumns(cim),
                                           chain_lists)
        chain_info = {
            p.name: (chain, chain_lat[i, :len(chain)].tolist(),
                     {d: j for j, d in enumerate(chain)})
            for i, (p, chain) in enumerate(zip(cim, chain_lists))}
    else:
        def _lat(p: OpProfile, d: int) -> float:
            return p.latency(d)

        chain_info = {}

    def next_jump(p: OpProfile, d: int) -> Optional[int]:
        """Smallest d' > d with strictly lower latency, or None."""
        if d >= p.max_useful_dup:
            return None
        windows = math.ceil(p.num_mvms / d)
        if windows <= 1:
            return None
        d2 = min(max(math.ceil(p.num_mvms / (windows - 1)), d + 1),
                 p.max_useful_dup)
        if _lat(p, d2) >= _lat(p, d) - 1e-12:
            return None  # movement/ALU bound: no jump will ever gain
        return d2

    heap: List[Tuple[float, str, int, int, int]] = []

    def push(p: OpProfile) -> None:
        d = dups[p.name]
        info = chain_info.get(p.name)
        if info is not None:
            chain, lats, index = info
            j = index.get(d)
            if j is not None:
                # On-chain state: the tabulated next level / latencies
                # are the exact floats next_jump would compute (the
                # window<=1 and max-dup terminations both surface as a
                # non-improving tabulated latency).
                if j + 1 >= len(chain):
                    return
                d2, lat_d, lat_d2 = chain[j + 1], lats[j], lats[j + 1]
                if lat_d2 >= lat_d - 1e-12:
                    return
                cost = (d2 - d) * p.cores_per_replica
                heapq.heappush(
                    heap, (-((lat_d - lat_d2) / cost), p.name, d, d2, cost))
                return
        d2 = next_jump(p, d)
        if d2 is None:
            return
        cost = (d2 - d) * p.cores_per_replica
        gain = (_lat(p, d) - _lat(p, d2)) / cost
        heapq.heappush(heap, (-gain, p.name, d, d2, cost))

    for p in cim:
        push(p)
    while heap:
        _, name, d_from, d_to, cost = heapq.heappop(heap)
        p = by_name[name]
        if dups[name] != d_from:
            continue  # stale entry
        if cost > remaining:
            # Take the largest affordable partial jump, if it helps, and
            # keep the operator in play (smaller later jumps may still fit).
            d_mid = d_from + remaining // p.cores_per_replica
            if d_mid > d_from and _lat(p, d_mid) < _lat(p, d_from):
                remaining -= (d_mid - d_from) * p.cores_per_replica
                dups[name] = d_mid
                push(p)
            continue
        dups[name] = d_to
        remaining -= cost
        push(p)
    return _refine_exchange(cim, budget, dups, cache)


def _refine_exchange(cim: List[OpProfile], budget: int,
                     dups: Dict[str, int],
                     cache: Optional["CompileCache"] = None
                     ) -> Dict[str, int]:
    """Pairwise-exchange hill climbing after the jump greedy.

    The greedy is exchange-optimal on each operator's convex
    (cores, latency) hull, but with *non-uniform* core costs it can strand
    budget between operators (a knapsack integrality gap): the leftover
    cores are too few for the best next jump, while a cheaper operator
    holds cores it barely uses.  This pass repeatedly raises one operator
    to its next useful duplication, funding the cores from slack budget
    plus (when needed) lowering a single donor operator, accepting the
    best strictly-improving move until none remains.

    On the fast path each iteration evaluates the whole candidate
    frontier as array expressions
    (:class:`~repro.perf.kernels.RefineExchange`), reproducing the
    reference's move sequence — including first-wins tie-breaking on the
    sort tuples — exactly.
    """
    levels = {p.name: _useful_dups(p, budget, cache) for p in cim}
    if cim and fastpath_enabled():
        return _refine_exchange_fast(cim, budget, dups, levels)
    free = budget - sum(p.cores_per_replica * dups[p.name] for p in cim)
    # Each accepted move strictly lowers total latency; the cap only
    # guards against float-epsilon cycling.
    for _ in range(8 * max(1, sum(len(v) for v in levels.values()))):
        best: Optional[Tuple[float, str, int, Optional[str], Optional[int]]] = None
        for p in cim:
            ups = [lv for lv in levels[p.name] if lv > dups[p.name]]
            if not ups:
                continue
            d_up = min(ups)
            need = (d_up - dups[p.name]) * p.cores_per_replica
            gain = p.latency(dups[p.name]) - p.latency(d_up)
            if gain <= 1e-12:
                continue
            if need <= free:
                cand = (-gain, p.name, d_up, None, None)
                best = cand if best is None or cand < best else best
                continue
            for q in cim:
                if q.name == p.name:
                    continue
                downs = [lv for lv in levels[q.name] if lv < dups[q.name]]
                # Walk down one useful level at a time: losses grow
                # monotonically, so the first level that frees enough
                # cores is the cheapest sufficient donation.
                for d_down in sorted(downs, reverse=True):
                    if free + (dups[q.name] - d_down) * q.cores_per_replica \
                            < need:
                        continue
                    loss = q.latency(d_down) - q.latency(dups[q.name])
                    if gain - loss > 1e-9:
                        cand = (-(gain - loss), p.name, d_up, q.name, d_down)
                        best = cand if best is None or cand < best else best
                    break
        if best is None:
            return dups
        _, up_name, d_up, down_name, d_down = best
        up = next(p for p in cim if p.name == up_name)
        free -= (d_up - dups[up_name]) * up.cores_per_replica
        dups[up_name] = d_up
        if down_name is not None:
            down = next(p for p in cim if p.name == down_name)
            free += (dups[down_name] - d_down) * down.cores_per_replica
            dups[down_name] = d_down
    return dups


def _refine_exchange_fast(cim: List[OpProfile], budget: int,
                          dups: Dict[str, int],
                          levels: Dict[str, List[int]]) -> Dict[str, int]:
    """Vectorized body of :func:`_refine_exchange` (same moves, same
    iteration cap, same accounting — see
    :class:`~repro.perf.kernels.RefineExchange`)."""
    rex = RefineExchange(cim, [levels[p.name] for p in cim])
    cores = rex.table.cores
    dvec = np.asarray([dups[p.name] for p in cim], dtype=np.int64)
    free = budget - int(np.add.reduce(cores * dvec))
    for _ in range(8 * max(1, sum(len(v) for v in levels.values()))):
        move = rex.best_move(dvec, free)
        if move is None:
            break
        p, d_up, q, d_down = move
        free -= (d_up - int(dvec[p])) * int(cores[p])
        dvec[p] = d_up
        if q is not None:
            free += (int(dvec[q]) - d_down) * int(cores[q])
            dvec[q] = d_down
    for i, p in enumerate(cim):
        dups[p.name] = int(dvec[i])
    return dups


def duplicate_min_bottleneck(profiles: Sequence[OpProfile],
                             budget: int,
                             cache: Optional["CompileCache"] = None
                             ) -> Dict[str, int]:
    """Duplication counts minimizing the pipelined bottleneck stage latency.

    Binary search over the target bottleneck ``T``: the cheapest feasible
    duplication for a target is ``d_i = ceil(compute_i / T)``, so feasibility
    is monotone in ``T``.  On the fast path the ~60 bisection steps
    evaluate the per-operator feasibility test as array expressions
    (:class:`~repro.perf.kernels.BottleneckSearch`) instead of a Python
    loop, and the whole result is memoized on ``(profile tuple, budget)``
    when a :class:`~repro.perf.CompileCache` is attached (the implicit
    process-wide memo when the caller passes none).
    """
    cache = _search_cache(cache)
    key = None
    if cache is not None:
        key = ("min_bottleneck", budget, tuple(profiles))
        hit = cache.get_dups(key)
        if hit is not None:
            return hit
    dups = _duplicate_min_bottleneck(profiles, budget)
    if key is not None:
        cache.put_dups(key, dups)
    return dups


def _duplicate_min_bottleneck(profiles: Sequence[OpProfile],
                              budget: int) -> Dict[str, int]:
    """Uncached body of :func:`duplicate_min_bottleneck`."""
    dups = {p.name: 1 for p in profiles}
    cim = [p for p in profiles if p.is_cim and p.num_mvms > 0]
    if not cim:
        return dups
    base_cores = sum(p.cores_per_replica for p in cim)
    if base_cores > budget:
        raise CapacityError(
            f"operators need {base_cores} cores, chip has {budget}"
        )

    def dup_for_target(p: OpProfile, target: float) -> int:
        # Smallest d with latency(d) <= target.  Movement and digital
        # post-processing set a duplication-independent floor.
        mvm = p.mvm_cycles_base
        floor = max(p.mov_cycles, mvm) + p.alu_cycles
        if target < floor:  # unreachable even at maximum duplication
            return p.max_useful_dup + budget + 1  # infeasible marker
        compute_budget = target - p.alu_cycles
        windows_per_replica = int(compute_budget // mvm)
        return min(p.max_useful_dup,
                   math.ceil(p.num_mvms / max(1, windows_per_replica)))

    if fastpath_enabled():
        search = BottleneckSearch(cim, budget)
        cost = search.cost
    else:
        def cost(target: float) -> int:
            return sum(p.cores_per_replica * dup_for_target(p, target)
                       for p in cim)

    lo = max(p.mvm_cycles_base for p in cim)              # best possible
    hi = max(p.latency(1) for p in cim)                   # no duplication
    if cost(hi) > budget:
        raise CapacityError("even duplication 1 exceeds the core budget")
    # Binary search on achievable bottleneck (continuous, then round).
    for _ in range(60):
        mid = (lo + hi) / 2
        if cost(mid) <= budget:
            hi = mid
        else:
            lo = mid
    if fastpath_enabled():
        # Same rounding as dup_for_target (pinned by the kernel-equality
        # suite), evaluated for all operators at once.
        final = search.dup_for_target(hi)
        for i, p in enumerate(cim):
            dups[p.name] = max(1, int(final[i]))
    else:
        for p in cim:
            dups[p.name] = max(1, dup_for_target(p, hi))
    # Spend leftover cores on the current bottleneck greedily.
    used = sum(p.cores_per_replica * dups[p.name] for p in cim)
    remaining = budget - used
    if fastpath_enabled():
        # Array form of the loop below: latencies are maintained
        # incrementally with the same scalar formula, and np.argmax
        # keeps max()'s first-wins bottleneck tie-breaking.
        table = DupLatencyColumns(cim)
        dvec = np.asarray([dups[p.name] for p in cim], dtype=np.int64)
        lats = table.latency(dvec)
        while remaining > 0:
            b = int(lats.argmax())
            p = cim[b]
            if (int(dvec[b]) >= p.max_useful_dup
                    or p.cores_per_replica > remaining
                    or table.latency_at(b, int(dvec[b]) + 1)
                    >= float(lats[b])):
                break
            dvec[b] += 1
            lats[b] = table.latency_at(b, int(dvec[b]))
            remaining -= p.cores_per_replica
        for i, p in enumerate(cim):
            dups[p.name] = int(dvec[i])
        return dups
    while remaining > 0:
        bottleneck = max(cim, key=lambda p: p.latency(dups[p.name]))
        if (dups[bottleneck.name] >= bottleneck.max_useful_dup
                or bottleneck.cores_per_replica > remaining
                or bottleneck.latency(dups[bottleneck.name] + 1)
                >= bottleneck.latency(dups[bottleneck.name])):
            break
        dups[bottleneck.name] += 1
        remaining -= bottleneck.cores_per_replica
    return dups


def balance_for_bandwidth(graph: Graph, profiles: Dict[str, OpProfile],
                          dups: Dict[str, int],
                          arch: CIMArchitecture) -> Dict[str, int]:
    """Trim duplication so data transfer and digital throughput keep up.

    A duplicated operator produces outputs ``dup`` times faster; if the
    chip-tier buffer bandwidth or the ALU of an adjacent CIM-unsupported
    node (e.g. ReLU) cannot absorb that rate, extra replicas only stall the
    pipeline (Section 3.3.2: "update the duplication number to keep the data
    transfer amount within the NOC and buffer capability ... under the
    constraint of ALU").
    """
    trimmed = dict(dups)
    chip = arch.chip
    for node in graph.topological():
        if node.name not in trimmed:
            continue
        p = profiles[node.name]
        if not p.is_cim or trimmed[node.name] <= 1:
            continue
        limits: List[float] = []
        # Buffer/NoC limit: output bits per cycle at full duplication must
        # fit in L0 bandwidth.
        if chip.l0_bw_bits is not None and p.num_mvms > 0:
            compute = p.num_mvms * p.mvm_cycles_base
            # bits produced per cycle at dup d: out_bits / (compute / d)
            max_dup_bw = chip.l0_bw_bits * compute / max(1.0, p.out_bits)
            limits.append(max_dup_bw)
        # ALU limit from CIM-unsupported successors (aggregate rate: the
        # chip ALU in CM, one ALU per core otherwise — see CostModel).
        if arch.mode.visible_tiers == 1:
            rate = chip.alu_ops
        else:
            per_core = arch.core.alu_ops or chip.alu_ops
            rate = None if per_core is None else \
                per_core * chip.core_number
        if rate is not None:
            for succ in graph.successors(node):
                sp = profiles[succ.name]
                if sp.is_cim or sp.alu_cycles <= 0:
                    continue
                compute = p.num_mvms * p.mvm_cycles_base
                max_dup_alu = compute / max(1e-9, sp.alu_cycles)
                limits.append(max_dup_alu)
        if limits:
            cap = max(1, math.floor(min(limits)))
            trimmed[node.name] = min(trimmed[node.name], cap)
    return trimmed


# ---------------------------------------------------------------------------
# Segmentation
# ---------------------------------------------------------------------------


def pipelined_latency(decisions: Sequence[OpDecision]) -> float:
    """Latency of one pipelined segment: bottleneck plus fills.

    The fast path evaluates every decision's latency/fill in one
    vectorized pass; ``np.argmax`` keeps the reference's first-wins
    bottleneck tie-breaking and :func:`~repro.perf.kernels.seq_sum` its
    left-to-right fill summation, so the value is bit-identical.
    """
    if not decisions:
        return 0.0
    if fastpath_enabled():
        return segment_cycles(decisions, pipelined=True)[2]
    lats = [d.latency() for d in decisions]
    bottleneck = max(lats)
    fills = sum(d.fill() for d in decisions) - \
        decisions[lats.index(bottleneck)].fill()
    return bottleneck + max(0.0, fills)


def sequential_latency(decisions: Sequence[OpDecision]) -> float:
    """Latency of one segment without the inter-operator pipeline."""
    if fastpath_enabled() and decisions:
        return segment_cycles(decisions, pipelined=False)[2]
    return sum(d.latency() for d in decisions)


def segment_graph(graph: Graph, profiles: Dict[str, OpProfile],
                  arch: CIMArchitecture,
                  pipelined: bool = True,
                  duplicate: bool = True,
                  cache: Optional["CompileCache"] = None) -> List[List[str]]:
    """Resource-adaptive compute-graph segmentation (Fig. 9(b)).

    Greedily grows maximal topological prefixes that fit chip capacity, then
    refines each candidate by popping trailing nodes while the (pipelined)
    latency of the remaining subgraph keeps decreasing.

    With a :class:`~repro.perf.CompileCache` the resulting segmentation
    is memoized on the profile contents (frozen dataclasses in
    topological order) plus the core budget and the two gates — the
    only inputs the algorithm reads.
    """
    order = [n.name for n in graph.topological()]
    key = None
    if cache is not None:
        key = ("segments", arch.chip.core_number, pipelined, duplicate,
               tuple((n, profiles[n]) for n in order))
        hit = cache.get_segments(key)
        if hit is not None:
            return hit
    segments = _segment_graph(order, profiles, arch, pipelined, duplicate,
                              cache)
    if key is not None:
        cache.put_segments(key, segments)
    return segments


def _segment_graph(order: List[str], profiles: Dict[str, OpProfile],
                   arch: CIMArchitecture, pipelined: bool, duplicate: bool,
                   cache: Optional["CompileCache"] = None
                   ) -> List[List[str]]:
    """Uncached body of :func:`segment_graph`."""
    budget = arch.chip.core_number
    segments: List[List[str]] = []
    start = 0
    while start < len(order):
        # Grow the maximal prefix that fits at duplication 1.
        used = 0
        end = start
        while end < len(order):
            p = profiles[order[end]]
            need = p.cores_per_replica if p.is_cim else 0
            if p.is_cim and need > budget:
                raise CapacityError(
                    f"operator {p.name!r} alone needs {need} cores; "
                    f"chip has {budget}"
                )
            if used + need > budget:
                break
            used += need
            end += 1
        if end == start:  # first node of the segment must always be taken
            end = start + 1
        segment = order[start:end]
        best_segment = list(segment)
        if end < len(order) and duplicate:
            # Capacity-truncated prefix: pop trailing nodes while the
            # latency *per unit of work* of the remaining subgraph keeps
            # improving (popping frees cores for duplicating the rest; the
            # popped work moves to the next segment).
            best_density = _segment_density(
                segment, profiles, arch, pipelined, cache)
            while len(segment) > 1:
                candidate = segment[:-1]
                if not any(profiles[n].is_cim for n in candidate):
                    break  # never shrink to a CIM-free segment
                density = _segment_density(
                    candidate, profiles, arch, pipelined, cache)
                if density < best_density:
                    best_density = density
                    best_segment = list(candidate)
                    segment = candidate
                else:
                    break
        segments.append(best_segment)
        start += len(best_segment)
    return segments


def _segment_density(names: Sequence[str], profiles: Dict[str, OpProfile],
                     arch: CIMArchitecture, pipelined: bool,
                     cache: Optional["CompileCache"] = None) -> float:
    """Optimized segment latency per unit of un-duplicated work."""
    latency = _segment_latency(names, profiles, arch, pipelined,
                               duplicate=True, cache=cache)
    work = sum(profiles[n].latency(1) for n in names)
    return latency / max(1.0, work)


def _segment_latency(names: Sequence[str], profiles: Dict[str, OpProfile],
                     arch: CIMArchitecture, pipelined: bool,
                     duplicate: bool,
                     cache: Optional["CompileCache"] = None) -> float:
    seg_profiles = [profiles[n] for n in names]
    if duplicate:
        search = duplicate_min_bottleneck if pipelined else duplicate_min_total
        dups = search(seg_profiles, arch.chip.core_number, cache)
    else:
        dups = {p.name: 1 for p in seg_profiles}
    decisions = [OpDecision(profiles[n], dup_cg=dups[n]) for n in names]
    if pipelined:
        return pipelined_latency(decisions)
    return sequential_latency(decisions)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def schedule_cg(graph: Graph, arch: CIMArchitecture,
                pipelined: bool = True, duplicate: bool = True,
                cost_model: Optional[CostModel] = None,
                cache: Optional["CompileCache"] = None) -> Schedule:
    """Run CG-grained optimization and return a CG-level :class:`Schedule`.

    ``cache`` (or the cost model's attached cache) memoizes profiles,
    segmentation, and duplication searches across compilations.
    """
    cm = cost_model or CostModel(arch, cache=cache)
    if cache is None:
        cache = cm.cache
    profiles = cm.profiles(graph)
    segments = segment_graph(graph, profiles, arch, pipelined, duplicate,
                             cache)
    decisions: Dict[str, OpDecision] = {}
    for seg_idx, seg in enumerate(segments):
        seg_profiles = [profiles[n] for n in seg]
        if duplicate:
            search = duplicate_min_bottleneck if pipelined \
                else duplicate_min_total
            dups = search(seg_profiles, arch.chip.core_number, cache)
            dups = balance_for_bandwidth(graph, profiles, dups, arch)
        else:
            dups = {n: 1 for n in seg}
        for name in seg:
            decisions[name] = OpDecision(
                profiles[name], segment=seg_idx, dup_cg=dups[name])
            node = graph.node(name)
            node.annotations["duplication"] = dups[name]
            node.annotations["segment"] = seg_idx
    schedule = Schedule(graph, arch, decisions, segments,
                        pipelined=pipelined, levels=("CG",))
    schedule.validate_resources()
    return schedule
