"""The cost model: every latency/resource quantity the scheduler consumes.

This module is the single source of truth shared by all scheduling levels and
by the performance simulator.  Units:

* **cycle** — one crossbar activation wave (ADC conversion folded in), also
  the ALU and buffer clock.
* **crossbar** — one physical array; a VXB groups several (Fig. 7).

Per CIM-supported operator we derive an :class:`OpProfile`:

``mvm_cycles``
    ``input_passes(a_bits) * ceil(rows_per_tile / parallel_row)`` — bit-serial
    DAC passes times sequential row waves.  The VVM remap divides the wave
    count (Section 3.3.4); XBM/CM chips pay the waves internally on every
    ``cim.readxb``/``cim.readcore``.
``compute_cycles``
    ``ceil(num_mvms / duplication) * mvm_cycles`` — sliding windows are
    spread round-robin over replicas.
``alu_cycles`` / ``mov_cycles``
    Digital work over the tier ALU rate and data movement over buffer
    bandwidth plus average NoC hops.  Ideal (``None``) parameters contribute
    zero, matching the paper's "\\" convention.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, Optional

from ..arch import BitBinding, CIMArchitecture, ComputingMode, VXBShape, bind
from ..errors import ScheduleError
from ..graph import Graph, Node

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..perf import CompileCache


#: Digital ops that re-gather data (windows / global reductions) and so pay
#: buffer traffic; plain elementwise ops stream for free.
_WINDOWED_OPS = frozenset({
    "MaxPool", "AveragePool", "GlobalAveragePool", "MatMul", "Softmax",
    "Concat",
})


@dataclass(frozen=True)
class OpProfile:
    """Static per-operator quantities (duplication-independent)."""

    name: str
    op_type: str
    is_cim: bool
    #: MVM decomposition (CIM ops only; 0 / None otherwise).
    num_mvms: int
    vxb: Optional[VXBShape]
    n_xb: int                 # physical crossbars per replica
    cores_per_replica: int    # cores one replica occupies (CIM ops; 0 digital)
    mvm_cycles_base: int      # cycles per MVM without VVM remap
    row_waves: int            # sequential row waves inside one MVM
    input_passes: int         # bit-serial DAC passes per MVM
    alu_cycles: float         # digital work (ALU) per inference
    mov_cycles: float         # data movement per inference
    weight_bits: int
    in_bits: int
    out_bits: int
    fill_fraction: float      # share of latency before the successor can start
    max_useful_dup: int       # duplication beyond this cannot help
    #: Sequential passes when one replica exceeds the whole chip (the VXB is
    #: time-multiplexed; weights reload between passes).
    seq_passes: int = 1
    #: Weight-reload cycles per pass (0 for single-pass deploy-time loading).
    reload_cycles: float = 0.0

    def latency(self, dup: int = 1, wave_reduction: int = 1,
                window_waves: Optional[int] = None) -> float:
        """End-to-end cycles of this operator at a given duplication and
        VVM wave reduction.

        Data movement overlaps with computation (double-buffered loads, the
        paper's "load/store time can be hidden within the computation
        time"), so the operator is bound by the slower of the two; digital
        post-processing (bias/shift-add) is additive.

        ``window_waves`` overrides the total sequential waves per window
        (used by the VVM remap of time-multiplexed operators, which already
        folds the pass structure in; reload cost stays per-pass).
        """
        if dup < 1 or wave_reduction < 1:
            raise ScheduleError(
                f"{self.name}: dup/wave_reduction must be >= 1"
            )
        if not self.is_cim:
            return max(self.alu_cycles, self.mov_cycles)
        windows = math.ceil(self.num_mvms / min(dup, self.max_useful_dup))
        if window_waves is not None:
            compute = windows * self.input_passes * window_waves
        else:
            compute = windows * self.mvm_cycles(wave_reduction) * \
                self.seq_passes
        compute += self.seq_passes * self.reload_cycles
        return max(compute, self.mov_cycles) + self.alu_cycles

    def mvm_cycles(self, wave_reduction: int = 1) -> int:
        """Cycles per MVM after dividing row waves by ``wave_reduction``."""
        waves = math.ceil(self.row_waves / max(1, wave_reduction))
        return self.input_passes * max(1, waves)

    def fill_cycles(self, dup: int = 1, wave_reduction: int = 1,
                    window_waves: Optional[int] = None) -> float:
        """Pipeline fill: cycles until the first outputs that unblock the
        successor are ready."""
        return self.latency(dup, wave_reduction, window_waves) * \
            self.fill_fraction


class CostModel:
    """Derives :class:`OpProfile` objects for one (graph, architecture).

    Pass a :class:`~repro.perf.CompileCache` to share the derived
    profile dicts across compilations: the cache key is the
    architecture *value* (frozen dataclass), the bit binding, and the
    graph's content signature, so any two evaluations with equal inputs
    reuse the same frozen profiles no matter which subsystem (sweep
    point, serve tenant, shard stage) asked first.
    """

    def __init__(self, arch: CIMArchitecture,
                 bit_binding: BitBinding = BitBinding.XBC,
                 cache: Optional["CompileCache"] = None) -> None:
        self.arch = arch
        self.bit_binding = bit_binding
        self.cache = cache

    # ------------------------------------------------------------------

    def profile(self, graph: Graph, node: Node) -> OpProfile:
        """Build the profile of one node."""
        arch = self.arch
        in_specs = graph.input_specs(node)
        activation_bits = in_specs[0].bits if in_specs else 8
        in_bits = sum(s.size_bits for s in in_specs if not s.is_weight)
        out_bits = sum(
            graph.output_spec(node, i).size_bits
            for i in range(len(node.outputs))
        )
        alu_cycles = self._alu_cycles(graph.alu_ops(node))
        # Elementwise digital ops (ReLU, BatchNorm, residual Add...) fuse
        # into the producer's output stream and cause no extra buffer
        # traffic; CIM ops and window/reduction ops pay for gathering
        # inputs to cores and scattering results back.  The buffer port is
        # per core (ISAAC-style tiled eDRAM), so an operator spanning k
        # cores streams through k ports; duplication does NOT divide the
        # traffic (replicas re-read overlapping input halos — the paper's
        # balance step likewise treats duplication as increasing transfer).
        if graph.is_cim_supported(node):
            mov_cycles = self._mov_cycles(in_bits + out_bits)  # scaled below
        elif node.op_type in _WINDOWED_OPS:
            ports = (1 if self.arch.mode is ComputingMode.CM
                     else self.arch.chip.core_number)
            mov_cycles = self._mov_cycles(in_bits + out_bits) / ports
        else:
            mov_cycles = 0.0

        if not graph.is_cim_supported(node):
            return OpProfile(
                name=node.name, op_type=node.op_type, is_cim=False,
                num_mvms=0, vxb=None, n_xb=0, cores_per_replica=0,
                mvm_cycles_base=0, row_waves=0, input_passes=0,
                alu_cycles=alu_cycles, mov_cycles=mov_cycles,
                weight_bits=0, in_bits=in_bits, out_bits=out_bits,
                fill_fraction=self._fill_fraction(graph, node),
                max_useful_dup=1,
            )

        matrix = graph.weight_matrix(node)
        assert matrix is not None
        vxb = bind(matrix, arch.xb, self.bit_binding)
        n_xb = vxb.num_crossbars
        cores_per_replica = max(1, math.ceil(n_xb / arch.core.xb_number))
        # Intra-operator time multiplexing: when one replica exceeds the
        # whole chip (typical for resource-constrained SRAM CIMs), the VXB
        # executes in sequential passes with a weight reload between passes.
        seq_passes = 1
        reload_cycles = 0.0
        weight_bits = matrix[0] * matrix[1] * matrix[2]
        if cores_per_replica > arch.chip.core_number:
            seq_passes = math.ceil(cores_per_replica / arch.chip.core_number)
            cores_per_replica = arch.chip.core_number
            weight_rows = math.ceil(
                weight_bits / (arch.xb.cols * arch.xb.cell_bits))
            rows_per_core_pass = math.ceil(
                weight_rows / (seq_passes * cores_per_replica))
            reload_cycles = rows_per_core_pass * \
                arch.xb.cell_type.write_cost_ratio
            # Only one pass worth of crossbars is ever resident.
            n_xb = min(n_xb, cores_per_replica * arch.core.xb_number)
        # Worst (fullest) vertical tile dominates the wave count: tiles run
        # in parallel on distinct crossbars, so the full-height tiles set
        # the pace.
        rows_per_tile = arch.xb.rows if vxb.v_rows > 1 else vxb.rows_used
        row_waves = arch.xb.row_waves(rows_per_tile)
        input_passes = arch.xb.input_passes(activation_bits)
        num_mvms = graph.num_mvms(node)
        return OpProfile(
            name=node.name, op_type=node.op_type, is_cim=True,
            num_mvms=num_mvms, vxb=vxb, n_xb=n_xb,
            cores_per_replica=cores_per_replica,
            mvm_cycles_base=input_passes * row_waves,
            row_waves=row_waves, input_passes=input_passes,
            alu_cycles=alu_cycles,
            mov_cycles=mov_cycles / cores_per_replica,
            weight_bits=weight_bits,
            in_bits=in_bits, out_bits=out_bits,
            fill_fraction=self._fill_fraction(graph, node),
            max_useful_dup=1 if seq_passes > 1 else max(1, num_mvms),
            seq_passes=seq_passes,
            reload_cycles=reload_cycles,
        )

    def profiles(self, graph: Graph) -> Dict[str, OpProfile]:
        """Profiles for every node, keyed by node name (memoized when a
        :class:`~repro.perf.CompileCache` is attached)."""
        key = None
        if self.cache is not None:
            key = ("profiles", self.arch, self.bit_binding,
                   graph.signature())
            hit = self.cache.get_profiles(key)
            if hit is not None:
                return hit
        result = {n.name: self.profile(graph, n)
                  for n in graph.topological()}
        if key is not None:
            self.cache.put_profiles(key, result)
        return result

    # ------------------------------------------------------------------

    def _alu_cycles(self, alu_ops: int) -> float:
        """Digital work on the visible ALUs.

        In CM only the chip-tier ALU is exposed (Fig. 4(a): one shared
        digital unit beside the cores).  In XBM/WLM every core carries its
        own ALU (Fig. 4(b)), and elementwise/digital work is data-parallel
        across them, so the aggregate rate scales with the core count.
        """
        if alu_ops <= 0:
            return 0.0
        if self.arch.mode is ComputingMode.CM:
            rate = self.arch.chip.alu_ops
        else:
            per_core = self.arch.core.alu_ops or self.arch.chip.alu_ops
            rate = None if per_core is None else \
                per_core * self.arch.chip.core_number
        if rate is None:
            return 0.0
        return alu_ops / rate

    def _mov_cycles(self, bits: int) -> float:
        """Global-buffer traffic plus average NoC hop penalty."""
        chip = self.arch.chip
        if chip.l0_bw_bits is None or bits <= 0:
            return 0.0
        base = bits / chip.l0_bw_bits
        hops = chip.core_noc.average_cost(chip.core_number)
        return base * (1.0 + hops)

    def _fill_fraction(self, graph: Graph, node: Node) -> float:
        """Fraction of this op's latency the successor must wait before
        starting (inter-operator pipeline, Section 3.3.2).

        Convolutions stream output rows: a 3x3 successor needs ~kernel rows,
        i.e. ``k / OH`` of the output.  Token-wise ops (Gemm/MatMul) need one
        token: ``1 / T``.  Reductions (pooling over everything, softmax) need
        the entire input: 1.0.
        """
        try:
            out_shape = graph.output_spec(node).shape
        except Exception:
            return 1.0
        if node.op_type in ("GlobalAveragePool", "Softmax", "Flatten",
                            "Reshape", "Transpose"):
            return 1.0
        if len(out_shape) == 4:
            oh = out_shape[2]
            k = 3  # typical receptive rows a downstream conv window needs
            return min(1.0, k / max(1, oh))
        if len(out_shape) >= 2:
            tokens = out_shape[-2] if len(out_shape) >= 2 else 1
            return min(1.0, 1.0 / max(1, tokens))
        return 1.0


def chip_fits(profiles: Dict[str, OpProfile], arch: CIMArchitecture) -> bool:
    """True when every CIM op fits simultaneously at duplication 1."""
    need = sum(p.cores_per_replica for p in profiles.values() if p.is_cim)
    return need <= arch.chip.core_number


def reconfiguration_cycles(profiles: Dict[str, OpProfile],
                           arch: CIMArchitecture) -> float:
    """Cycles to (re)load all weights of a segment into crossbars.

    SRAM rewrites at read speed; ReRAM/FLASH pay
    :attr:`CellType.write_cost_ratio`.  One cycle writes one row of one
    crossbar (``cols * cell_bits`` bits), and cores load in parallel.
    """
    xb = arch.xb
    total_rows = 0
    for p in profiles.values():
        if p.is_cim:
            total_rows += math.ceil(p.weight_bits / (xb.cols * xb.cell_bits))
    parallel_cores = max(1, arch.chip.core_number)
    return total_rows * xb.cell_type.write_cost_ratio / parallel_cores
