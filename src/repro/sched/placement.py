"""NoC-aware core placement.

The Abs-arch chip tier exposes ``core_noc`` / ``core_noc_cost`` (Fig. 5)
precisely so the compiler can reason about *where* on the die each
operator's cores sit.  This module assigns physical core IDs to every
operator replica, minimizing traffic-weighted hop distance between
producers and consumers:

* :func:`place_greedy` — operators are placed in topological order; each
  takes the free cores closest (by NoC cost) to the centroid of its
  producers' cores.  This is the classic communication-aware list
  placement used by tiled accelerators.
* :func:`place_linear` — cores assigned in index order (what a
  placement-oblivious compiler gets); the baseline for the ablation.
* :func:`placement_cost` — total traffic x hops objective, so placements
  are comparable.

The performance model uses *average* hop cost (a placement-independent
expectation); this module quantifies how much better than average a real
placement can do, and exposes the result on the schedule annotations.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..arch import CIMArchitecture
from ..arch.noc import hop_cost_array
from ..errors import CapacityError, ScheduleError
from ..graph import Graph
from ..perf import fastpath_enabled
from .schedule import Schedule

#: core assignment: node name -> list of physical core ids (all replicas).
Placement = Dict[str, List[int]]

#: Process-wide content-addressed memo of greedy placements, keyed on
#: every input the algorithm reads (graph signature, architecture value,
#: the segment's per-op core counts, region, die geometry, I/O anchor).
#: Fast-path only; ``repro bench`` clears it between runs.
_GREEDY_MEMO: Dict[Tuple, Placement] = {}


def _greedy_memo_key(schedule: Schedule, segment: int,
                     region: Optional[Sequence[int]],
                     die_cores: Optional[int],
                     io_anchor: Optional[int]) -> Tuple:
    """Content key of a greedy placement.

    The placer reads graph topology/tensors (edges and traffic — covered
    by ``Graph.signature()``), the NoC geometry (the frozen architecture
    value), each segment operator's core count and CIM-ness, and the
    region/die/anchor arguments.  Equal keys therefore guarantee equal
    placements.
    """
    decisions = tuple(
        (name, schedule.decision(name).cores,
         schedule.decision(name).profile.is_cim)
        for name in schedule.segments[segment])
    return (schedule.graph.signature(), schedule.arch, decisions,
            None if region is None else tuple(region), die_cores, io_anchor)


def _resolve_region(schedule: Schedule,
                    region: Optional[Sequence[int]]) -> List[int]:
    """Validate a physical-core region (default: the whole chip).

    A *region* lets a schedule compiled for a ``k``-core sub-chip land on
    ``k`` specific cores of a larger die (multi-tenant spatial
    partitioning): core ids may exceed the sub-chip's ``core_number`` as
    long as they are distinct and non-negative.
    """
    n = schedule.arch.chip.core_number
    if region is None:
        return list(range(n))
    cores = list(region)
    if len(set(cores)) != len(cores):
        raise ScheduleError(f"region has duplicate core ids: {cores}")
    if any(c < 0 for c in cores):
        raise ScheduleError(f"region has negative core ids: {cores}")
    if len(cores) < n:
        raise CapacityError(
            f"region supplies {len(cores)} cores; schedule was compiled "
            f"for a {n}-core chip (region mask: {cores})")
    return cores


def _hop_matrix(schedule: Schedule, cores: Sequence[int],
                die_cores: Optional[int] = None) -> List[List[float]]:
    """NoC hop costs covering every core id in ``cores``.

    ``die_cores`` is the *physical* die's core count: topology generators
    derive their geometry from it (e.g. a mesh's grid shape), so a region
    of a larger die must size the matrix by the die, not by the region's
    highest id — otherwise cores 0..15 of an 8x8 mesh would be laid out
    as a fictitious 4x4 grid.
    """
    n = max(schedule.arch.chip.core_number, max(cores, default=0) + 1,
            die_cores or 0)
    return schedule.arch.chip.core_noc.hop_matrix(n)


def _segment_cim_nodes(schedule: Schedule, segment: int) -> List[str]:
    return [name for name in schedule.segments[segment]
            if schedule.decision(name).profile.is_cim]


def _cores_needed(schedule: Schedule, name: str) -> int:
    return schedule.decision(name).cores


def traffic_bits(schedule: Schedule, producer: str, consumer: str) -> int:
    """Bits flowing from ``producer`` to ``consumer`` per inference."""
    graph = schedule.graph
    prod = graph.node(producer)
    cons = graph.node(consumer)
    total = 0
    for out in prod.outputs:
        if out in cons.inputs:
            spec = graph.tensors.get(out)
            if spec is not None:
                total += spec.size_bits
    return total


def _edges(schedule: Schedule, segment: int) -> List[Tuple[str, str, int]]:
    """CIM-to-CIM communication edges within a segment, skipping through
    digital ops (a ReLU between two convs does not break locality)."""
    graph = schedule.graph
    names = set(schedule.segments[segment])
    edges: List[Tuple[str, str, int]] = []

    def cim_consumers(node, bits):
        for succ in graph.successors(node):
            if succ.name not in names:
                continue
            if schedule.decision(succ.name).profile.is_cim:
                yield succ.name, bits
            else:
                out_bits = sum(
                    graph.tensors[o].size_bits for o in succ.outputs
                    if o in graph.tensors)
                yield from cim_consumers(succ, out_bits or bits)

    for name in _segment_cim_nodes(schedule, segment):
        node = graph.node(name)
        out_bits = sum(graph.tensors[o].size_bits for o in node.outputs
                       if o in graph.tensors)
        for consumer, bits in cim_consumers(node, out_bits):
            edges.append((name, consumer, bits))
    return edges


def placement_cost(schedule: Schedule, placement: Placement,
                   segment: int = 0,
                   die_cores: Optional[int] = None) -> float:
    """Traffic-weighted NoC cost of a placement (lower is better).

    For each producer->consumer edge the cost is ``bits`` times the mean
    pairwise hop cost between the two operators' core sets.  Pass
    ``die_cores`` when the placement sits on a region of a larger die so
    hop geometry follows the physical chip.
    """
    placed = [c for cores in placement.values() for c in cores]
    hop = _hop_matrix(schedule, placed, die_cores)
    total = 0.0
    for producer, consumer, bits in _edges(schedule, segment):
        src = placement.get(producer)
        dst = placement.get(consumer)
        if not src or not dst:
            continue
        pair_costs = [hop[a][b] for a in src for b in dst]
        total += bits * (sum(pair_costs) / len(pair_costs))
    return total


def place_linear(schedule: Schedule, segment: int = 0,
                 region: Optional[Sequence[int]] = None,
                 die_cores: Optional[int] = None) -> Placement:
    """Assign cores in plain region order (placement-oblivious baseline).

    ``region`` restricts the placement to specific physical cores of a
    (possibly larger) die; default is the whole chip in index order.
    """
    cores = _resolve_region(schedule, region)
    placement: Placement = {}
    cursor = 0
    for name in _segment_cim_nodes(schedule, segment):
        need = _cores_needed(schedule, name)
        if cursor + need > len(cores):
            raise ScheduleError(
                f"segment {segment} needs {cursor + need} cores; region "
                f"has {len(cores)}"
            )
        placement[name] = cores[cursor:cursor + need]
        cursor += need
    return placement


def _io_traffic_bits(schedule: Schedule, name: str) -> int:
    """Bits this operator exchanges with the outside of the graph: inputs
    read from graph-level inputs plus outputs that are graph outputs.

    Under multi-chip sharding (:mod:`repro.scale`) a stage subgraph's
    inputs/outputs arrive/depart over the inter-chip link, which attaches
    at one physical core — operators with off-chip traffic should sit near
    it.
    """
    graph = schedule.graph
    node = graph.node(name)
    bits = 0
    boundary_in = set(graph.inputs)
    boundary_out = set(graph.outputs)
    for inp in node.inputs:
        if inp in boundary_in:
            spec = graph.tensors.get(inp)
            if spec is not None and not spec.is_weight:
                bits += spec.size_bits
    for out in node.outputs:
        if out in boundary_out:
            spec = graph.tensors.get(out)
            if spec is not None:
                bits += spec.size_bits
    return bits


def place_greedy(schedule: Schedule, segment: int = 0,
                 region: Optional[Sequence[int]] = None,
                 die_cores: Optional[int] = None,
                 io_anchor: Optional[int] = None) -> Placement:
    """Communication-aware greedy placement.

    Operators are visited in topological order.  The first operator takes
    the lowest-numbered free cores; every subsequent operator takes the
    free cores with the smallest total NoC cost to the cores of its
    already-placed producers (weighted by traffic).  ``region`` restricts
    candidates to specific physical cores of a (possibly larger) die;
    ``die_cores`` sizes the NoC geometry to that die.

    ``io_anchor`` names the physical core where off-chip I/O attaches
    (the inter-chip link port under :mod:`repro.scale` sharding):
    operators whose tensors cross the graph boundary are additionally
    attracted to it, weighted by their boundary traffic.

    The fast path fetches the hop geometry from the process-wide
    :func:`~repro.arch.noc.hop_cost_array` memo, scores candidates as
    array expressions, and memoizes whole placements content-addressed
    (:data:`_GREEDY_MEMO`) — all bit-identical to the scalar walk below.
    """
    cores = _resolve_region(schedule, region)
    if fastpath_enabled():
        key = _greedy_memo_key(schedule, segment, region, die_cores,
                               io_anchor)
        hit = _GREEDY_MEMO.get(key)
        if hit is None:
            hit = _place_greedy_fast(schedule, segment, cores, die_cores,
                                     io_anchor)
            _GREEDY_MEMO[key] = hit
        return {name: list(chosen) for name, chosen in hit.items()}
    hop = _hop_matrix(schedule, cores if io_anchor is None
                      else [*cores, io_anchor], die_cores)
    free = set(cores)
    placement: Placement = {}
    inbound: Dict[str, List[Tuple[str, int]]] = {}
    for producer, consumer, bits in _edges(schedule, segment):
        inbound.setdefault(consumer, []).append((producer, bits))

    for name in _segment_cim_nodes(schedule, segment):
        need = _cores_needed(schedule, name)
        if need > len(free):
            raise ScheduleError(
                f"segment {segment}: not enough free cores for {name!r}"
            )
        anchors: List[Tuple[int, int]] = []   # (core, weight)
        for producer, bits in inbound.get(name, []):
            for core in placement.get(producer, []):
                anchors.append((core, bits))
        if io_anchor is not None:
            io_bits = _io_traffic_bits(schedule, name)
            if io_bits > 0:
                anchors.append((io_anchor, io_bits))
        if anchors:
            def attraction(core: int) -> Tuple[float, int]:
                return (sum(w * hop[a][core] for a, w in anchors), core)

            chosen = sorted(free, key=attraction)[:need]
        else:
            chosen = sorted(free)[:need]
        placement[name] = sorted(chosen)
        free.difference_update(chosen)
    return placement


def _place_greedy_fast(schedule: Schedule, segment: int,
                       cores: Sequence[int],
                       die_cores: Optional[int],
                       io_anchor: Optional[int]) -> Placement:
    """Vectorized body of :func:`place_greedy`.

    Bit-identical to the scalar walk: the hop geometry is sized by the
    same rule (so mesh grids never change shape), candidate scoring
    applies the same anchor-order additions via ``np.add.accumulate``,
    and ``np.lexsort`` reproduces the scalar ``(cost, core)`` tuple
    sort's tie-breaking.
    """
    n = max(schedule.arch.chip.core_number, max(cores, default=0) + 1,
            die_cores or 0)
    if io_anchor is not None:
        n = max(n, io_anchor + 1)
    hop = hop_cost_array(schedule.arch.chip.core_noc, n)
    base = np.sort(np.asarray(list(cores), dtype=np.int64))
    free_mask = np.ones(base.size, dtype=bool)
    placement: Placement = {}
    inbound: Dict[str, List[Tuple[str, int]]] = {}
    for producer, consumer, bits in _edges(schedule, segment):
        inbound.setdefault(consumer, []).append((producer, bits))

    for name in _segment_cim_nodes(schedule, segment):
        need = _cores_needed(schedule, name)
        candidates = base[free_mask]   # ascending == sorted(free)
        if need > candidates.size:
            raise ScheduleError(
                f"segment {segment}: not enough free cores for {name!r}"
            )
        anchors: List[Tuple[int, int]] = []   # (core, weight)
        for producer, bits in inbound.get(name, []):
            for core in placement.get(producer, []):
                anchors.append((core, bits))
        if io_anchor is not None:
            io_bits = _io_traffic_bits(schedule, name)
            if io_bits > 0:
                anchors.append((io_anchor, io_bits))
        if anchors:
            a_idx = np.asarray([a for a, _ in anchors], dtype=np.int64)
            weights = np.asarray([float(w) for _, w in anchors])
            weighted = weights[:, None] * hop[a_idx][:, candidates]
            costs = np.add.accumulate(weighted, axis=0)[-1]
            pick = np.lexsort((candidates, costs))[:need]
        else:
            pick = np.arange(need)
        placement[name] = sorted(int(c) for c in candidates[pick])
        free_mask[np.flatnonzero(free_mask)[pick]] = False
    return placement


def annotate_placement(schedule: Schedule, segment: int = 0,
                       strategy: str = "greedy",
                       region: Optional[Sequence[int]] = None,
                       die_cores: Optional[int] = None,
                       io_anchor: Optional[int] = None) -> Placement:
    """Compute a placement and write it into node annotations.

    ``strategy`` is ``"greedy"`` or ``"linear"``; ``region`` optionally
    pins the placement to specific physical cores of a die with
    ``die_cores`` cores; ``io_anchor`` (greedy only) attracts
    boundary-crossing operators toward the off-chip link port.
    """
    if strategy == "greedy":
        placement = place_greedy(schedule, segment, region=region,
                                 die_cores=die_cores, io_anchor=io_anchor)
    elif strategy == "linear":
        placement = place_linear(schedule, segment, region=region,
                                 die_cores=die_cores)
    else:
        raise ScheduleError(f"unknown placement strategy {strategy!r}")
    for name, cores in placement.items():
        schedule.graph.node(name).annotations["cores_placed"] = list(cores)
    return placement
