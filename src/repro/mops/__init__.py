"""Meta-operator sets, flows, BNF codegen, and validation (Section 3.3)."""

from .codegen import emit, parse_flow
from .flow import MetaOperatorFlow
from .ops import (
    CustomOp,
    DigitalOp,
    MetaOp,
    Mov,
    ParallelBlock,
    ReadCore,
    ReadRow,
    ReadXb,
    WriteRow,
    WriteXb,
    parallel,
    params_tuple,
)
from .validate import FlowValidator

__all__ = [
    "CustomOp",
    "DigitalOp",
    "FlowValidator",
    "MetaOp",
    "MetaOperatorFlow",
    "Mov",
    "ParallelBlock",
    "ReadCore",
    "ReadRow",
    "ReadXb",
    "WriteRow",
    "WriteXb",
    "emit",
    "parallel",
    "params_tuple",
    "parse_flow",
]
