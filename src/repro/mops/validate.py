"""Static validation of meta-operator flows against an architecture.

The validator enforces the contract between compiler output and hardware:
addresses in range for the target tiers, mode-appropriate meta-operators
(a CM chip cannot execute ``cim.readxb``), crossbars written before read,
WLM row ranges within ``parallel_row`` per activation, and no crossbar
activated twice inside one ``parallel`` step.
"""

from __future__ import annotations

from typing import List, Set

from ..arch import CIMArchitecture, ComputingMode
from ..errors import CodegenError
from .flow import MetaOperatorFlow
from .ops import (
    CustomOp,
    DigitalOp,
    MetaOp,
    Mov,
    ParallelBlock,
    ReadCore,
    ReadRow,
    ReadXb,
    WriteRow,
    WriteXb,
)


class FlowValidator:
    """Validate one flow for one architecture.

    ``validate`` raises :class:`CodegenError` on the first violation and
    returns a statistics dict on success.
    """

    def __init__(self, arch: CIMArchitecture) -> None:
        self.arch = arch

    # ------------------------------------------------------------------

    def validate(self, flow: MetaOperatorFlow) -> dict:
        written: Set[int] = set()           # crossbars holding weights
        written_rows: Set[tuple] = set()    # (xb, row) pairs holding weights
        reads = writes = 0
        for step, stmt in enumerate(flow.statements):
            body = stmt.body if isinstance(stmt, ParallelBlock) else (stmt,)
            activated: Set[int] = set()
            for op in body:
                self._check_mode(op, step)
                self._check_ranges(op, step)
                if isinstance(op, WriteXb):
                    self._check_payload(flow, op.mat, step)
                    written.add(op.xbaddr)
                    writes += 1
                elif isinstance(op, WriteRow):
                    self._check_payload(flow, op.value, step)
                    for r in range(op.row, op.row + op.length):
                        written_rows.add((op.xbaddr, r))
                    written.add(op.xbaddr)
                    writes += 1
                elif isinstance(op, ReadXb):
                    for xb in range(op.xbaddr, op.xbaddr + op.length):
                        if xb not in written:
                            raise CodegenError(
                                f"step {step}: cim.readxb on crossbar {xb} "
                                f"before any cim.writexb"
                            )
                        self._claim(activated, xb, step)
                    reads += 1
                elif isinstance(op, ReadRow):
                    for r in range(op.row, op.row + op.length):
                        if (op.xbaddr, r) not in written_rows \
                                and op.xbaddr not in written:
                            raise CodegenError(
                                f"step {step}: cim.readrow on xb{op.xbaddr} "
                                f"row {r} before it is written"
                            )
                    self._claim(activated, op.xbaddr, step)
                    reads += 1
                elif isinstance(op, ReadCore):
                    reads += 1
        return {"steps": len(flow.statements), "cim_reads": reads,
                "cim_writes": writes}

    # ------------------------------------------------------------------

    def _claim(self, activated: Set[int], xb: int, step: int) -> None:
        if xb in activated:
            raise CodegenError(
                f"step {step}: crossbar {xb} activated twice in one "
                f"parallel step"
            )
        activated.add(xb)

    def _check_mode(self, op: MetaOp, step: int) -> None:
        mode = self.arch.mode
        if isinstance(op, ReadCore) and mode is not ComputingMode.CM:
            # readcore is the CM primitive; finer-grained chips expose
            # crossbars/rows instead, and the compiler should use those.
            raise CodegenError(
                f"step {step}: cim.readcore is a CM meta-operator but "
                f"architecture {self.arch.name} is {mode}"
            )
        if isinstance(op, (ReadXb, WriteXb)) and mode is ComputingMode.CM:
            raise CodegenError(
                f"step {step}: {op.mnemonic} requires XBM/WLM but "
                f"architecture {self.arch.name} is CM"
            )
        if isinstance(op, (ReadRow, WriteRow)) and mode is not ComputingMode.WLM:
            raise CodegenError(
                f"step {step}: {op.mnemonic} requires WLM but "
                f"architecture {self.arch.name} is {mode}"
            )

    def _check_ranges(self, op: MetaOp, step: int) -> None:
        total_xbs = self.arch.total_crossbars
        if isinstance(op, ReadCore):
            if op.coreaddr >= self.arch.chip.core_number:
                raise CodegenError(
                    f"step {step}: coreaddr {op.coreaddr} out of range "
                    f"(chip has {self.arch.chip.core_number} cores)"
                )
        elif isinstance(op, ReadXb):
            if op.xbaddr + op.length > total_xbs:
                raise CodegenError(
                    f"step {step}: crossbar range "
                    f"[{op.xbaddr}, {op.xbaddr + op.length}) exceeds "
                    f"{total_xbs} crossbars"
                )
        elif isinstance(op, WriteXb):
            if op.xbaddr >= total_xbs:
                raise CodegenError(
                    f"step {step}: xbaddr {op.xbaddr} out of range"
                )
        elif isinstance(op, (ReadRow, WriteRow)):
            if op.xbaddr >= total_xbs:
                raise CodegenError(
                    f"step {step}: xbaddr {op.xbaddr} out of range"
                )
            if op.row + op.length > self.arch.xb.rows:
                raise CodegenError(
                    f"step {step}: rows [{op.row}, {op.row + op.length}) "
                    f"exceed crossbar height {self.arch.xb.rows}"
                )
            if isinstance(op, ReadRow) and \
                    op.length > self.arch.xb.effective_parallel_row:
                raise CodegenError(
                    f"step {step}: cim.readrow activates {op.length} rows "
                    f"but parallel_row is "
                    f"{self.arch.xb.effective_parallel_row}"
                )

    def _check_payload(self, flow: MetaOperatorFlow, symbol: str,
                       step: int) -> None:
        if symbol not in flow.constants:
            raise CodegenError(
                f"step {step}: write references undefined constant "
                f"{symbol!r}"
            )
