"""Meta-operator set (Section 3.2/3.3, Figs. 10/11/13/15).

Meta-operators are the compiler's output vocabulary — the "hardware
activation" primitives of a CIM chip:

* MOP_CM   — :class:`ReadCore` (``cim.readcore``): a core executes one whole
  DNN operator.
* MOP_XBM  — :class:`ReadXb` / :class:`WriteXb` (``cim.readxb`` /
  ``cim.writexb``): crossbars perform/load one MVM tile.
* MOP_WLM  — :class:`ReadRow` / :class:`WriteRow` (``cim.readrow`` /
  ``cim.writerow``): partial-row activation and row writes.
* DCOM     — :class:`DigitalOp`: ALU computation (``relu``, ``add``, ...).
* DMOV     — :class:`Mov`: buffer-to-buffer data movement.
* :class:`ParallelBlock` — the ``parallel { ... }`` construct of Fig. 10.

Users may define custom hardware operators with :class:`CustomOp` ("users
have the flexibility to extend meta operators, aligning them with the
hardware-supported functions").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import CodegenError


class MetaOp:
    """Base class for all meta-operators (leaf statements of a flow)."""

    #: Mnemonic used by the textual syntax (overridden per class).
    mnemonic: str = "?"

    @property
    def is_cim(self) -> bool:
        """True for MOP_* crossbar/core activations (vs. DCOM / DMOV)."""
        return isinstance(self, (ReadCore, ReadXb, WriteXb, ReadRow, WriteRow,
                                 CustomOp))


@dataclass(frozen=True)
class ReadCore(MetaOp):
    """``cim.readcore(type, params, coreaddr, src, dst)`` (Fig. 11): data
    from buffer ``src`` undergoes operation ``op_type`` (e.g. convolution)
    on core ``coreaddr``; the result lands in buffer ``dst``."""

    op_type: str
    coreaddr: int
    src: int
    dst: int
    params: Tuple[Tuple[str, Any], ...] = ()

    mnemonic = "cim.readcore"

    def __post_init__(self) -> None:
        if self.coreaddr < 0 or self.src < 0 or self.dst < 0:
            raise CodegenError(f"negative address in {self!r}")


@dataclass(frozen=True)
class ReadXb(MetaOp):
    """``cim.readxb(xbaddr, len)`` (Fig. 13): the ``length`` crossbars from
    ``xbaddr`` multiply the staged input by their resident weights."""

    xbaddr: int
    length: int = 1

    mnemonic = "cim.readxb"

    def __post_init__(self) -> None:
        if self.xbaddr < 0 or self.length < 1:
            raise CodegenError(f"bad crossbar range in {self!r}")


@dataclass(frozen=True)
class WriteXb(MetaOp):
    """``cim.writexb(xbaddr, mat)`` (Fig. 13): write matrix ``mat`` (a
    symbolic name; payloads live in the flow's constant pool) into crossbar
    ``xbaddr``."""

    xbaddr: int
    mat: str

    mnemonic = "cim.writexb"

    def __post_init__(self) -> None:
        if self.xbaddr < 0:
            raise CodegenError(f"negative crossbar address in {self!r}")
        if not self.mat:
            raise CodegenError("writexb needs a matrix symbol")


@dataclass(frozen=True)
class ReadRow(MetaOp):
    """``cim.readrow(rowaddr, len)`` (Fig. 15): activate ``length`` wordlines
    of crossbar ``xbaddr`` starting at ``row``; the partial MVM of those rows
    accumulates on the bitlines."""

    xbaddr: int
    row: int
    length: int = 1

    mnemonic = "cim.readrow"

    def __post_init__(self) -> None:
        if self.xbaddr < 0 or self.row < 0 or self.length < 1:
            raise CodegenError(f"bad row range in {self!r}")


@dataclass(frozen=True)
class WriteRow(MetaOp):
    """``cim.writerow(rowaddr, value)`` (Fig. 15): write ``value`` (symbolic
    constant-pool name) into ``length`` rows of ``xbaddr`` from ``row``."""

    xbaddr: int
    row: int
    length: int
    value: str

    mnemonic = "cim.writerow"

    def __post_init__(self) -> None:
        if self.xbaddr < 0 or self.row < 0 or self.length < 1:
            raise CodegenError(f"bad row range in {self!r}")
        if not self.value:
            raise CodegenError("writerow needs a value symbol")


@dataclass(frozen=True)
class Mov(MetaOp):
    """``mov(src, dst, len)`` (DMOV, Fig. 10): move ``length`` elements
    between buffer addresses.  ``src_space``/``dst_space`` name the buffer
    tier ("L0" global, "L1" core-local)."""

    src: int
    dst: int
    length: int
    src_space: str = "L0"
    dst_space: str = "L1"

    mnemonic = "mov"

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0 or self.length < 1:
            raise CodegenError(f"bad mov range in {self!r}")
        for space in (self.src_space, self.dst_space):
            if space not in ("L0", "L1"):
                raise CodegenError(f"unknown buffer space {space!r}")


@dataclass(frozen=True)
class DigitalOp(MetaOp):
    """DCOM (Fig. 10): ``relu(src, dst, len)``, ``add(src1, src2, dst,
    len)``, and friends — ALU computation on buffered data."""

    fn: str
    srcs: Tuple[int, ...]
    dst: int
    length: int
    params: Tuple[Tuple[str, Any], ...] = ()

    mnemonic = "dcom"

    def __post_init__(self) -> None:
        if not self.fn:
            raise CodegenError("digital op needs a function name")
        if not self.srcs or self.dst < 0 or self.length < 1:
            raise CodegenError(f"bad operands in {self!r}")


@dataclass(frozen=True)
class CustomOp(MetaOp):
    """A user-defined hardware operator (extensible meta-operator set)."""

    fn: str
    args: Tuple[Tuple[str, Any], ...] = ()

    mnemonic = "custom"

    def __post_init__(self) -> None:
        if not self.fn:
            raise CodegenError("custom op needs a name")


@dataclass(frozen=True)
class ParallelBlock(MetaOp):
    """``parallel { <operators>* }`` (Fig. 10): the body statements execute
    concurrently; the block completes when all members complete."""

    body: Tuple[MetaOp, ...]

    mnemonic = "parallel"

    def __post_init__(self) -> None:
        if not self.body:
            raise CodegenError("empty parallel block")
        if any(isinstance(op, ParallelBlock) for op in self.body):
            raise CodegenError("parallel blocks do not nest")


Statement = MetaOp


def parallel(ops: Sequence[MetaOp]) -> MetaOp:
    """Wrap ``ops`` in a :class:`ParallelBlock` (pass-through for one op)."""
    ops = tuple(ops)
    if len(ops) == 1:
        return ops[0]
    return ParallelBlock(ops)


def params_tuple(params: Optional[Dict[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
    """Normalize a params dict to the hashable tuple form used by mops."""
    if not params:
        return ()
    return tuple(sorted(params.items()))
