"""Textual code generation and parsing for meta-operator flows.

Renders flows in the paper's BNF syntax (Fig. 10 and the Fig. 16 examples)::

    parallel {
      cim.readcore(type=conv, coreaddr=0, src=0, dst=3072)
      cim.readcore(type=conv, coreaddr=1, src=1440, dst=19456)
    }
    relu(src=3072, dst=35840, len=32768)
    cim.writerow(rowaddr=xb0_row0~15, value=A)
    cim.readrow(rowaddr=xb0_row0, len=16)

The emitted text parses back exactly (:func:`parse_flow` is the inverse of
:func:`emit`), which the test suite verifies property-style.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Tuple

from ..errors import CodegenError
from .flow import MetaOperatorFlow
from .ops import (
    CustomOp,
    DigitalOp,
    MetaOp,
    Mov,
    ParallelBlock,
    ReadCore,
    ReadRow,
    ReadXb,
    WriteRow,
    WriteXb,
)

_INDENT = "  "


def emit(flow: MetaOperatorFlow) -> str:
    """Render a flow as meta-operator assembly text."""
    lines: List[str] = []
    for stmt in flow.statements:
        if isinstance(stmt, ParallelBlock):
            lines.append("parallel {")
            for op in stmt.body:
                lines.append(_INDENT + _emit_leaf(op))
            lines.append("}")
        else:
            lines.append(_emit_leaf(stmt))
    return "\n".join(lines) + ("\n" if lines else "")


def _fmt_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float, str)):
        return str(value)
    if isinstance(value, (tuple, list)):
        return "[" + " ".join(_fmt_value(v) for v in value) + "]"
    raise CodegenError(f"cannot render parameter value {value!r}")


def _fmt_params(params: Tuple[Tuple[str, Any], ...]) -> str:
    return "{" + " ".join(f"{k}:{_fmt_value(v)}" for k, v in params) + "}"


def _emit_leaf(op: MetaOp) -> str:
    if isinstance(op, ReadCore):
        parts = [f"type={op.op_type}"]
        if op.params:
            parts.append(f"params={_fmt_params(op.params)}")
        parts += [f"coreaddr={op.coreaddr}", f"src={op.src}", f"dst={op.dst}"]
        return f"cim.readcore({', '.join(parts)})"
    if isinstance(op, ReadXb):
        return f"cim.readxb(xbaddr={op.xbaddr}, len={op.length})"
    if isinstance(op, WriteXb):
        return f"cim.writexb(xbaddr={op.xbaddr}, mat={op.mat})"
    if isinstance(op, ReadRow):
        return (f"cim.readrow(rowaddr=xb{op.xbaddr}_row{op.row}, "
                f"len={op.length})")
    if isinstance(op, WriteRow):
        hi = op.row + op.length - 1
        return (f"cim.writerow(rowaddr=xb{op.xbaddr}_row{op.row}~{hi}, "
                f"value={op.value})")
    if isinstance(op, Mov):
        return (f"mov(src={op.src_space}:{op.src}, dst={op.dst_space}:{op.dst}, "
                f"len={op.length})")
    if isinstance(op, DigitalOp):
        srcs = ", ".join(f"src{i + 1}={s}" for i, s in enumerate(op.srcs)) \
            if len(op.srcs) > 1 else f"src={op.srcs[0]}"
        extra = f", params={_fmt_params(op.params)}" if op.params else ""
        return f"{op.fn}({srcs}, dst={op.dst}, len={op.length}{extra})"
    if isinstance(op, CustomOp):
        args = ", ".join(f"{k}={_fmt_value(v)}" for k, v in op.args)
        return f"custom.{op.fn}({args})"
    raise CodegenError(f"cannot emit statement {op!r}")


# ---------------------------------------------------------------------------
# Parsing (inverse of emit)
# ---------------------------------------------------------------------------

_CALL_RE = re.compile(r"^\s*([A-Za-z_][\w.]*)\((.*)\)\s*$")
_ROWADDR_RE = re.compile(r"^xb(\d+)_row(\d+)(?:~(\d+))?$")


def parse_flow(text: str, name: str = "parsed") -> MetaOperatorFlow:
    """Parse meta-operator assembly text back into a flow.

    Constant payloads are *not* reconstructed (the text stores symbols only);
    re-attach them via :attr:`MetaOperatorFlow.constants` when executing a
    parsed flow.
    """
    flow = MetaOperatorFlow(name)
    in_parallel = False
    body: List[MetaOp] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("//") or line.startswith("#"):
            continue
        if line == "parallel {":
            if in_parallel:
                raise CodegenError(f"line {lineno}: nested parallel")
            in_parallel, body = True, []
            continue
        if line == "}":
            if not in_parallel:
                raise CodegenError(f"line {lineno}: unmatched '}}'")
            flow.append(ParallelBlock(tuple(body)))
            in_parallel, body = False, []
            continue
        op = _parse_leaf(line, lineno)
        if in_parallel:
            body.append(op)
        else:
            flow.append(op)
    if in_parallel:
        raise CodegenError("unterminated parallel block")
    return flow


def _split_args(arg_text: str) -> Dict[str, str]:
    args: Dict[str, str] = {}
    depth = 0
    current = ""
    pieces: List[str] = []
    for ch in arg_text:
        if ch == "," and depth == 0:
            pieces.append(current)
            current = ""
            continue
        if ch in "{[":
            depth += 1
        elif ch in "}]":
            depth -= 1
        current += ch
    if current.strip():
        pieces.append(current)
    for piece in pieces:
        if "=" not in piece:
            raise CodegenError(f"malformed argument {piece!r}")
        key, value = piece.split("=", 1)
        args[key.strip()] = value.strip()
    return args


def _parse_params(text: str) -> Tuple[Tuple[str, Any], ...]:
    inner = text.strip()
    if not (inner.startswith("{") and inner.endswith("}")):
        raise CodegenError(f"malformed params {text!r}")
    inner = inner[1:-1].strip()
    if not inner:
        return ()
    out: List[Tuple[str, Any]] = []
    for item in inner.split(" "):
        if ":" not in item:
            raise CodegenError(f"malformed params entry {item!r}")
        key, value = item.split(":", 1)
        out.append((key, _parse_scalar(value)))
    return tuple(out)


def _parse_scalar(text: str) -> Any:
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _parse_leaf(line: str, lineno: int) -> MetaOp:
    match = _CALL_RE.match(line)
    if not match:
        raise CodegenError(f"line {lineno}: cannot parse {line!r}")
    fn, arg_text = match.group(1), match.group(2)
    args = _split_args(arg_text)

    if fn == "cim.readcore":
        params = _parse_params(args["params"]) if "params" in args else ()
        return ReadCore(args["type"], int(args["coreaddr"]),
                        int(args["src"]), int(args["dst"]), params)
    if fn == "cim.readxb":
        return ReadXb(int(args["xbaddr"]), int(args["len"]))
    if fn == "cim.writexb":
        return WriteXb(int(args["xbaddr"]), args["mat"])
    if fn == "cim.readrow":
        xb, row, _ = _parse_rowaddr(args["rowaddr"], lineno)
        return ReadRow(xb, row, int(args["len"]))
    if fn == "cim.writerow":
        xb, row, hi = _parse_rowaddr(args["rowaddr"], lineno)
        if hi is None:
            hi = row
        return WriteRow(xb, row, hi - row + 1, args["value"])
    if fn == "mov":
        src_space, src = args["src"].split(":")
        dst_space, dst = args["dst"].split(":")
        return Mov(int(src), int(dst), int(args["len"]), src_space, dst_space)
    if fn.startswith("custom."):
        items = tuple((k, _parse_scalar(v)) for k, v in args.items())
        return CustomOp(fn[len("custom."):], items)
    # anything else is a DCOM function
    srcs = []
    if "src" in args:
        srcs.append(int(args["src"]))
    else:
        i = 1
        while f"src{i}" in args:
            srcs.append(int(args[f"src{i}"]))
            i += 1
    if not srcs:
        raise CodegenError(f"line {lineno}: DCOM op without sources: {line!r}")
    params = _parse_params(args["params"]) if "params" in args else ()
    return DigitalOp(fn, tuple(srcs), int(args["dst"]), int(args["len"]),
                     params)


def _parse_rowaddr(text: str, lineno: int) -> Tuple[int, int, Any]:
    match = _ROWADDR_RE.match(text)
    if not match:
        raise CodegenError(f"line {lineno}: bad rowaddr {text!r}")
    hi = int(match.group(3)) if match.group(3) is not None else None
    return int(match.group(1)), int(match.group(2)), hi
