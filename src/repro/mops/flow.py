"""Meta-operator flow: the compiler's output program.

A :class:`MetaOperatorFlow` is an ordered list of statements (meta-operators
or ``parallel`` blocks) plus a constant pool holding the matrix payloads
referenced symbolically by ``cim.writexb`` / ``cim.writerow``.  The
functional simulator executes flows; the codegen module renders them in the
paper's BNF syntax.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..errors import CodegenError
from .ops import (
    DigitalOp,
    MetaOp,
    Mov,
    ParallelBlock,
    ReadCore,
    ReadRow,
    ReadXb,
    WriteRow,
    WriteXb,
)


class MetaOperatorFlow:
    """An executable sequence of meta-operators.

    Parameters
    ----------
    name:
        Flow label (usually ``"<model>@<arch>"``).
    statements:
        Top-level statements in program order.
    constants:
        Symbol -> ndarray pool for write payloads.
    """

    def __init__(self, name: str,
                 statements: Optional[Sequence[MetaOp]] = None,
                 constants: Optional[Dict[str, np.ndarray]] = None) -> None:
        self.name = name
        self.statements: List[MetaOp] = list(statements or [])
        self.constants: Dict[str, np.ndarray] = dict(constants or {})

    # ------------------------------------------------------------------

    def append(self, stmt: MetaOp) -> None:
        """Append one statement."""
        self.statements.append(stmt)

    def extend(self, stmts: Sequence[MetaOp]) -> None:
        """Append several statements."""
        self.statements.extend(stmts)

    def add_constant(self, symbol: str, value: np.ndarray) -> str:
        """Register a write payload; returns the symbol for convenience."""
        if symbol in self.constants:
            raise CodegenError(f"constant {symbol!r} registered twice")
        self.constants[symbol] = np.asarray(value)
        return symbol

    def constant(self, symbol: str) -> np.ndarray:
        """Fetch a payload by symbol."""
        try:
            return self.constants[symbol]
        except KeyError:
            raise CodegenError(f"undefined constant {symbol!r}") from None

    # ------------------------------------------------------------------
    # Iteration & statistics
    # ------------------------------------------------------------------

    def leaves(self) -> Iterator[MetaOp]:
        """All leaf meta-operators in execution order (parallel bodies are
        yielded in listed order)."""
        for stmt in self.statements:
            if isinstance(stmt, ParallelBlock):
                yield from stmt.body
            else:
                yield stmt

    def count(self, op_class: type) -> int:
        """Number of leaf operators of a given class."""
        return sum(1 for op in self.leaves() if isinstance(op, op_class))

    def stats(self) -> Dict[str, int]:
        """Mnemonic -> count summary (plus totals)."""
        counts: Dict[str, int] = {}
        for op in self.leaves():
            key = op.fn if isinstance(op, DigitalOp) else op.mnemonic
            counts[key] = counts.get(key, 0) + 1
        counts["total"] = sum(
            v for k, v in counts.items() if k != "total"
        )
        counts["steps"] = len(self.statements)
        return counts

    def max_parallel_width(self) -> int:
        """Largest number of concurrently-issued leaf operators.

        This is the quantity the MVM-grained pipeline minimizes: the peak
        count of simultaneously-activated crossbars (Section 3.3.3).
        """
        width = 0
        for stmt in self.statements:
            if isinstance(stmt, ParallelBlock):
                width = max(width, len(stmt.body))
            else:
                width = max(width, 1)
        return width

    def peak_active_crossbars(self) -> int:
        """Peak number of crossbars activated in one step."""
        peak = 0
        for stmt in self.statements:
            body = stmt.body if isinstance(stmt, ParallelBlock) else (stmt,)
            active = 0
            for op in body:
                if isinstance(op, ReadXb):
                    active += op.length
                elif isinstance(op, (ReadRow, WriteRow, WriteXb)):
                    active += 1
            peak = max(peak, active)
        return peak

    def __len__(self) -> int:
        return len(self.statements)

    def __iter__(self) -> Iterator[MetaOp]:
        return iter(self.statements)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MetaOperatorFlow({self.name!r}, steps={len(self.statements)}, "
                f"constants={len(self.constants)})")
