"""VGG family (Simonyan & Zisserman) as graph-IR builders.

``vgg16`` is the PUMA comparison workload (Fig. 20(b)); ``vgg7`` is the
benchmark used against Jain et al.'s CIM macro (Fig. 20(c)).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

from ..graph import Graph, GraphBuilder

#: Layer configs: ints are conv output channels, "M" is a 2x2 maxpool.
_CONFIGS = {
    "vgg11": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg13": [64, 64, "M", 128, 128, "M", 256, 256, "M", 512, 512, "M",
              512, 512, "M"],
    "vgg16": [64, 64, "M", 128, 128, "M", 256, 256, 256, "M", 512, 512, 512,
              "M", 512, 512, 512, "M"],
    "vgg19": [64, 64, "M", 128, 128, "M", 256, 256, 256, 256, "M", 512, 512,
              512, 512, "M", 512, 512, 512, 512, "M"],
}


def _build_vgg(
    name: str,
    config: Sequence[Union[int, str]],
    classifier: Sequence[int],
    input_shape: Tuple[int, int, int, int],
    num_classes: int,
    bits: int,
) -> Graph:
    b = GraphBuilder(name, bits=bits)
    x = b.input("input", input_shape)
    conv_idx = 0
    for item in config:
        if item == "M":
            x = b.maxpool(x, kernel=2, stride=2)
        else:
            conv_idx += 1
            x = b.conv(x, out_channels=int(item), kernel=3, padding=1,
                       name=f"conv{conv_idx}")
            x = b.relu(x, name=f"relu{conv_idx}")
    x = b.flatten(x)
    for i, width in enumerate(classifier, start=1):
        x = b.gemm(x, width, name=f"fc{i}")
        x = b.relu(x, name=f"fc{i}_relu")
    x = b.gemm(x, num_classes, name="classifier")
    return b.build(outputs=[x])


def vgg(depth: int, input_shape: Tuple[int, int, int, int] = (1, 3, 224, 224),
        num_classes: int = 1000, bits: int = 8) -> Graph:
    """Build ``vgg{depth}`` at ImageNet scale (depth in 11/13/16/19)."""
    key = f"vgg{depth}"
    if key not in _CONFIGS:
        raise ValueError(f"unsupported VGG depth {depth}; choose 11/13/16/19")
    return _build_vgg(key, _CONFIGS[key], [4096, 4096], input_shape,
                      num_classes, bits)


def vgg11(**kwargs) -> Graph:
    """VGG-11 at ImageNet scale."""
    return vgg(11, **kwargs)


def vgg13(**kwargs) -> Graph:
    """VGG-13 at ImageNet scale."""
    return vgg(13, **kwargs)


def vgg16(**kwargs) -> Graph:
    """VGG-16 at ImageNet scale (PUMA comparison workload, Fig. 20(b))."""
    return vgg(16, **kwargs)


def vgg19(**kwargs) -> Graph:
    """VGG-19 at ImageNet scale."""
    return vgg(19, **kwargs)


def vgg7(input_shape: Tuple[int, int, int, int] = (1, 3, 32, 32),
         num_classes: int = 10, bits: int = 8) -> Graph:
    """VGG-7: the 6-conv + 1-FC CIFAR-scale network used to evaluate Jain et
    al.'s WLM CIM macro (Fig. 20(c))."""
    config: List[Union[int, str]] = [128, 128, "M", 256, 256, "M", 512, 512, "M"]
    return _build_vgg("vgg7", config, [1024], input_shape, num_classes, bits)
