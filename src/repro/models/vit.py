"""Vision Transformer (Dosovitskiy et al.) as a graph-IR builder.

ViT is the Section 4.4 sensitivity-study workload (Fig. 22).  Linear
projections (QKV, attention output, MLP) are CIM-supported Gemm nodes with
static weights; attention score/value matmuls have dynamic operands and are
MatMul nodes executed on tier ALUs (ReRAM cannot rewrite crossbars per token,
Section 2.1).
"""

from __future__ import annotations

from typing import Tuple

from ..graph import Graph, GraphBuilder

_VARIANTS = {
    # name: (depth, hidden dim, mlp dim, heads)
    "tiny": (12, 192, 768, 3),
    "small": (12, 384, 1536, 6),
    "base": (12, 768, 3072, 12),
    "large": (24, 1024, 4096, 16),
}


def _attention(b: GraphBuilder, x: str, dim: int, heads: int, tokens: int,
               prefix: str) -> str:
    head_dim = dim // heads
    qkv = b.gemm(x, 3 * dim, name=f"{prefix}_qkv")
    q = b.slice(qkv, axis=2, start=0, end=dim, name=f"{prefix}_q")
    k = b.slice(qkv, axis=2, start=dim, end=2 * dim, name=f"{prefix}_k")
    v = b.slice(qkv, axis=2, start=2 * dim, end=3 * dim, name=f"{prefix}_v")
    # (1, T, D) -> (heads, T, head_dim)
    q = b.reshape(q, (heads, tokens, head_dim), name=f"{prefix}_q_heads")
    k = b.reshape(k, (heads, tokens, head_dim), name=f"{prefix}_k_heads")
    v = b.reshape(v, (heads, tokens, head_dim), name=f"{prefix}_v_heads")
    kt = b.transpose(k, (0, 2, 1), name=f"{prefix}_kT")
    scores = b.matmul(q, kt, name=f"{prefix}_scores")
    probs = b.softmax(scores, name=f"{prefix}_softmax")
    ctx = b.matmul(probs, v, name=f"{prefix}_ctx")
    ctx = b.reshape(ctx, (1, tokens, dim), name=f"{prefix}_merge")
    return b.gemm(ctx, dim, name=f"{prefix}_proj")


def _mlp(b: GraphBuilder, x: str, dim: int, mlp_dim: int, prefix: str) -> str:
    y = b.gemm(x, mlp_dim, name=f"{prefix}_fc1")
    y = b.gelu(y, name=f"{prefix}_gelu")
    return b.gemm(y, dim, name=f"{prefix}_fc2")


def vit(variant: str = "base",
        image_size: int = 224, patch_size: int = 16,
        num_classes: int = 1000, bits: int = 8) -> Graph:
    """Build a ViT variant ("tiny"/"small"/"base"/"large") at ImageNet scale.

    The patch embedding is a ``patch_size``-strided convolution; a class
    token is modeled by one extra sequence position.
    """
    if variant not in _VARIANTS:
        raise ValueError(f"unknown ViT variant {variant!r}; "
                         f"choose {sorted(_VARIANTS)}")
    depth, dim, mlp_dim, heads = _VARIANTS[variant]
    grid = image_size // patch_size
    tokens = grid * grid + 1  # +1 class token

    b = GraphBuilder(f"vit_{variant}", bits=bits)
    x = b.input("input", (1, 3, image_size, image_size))
    x = b.conv(x, dim, kernel=patch_size, stride=patch_size,
               name="patch_embed")
    x = b.reshape(x, (1, grid * grid, dim), name="to_tokens")
    # Class token concat is modeled as a reshape to tokens+1 positions: the
    # compiler only consumes shapes, so we materialize the padded sequence.
    x = b.node("PadToken", [x], {"tokens": tokens}, name="cls_token")
    b._track(x, (1, tokens, dim))
    for layer in range(depth):
        prefix = f"block{layer}"
        ln1 = b.layernorm(x, name=f"{prefix}_ln1")
        attn = _attention(b, ln1, dim, heads, tokens, prefix=f"{prefix}_attn")
        x = b.add(x, attn, name=f"{prefix}_add1")
        ln2 = b.layernorm(x, name=f"{prefix}_ln2")
        mlp = _mlp(b, ln2, dim, mlp_dim, prefix=f"{prefix}_mlp")
        x = b.add(x, mlp, name=f"{prefix}_add2")
    x = b.layernorm(x, name="ln_final")
    x = b.slice(x, axis=1, start=0, end=1, name="cls_select")
    x = b.reshape(x, (1, dim), name="cls_flat")
    x = b.gemm(x, num_classes, name="head")
    return b.build(outputs=[x])


def vit_base(**kwargs) -> Graph:
    """ViT-Base/16 (the Fig. 22 sensitivity workload)."""
    return vit("base", **kwargs)


def vit_small(**kwargs) -> Graph:
    """ViT-Small/16."""
    return vit("small", **kwargs)


def vit_tiny(**kwargs) -> Graph:
    """ViT-Tiny/16."""
    return vit("tiny", **kwargs)


def _register_pad_token() -> None:
    """Register the PadToken helper op (sequence pad for the class token)."""
    from ..graph.node import Node
    from ..graph.ops import OpSpec, register_op
    from ..graph.tensor import TensorSpec

    class PadTokenSpec(OpSpec):
        def infer_shapes(self, node: Node, inputs):
            (x,) = inputs
            tokens = node.require_attr("tokens")
            return [(x.shape[0], tokens, x.shape[2])]

        def alu_ops(self, node: Node, inputs) -> int:
            return 0

    register_op("PadToken", PadTokenSpec())


_register_pad_token()
