"""Model zoo: the paper's benchmark networks as graph-IR builders."""

from .mobilenet import mobilenet_tiny, mobilenet_v1
from .resnet import resnet, resnet18, resnet34, resnet50, resnet101, resnet152
from .small import conv_relu_example, lenet, mlp, residual_toy, tiny_conv
from .vgg import vgg, vgg7, vgg11, vgg13, vgg16, vgg19
from .vit import vit, vit_base, vit_small, vit_tiny

#: Named zoo entries (the CLI and the serving simulator resolve model
#: strings through this table; dashed spellings are canonical).
MODEL_ZOO = {
    "resnet18": resnet18, "resnet34": resnet34, "resnet50": resnet50,
    "resnet101": resnet101,
    "vgg7": vgg7, "vgg11": vgg11, "vgg13": vgg13, "vgg16": vgg16,
    "vgg19": vgg19,
    "vit-tiny": vit_tiny, "vit-small": vit_small, "vit-base": vit_base,
    "mobilenet": mobilenet_v1,
    "lenet": lenet, "mlp": mlp, "tiny-conv": tiny_conv,
    "conv-relu": conv_relu_example,
}


def get_model(name):
    """Build a zoo model by name (underscore spellings accepted)."""
    key = name if name in MODEL_ZOO else name.replace("_", "-")
    try:
        return MODEL_ZOO[key]()
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; choose one of {sorted(MODEL_ZOO)}"
        ) from None


__all__ = [
    "MODEL_ZOO",
    "get_model",
    "conv_relu_example",
    "lenet",
    "mlp",
    "mobilenet_tiny",
    "mobilenet_v1",
    "residual_toy",
    "resnet",
    "resnet101",
    "resnet152",
    "resnet18",
    "resnet34",
    "resnet50",
    "tiny_conv",
    "vgg",
    "vgg11",
    "vgg13",
    "vgg16",
    "vgg19",
    "vgg7",
    "vit",
    "vit_base",
    "vit_small",
    "vit_tiny",
]
