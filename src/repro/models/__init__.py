"""Model zoo: the paper's benchmark networks as graph-IR builders."""

from .mobilenet import mobilenet_tiny, mobilenet_v1
from .resnet import resnet, resnet18, resnet34, resnet50, resnet101, resnet152
from .small import conv_relu_example, lenet, mlp, residual_toy, tiny_conv
from .vgg import vgg, vgg7, vgg11, vgg13, vgg16, vgg19
from .vit import vit, vit_base, vit_small, vit_tiny

__all__ = [
    "conv_relu_example",
    "lenet",
    "mlp",
    "mobilenet_tiny",
    "mobilenet_v1",
    "residual_toy",
    "resnet",
    "resnet101",
    "resnet152",
    "resnet18",
    "resnet34",
    "resnet50",
    "tiny_conv",
    "vgg",
    "vgg11",
    "vgg13",
    "vgg16",
    "vgg19",
    "vgg7",
    "vit",
    "vit_base",
    "vit_small",
    "vit_tiny",
]
