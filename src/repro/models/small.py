"""Small networks for functional simulation and unit tests.

The functional simulator executes every meta-operator with real integer
arithmetic, so its test workloads must be small enough to enumerate windows.
``conv_relu_example`` reproduces the exact Section 3.4 running example.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..graph import Graph, GraphBuilder


def conv_relu_example(bits: int = 8) -> Graph:
    """The paper's Section 3.4 walkthrough: Conv(3->32, 3x3, stride 1,
    padding 1) on a (1, 3, 32, 32) input followed by ReLU."""
    b = GraphBuilder("conv_relu_example", bits=bits)
    x = b.input("input", (1, 3, 32, 32))
    x = b.conv(x, out_channels=32, kernel=3, stride=1, padding=1, name="conv")
    x = b.relu(x, name="relu")
    return b.build(outputs=[x])


def tiny_conv(in_shape: Tuple[int, int, int, int] = (1, 2, 6, 6),
              channels: Sequence[int] = (4, 4), num_classes: int = 3,
              bits: int = 8) -> Graph:
    """A 2-conv + FC network small enough for exhaustive functional checks."""
    b = GraphBuilder("tiny_conv", bits=bits)
    x = b.input("input", in_shape)
    for i, ch in enumerate(channels, start=1):
        x = b.conv(x, ch, kernel=3, padding=1, name=f"conv{i}")
        x = b.relu(x, name=f"relu{i}")
    x = b.maxpool(x, kernel=2, stride=2, name="pool")
    x = b.flatten(x)
    x = b.gemm(x, num_classes, name="fc")
    return b.build(outputs=[x])


def mlp(in_features: int = 16, hidden: Sequence[int] = (32, 32),
        num_classes: int = 4, bits: int = 8) -> Graph:
    """A plain MLP (Gemm/ReLU chain)."""
    b = GraphBuilder("mlp", bits=bits)
    x = b.input("input", (1, in_features))
    for i, width in enumerate(hidden, start=1):
        x = b.gemm(x, width, name=f"fc{i}")
        x = b.relu(x, name=f"relu{i}")
    x = b.gemm(x, num_classes, name="head")
    return b.build(outputs=[x])


def lenet(bits: int = 8) -> Graph:
    """LeNet-5-like network on 28x28 single-channel inputs."""
    b = GraphBuilder("lenet", bits=bits)
    x = b.input("input", (1, 1, 28, 28))
    x = b.conv(x, 6, kernel=5, padding=2, name="conv1")
    x = b.relu(x, name="relu1")
    x = b.maxpool(x, kernel=2, stride=2, name="pool1")
    x = b.conv(x, 16, kernel=5, name="conv2")
    x = b.relu(x, name="relu2")
    x = b.maxpool(x, kernel=2, stride=2, name="pool2")
    x = b.flatten(x)
    x = b.gemm(x, 120, name="fc1")
    x = b.relu(x, name="relu3")
    x = b.gemm(x, 84, name="fc2")
    x = b.relu(x, name="relu4")
    x = b.gemm(x, 10, name="fc3")
    return b.build(outputs=[x])


def residual_toy(bits: int = 8) -> Graph:
    """A minimal residual block for testing DAG (non-chain) scheduling."""
    b = GraphBuilder("residual_toy", bits=bits)
    x = b.input("input", (1, 4, 8, 8))
    y = b.conv(x, 4, kernel=3, padding=1, name="conv1")
    y = b.relu(y, name="relu1")
    y = b.conv(y, 4, kernel=3, padding=1, name="conv2")
    y = b.add(y, x, name="residual_add")
    y = b.relu(y, name="relu2")
    return b.build(outputs=[y])
