"""ResNet family (He et al.) as graph-IR builders.

The ResNet series is the Section 4.3 performance-analysis workload
(Fig. 21): ResNet-18/34 use basic blocks, ResNet-50/101/152 bottlenecks.
BatchNorm is kept as an explicit ALU op (it is CIM-unsupported and therefore
exercises the digital-compute path in the scheduler).
"""

from __future__ import annotations

from typing import Tuple

from ..graph import Graph, GraphBuilder

#: (block kind, layer counts) per depth.
_CONFIGS = {
    18: ("basic", (2, 2, 2, 2)),
    34: ("basic", (3, 4, 6, 3)),
    50: ("bottleneck", (3, 4, 6, 3)),
    101: ("bottleneck", (3, 4, 23, 3)),
    152: ("bottleneck", (3, 8, 36, 3)),
}

_STAGE_CHANNELS = (64, 128, 256, 512)


def _basic_block(b: GraphBuilder, x: str, channels: int, stride: int,
                 prefix: str) -> str:
    identity = x
    y = b.conv(x, channels, kernel=3, stride=stride, padding=1,
               name=f"{prefix}_conv1")
    y = b.batchnorm(y, name=f"{prefix}_bn1")
    y = b.relu(y, name=f"{prefix}_relu1")
    y = b.conv(y, channels, kernel=3, padding=1, name=f"{prefix}_conv2")
    y = b.batchnorm(y, name=f"{prefix}_bn2")
    if stride != 1 or _channels_of(b, identity) != channels:
        identity = b.conv(identity, channels, kernel=1, stride=stride,
                          name=f"{prefix}_down")
        identity = b.batchnorm(identity, name=f"{prefix}_down_bn")
    y = b.add(y, identity, name=f"{prefix}_add")
    return b.relu(y, name=f"{prefix}_relu2")


def _bottleneck_block(b: GraphBuilder, x: str, channels: int, stride: int,
                      prefix: str) -> str:
    identity = x
    expansion = 4
    y = b.conv(x, channels, kernel=1, name=f"{prefix}_conv1")
    y = b.batchnorm(y, name=f"{prefix}_bn1")
    y = b.relu(y, name=f"{prefix}_relu1")
    y = b.conv(y, channels, kernel=3, stride=stride, padding=1,
               name=f"{prefix}_conv2")
    y = b.batchnorm(y, name=f"{prefix}_bn2")
    y = b.relu(y, name=f"{prefix}_relu2")
    y = b.conv(y, channels * expansion, kernel=1, name=f"{prefix}_conv3")
    y = b.batchnorm(y, name=f"{prefix}_bn3")
    if stride != 1 or _channels_of(b, identity) != channels * expansion:
        identity = b.conv(identity, channels * expansion, kernel=1,
                          stride=stride, name=f"{prefix}_down")
        identity = b.batchnorm(identity, name=f"{prefix}_down_bn")
    y = b.add(y, identity, name=f"{prefix}_add")
    return b.relu(y, name=f"{prefix}_relu3")


def _channels_of(b: GraphBuilder, tensor: str) -> int:
    return b._tensors[tensor].shape[1]


def resnet(depth: int,
           input_shape: Tuple[int, int, int, int] = (1, 3, 224, 224),
           num_classes: int = 1000, bits: int = 8) -> Graph:
    """Build ``resnet{depth}`` at ImageNet scale (depth in 18/34/50/101/152)."""
    if depth not in _CONFIGS:
        raise ValueError(
            f"unsupported ResNet depth {depth}; choose {sorted(_CONFIGS)}"
        )
    kind, counts = _CONFIGS[depth]
    block = _basic_block if kind == "basic" else _bottleneck_block
    expansion = 1 if kind == "basic" else 4

    b = GraphBuilder(f"resnet{depth}", bits=bits)
    x = b.input("input", input_shape)
    x = b.conv(x, 64, kernel=7, stride=2, padding=3, name="conv1")
    x = b.batchnorm(x, name="bn1")
    x = b.relu(x, name="relu1")
    x = b.maxpool(x, kernel=3, stride=2, padding=1, name="maxpool")
    for stage, (channels, count) in enumerate(zip(_STAGE_CHANNELS, counts),
                                              start=1):
        for i in range(count):
            stride = 2 if (stage > 1 and i == 0) else 1
            x = block(b, x, channels, stride, prefix=f"layer{stage}_{i}")
    x = b.global_avgpool(x, name="avgpool")
    x = b.flatten(x)
    x = b.gemm(x, num_classes, name="fc")
    return b.build(outputs=[x])


def resnet18(**kwargs) -> Graph:
    """ResNet-18 at ImageNet scale."""
    return resnet(18, **kwargs)


def resnet34(**kwargs) -> Graph:
    """ResNet-34 at ImageNet scale."""
    return resnet(34, **kwargs)


def resnet50(**kwargs) -> Graph:
    """ResNet-50 at ImageNet scale."""
    return resnet(50, **kwargs)


def resnet101(**kwargs) -> Graph:
    """ResNet-101 at ImageNet scale."""
    return resnet(101, **kwargs)


def resnet152(**kwargs) -> Graph:
    """ResNet-152 at ImageNet scale."""
    return resnet(152, **kwargs)
