"""MobileNetV1 (Howard et al.) as a graph-IR builder.

Depthwise-separable convolutions exercise the compiler paths that dense
networks miss: grouped convolutions map to many *tiny* weight matrices
(one 9-row matrix per channel for a 3x3 depthwise layer), which stresses
crossbar under-utilization — exactly the regime where the MVM-grained
duplication refinement (Eq. 1) recovers stranded capacity.
"""

from __future__ import annotations

from typing import Tuple

from ..graph import Graph, GraphBuilder

#: (output channels, stride) per depthwise-separable block.
_BLOCKS = [
    (64, 1), (128, 2), (128, 1), (256, 2), (256, 1), (512, 2),
    (512, 1), (512, 1), (512, 1), (512, 1), (512, 1),
    (1024, 2), (1024, 1),
]


def _separable(b: GraphBuilder, x: str, out_channels: int, stride: int,
               prefix: str) -> str:
    in_channels = b._tensors[x].shape[1]
    x = b.conv(x, in_channels, kernel=3, stride=stride, padding=1,
               groups=in_channels, name=f"{prefix}_dw")
    x = b.batchnorm(x, name=f"{prefix}_dw_bn")
    x = b.relu(x, name=f"{prefix}_dw_relu")
    x = b.conv(x, out_channels, kernel=1, name=f"{prefix}_pw")
    x = b.batchnorm(x, name=f"{prefix}_pw_bn")
    return b.relu(x, name=f"{prefix}_pw_relu")


def mobilenet_v1(width: float = 1.0,
                 input_shape: Tuple[int, int, int, int] = (1, 3, 224, 224),
                 num_classes: int = 1000, bits: int = 8) -> Graph:
    """MobileNetV1 with an optional width multiplier."""
    def scaled(c: int) -> int:
        return max(8, int(c * width))

    b = GraphBuilder(f"mobilenet_v1_{width:g}", bits=bits)
    x = b.input("input", input_shape)
    x = b.conv(x, scaled(32), kernel=3, stride=2, padding=1, name="conv1")
    x = b.batchnorm(x, name="bn1")
    x = b.relu(x, name="relu1")
    for i, (channels, stride) in enumerate(_BLOCKS):
        x = _separable(b, x, scaled(channels), stride, prefix=f"block{i}")
    x = b.global_avgpool(x, name="avgpool")
    x = b.flatten(x)
    x = b.gemm(x, num_classes, name="fc")
    return b.build(outputs=[x])


def mobilenet_tiny(bits: int = 8) -> Graph:
    """A 3-block CIFAR-scale MobileNet for functional-simulation tests."""
    b = GraphBuilder("mobilenet_tiny", bits=bits)
    x = b.input("input", (1, 3, 16, 16))
    x = b.conv(x, 8, kernel=3, stride=1, padding=1, name="conv1")
    x = b.relu(x, name="relu1")
    for i, (channels, stride) in enumerate([(16, 2), (24, 1)]):
        x = _separable(b, x, channels, stride, prefix=f"block{i}")
    x = b.global_avgpool(x, name="avgpool")
    x = b.flatten(x)
    x = b.gemm(x, 10, name="fc")
    return b.build(outputs=[x])
