"""In-process memoization for the compile→simulate hot path.

A :class:`CompileCache` stores the expensive intermediates of a
compilation, keyed by *content* so that any two evaluations with equal
inputs share work no matter where they originate — sweep points of a
:class:`~repro.explore.runner.SweepRunner`, tenants of a serving plan,
or stages of a multi-chip shard:

* **per-op profiles** (``CostModel.profiles``) keyed by
  ``(architecture, bit binding, graph signature)`` — the architecture is
  a frozen dataclass, so value equality *is* content equality, and the
  graph signature is the cached content hash of
  :meth:`repro.graph.Graph.signature`;
* **duplication searches** (``duplicate_min_total`` /
  ``duplicate_min_bottleneck``) keyed by the profile tuple and core
  budget — profiles are frozen dataclasses carrying every quantity the
  search reads, so equal keys guarantee equal answers;
* **useful-duplication curves** (``_useful_dups``) keyed per profile;
* **graph segmentations** (``segment_graph``) keyed by architecture,
  graph signature, and the pipeline/duplicate gates.

The cache is deliberately in-process and unbounded: one sweep/serve/shard
run holds a bounded universe of distinct keys, and entries are plain
shared immutables (profiles) or copied-on-return containers (dup maps,
segment lists), so sharing one cache across thousands of points is safe.
Hit/miss counters make the reuse observable in tests and ``repro bench``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple


class CompileCache:
    """Content-addressed memo shared across compilations.

    Example
    -------
    >>> from repro.arch import functional_testbed
    >>> from repro.models import lenet
    >>> from repro.sched import CIMMLC
    >>> cache = CompileCache()
    >>> a = CIMMLC(functional_testbed(), cache=cache).compile(lenet())
    >>> b = CIMMLC(functional_testbed(), cache=cache).compile(lenet())
    >>> cache.profile_hits >= 1 and a.total_cycles == b.total_cycles
    True
    """

    def __init__(self) -> None:
        self._profiles: Dict[Tuple, Dict[str, Any]] = {}
        self._dups: Dict[Tuple, Dict[str, int]] = {}
        self._useful: Dict[Tuple, List[int]] = {}
        self._segments: Dict[Tuple, List[List[str]]] = {}
        self.profile_hits = 0
        self.profile_misses = 0
        self.dup_hits = 0
        self.dup_misses = 0
        self.segment_hits = 0
        self.segment_misses = 0

    # -- per-op profiles ----------------------------------------------

    def get_profiles(self, key: Tuple) -> Optional[Dict[str, Any]]:
        """Cached ``{node name: OpProfile}`` for ``key``, or ``None``.

        Profiles are frozen dataclasses, so the cached dict is returned
        as a shallow copy — entries are shared, the container is not.
        """
        hit = self._profiles.get(key)
        if hit is None:
            self.profile_misses += 1
            return None
        self.profile_hits += 1
        return dict(hit)

    def put_profiles(self, key: Tuple, profiles: Dict[str, Any]) -> None:
        """Store a profile dict under ``key``."""
        self._profiles[key] = dict(profiles)

    # -- duplication searches -----------------------------------------

    def get_dups(self, key: Tuple) -> Optional[Dict[str, int]]:
        """Cached duplication map for one search key, or ``None``."""
        hit = self._dups.get(key)
        if hit is None:
            self.dup_misses += 1
            return None
        self.dup_hits += 1
        return dict(hit)

    def put_dups(self, key: Tuple, dups: Dict[str, int]) -> None:
        """Store a duplication map under ``key``."""
        self._dups[key] = dict(dups)

    # -- useful-duplication curves ------------------------------------

    def get_useful_dups(self, key: Tuple) -> Optional[List[int]]:
        """Cached useful-duplication levels for one (profile, budget)."""
        hit = self._useful.get(key)
        return None if hit is None else list(hit)

    def put_useful_dups(self, key: Tuple, dups: List[int]) -> None:
        """Store a useful-duplication curve under ``key``."""
        self._useful[key] = list(dups)

    # -- graph segmentations ------------------------------------------

    def get_segments(self, key: Tuple) -> Optional[List[List[str]]]:
        """Cached segmentation (lists of node names), or ``None``."""
        hit = self._segments.get(key)
        if hit is None:
            self.segment_misses += 1
            return None
        self.segment_hits += 1
        return [list(seg) for seg in hit]

    def put_segments(self, key: Tuple, segments: List[List[str]]) -> None:
        """Store a segmentation under ``key``."""
        self._segments[key] = [list(seg) for seg in segments]

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Counter snapshot (for tests, logs, and ``repro bench``)."""
        return {
            "profile_hits": self.profile_hits,
            "profile_misses": self.profile_misses,
            "dup_hits": self.dup_hits,
            "dup_misses": self.dup_misses,
            "segment_hits": self.segment_hits,
            "segment_misses": self.segment_misses,
            "profiles_stored": len(self._profiles),
            "dups_stored": len(self._dups),
            "segments_stored": len(self._segments),
        }

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._profiles.clear()
        self._dups.clear()
        self._useful.clear()
        self._segments.clear()
        self.profile_hits = self.profile_misses = 0
        self.dup_hits = self.dup_misses = 0
        self.segment_hits = self.segment_misses = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (f"CompileCache(profiles={s['profiles_stored']}, "
                f"dups={s['dups_stored']}, "
                f"hits={s['profile_hits'] + s['dup_hits']})")
