"""Global fast-path switch for the compile→simulate pipeline.

Every optimized kernel and implicit memo in the hot path (vectorized NoC
cost aggregation, the duplication-search kernels, the sweep runner's
dedup/pool-reuse machinery) consults :func:`fastpath_enabled` before
taking the optimized route.  The reference route is always kept alive so
``repro bench`` can time both and assert that they produce *identical*
reports — the fast path changes how results are computed, never what they
are.

Disable globally with ``REPRO_FASTPATH=0`` in the environment, or locally
with the :func:`fastpath` context manager::

    from repro.perf import fastpath

    with fastpath(False):      # reference timings
        run_reference()

Explicit caches passed by the caller (e.g. ``CIMMLC(arch, cache=...)``)
are honoured regardless of the switch; the switch only gates the
*implicit* acceleration layers.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

_ENABLED = os.environ.get("REPRO_FASTPATH", "1") not in ("0", "false", "off")


def fastpath_enabled() -> bool:
    """True when the optimized kernels/memos should be used."""
    return _ENABLED


def set_fastpath(enabled: bool) -> bool:
    """Set the global switch; returns the previous value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def fastpath(enabled: bool = True) -> Iterator[None]:
    """Context manager scoping the global switch (used by ``repro bench``
    to time the reference and optimized paths back to back)."""
    previous = set_fastpath(enabled)
    try:
        yield
    finally:
        set_fastpath(previous)
