"""Performance layer: fast-path toggle, compile cache, numpy kernels.

The hot compile→simulate path is accelerated by three cooperating
pieces, all bit-identical to the reference implementations they bypass
(see ``docs/PERFORMANCE.md``):

* :mod:`repro.perf.fastpath` — a global switch selecting the optimized
  or the reference route (``repro bench`` times both);
* :mod:`repro.perf.cache` — :class:`CompileCache`, the in-process
  content-addressed memo for per-op profiles, duplication searches, and
  graph segmentations, shared across sweep points / serve tenants /
  shard stages;
* :mod:`repro.perf.kernels` — vectorized (numpy) forms of the
  per-operator scheduler and simulator loops;
* :mod:`repro.perf.diskcache` — :class:`DiskCompileCache`, the
  versioned cross-process on-disk extension of the compile memo
  (opt-in via ``REPRO_DISK_CACHE=1``);
* :mod:`repro.perf.incremental` — :class:`IncrementalCompiler`,
  delta-patching recompilation across one-axis architecture mutations.

:mod:`repro.perf.bench` adds the ``repro bench`` harness that measures
the speedup and pins reference/fast report equality.
"""

from .cache import CompileCache
from .diskcache import (
    SCHEMA_VERSION,
    DiskCompileCache,
    default_compile_cache,
    default_disk_cache_dir,
    disk_cache_enabled,
)
from .fastpath import fastpath, fastpath_enabled, set_fastpath

__all__ = [
    "CompileCache",
    "DiskCompileCache",
    "IncrementalCompiler",
    "SCHEMA_VERSION",
    "default_compile_cache",
    "default_disk_cache_dir",
    "disk_cache_enabled",
    "fastpath",
    "fastpath_enabled",
    "set_fastpath",
]


def __getattr__(name: str):
    """Lazy :class:`IncrementalCompiler` export.

    :mod:`repro.perf.incremental` imports the scheduler, which imports
    this package — importing it eagerly here would make the cycle
    unresolvable for whichever side loads first.
    """
    if name == "IncrementalCompiler":
        from .incremental import IncrementalCompiler

        return IncrementalCompiler
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
