"""Performance layer: fast-path toggle, compile cache, numpy kernels.

The hot compile→simulate path is accelerated by three cooperating
pieces, all bit-identical to the reference implementations they bypass
(see ``docs/PERFORMANCE.md``):

* :mod:`repro.perf.fastpath` — a global switch selecting the optimized
  or the reference route (``repro bench`` times both);
* :mod:`repro.perf.cache` — :class:`CompileCache`, the in-process
  content-addressed memo for per-op profiles, duplication searches, and
  graph segmentations, shared across sweep points / serve tenants /
  shard stages;
* :mod:`repro.perf.kernels` — vectorized (numpy) forms of the
  per-operator scheduler and simulator loops.

:mod:`repro.perf.bench` adds the ``repro bench`` harness that measures
the speedup and pins reference/fast report equality.
"""

from .cache import CompileCache
from .fastpath import fastpath, fastpath_enabled, set_fastpath

__all__ = [
    "CompileCache",
    "fastpath",
    "fastpath_enabled",
    "set_fastpath",
]
