"""``repro bench``: time the hot path, reference vs. fast, prove equality.

Each benchmark runs its workload twice — once with the fast path
disabled (:func:`~repro.perf.fastpath` context, reference kernels, no
implicit memoization) and once enabled from *cold* in-process caches —
and then verifies that both runs produced identical result digests.  A
digest mismatch raises, so a speedup can never be reported for a
computation that changed its answer.

The emitted JSON is a list of ``{name, wall_s, points,
speedup_vs_reference}`` objects (``wall_s`` is the fast-path wall
clock); ``benchmarks/perf/check_regression.py`` compares a fresh run
against the committed ``BENCH_PR4.json`` in CI.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .fastpath import fastpath

#: Benchmark registry: name -> factory(quick) -> (workload, points).
#: Each workload() call performs one full measurement and returns a
#: JSON-able digest of everything it computed.
_BENCHES: Dict[str, Callable] = {}


def _bench(name: str):
    def register(factory):
        _BENCHES[name] = factory
        return factory
    return register


def bench_names() -> List[str]:
    """Registered benchmark names, in definition order."""
    return list(_BENCHES)


@dataclass(frozen=True)
class BenchResult:
    """One benchmark outcome (the committed-JSON schema plus context)."""

    name: str
    wall_s: float                 # fast-path wall clock
    points: int                   # workload size (compiles / cells / ops)
    speedup_vs_reference: float   # reference wall / fast wall
    ref_wall_s: float             # kept out of the JSON schema

    def to_dict(self) -> Dict:
        """The committed schema: name, wall_s, points, speedup."""
        return {
            "name": self.name,
            "wall_s": self.wall_s,
            "points": self.points,
            "speedup_vs_reference": self.speedup_vs_reference,
        }


def clear_process_caches() -> None:
    """Reset every implicit fast-path memo so a timed run starts cold.

    Covers the process-wide explore compile cache and incremental
    recompiler, the implicit duplication-search and placement memos, and
    the memoized NoC cost matrices/aggregates; explicit caches owned by
    callers are untouched.  Note a disk-backed process cache
    (``REPRO_DISK_CACHE=1``) is cleared *including its on-disk store* —
    benchmarking against a warm disk memo would be meaningless.
    """
    from ..arch.noc import _average_cost_fast, _max_cost_fast, hop_cost_array
    from ..explore import runner as runner_mod
    from ..sched import cg as cg_mod
    from ..sched import placement as placement_mod

    runner_mod._PROCESS_CACHE.clear()
    runner_mod._PROCESS_INCREMENTAL.clear()
    cg_mod._IMPLICIT_SEARCH_CACHE.clear()
    placement_mod._GREEDY_MEMO.clear()
    _average_cost_fast.cache_clear()
    _max_cost_fast.cache_clear()
    hop_cost_array.cache_clear()


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------


def _compile_inputs(quick: bool):
    from ..arch import isaac_baseline
    from ..models import resnet18, vit_tiny

    graph = vit_tiny() if quick else resnet18()
    return graph, isaac_baseline().with_xb_size((128, 256))


@_bench("compile")
def _bench_compile(quick: bool) -> Tuple[Callable, int]:
    """One full multi-level compile (schedule + simulate)."""
    from ..sched import CIMMLC

    graph, arch = _compile_inputs(quick)

    def workload():
        result = CIMMLC(arch).compile(graph)
        return {"total_cycles": result.report.total_cycles,
                "op_latency": result.report.op_latency,
                "peak_power": result.report.power.peak_power}

    return workload, len(graph)


@_bench("duplication")
def _bench_duplication(quick: bool) -> Tuple[Callable, int]:
    """The two CG duplication searches over the whole model.

    Repeated like the placement workload so the fast leg's ~4 ms wall
    is not dominated by a single scheduler hiccup; repeats model the
    sweep/fleet reality where the same search keys recur, so the ratio
    includes the within-workload search memo (see :func:`run_bench`).
    """
    from ..sched.cg import duplicate_min_bottleneck, duplicate_min_total
    from ..sched.costs import CostModel

    graph, arch = _compile_inputs(quick)
    profiles = list(CostModel(arch).profiles(graph).values())
    repeats = 3 if quick else 10

    def workload():
        digest = []
        for _ in range(repeats):
            digest.append(duplicate_min_bottleneck(
                profiles, arch.chip.core_number))
            digest.append(duplicate_min_total(
                profiles, arch.chip.core_number))
        return digest

    return workload, repeats * 2


@_bench("placement")
def _bench_placement(quick: bool) -> Tuple[Callable, int]:
    """Greedy NoC placement of every segment of a compiled schedule.

    Repeated a few times so the timed sample is large enough that a
    single scheduler hiccup on a shared CI runner cannot swing the
    measured ratio across the regression floor.
    """
    from ..sched import CIMMLC
    from ..sched.placement import annotate_placement

    graph, arch = _compile_inputs(quick)
    schedule = CIMMLC(arch).schedule(graph)
    repeats = 5 if quick else 10

    def workload():
        placements = {}
        for _ in range(repeats):
            for seg in range(len(schedule.segments)):
                placements.update(annotate_placement(schedule, segment=seg))
        return {name: list(cores) for name, cores in placements.items()}

    return workload, len(schedule.segments)


@_bench("incremental")
def _bench_incremental(quick: bool) -> Tuple[Callable, int]:
    """One-axis recompilation: a core-count family, two graph copies.

    Routes every compile of a sweep-shaped workload (one architecture
    axis moving, everything else fixed; a second copy of the same model
    replaying the family, as fleet replicas and serve tenants do)
    through one :class:`~repro.perf.IncrementalCompiler`.  On the
    reference path the compiler defers to from-scratch
    :class:`~repro.sched.CIMMLC` compiles, so the digest equality check
    in :func:`run_bench` pins the delta-patched results bit-identical to
    cold compiles.  The fast path additionally *asserts its own hit
    counters*: exactly one full compile (the first point), and at least
    one spliced segment (the second copy replays recorded searches) —
    a silent fall-through to full recompiles fails the run rather than
    reporting an honest-looking speedup.
    """
    from .cache import CompileCache
    from .fastpath import fastpath_enabled
    from .incremental import IncrementalCompiler
    from ..models import resnet18, vit_tiny

    make_graph = vit_tiny if quick else resnet18
    _, arch = _compile_inputs(quick)
    core_axis = (512, 768) if quick else (512, 640, 768, 896)
    graphs = (make_graph(), make_graph())

    def workload():
        inc = IncrementalCompiler(cache=CompileCache())
        digest = []
        for graph in graphs:
            for cores in core_axis:
                result = inc.compile(graph, arch.with_cores(cores))
                digest.append({
                    "cores": cores,
                    "total_cycles": result.report.total_cycles,
                    "op_latency": result.report.op_latency,
                    "peak_power": result.report.power.peak_power})
        if fastpath_enabled():
            if inc.full_compiles != 1:
                raise RuntimeError(
                    f"incremental bench: expected exactly 1 full "
                    f"compile, measured {inc.full_compiles}")
            if inc.spliced_segments == 0:
                raise RuntimeError(
                    "incremental bench: replayed family spliced no "
                    "segments — the delta path is not engaging")
        return digest

    return workload, len(core_axis) * len(graphs)


@_bench("perf_sim")
def _bench_perf_sim(quick: bool) -> Tuple[Callable, int]:
    """The performance simulator alone, on a prebuilt schedule."""
    from ..sched import CIMMLC
    from ..sim.performance import PerformanceSimulator

    graph, arch = _compile_inputs(quick)
    schedule = CIMMLC(arch).schedule(graph)
    repeats = 20 if quick else 50

    def workload():
        report = None
        for _ in range(repeats):
            report = PerformanceSimulator(arch).run(schedule)
        return {"total_cycles": report.total_cycles,
                "op_latency": report.op_latency,
                "intervals": list(report.segment_intervals)}

    return workload, repeats


@_bench("power")
def _bench_power(quick: bool) -> Tuple[Callable, int]:
    """The power/energy model alone, on a prebuilt schedule.

    Isolates what energy reporting costs on top of the latency
    simulation: comparing this workload's per-evaluation wall clock
    against ``perf_sim``'s (which runs the full simulator, power
    included) bounds the energy-reporting share of the hot path — the
    docs/ENERGY.md <5%-overhead claim.  The evaluation is deliberately
    scalar on both paths (a tiny loop), so the speedup column is ~1x by
    design; the digest check still pins reference/fast equality.
    """
    from ..sched import CIMMLC
    from ..sim.power import PowerModel

    graph, arch = _compile_inputs(quick)
    schedule = CIMMLC(arch).schedule(graph)
    repeats = 20 if quick else 50

    def workload():
        model = PowerModel(arch)
        report = None
        for _ in range(repeats):
            report = model.evaluate(schedule, total_cycles=1e6)
        return {"peak_power": report.peak_power,
                "avg_power": report.avg_power,
                "energy": [report.energy_crossbar, report.energy_converter,
                           report.energy_movement,
                           report.energy_reconfiguration],
                "write_energy": model.weight_write_energy(schedule)}

    return workload, repeats


@_bench("sweep_fig22")
def _bench_sweep_fig22(quick: bool) -> Tuple[Callable, int]:
    """The Fig. 22(a) sensitivity sweep (ViT-Tiny, all four series)."""
    from ..experiments.fig22 import fig22a_cores
    from ..explore import SweepRunner
    from ..models import vit_tiny

    cores = (256, 512) if quick else (256, 512, 768, 1024)
    graph = vit_tiny()

    def workload():
        result = fig22a_cores(core_numbers=cores, graph=graph,
                              runner=SweepRunner())
        return result.as_dict()

    return workload, len(cores) * 4


@_bench("serve_capacity")
def _bench_serve_capacity(quick: bool) -> Tuple[Callable, int]:
    """A 2-tenant serve capacity sweep riding the explore bridge."""
    from ..arch import get_preset
    from ..explore import SweepRunner
    from ..serve import TenantSpec, serve_sweep

    arch = get_preset("isaac-flash")
    specs = [TenantSpec("resnet18", "resnet18", 4.0),
             TenantSpec("mobilenet", "mobilenet", 1.0)]
    rates = [10e-6] if quick else [5e-6, 10e-6, 22e-6]
    requests = 100 if quick else 300

    def workload():
        points = serve_sweep(arch, specs, rates, num_requests=requests,
                             runner=SweepRunner())
        return [{"rate": p.rate, "mode": p.mode, "policy": p.policy,
                 **p.report.to_dict()} for p in points]

    return workload, len(rates) * 2


@_bench("fleet")
def _bench_fleet(quick: bool) -> Tuple[Callable, int]:
    """A replicated fleet under a diurnal+bursty trace with autoscaling.

    The digest is the full :class:`~repro.fleet.FleetReport` dict, so
    any reference/fastpath divergence in trace generation, routing,
    admission, or scaling fails the equality gate in
    :func:`run_bench`.
    """
    from ..arch import get_preset
    from ..fleet import (
        AdmissionControl,
        Autoscaler,
        build_fleet,
        simulate_fleet,
    )
    from ..serve import TenantSpec, make_trace

    arch = get_preset("isaac-flash")
    specs = [TenantSpec("resnet18", "resnet18", 4.0),
             TenantSpec("mobilenet", "mobilenet", 1.0)]
    replicas = 4 if quick else 8
    requests = 2_000 if quick else 20_000

    def workload():
        fleet = build_fleet(arch, specs, replicas=replicas)
        trace = make_trace("diurnal-bursty", specs, rate=120e-6,
                           num_requests=requests, seed=0)
        report = simulate_fleet(
            fleet, trace,
            admission=AdmissionControl(max_outstanding=64),
            autoscaler=Autoscaler(min_replicas=2))
        return report.to_dict()

    return workload, requests

@_bench("trace")
def _bench_trace(quick: bool) -> Tuple[Callable, int]:
    """Trace capture + critical path + a link-grid what-if replay.

    Shards a model, records the pipeline trace, extracts its critical
    path, and re-prices a link-bandwidth grid through
    :func:`repro.trace.replay` instead of re-simulating.  The digest is
    the recording's SHA-256 plus every replayed metric set, so a
    reference/fastpath divergence anywhere in capture or replay fails
    the equality gate; the workload additionally refuses to report if
    identity replay is not bit-identical to the recording.
    """
    from ..arch import MultiChipSystem, isaac_baseline
    from ..models import lenet, resnet18
    from ..scale import shard
    from ..trace import Mutation, critical_path, record_shard, replay

    graph = lenet() if quick else resnet18()
    arch = isaac_baseline()
    bandwidths = (64.0, 256.0) if quick else (16.0, 64.0, 256.0, 1024.0)

    def workload():
        plan = shard(graph, MultiChipSystem(arch, 3))
        trace = record_shard(plan)
        if replay(trace).trace.digest() != trace.digest():
            raise RuntimeError(
                "identity replay diverged from the recording")
        cp = critical_path(trace)
        rows = [{"digest": trace.digest(), "cp_total": cp.total,
                 "cp_by_category": cp.by_category}]
        for bw in bandwidths:
            result = replay(trace, Mutation(link_bandwidth=bw))
            rows.append({"bw": bw, **result.metrics})
        return rows

    return workload, len(bandwidths) + 1


@_bench("faults")
def _bench_faults(quick: bool) -> Tuple[Callable, int]:
    """Degraded planning plus fault-injected fleet serving.

    Builds a serving plan around a spread of dead cores, then runs a
    fleet with drift rewrites and a mid-trace chip death.  The digest
    covers the degraded serve report, the fault-injected fleet report
    (availability ledger included), and a zero-fault fleet report that
    must equal the fault-free run — so a reference/fastpath divergence
    in masking, re-routing, or the bit-identity gate itself fails the
    equality check in :func:`run_bench`.
    """
    from ..arch import isaac_baseline
    from ..faults import FaultModel, plan_degraded, spread_mask
    from ..fleet import build_fleet, simulate_fleet
    from ..serve import TenantSpec, make_trace, simulate

    arch = isaac_baseline()
    specs = [TenantSpec("resnet18", "resnet18", 4.0),
             TenantSpec("mobilenet", "mobilenet", 1.0)]
    requests = 600 if quick else 6_000
    kill = 32 if quick else 96

    def workload():
        mask = FaultModel(
            dead_cores=spread_mask(arch.chip.core_number, kill))
        degraded = plan_degraded(arch, specs, mask)
        trace = make_trace("poisson", specs, rate=50e-6,
                           num_requests=requests, seed=0)
        serve_report = simulate(degraded, trace)
        fleet = build_fleet(arch, specs, replicas=4)
        horizon = trace[-1].arrival
        injected = FaultModel(drift_interval=horizon / 6,
                              chip_death_time=horizon / 2,
                              chip_death_rid=1)
        faulty = simulate_fleet(fleet, trace, fault=injected)
        clean = simulate_fleet(fleet, trace)
        zero = simulate_fleet(fleet, trace, fault=FaultModel())
        if zero.digest() != clean.digest():
            raise RuntimeError(
                "zero-fault run diverged from the fault-free run")
        return [serve_report.to_dict(), faulty.to_dict(),
                clean.to_dict()]

    return workload, requests


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------


def run_bench(names: Optional[Sequence[str]] = None,
              quick: bool = False) -> List[BenchResult]:
    """Run the selected benchmarks; raise if any fast digest deviates.

    Both timings start from cold in-process caches
    (:func:`clear_process_caches`), so the reported speedup reflects the
    vectorized kernels plus the *within-workload* memoization — not a
    previously warmed process.
    """
    chosen = list(names) if names else bench_names()
    unknown = [n for n in chosen if n not in _BENCHES]
    if unknown:
        raise KeyError(f"unknown benchmarks {unknown}; "
                       f"choose from {bench_names()}")
    results: List[BenchResult] = []
    for name in chosen:
        workload, points = _BENCHES[name](quick)
        clear_process_caches()
        with fastpath(False):
            t0 = time.perf_counter()
            ref_digest = workload()
            ref_wall = time.perf_counter() - t0
        clear_process_caches()
        with fastpath(True):
            t0 = time.perf_counter()
            fast_digest = workload()
            fast_wall = time.perf_counter() - t0
        if ref_digest != fast_digest:
            raise RuntimeError(
                f"benchmark {name!r}: fast path diverged from the "
                f"reference — refusing to report a speedup")
        results.append(BenchResult(
            name=name,
            wall_s=fast_wall,
            points=points,
            speedup_vs_reference=ref_wall / max(fast_wall, 1e-9),
            ref_wall_s=ref_wall,
        ))
    return results


def to_json(results: Sequence[BenchResult]) -> str:
    """The committed ``BENCH_*.json`` payload (list of schema objects)."""
    return json.dumps([r.to_dict() for r in results], indent=1)


def table(results: Sequence[BenchResult]) -> str:
    """Readable fixed-width report."""
    lines = [f"{'benchmark':<16} {'points':>6} {'reference':>11} "
             f"{'fast':>9} {'speedup':>9}"]
    for r in results:
        lines.append(
            f"{r.name:<16} {r.points:>6} {r.ref_wall_s:>10.3f}s "
            f"{r.wall_s:>8.3f}s {r.speedup_vs_reference:>8.1f}x")
    return "\n".join(lines)
