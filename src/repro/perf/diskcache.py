"""Persistent cross-process extension of :class:`CompileCache`.

The in-process compile cache dies with its process; a fleet of workers,
a CI matrix, or repeated CLI invocations each pay the same cold
compiles.  :class:`DiskCompileCache` backs every memo family (per-op
profiles keyed on ``(arch value, bit binding, Graph.signature())``,
duplication searches, useful-duplication curves, segmentations) with a
content-addressed on-disk store so *any* process that has ever compiled
a model warms all the others.

Design rules:

* **Content addressing.**  File names are the SHA-256 of the key's
  ``repr`` — keys are tuples of frozen dataclasses, enums, and
  primitives, whose reprs are deterministic and reflect every field.
  The stored payload carries the key repr and is verified on read, so a
  hash collision or foreign file degrades to a miss, never a wrong
  value.  Equal keys ⇒ equal values (the memoized functions are pure),
  so cross-process sharing is bit-exact by construction.
* **Atomic writes.**  Entries are written to a temp file and
  ``os.replace``d into place (the same pattern as the explore result
  cache), so concurrent writers race benignly — last writer wins with a
  value equal to every loser's.
* **Versioning.**  Entries live under ``v{SCHEMA_VERSION}/``; bumping
  :data:`SCHEMA_VERSION` (on any change to key shape, profile fields,
  or scheduler semantics) orphans stale entries wholesale.
* **Corruption tolerance.**  Truncated, unpicklable, or
  wrong-schema files are treated as misses and the value is recomputed
  (and rewritten) — integrity failures cost time, never correctness.

The store is enabled by ``REPRO_DISK_CACHE=1`` (see
:func:`disk_cache_enabled`) and located by ``REPRO_COMPILE_CACHE_DIR``
(default ``~/.cache/repro-compile``).  ``repro cache stats|clear``
inspects and resets it.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import Dict, List, Optional, Tuple

from .cache import CompileCache

#: Bump when cached values would no longer be valid (key shape, profile
#: fields, or search semantics changed); old entries are then orphaned
#: under their version directory and ignored.
SCHEMA_VERSION = 1

#: Environment variable switching the disk-backed compile memo on.
ENV_ENABLE = "REPRO_DISK_CACHE"

#: Environment variable overriding the store location.
ENV_DIR = "REPRO_COMPILE_CACHE_DIR"


def disk_cache_enabled() -> bool:
    """True when the process opted into the persistent compile memo."""
    return os.environ.get(ENV_ENABLE, "").strip().lower() in (
        "1", "true", "on", "yes")


def default_disk_cache_dir() -> str:
    """Store root: ``$REPRO_COMPILE_CACHE_DIR`` or
    ``~/.cache/repro-compile``."""
    configured = os.environ.get(ENV_DIR)
    if configured:
        return os.path.expanduser(configured)
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-compile")


def default_compile_cache() -> CompileCache:
    """A fresh implicit compile cache honouring the disk-memo opt-in.

    Call sites that used to build a bare :class:`CompileCache` for
    implicit caching use this instead; separate instances share the
    on-disk store, so a fresh object per call still warm-starts.
    """
    return DiskCompileCache() if disk_cache_enabled() else CompileCache()


class DiskCompileCache(CompileCache):
    """A :class:`CompileCache` whose misses consult an on-disk store.

    Memory-first: reads hit the in-process dictionaries, then the disk
    store (promoting to memory), then report a true miss; writes go to
    both layers.  The base-class hit/miss counters therefore keep their
    meaning — ``*_misses`` count *fresh computations* — and
    ``disk_hits`` / ``disk_misses`` / ``disk_writes`` expose the disk
    layer separately.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        super().__init__()
        base = root if root is not None else default_disk_cache_dir()
        self.root = os.path.join(os.path.expanduser(base),
                                 f"v{SCHEMA_VERSION}")
        os.makedirs(self.root, exist_ok=True)
        self.disk_hits = 0
        self.disk_misses = 0
        self.disk_writes = 0

    # -- disk layer --------------------------------------------------

    def _path(self, kind: str, key: Tuple) -> str:
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
        return os.path.join(self.root, f"{kind}-{digest}.pkl")

    def _read(self, kind: str, key: Tuple):
        """The stored value, or None on miss/corruption/collision."""
        try:
            with open(self._path(kind, key), "rb") as handle:
                stored_key, value = pickle.load(handle)
            if stored_key != repr(key):
                raise ValueError("key mismatch (hash collision?)")
        except FileNotFoundError:
            self.disk_misses += 1
            return None
        except Exception:  # noqa: BLE001 - a corrupted/truncated/foreign
            # pickle can raise nearly anything; every failure mode must
            # degrade to a recompute, never propagate.
            self.disk_misses += 1
            return None
        self.disk_hits += 1
        return value

    def _write(self, kind: str, key: Tuple, value) -> None:
        """Atomically persist one entry (best-effort: I/O errors leave
        only the in-memory layer populated)."""
        try:
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump((repr(key), value), handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, self._path(kind, key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return
        self.disk_writes += 1

    # -- memo families -----------------------------------------------

    def get_profiles(self, key: Tuple):
        """Memory-first profile lookup; a disk hit is promoted to memory."""
        hit = self._profiles.get(key)
        if hit is not None:
            self.profile_hits += 1
            return dict(hit)
        value = self._read("profiles", key)
        if value is not None:
            self._profiles[key] = dict(value)
            self.profile_hits += 1
            return dict(value)
        self.profile_misses += 1
        return None

    def put_profiles(self, key: Tuple, profiles) -> None:
        """Store a profile table in memory and write it through to disk."""
        super().put_profiles(key, profiles)
        self._write("profiles", key, dict(profiles))

    def get_dups(self, key: Tuple):
        """Memory-first duplication lookup; a disk hit is promoted to memory."""
        hit = self._dups.get(key)
        if hit is not None:
            self.dup_hits += 1
            return dict(hit)
        value = self._read("dups", key)
        if value is not None:
            self._dups[key] = dict(value)
            self.dup_hits += 1
            return dict(value)
        self.dup_misses += 1
        return None

    def put_dups(self, key: Tuple, dups) -> None:
        """Store a duplication table in memory and write it through to disk."""
        super().put_dups(key, dups)
        self._write("dups", key, dict(dups))

    def get_useful_dups(self, key: Tuple):
        """Memory-first useful-duplication lookup (no hit/miss counters)."""
        hit = self._useful.get(key)
        if hit is not None:
            return list(hit)
        value = self._read("useful", key)
        if value is not None:
            self._useful[key] = list(value)
            return list(value)
        return None

    def put_useful_dups(self, key: Tuple, dups) -> None:
        """Store a useful-duplication list in memory and on disk."""
        super().put_useful_dups(key, dups)
        self._write("useful", key, list(dups))

    def get_segments(self, key: Tuple):
        """Memory-first segmentation lookup; a disk hit is promoted to memory."""
        hit = self._segments.get(key)
        if hit is not None:
            self.segment_hits += 1
            return [list(seg) for seg in hit]
        value = self._read("segments", key)
        if value is not None:
            self._segments[key] = [list(seg) for seg in value]
            self.segment_hits += 1
            return [list(seg) for seg in value]
        self.segment_misses += 1
        return None

    def put_segments(self, key: Tuple, segments) -> None:
        """Store a segmentation in memory and write it through to disk."""
        super().put_segments(key, segments)
        self._write("segments", key, [list(seg) for seg in segments])

    # -- maintenance -------------------------------------------------

    def entries(self) -> Dict[str, int]:
        """On-disk entry count per memo family."""
        counts: Dict[str, int] = {}
        for name in self._files():
            kind = name.split("-", 1)[0]
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def size_bytes(self) -> int:
        """Total bytes of the on-disk store (this schema version)."""
        total = 0
        for name in self._files():
            try:
                total += os.path.getsize(os.path.join(self.root, name))
            except OSError:
                continue
        return total

    def _files(self) -> List[str]:
        try:
            return [n for n in os.listdir(self.root) if n.endswith(".pkl")]
        except OSError:
            return []

    def stats(self) -> Dict[str, int]:
        """Counters from :class:`CompileCache` plus the disk-layer trio."""
        stats = super().stats()
        stats.update({
            "disk_hits": self.disk_hits,
            "disk_misses": self.disk_misses,
            "disk_writes": self.disk_writes,
        })
        return stats

    def clear(self) -> None:
        """Drop the in-memory layer, counters, *and* the on-disk store
        for this schema version."""
        super().clear()
        self.disk_hits = 0
        self.disk_misses = 0
        self.disk_writes = 0
        for name in self._files():
            try:
                os.unlink(os.path.join(self.root, name))
            except OSError:
                continue
