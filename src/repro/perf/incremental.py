"""Incremental recompilation: delta-patch schedules across one-axis
architecture mutations.

Sweeps, the serve water-filling partitioner, the fleet autoscaler, and
fault-degradation studies all recompile the *same graph* against a
family of closely related architectures — one axis (core count,
crossbar geometry, link bandwidth, power budget) moves while everything
else stays fixed.  A from-scratch compile re-runs profile costing,
segmentation, and every duplication search even though most operator
profiles did not change.

:class:`IncrementalCompiler` exploits the compile pipeline's purity:

* per-op profiles, segmentation, and duplication searches are pure
  functions of content-addressed keys (frozen profile dataclasses +
  budgets), memoized in the attached
  :class:`~repro.perf.cache.CompileCache`;
* on top of that, a per-``(graph, options)`` *base* records each
  segment's pre-balance duplication search result keyed by
  ``(objective, budget, profile tuple)``.  When a mutated architecture
  leaves a segment's profiles and budget unchanged, the stored
  duplication vector is spliced in and only the changed segments are
  re-searched — the delta-patch: every :class:`~repro.sched.schedule.
  OpDecision` of an unchanged segment is rebuilt from recorded data,
  never re-optimized;
* a repeated request for the *same* graph object, architecture value,
  and options returns the previously built
  :class:`~repro.sched.compiler.CompilationResult` outright (the
  exact-hit store is additionally keyed by object identity so two
  tenants holding equal-signature graph copies never share — and never
  cross-annotate — one schedule).

Because the spliced duplication vectors are exactly what the search
would recompute (equal keys ⇒ equal values for pure functions), and the
CG schedule handed to the MVM/VVM passes and the simulator is exactly
what :func:`~repro.sched.cg.schedule_cg` would build, the result is
bit-identical to a from-scratch compile — the regression suite pins
this on every mutation axis.

With the fast path disabled the class defers to a plain
:class:`~repro.sched.compiler.CIMMLC` compile (reference semantics, no
caching), so ``repro bench`` can time both routes through one callable.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..arch import CIMArchitecture
from ..graph import Graph
from ..sched.cg import (
    balance_for_bandwidth,
    duplicate_min_bottleneck,
    duplicate_min_total,
    segment_graph,
)
from ..sched.compiler import CIMMLC, CompilationResult, CompilerOptions
from ..sched.costs import CostModel
from ..sched.mvm import schedule_mvm
from ..sched.schedule import OpDecision, Schedule
from ..sched.vvm import schedule_vvm
from ..sim import PerformanceSimulator
from .cache import CompileCache
from .fastpath import fastpath_enabled


class IncrementalCompiler:
    """Compile graphs against mutating architectures by delta-patching.

    Drop-in accelerator for ``CIMMLC(arch, options).compile(graph)``
    call sites that see many related architectures: attach one instance
    (optionally sharing a :class:`~repro.perf.cache.CompileCache`) and
    route compiles through :meth:`compile`.  Gated on
    :func:`~repro.perf.fastpath_enabled`; when the fast path is off it
    runs the plain reference compile.
    """

    def __init__(self, cache: Optional[CompileCache] = None) -> None:
        self.cache = cache if cache is not None else CompileCache()
        #: (id(graph), signature, arch, options) -> CompilationResult.
        self._results: Dict[Tuple, CompilationResult] = {}
        #: (signature, options) -> {(objective, budget, profile tuple):
        #: pre-balance duplication vector} — the splice store.
        self._bases: Dict[Tuple, Dict[Tuple, Dict[str, int]]] = {}
        self.exact_hits = 0
        self.full_compiles = 0
        self.delta_compiles = 0
        self.spliced_segments = 0
        self.searched_segments = 0

    # -- public API --------------------------------------------------

    def compile(self, graph: Graph, arch: CIMArchitecture,
                options: Optional[CompilerOptions] = None
                ) -> CompilationResult:
        """Compile ``graph`` for ``arch``, splicing everything the
        mutation did not touch (see the module docstring)."""
        opts = options or CompilerOptions()
        if not fastpath_enabled():
            return CIMMLC(arch, opts).compile(graph)
        sig = graph.signature()
        rkey = (id(graph), sig, arch, opts)
        hit = self._results.get(rkey)
        if hit is not None:
            self.exact_hits += 1
            return hit
        bkey = (sig, opts)
        base = self._bases.get(bkey)
        if base is None:
            base = self._bases[bkey] = {}
            self.full_compiles += 1
        else:
            self.delta_compiles += 1
        schedule = self._schedule_cg(graph, arch, opts, base)
        levels = CIMMLC(arch, opts).levels()
        if "MVM" in levels:
            schedule = schedule_mvm(schedule, stagger=opts.mvm_stagger,
                                    refine=opts.mvm_refine)
        if "VVM" in levels:
            schedule = schedule_vvm(schedule)
        report = PerformanceSimulator(arch).run(schedule)
        result = CompilationResult(schedule=schedule, report=report)
        self._results[rkey] = result
        return result

    def stats(self) -> Dict[str, int]:
        """Hit/compile counters plus the attached cache's statistics."""
        stats = {
            "exact_hits": self.exact_hits,
            "full_compiles": self.full_compiles,
            "delta_compiles": self.delta_compiles,
            "spliced_segments": self.spliced_segments,
            "searched_segments": self.searched_segments,
        }
        for key, value in self.cache.stats().items():
            stats[f"cache_{key}"] = value
        return stats

    def clear(self) -> None:
        """Drop results, splice bases, and counters (the attached
        cache is left to its owner)."""
        self._results.clear()
        self._bases.clear()
        self.exact_hits = 0
        self.full_compiles = 0
        self.delta_compiles = 0
        self.spliced_segments = 0
        self.searched_segments = 0

    # -- internals ---------------------------------------------------

    def _schedule_cg(self, graph: Graph, arch: CIMArchitecture,
                     opts: CompilerOptions,
                     base: Dict[Tuple, Dict[str, int]]) -> Schedule:
        """:func:`~repro.sched.cg.schedule_cg` with segment splicing.

        Mirrors the reference step for step; the only difference is
        where a segment's pre-balance duplication vector comes from —
        the base store when its content key matches, the (cached)
        search otherwise.
        """
        cm = CostModel(arch, cache=self.cache)
        profiles = cm.profiles(graph)
        segments = segment_graph(graph, profiles, arch, opts.pipeline,
                                 opts.duplicate, self.cache)
        budget = arch.chip.core_number
        objective = "min_bottleneck" if opts.pipeline else "min_total"
        search = duplicate_min_bottleneck if opts.pipeline \
            else duplicate_min_total
        decisions: Dict[str, OpDecision] = {}
        for seg_idx, seg in enumerate(segments):
            seg_profiles = [profiles[n] for n in seg]
            if opts.duplicate:
                skey = (objective, budget, tuple(seg_profiles))
                stored = base.get(skey)
                if stored is not None:
                    # The base compile memoized the search on this very
                    # content key, so this lookup is an O(1) warm hit —
                    # routing it through the cache keeps the shared
                    # hit/miss counters truthful for observers.
                    dups = search(seg_profiles, budget, self.cache)
                    self.spliced_segments += 1
                else:
                    dups = search(seg_profiles, budget, self.cache)
                    base[skey] = dict(dups)
                    self.searched_segments += 1
                dups = balance_for_bandwidth(graph, profiles, dups, arch)
            else:
                dups = {n: 1 for n in seg}
            for name in seg:
                decisions[name] = OpDecision(
                    profiles[name], segment=seg_idx, dup_cg=dups[name])
                node = graph.node(name)
                node.annotations["duplication"] = dups[name]
                node.annotations["segment"] = seg_idx
        schedule = Schedule(graph, arch, decisions, segments,
                            pipelined=opts.pipeline, levels=("CG",))
        schedule.validate_resources()
        return schedule
