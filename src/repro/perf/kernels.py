"""Vectorized (numpy) kernels for the scheduler/simulator hot loops.

Every kernel here replaces a per-operator Python loop with array math
while producing **bit-identical** results, so the golden regressions and
the cached-vs-live sweeps stay value-exact:

* elementwise steps (``ceil``, ``floor-divide``, ``min``/``max``,
  multiply, add) are single IEEE-754 operations in both paths, so the
  vectorized form rounds exactly like the scalar form;
* reductions that the reference computes as a left-to-right Python
  ``sum`` use :func:`seq_sum` (``np.add.accumulate``), which applies the
  same left-to-right addition order — *not* ``np.sum``, whose pairwise
  summation would round differently;
* argmax-style selections keep the reference's first-wins tie-breaking
  (``np.argmax`` returns the first maximal index, exactly like
  ``list.index(max(...))``).

``tests/test_perf_cache.py`` pins the equivalence on every model/preset
pair and on randomized profiles.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np


def seq_sum(values: np.ndarray) -> float:
    """Left-to-right float sum, bit-identical to Python's ``sum()``.

    ``np.add.accumulate`` is a sequential prefix scan, so its last
    element applies the additions in exactly the reference order
    (``np.sum`` would use pairwise summation and round differently).
    """
    if len(values) == 0:
        return 0.0
    return float(np.add.accumulate(values)[-1])


# ---------------------------------------------------------------------------
# Operator latency / fill evaluation
# ---------------------------------------------------------------------------


class ProfileArrays:
    """Column view of a profile sequence for batched latency evaluation.

    Mirrors :meth:`repro.sched.costs.OpProfile.latency` /
    :meth:`~repro.sched.costs.OpProfile.fill_cycles` field-for-field; the
    integer fields stay exact in float64 far beyond any reachable
    magnitude (products stay orders of magnitude below 2**53).
    """

    def __init__(self, profiles: Sequence) -> None:
        as_f = np.asarray
        self.is_cim = as_f([p.is_cim for p in profiles], dtype=bool)
        self.num_mvms = as_f([p.num_mvms for p in profiles], dtype=np.float64)
        self.max_useful_dup = as_f([p.max_useful_dup for p in profiles],
                                   dtype=np.float64)
        self.input_passes = as_f([p.input_passes for p in profiles],
                                 dtype=np.float64)
        self.row_waves = as_f([p.row_waves for p in profiles],
                              dtype=np.float64)
        self.seq_passes = as_f([p.seq_passes for p in profiles],
                               dtype=np.float64)
        self.reload_cycles = as_f([p.reload_cycles for p in profiles],
                                  dtype=np.float64)
        self.alu_cycles = as_f([p.alu_cycles for p in profiles],
                               dtype=np.float64)
        self.mov_cycles = as_f([p.mov_cycles for p in profiles],
                               dtype=np.float64)
        self.fill_fraction = as_f([p.fill_fraction for p in profiles],
                                  dtype=np.float64)
        self.cores_per_replica = as_f([p.cores_per_replica for p in profiles],
                                      dtype=np.float64)

    def __len__(self) -> int:
        return len(self.is_cim)

    def latencies(self, dup: np.ndarray, wave_reduction: np.ndarray,
                  window_waves: np.ndarray,
                  has_window_waves: np.ndarray) -> np.ndarray:
        """``OpProfile.latency`` over all rows in one pass.

        ``window_waves`` holds the per-row override where
        ``has_window_waves`` is True (the value is ignored elsewhere).
        """
        dup = np.asarray(dup, dtype=np.float64)
        wave_reduction = np.asarray(wave_reduction, dtype=np.float64)
        # CIM rows: windows = ceil(num_mvms / min(dup, max_useful_dup)).
        eff_dup = np.minimum(dup, self.max_useful_dup)
        windows = np.ceil(self.num_mvms / np.maximum(eff_dup, 1.0))
        # mvm_cycles(wave_reduction) = input_passes * max(1, ceil(...)).
        waves = np.ceil(self.row_waves / np.maximum(1.0, wave_reduction))
        mvm = self.input_passes * np.maximum(1.0, waves)
        compute = np.where(
            has_window_waves,
            windows * self.input_passes * window_waves,
            windows * mvm * self.seq_passes,
        )
        compute = compute + self.seq_passes * self.reload_cycles
        cim_lat = np.maximum(compute, self.mov_cycles) + self.alu_cycles
        # Digital rows: max(alu, mov).
        digital_lat = np.maximum(self.alu_cycles, self.mov_cycles)
        return np.where(self.is_cim, cim_lat, digital_lat)

    def fills(self, latencies: np.ndarray) -> np.ndarray:
        """``OpProfile.fill_cycles`` (latency × fill fraction) per row."""
        return latencies * self.fill_fraction


def decision_columns(decisions: Sequence
                     ) -> Tuple[ProfileArrays, np.ndarray, np.ndarray,
                                np.ndarray, np.ndarray]:
    """Split a decision sequence into (profiles, dup, wave, window, mask).

    The returned arrays feed :meth:`ProfileArrays.latencies` to evaluate
    every :meth:`~repro.sched.schedule.OpDecision.latency` at once.
    """
    cols = ProfileArrays([d.profile for d in decisions])
    dup = np.asarray([d.dup for d in decisions], dtype=np.float64)
    wave = np.asarray([d.wave_reduction for d in decisions],
                      dtype=np.float64)
    has_ww = np.asarray([d.window_waves is not None for d in decisions],
                        dtype=bool)
    ww = np.asarray([0 if d.window_waves is None else d.window_waves
                     for d in decisions], dtype=np.float64)
    return cols, dup, wave, ww, has_ww


def decision_latencies_fills(decisions: Sequence
                             ) -> Tuple[np.ndarray, np.ndarray]:
    """(latency, fill) arrays matching per-decision scalar evaluation."""
    cols, dup, wave, ww, has_ww = decision_columns(decisions)
    lats = cols.latencies(dup, wave, ww, has_ww)
    return lats, cols.fills(lats)


def segment_cycles(decisions: Sequence,
                   pipelined: bool) -> Tuple[np.ndarray, int, float]:
    """(latencies, bottleneck index, segment cycles) in one pass.

    The single fast-path body shared by
    :func:`repro.sched.cg.pipelined_latency` /
    :func:`~repro.sched.cg.sequential_latency` and
    :meth:`repro.sim.performance.PerformanceSimulator.run`, so the
    bit-identity-critical bottleneck/fill-spill formula exists exactly
    once.  Pipelined: bottleneck latency plus the other operators'
    fills (``np.argmax`` keeps the reference's first-wins tie-breaking,
    :func:`seq_sum` its left-to-right fill summation).  Sequential: the
    ordered latency sum.
    """
    lats, fills = decision_latencies_fills(decisions)
    b_idx = int(lats.argmax())
    if pipelined:
        spill = seq_sum(fills) - float(fills[b_idx])
        cycles = float(lats[b_idx]) + max(0.0, spill)
    else:
        cycles = seq_sum(lats)
    return lats, b_idx, cycles


# ---------------------------------------------------------------------------
# Duplication search
# ---------------------------------------------------------------------------


def useful_dup_options(num_mvms: int, cap: int) -> np.ndarray:
    """Duplication values where ``ceil(num_mvms / d)`` changes.

    Vectorized form of the ``_useful_dups`` scan: for every window count
    ``k`` in ``[1, num_mvms)`` the smallest achieving duplication is
    ``ceil(num_mvms / k)`` — computed with the same float division +
    ceil as the reference, filtered to ``<= cap``, deduplicated, and
    joined with the mandatory ``{1, max(1, cap)}`` endpoints.
    """
    options = {1, max(1, int(cap))}
    if num_mvms > 1:
        k = np.arange(1, num_mvms, dtype=np.float64)
        d = np.ceil(num_mvms / k)
        d = d[d <= cap]
        # The set dedups; np.unique would also work but lazily imports
        # numpy.ma on first use, a ~10ms stall inside timed regions.
        options.update(d.astype(np.int64).tolist())
    return np.array(sorted(options), dtype=np.int64)


class BottleneckSearch:
    """Array state for the min-bottleneck duplication binary search.

    Precomputes per-operator columns once so each of the ~60 bisection
    steps evaluates ``dup_for_target`` / ``cost`` as a handful of array
    expressions instead of a Python loop over operators.  Matches
    ``duplicate_min_bottleneck``'s scalar helpers operation for
    operation (float divisions, floor-divide, ceil, clamps).
    """

    def __init__(self, cim: Sequence, budget: int) -> None:
        self.budget = budget
        self.cores = np.asarray([p.cores_per_replica for p in cim],
                                dtype=np.float64)
        self.num_mvms = np.asarray([p.num_mvms for p in cim],
                                   dtype=np.float64)
        self.max_dup = np.asarray([p.max_useful_dup for p in cim],
                                  dtype=np.float64)
        self.mvm = np.asarray([p.mvm_cycles_base for p in cim],
                              dtype=np.float64)
        self.alu = np.asarray([p.alu_cycles for p in cim], dtype=np.float64)
        mov = np.asarray([p.mov_cycles for p in cim], dtype=np.float64)
        # Duplication-independent floor: max(mov, mvm) + alu.
        self.floor = np.maximum(mov, self.mvm) + self.alu
        self.infeasible = self.max_dup + budget + 1

    def dup_for_target(self, target: float) -> np.ndarray:
        """Smallest per-op duplication meeting ``target`` (marker when
        unreachable), as float64 integers."""
        compute_budget = target - self.alu
        windows_per_replica = np.floor_divide(compute_budget, self.mvm)
        dups = np.minimum(
            self.max_dup,
            np.ceil(self.num_mvms / np.maximum(1.0, windows_per_replica)))
        return np.where(target < self.floor, self.infeasible, dups)

    def cost(self, target: float) -> float:
        """Total cores of the cheapest feasible duplication for
        ``target`` (exact: integer-valued float64 products and sums)."""
        return float(np.add.reduce(self.cores * self.dup_for_target(target)))


class DupLatencyColumns:
    """Default-argument ``OpProfile.latency`` over a CIM profile sequence.

    The duplication searches evaluate ``p.latency(d)`` with no wave
    reduction and no window override, so the whole formula collapses to
    four per-operator constants: the per-window unit
    ``mvm_cycles(1) * seq_passes``, the reload base
    ``seq_passes * reload_cycles``, the movement floor, and the ALU
    tail.  Every step mirrors the scalar method — the same float
    division and ``ceil``, the same integer-valued products (exact in
    float64 far below 2**53), the same ``max(compute, mov) + alu`` —
    so the values are bit-identical to :meth:`repro.sched.costs.
    OpProfile.latency`.
    """

    def __init__(self, profiles: Sequence) -> None:
        as_f = np.asarray
        self.names = [p.name for p in profiles]
        self.cores = as_f([p.cores_per_replica for p in profiles],
                          dtype=np.int64)
        self.num_mvms = as_f([p.num_mvms for p in profiles],
                             dtype=np.float64)
        self.max_dup = as_f([p.max_useful_dup for p in profiles],
                            dtype=np.float64)
        self.per_window = as_f([p.mvm_cycles(1) * p.seq_passes
                                for p in profiles], dtype=np.float64)
        self.base = as_f([p.seq_passes * p.reload_cycles
                          for p in profiles], dtype=np.float64)
        self.mov = as_f([p.mov_cycles for p in profiles], dtype=np.float64)
        self.alu = as_f([p.alu_cycles for p in profiles], dtype=np.float64)

    def __len__(self) -> int:
        return len(self.names)

    def latency(self, dup: np.ndarray) -> np.ndarray:
        """``p.latency(dup[i])`` for every operator in one pass."""
        dup = np.asarray(dup, dtype=np.float64)
        eff = np.minimum(dup, self.max_dup)
        windows = np.ceil(self.num_mvms / np.maximum(eff, 1.0))
        compute = windows * self.per_window + self.base
        return np.maximum(compute, self.mov) + self.alu

    def latency_at(self, i: int, dup: float) -> float:
        """Scalar ``p.latency(dup)`` for operator ``i`` (same IEEE ops
        as :meth:`latency`, for incremental greedy updates)."""
        eff = min(float(dup), float(self.max_dup[i]))
        windows = math.ceil(float(self.num_mvms[i]) / max(eff, 1.0))
        compute = windows * float(self.per_window[i]) + float(self.base[i])
        mov = float(self.mov[i])
        return (compute if compute > mov else mov) + float(self.alu[i])


#: Sentinel padding the ragged per-operator useful-level table; large
#: enough that a padded cell never satisfies a ``level <= threshold``
#: test yet still converts to float64 without overflow.
_LEVEL_PAD = 2 ** 62


def level_latency_table(table: DupLatencyColumns,
                        levels: Sequence[Sequence[int]]
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """Padded per-operator level matrix and the latency at every cell.

    ``levels[i]`` is operator ``i``'s ascending duplication-level list;
    rows are padded with :data:`_LEVEL_PAD` (padded cells clamp to the
    useful-duplication cap and must be masked by callers).  The latency
    evaluation applies exactly :meth:`DupLatencyColumns.latency`
    broadcast over columns.
    """
    n = len(table)
    width = max((len(row) for row in levels), default=1) or 1
    lv = np.full((n, width), _LEVEL_PAD, dtype=np.int64)
    for i, row in enumerate(levels):
        lv[i, :len(row)] = row
    eff = np.minimum(lv.astype(np.float64), table.max_dup[:, None])
    windows = np.ceil(table.num_mvms[:, None] / np.maximum(eff, 1.0))
    compute = windows * table.per_window[:, None] + table.base[:, None]
    lat = np.maximum(compute, table.mov[:, None]) + table.alu[:, None]
    return lv, lat


class RefineExchange:
    """Whole-frontier evaluation of the pairwise-exchange refinement.

    The reference loop (``repro.sched.cg._refine_exchange``) scans, per
    iteration, every operator ``p`` for its next useful duplication
    level and every donor ``q`` for the *largest* down-level that frees
    enough cores, then applies the best strictly-improving move from a
    sorted candidate list.  This class evaluates the entire frontier —
    all ``(p, q)`` pairs — as a handful of array expressions per
    iteration.

    Bit-identity is preserved move for move:

    * latencies come from :class:`DupLatencyColumns` (value-exact with
      ``OpProfile.latency``), so every ``gain``/``loss`` float equals
      the reference's;
    * the reference breaks at the *first* (largest) feasible donor
      down-level and evaluates only that one; the vectorized threshold
      count selects exactly that level;
    * a no-donor move short-circuits the donor scan for its operator
      (the reference ``continue``), mirrored by masking;
    * the winning move is the minimum of the reference's sort tuples
      ``(-net, p.name, d_up, q.name, d_down)``; ties on the exact
      float ``net`` are resolved by rebuilding those tuples for the
      tied candidates only and taking ``min`` — candidates of
      different operators are decided at ``p.name``, so the reference's
      ``None`` donor fields (only ever compared within one operator's
      branch) never meet a string.
    """

    def __init__(self, cim: Sequence,
                 levels: Sequence[Sequence[int]]) -> None:
        self.table = DupLatencyColumns(cim)
        self.names = self.table.names
        self.nlev = np.asarray([len(row) for row in levels], dtype=np.int64)
        self.lv, self.lv_lat = level_latency_table(self.table, levels)

    def best_move(self, dups: np.ndarray, free: int
                  ) -> Optional[Tuple[int, int, Optional[int],
                                      Optional[int]]]:
        """The reference iteration's winning move for the current
        duplication vector, or ``None`` when no candidate improves.

        Returns ``(p, d_up, q, d_down)`` with operator *indices* (``q``
        and ``d_down`` are ``None`` for a no-donor move).
        """
        t = self.table
        n = len(self.names)
        rows = np.arange(n)
        cur = t.latency(dups)
        # First useful level strictly above the current duplication.
        cnt_up = np.add.reduce(self.lv <= dups[:, None], axis=1)
        has_up = cnt_up < self.nlev
        up_idx = np.minimum(cnt_up, self.lv.shape[1] - 1)
        d_up = np.where(has_up, self.lv[rows, up_idx], dups)
        gain = cur - self.lv_lat[rows, up_idx]
        active = has_up & (gain > 1e-12)
        if not active.any():
            return None
        need = (d_up - dups) * t.cores
        nodonor = active & (need <= free)
        donors_from = active & ~nodonor
        best_net = -math.inf
        if nodonor.any():
            best_net = float(gain[nodonor].max())
        valid = None
        if donors_from.any():
            # Largest donor level lv <= dups[q] - ceil((need-free)/cores[q])
            # — exactly the first feasible level of the reference's
            # descending scan.  Non-donor rows carry clamped garbage and
            # are masked out.
            deficit = np.maximum(need - free, 1)
            per_donor = ((deficit[:, None] + t.cores[None, :] - 1)
                         // t.cores[None, :])
            thr = dups[None, :] - per_donor
            cnt_dn = np.add.reduce(
                self.lv[None, :, :] <= thr[:, :, None], axis=2)
            valid = donors_from[:, None] & (cnt_dn > 0)
            valid[rows, rows] = False
            dn_idx = np.maximum(cnt_dn - 1, 0)
            qmat = np.broadcast_to(rows[None, :], (n, n))
            d_down = self.lv[qmat, dn_idx]
            loss = self.lv_lat[qmat, dn_idx] - cur[None, :]
            net = gain[:, None] - loss
            valid &= net > 1e-9
            if valid.any():
                best_net = max(best_net, float(net[valid].max()))
        if best_net == -math.inf:
            return None
        # Exact-float ties: rebuild the reference sort tuples for the
        # tied candidates only and take their minimum.
        ties: List[Tuple[Tuple, Tuple]] = []
        if nodonor.any():
            for p in np.flatnonzero(nodonor & (gain == best_net)):
                p = int(p)
                ties.append(((self.names[p], int(d_up[p])),
                             (p, int(d_up[p]), None, None)))
        if valid is not None and valid.any():
            tied = valid & (net == best_net)
            for p, q in zip(*np.nonzero(tied)):
                p, q = int(p), int(q)
                ties.append(((self.names[p], int(d_up[p]), self.names[q],
                              int(d_down[p, q])),
                             (p, int(d_up[p]), q, int(d_down[p, q]))))
        return min(ties)[1]


# ---------------------------------------------------------------------------
# NoC hop matrices
# ---------------------------------------------------------------------------


def mesh_hop_array(n: int, rows: int, cols: int) -> np.ndarray:
    """Manhattan hop counts on a ``rows x cols`` mesh (int64, n x n)."""
    idx = np.arange(n, dtype=np.int64)
    r, c = idx // cols, idx % cols
    return (np.abs(r[:, None] - r[None, :])
            + np.abs(c[:, None] - c[None, :]))


def htree_hop_array(n: int) -> np.ndarray:
    """H-tree hop counts: ``2 * depth_of_lca`` for each pair (int64).

    ``depth_of_lca(a, b)`` — the number of simultaneous halvings until
    the indices merge — equals the bit length of ``a XOR b``; the bit
    length is read off the float64 exponent (exact for any index far
    below 2**53).
    """
    idx = np.arange(n, dtype=np.int64)
    xor = idx[:, None] ^ idx[None, :]
    depth = np.frexp(xor.astype(np.float64))[1]
    return 2 * depth.astype(np.int64)


def shared_bus_hop_array(n: int) -> np.ndarray:
    """Uniform one-hop cost matrix with a zero diagonal (int64)."""
    hops = np.ones((n, n), dtype=np.int64)
    np.fill_diagonal(hops, 0)
    return hops
