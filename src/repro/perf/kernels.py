"""Vectorized (numpy) kernels for the scheduler/simulator hot loops.

Every kernel here replaces a per-operator Python loop with array math
while producing **bit-identical** results, so the golden regressions and
the cached-vs-live sweeps stay value-exact:

* elementwise steps (``ceil``, ``floor-divide``, ``min``/``max``,
  multiply, add) are single IEEE-754 operations in both paths, so the
  vectorized form rounds exactly like the scalar form;
* reductions that the reference computes as a left-to-right Python
  ``sum`` use :func:`seq_sum` (``np.add.accumulate``), which applies the
  same left-to-right addition order — *not* ``np.sum``, whose pairwise
  summation would round differently;
* argmax-style selections keep the reference's first-wins tie-breaking
  (``np.argmax`` returns the first maximal index, exactly like
  ``list.index(max(...))``).

``tests/test_perf_cache.py`` pins the equivalence on every model/preset
pair and on randomized profiles.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def seq_sum(values: np.ndarray) -> float:
    """Left-to-right float sum, bit-identical to Python's ``sum()``.

    ``np.add.accumulate`` is a sequential prefix scan, so its last
    element applies the additions in exactly the reference order
    (``np.sum`` would use pairwise summation and round differently).
    """
    if len(values) == 0:
        return 0.0
    return float(np.add.accumulate(values)[-1])


# ---------------------------------------------------------------------------
# Operator latency / fill evaluation
# ---------------------------------------------------------------------------


class ProfileArrays:
    """Column view of a profile sequence for batched latency evaluation.

    Mirrors :meth:`repro.sched.costs.OpProfile.latency` /
    :meth:`~repro.sched.costs.OpProfile.fill_cycles` field-for-field; the
    integer fields stay exact in float64 far beyond any reachable
    magnitude (products stay orders of magnitude below 2**53).
    """

    def __init__(self, profiles: Sequence) -> None:
        as_f = np.asarray
        self.is_cim = as_f([p.is_cim for p in profiles], dtype=bool)
        self.num_mvms = as_f([p.num_mvms for p in profiles], dtype=np.float64)
        self.max_useful_dup = as_f([p.max_useful_dup for p in profiles],
                                   dtype=np.float64)
        self.input_passes = as_f([p.input_passes for p in profiles],
                                 dtype=np.float64)
        self.row_waves = as_f([p.row_waves for p in profiles],
                              dtype=np.float64)
        self.seq_passes = as_f([p.seq_passes for p in profiles],
                               dtype=np.float64)
        self.reload_cycles = as_f([p.reload_cycles for p in profiles],
                                  dtype=np.float64)
        self.alu_cycles = as_f([p.alu_cycles for p in profiles],
                               dtype=np.float64)
        self.mov_cycles = as_f([p.mov_cycles for p in profiles],
                               dtype=np.float64)
        self.fill_fraction = as_f([p.fill_fraction for p in profiles],
                                  dtype=np.float64)
        self.cores_per_replica = as_f([p.cores_per_replica for p in profiles],
                                      dtype=np.float64)

    def __len__(self) -> int:
        return len(self.is_cim)

    def latencies(self, dup: np.ndarray, wave_reduction: np.ndarray,
                  window_waves: np.ndarray,
                  has_window_waves: np.ndarray) -> np.ndarray:
        """``OpProfile.latency`` over all rows in one pass.

        ``window_waves`` holds the per-row override where
        ``has_window_waves`` is True (the value is ignored elsewhere).
        """
        dup = np.asarray(dup, dtype=np.float64)
        wave_reduction = np.asarray(wave_reduction, dtype=np.float64)
        # CIM rows: windows = ceil(num_mvms / min(dup, max_useful_dup)).
        eff_dup = np.minimum(dup, self.max_useful_dup)
        windows = np.ceil(self.num_mvms / np.maximum(eff_dup, 1.0))
        # mvm_cycles(wave_reduction) = input_passes * max(1, ceil(...)).
        waves = np.ceil(self.row_waves / np.maximum(1.0, wave_reduction))
        mvm = self.input_passes * np.maximum(1.0, waves)
        compute = np.where(
            has_window_waves,
            windows * self.input_passes * window_waves,
            windows * mvm * self.seq_passes,
        )
        compute = compute + self.seq_passes * self.reload_cycles
        cim_lat = np.maximum(compute, self.mov_cycles) + self.alu_cycles
        # Digital rows: max(alu, mov).
        digital_lat = np.maximum(self.alu_cycles, self.mov_cycles)
        return np.where(self.is_cim, cim_lat, digital_lat)

    def fills(self, latencies: np.ndarray) -> np.ndarray:
        """``OpProfile.fill_cycles`` (latency × fill fraction) per row."""
        return latencies * self.fill_fraction


def decision_columns(decisions: Sequence
                     ) -> Tuple[ProfileArrays, np.ndarray, np.ndarray,
                                np.ndarray, np.ndarray]:
    """Split a decision sequence into (profiles, dup, wave, window, mask).

    The returned arrays feed :meth:`ProfileArrays.latencies` to evaluate
    every :meth:`~repro.sched.schedule.OpDecision.latency` at once.
    """
    cols = ProfileArrays([d.profile for d in decisions])
    dup = np.asarray([d.dup for d in decisions], dtype=np.float64)
    wave = np.asarray([d.wave_reduction for d in decisions],
                      dtype=np.float64)
    has_ww = np.asarray([d.window_waves is not None for d in decisions],
                        dtype=bool)
    ww = np.asarray([0 if d.window_waves is None else d.window_waves
                     for d in decisions], dtype=np.float64)
    return cols, dup, wave, ww, has_ww


def decision_latencies_fills(decisions: Sequence
                             ) -> Tuple[np.ndarray, np.ndarray]:
    """(latency, fill) arrays matching per-decision scalar evaluation."""
    cols, dup, wave, ww, has_ww = decision_columns(decisions)
    lats = cols.latencies(dup, wave, ww, has_ww)
    return lats, cols.fills(lats)


def segment_cycles(decisions: Sequence,
                   pipelined: bool) -> Tuple[np.ndarray, int, float]:
    """(latencies, bottleneck index, segment cycles) in one pass.

    The single fast-path body shared by
    :func:`repro.sched.cg.pipelined_latency` /
    :func:`~repro.sched.cg.sequential_latency` and
    :meth:`repro.sim.performance.PerformanceSimulator.run`, so the
    bit-identity-critical bottleneck/fill-spill formula exists exactly
    once.  Pipelined: bottleneck latency plus the other operators'
    fills (``np.argmax`` keeps the reference's first-wins tie-breaking,
    :func:`seq_sum` its left-to-right fill summation).  Sequential: the
    ordered latency sum.
    """
    lats, fills = decision_latencies_fills(decisions)
    b_idx = int(lats.argmax())
    if pipelined:
        spill = seq_sum(fills) - float(fills[b_idx])
        cycles = float(lats[b_idx]) + max(0.0, spill)
    else:
        cycles = seq_sum(lats)
    return lats, b_idx, cycles


# ---------------------------------------------------------------------------
# Duplication search
# ---------------------------------------------------------------------------


def useful_dup_options(num_mvms: int, cap: int) -> np.ndarray:
    """Duplication values where ``ceil(num_mvms / d)`` changes.

    Vectorized form of the ``_useful_dups`` scan: for every window count
    ``k`` in ``[1, num_mvms)`` the smallest achieving duplication is
    ``ceil(num_mvms / k)`` — computed with the same float division +
    ceil as the reference, filtered to ``<= cap``, deduplicated, and
    joined with the mandatory ``{1, max(1, cap)}`` endpoints.
    """
    options = {1, max(1, int(cap))}
    if num_mvms > 1:
        k = np.arange(1, num_mvms, dtype=np.float64)
        d = np.ceil(num_mvms / k)
        d = d[d <= cap]
        options.update(np.unique(d).astype(np.int64).tolist())
    return np.array(sorted(options), dtype=np.int64)


class BottleneckSearch:
    """Array state for the min-bottleneck duplication binary search.

    Precomputes per-operator columns once so each of the ~60 bisection
    steps evaluates ``dup_for_target`` / ``cost`` as a handful of array
    expressions instead of a Python loop over operators.  Matches
    ``duplicate_min_bottleneck``'s scalar helpers operation for
    operation (float divisions, floor-divide, ceil, clamps).
    """

    def __init__(self, cim: Sequence, budget: int) -> None:
        self.budget = budget
        self.cores = np.asarray([p.cores_per_replica for p in cim],
                                dtype=np.float64)
        self.num_mvms = np.asarray([p.num_mvms for p in cim],
                                   dtype=np.float64)
        self.max_dup = np.asarray([p.max_useful_dup for p in cim],
                                  dtype=np.float64)
        self.mvm = np.asarray([p.mvm_cycles_base for p in cim],
                              dtype=np.float64)
        self.alu = np.asarray([p.alu_cycles for p in cim], dtype=np.float64)
        mov = np.asarray([p.mov_cycles for p in cim], dtype=np.float64)
        # Duplication-independent floor: max(mov, mvm) + alu.
        self.floor = np.maximum(mov, self.mvm) + self.alu
        self.infeasible = self.max_dup + budget + 1

    def dup_for_target(self, target: float) -> np.ndarray:
        """Smallest per-op duplication meeting ``target`` (marker when
        unreachable), as float64 integers."""
        compute_budget = target - self.alu
        windows_per_replica = np.floor_divide(compute_budget, self.mvm)
        dups = np.minimum(
            self.max_dup,
            np.ceil(self.num_mvms / np.maximum(1.0, windows_per_replica)))
        return np.where(target < self.floor, self.infeasible, dups)

    def cost(self, target: float) -> float:
        """Total cores of the cheapest feasible duplication for
        ``target`` (exact: integer-valued float64 products and sums)."""
        return float(np.add.reduce(self.cores * self.dup_for_target(target)))


# ---------------------------------------------------------------------------
# NoC hop matrices
# ---------------------------------------------------------------------------


def mesh_hop_array(n: int, rows: int, cols: int) -> np.ndarray:
    """Manhattan hop counts on a ``rows x cols`` mesh (int64, n x n)."""
    idx = np.arange(n, dtype=np.int64)
    r, c = idx // cols, idx % cols
    return (np.abs(r[:, None] - r[None, :])
            + np.abs(c[:, None] - c[None, :]))


def htree_hop_array(n: int) -> np.ndarray:
    """H-tree hop counts: ``2 * depth_of_lca`` for each pair (int64).

    ``depth_of_lca(a, b)`` — the number of simultaneous halvings until
    the indices merge — equals the bit length of ``a XOR b``; the bit
    length is read off the float64 exponent (exact for any index far
    below 2**53).
    """
    idx = np.arange(n, dtype=np.int64)
    xor = idx[:, None] ^ idx[None, :]
    depth = np.frexp(xor.astype(np.float64))[1]
    return 2 * depth.astype(np.int64)


def shared_bus_hop_array(n: int) -> np.ndarray:
    """Uniform one-hop cost matrix with a zero diagonal (int64)."""
    hops = np.ones((n, n), dtype=np.int64)
    np.fill_diagonal(hops, 0)
    return hops
