"""Tier architecture parameters (Abs-arch, Figs. 5/6/8).

Three frozen dataclasses mirror the paper's parameter tables:

* :class:`ChipTier`   — Fig. 5: ``core_number``, ``ALU``, ``core_noc``,
  ``core_noc_cost``, ``L0 size``, ``L0 BW``.
* :class:`CoreTier`   — Fig. 6: ``xb_number``, ``ALU``, ``xb_noc``,
  ``xb_noc_cost``, ``L1 size``, ``L1 BW``.
* :class:`CrossbarTier` — Fig. 8: ``xb_size``, ``parallel row``, ``DAC``,
  ``ADC``, ``Type``, ``Precision``.

Parameters the paper marks ideal ("\\") default to ``None`` / unconstrained
values: an ideal buffer has infinite bandwidth, an ideal ALU is infinitely
fast, an ideal NoC is free.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import ArchitectureError
from .noc import IDEAL_NOC, NocSpec


class CellType(enum.Enum):
    """Memory-cell technology of the crossbar (Fig. 8 ``Type``).

    The cell type determines write behaviour: SRAM rewrites cheaply
    (weights may be streamed), while ReRAM / FLASH / PCM / STT-MRAM writes
    are expensive and weights stay frozen during inference (Section 2.1).
    """

    SRAM = "SRAM"
    RERAM = "ReRAM"
    FLASH = "FLASH"
    PCM = "PCM"
    STT_MRAM = "STT-MRAM"

    @property
    def cheap_writes(self) -> bool:
        """True when in-computation weight rewrites are practical."""
        return self is CellType.SRAM

    #: Relative write cost vs. a read, used by the performance simulator.
    @property
    def write_cost_ratio(self) -> float:
        return {
            CellType.SRAM: 1.0,
            CellType.RERAM: 20.0,
            CellType.FLASH: 100.0,
            CellType.PCM: 40.0,
            CellType.STT_MRAM: 8.0,
        }[self]


def _check_positive(name: str, value) -> None:
    if value is not None and value <= 0:
        raise ArchitectureError(f"{name} must be positive, got {value}")


@dataclass(frozen=True)
class ChipTier:
    """Chip-tier parameters (Fig. 5).

    ``core_number`` may be given as a total or as a (rows, cols) grid via
    ``core_grid``; ``alu_ops`` is digit-computing capacity in operations per
    cycle (``None`` = ideal); ``l0_size_bits``/``l0_bw_bits`` describe the
    global buffer (``None`` = ideal).
    """

    core_number: int
    core_grid: Optional[Tuple[int, int]] = None
    alu_ops: Optional[float] = None
    core_noc: NocSpec = field(default=IDEAL_NOC)
    l0_size_bits: Optional[int] = None
    l0_bw_bits: Optional[float] = None

    def __post_init__(self) -> None:
        _check_positive("core_number", self.core_number)
        _check_positive("alu_ops", self.alu_ops)
        _check_positive("l0_size_bits", self.l0_size_bits)
        _check_positive("l0_bw_bits", self.l0_bw_bits)
        if self.core_grid is not None:
            r, c = self.core_grid
            if r * c != self.core_number:
                raise ArchitectureError(
                    f"core_grid {self.core_grid} does not match "
                    f"core_number {self.core_number}"
                )


@dataclass(frozen=True)
class CoreTier:
    """Core-tier parameters (Fig. 6): crossbar count/grid, core-local ALU,
    intra-core NoC, and L1 buffer."""

    xb_number: int
    xb_grid: Optional[Tuple[int, int]] = None
    alu_ops: Optional[float] = None
    xb_noc: NocSpec = field(default=IDEAL_NOC)
    l1_size_bits: Optional[int] = None
    l1_bw_bits: Optional[float] = None

    def __post_init__(self) -> None:
        _check_positive("xb_number", self.xb_number)
        _check_positive("alu_ops", self.alu_ops)
        _check_positive("l1_size_bits", self.l1_size_bits)
        _check_positive("l1_bw_bits", self.l1_bw_bits)
        if self.xb_grid is not None:
            r, c = self.xb_grid
            if r * c != self.xb_number:
                raise ArchitectureError(
                    f"xb_grid {self.xb_grid} does not match "
                    f"xb_number {self.xb_number}"
                )


@dataclass(frozen=True)
class CrossbarTier:
    """Crossbar-tier parameters (Fig. 8).

    ``xb_size`` is (rows, cols) of memory cells; ``parallel_row`` is the
    maximum number of wordlines activated simultaneously; ``dac_bits`` /
    ``adc_bits`` are converter precisions; ``cell_type`` / ``cell_bits`` are
    the storage-cell technology and per-cell precision.
    """

    xb_size: Tuple[int, int]
    parallel_row: Optional[int] = None
    dac_bits: int = 1
    adc_bits: int = 8
    cell_type: CellType = CellType.RERAM
    cell_bits: int = 1

    def __post_init__(self) -> None:
        rows, cols = self.xb_size
        _check_positive("xb rows", rows)
        _check_positive("xb cols", cols)
        _check_positive("dac_bits", self.dac_bits)
        _check_positive("adc_bits", self.adc_bits)
        _check_positive("cell_bits", self.cell_bits)
        if self.parallel_row is not None:
            if not 1 <= self.parallel_row <= rows:
                raise ArchitectureError(
                    f"parallel_row {self.parallel_row} outside [1, {rows}]"
                )

    @property
    def rows(self) -> int:
        """Wordline count."""
        return self.xb_size[0]

    @property
    def cols(self) -> int:
        """Bitline count."""
        return self.xb_size[1]

    @property
    def effective_parallel_row(self) -> int:
        """Rows activated per cycle (defaults to all rows when unset)."""
        return self.parallel_row if self.parallel_row is not None else self.rows

    @property
    def capacity_bits(self) -> int:
        """Weight storage capacity of one crossbar."""
        return self.rows * self.cols * self.cell_bits

    def bit_slices(self, weight_bits: int) -> int:
        """Adjacent cells needed to hold one ``weight_bits`` value
        (dimension B spread along XBC, Fig. 7)."""
        if weight_bits <= 0:
            raise ArchitectureError(f"weight_bits must be positive, got {weight_bits}")
        return math.ceil(weight_bits / self.cell_bits)

    def input_passes(self, activation_bits: int) -> int:
        """Bit-serial DAC passes to present one ``activation_bits`` input."""
        if activation_bits <= 0:
            raise ArchitectureError(
                f"activation_bits must be positive, got {activation_bits}"
            )
        return math.ceil(activation_bits / self.dac_bits)

    def row_waves(self, rows_used: int) -> int:
        """Sequential activation waves to cover ``rows_used`` wordlines at
        ``parallel_row`` rows per wave (WLM view; 1 when all rows fire)."""
        if rows_used <= 0:
            return 0
        if not 1 <= rows_used <= self.rows:
            raise ArchitectureError(
                f"rows_used {rows_used} outside [1, {self.rows}]"
            )
        return math.ceil(rows_used / self.effective_parallel_row)
