"""Computing-mode abstraction (Abs-com, Section 3.2).

The mode records the *minimum scheduling granularity* a CIM chip exposes to
the compiler.  Architecture tiers and computing modes maintain a one-to-one
correspondence (Fig. 4(d)-(f)):

* :attr:`ComputingMode.CM` — Core Mode: whole cores execute whole DNN
  operators; the compiler sees only chip-tier parameters and optimizes at
  CG (computing-graph) granularity.
* :attr:`ComputingMode.XBM` — Crossbar Mode: crossbars execute MVMs; chip and
  core tiers are visible; CG + MVM-grained optimization apply.
* :attr:`ComputingMode.WLM` — Wordline Mode: partial rows activate
  independently; all three tiers are visible; CG + MVM + VVM-grained
  optimization apply.
"""

from __future__ import annotations

import enum


class ComputingMode(enum.Enum):
    """Programming-interface granularity exposed by a CIM accelerator."""

    CM = "CM"
    XBM = "XBM"
    WLM = "WLM"

    @property
    def visible_tiers(self) -> int:
        """How many architecture tiers the compiler may inspect (top-down)."""
        return {ComputingMode.CM: 1, ComputingMode.XBM: 2,
                ComputingMode.WLM: 3}[self]

    @property
    def optimization_levels(self) -> tuple:
        """Scheduling levels applied for this mode (Fig. 3 workflow)."""
        levels = ("CG", "MVM", "VVM")
        return levels[: self.visible_tiers]

    def supports(self, level: str) -> bool:
        """Whether optimization ``level`` ("CG"/"MVM"/"VVM") applies."""
        return level in self.optimization_levels

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
