"""Network-on-chip cost models.

Both the chip tier (``core_noc``/``core_noc_cost``, Fig. 5) and the core tier
(``xb_noc``/``xb_noc_cost``, Fig. 6) abstract their interconnect as a type
plus a transfer-cost matrix.  We provide the named topologies the paper
mentions ('Mesh', 'H-tree', shared-buffer switch) as hop-count generators; a
raw matrix can also be supplied for measured hardware.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ArchitectureError
from ..perf import fastpath_enabled
from ..perf.kernels import (
    htree_hop_array,
    mesh_hop_array,
    seq_sum,
    shared_bus_hop_array,
)

#: NoC topology names accepted by :class:`NocSpec`.
TOPOLOGIES = ("mesh", "h-tree", "shared-bus", "ideal", "matrix")


def _mesh_grid(n: int, grid: Optional[Tuple[int, int]]) -> Tuple[int, int]:
    """(rows, cols) of the mesh layout: given, or near-square for ``n``.

    Shared by the reference :func:`mesh_hops` and the vectorized
    :meth:`NocSpec.cost_array`, so the two can never disagree on the
    geometry.
    """
    if grid is None:
        rows = int(math.sqrt(n)) or 1
        return rows, (n + rows - 1) // rows
    rows, cols = grid
    if rows * cols < n:
        raise ArchitectureError(f"grid {grid} too small for {n} units")
    return rows, cols


def mesh_hops(n: int, grid: Optional[Tuple[int, int]] = None) -> List[List[int]]:
    """Manhattan hop counts on a (near-)square 2-D mesh of ``n`` units."""
    rows, cols = _mesh_grid(n, grid)
    coords = [(i // cols, i % cols) for i in range(n)]
    return [
        [abs(ra - rb) + abs(ca - cb) for (rb, cb) in coords]
        for (ra, ca) in coords
    ]


def htree_hops(n: int) -> List[List[int]]:
    """Hop counts on an H-tree: distance = 2 * (levels above deepest common
    ancestor) in a balanced binary tree over unit indices."""
    def depth_of_lca(a: int, b: int) -> int:
        # Leaves are at depth ceil(log2 n); walk up until indices merge.
        hops = 0
        while a != b:
            a //= 2
            b //= 2
            hops += 1
        return hops

    return [[2 * depth_of_lca(i, j) if i != j else 0 for j in range(n)]
            for i in range(n)]


def shared_bus_hops(n: int) -> List[List[int]]:
    """Uniform single-hop cost: every pair communicates via one shared
    buffer/bus (the Section 3.4 example uses shared-memory communication)."""
    return [[0 if i == j else 1 for j in range(n)] for i in range(n)]


@dataclass(frozen=True)
class NocSpec:
    """Interconnect abstraction for one tier.

    Parameters
    ----------
    topology:
        One of :data:`TOPOLOGIES`.  ``"ideal"`` means transfers are free
        (the paper marks unconstrained parameters with ``\\``).
    cycles_per_hop:
        Latency multiplier applied to the hop-count matrix.
    cost_matrix:
        Explicit per-pair cost (required iff ``topology == "matrix"``).
    grid:
        Optional (rows, cols) layout for mesh hop generation.
    """

    topology: str = "ideal"
    cycles_per_hop: float = 1.0
    cost_matrix: Optional[Tuple[Tuple[float, ...], ...]] = None
    grid: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ArchitectureError(
                f"unknown NoC topology {self.topology!r}; choose {TOPOLOGIES}"
            )
        if self.topology == "matrix" and self.cost_matrix is None:
            raise ArchitectureError("topology 'matrix' requires cost_matrix")
        if self.cycles_per_hop < 0:
            raise ArchitectureError("cycles_per_hop must be non-negative")

    def hop_matrix(self, n: int) -> List[List[float]]:
        """Pairwise transfer cost (cycles per unit payload) for ``n`` units."""
        if self.topology == "ideal":
            return [[0.0] * n for _ in range(n)]
        if self.topology == "matrix":
            matrix = [list(row) for row in self.cost_matrix]  # type: ignore[union-attr]
            if len(matrix) < n or any(len(row) < n for row in matrix):
                raise ArchitectureError(
                    f"cost_matrix smaller than unit count {n}"
                )
            return [[matrix[i][j] for j in range(n)] for i in range(n)]
        if self.topology == "mesh":
            hops = mesh_hops(n, self.grid)
        elif self.topology == "h-tree":
            hops = htree_hops(n)
        else:  # shared-bus
            hops = shared_bus_hops(n)
        return [[h * self.cycles_per_hop for h in row] for row in hops]

    def cost_array(self, n: int) -> np.ndarray:
        """Vectorized :meth:`hop_matrix`: the n x n pairwise cost as a
        float64 array, entry-for-entry identical to the list form (each
        entry is the same single ``hop * cycles_per_hop`` multiply)."""
        if self.topology == "ideal":
            return np.zeros((n, n), dtype=np.float64)
        if self.topology == "matrix":
            return np.array(self.hop_matrix(n), dtype=np.float64)
        if self.topology == "mesh":
            rows, cols = _mesh_grid(n, self.grid)
            hops = mesh_hop_array(n, rows, cols)
        elif self.topology == "h-tree":
            hops = htree_hop_array(n)
        else:  # shared-bus
            hops = shared_bus_hop_array(n)
        return hops.astype(np.float64) * self.cycles_per_hop

    def average_cost(self, n: int) -> float:
        """Mean pairwise cost between distinct units (0 for n <= 1).

        The fast path computes the identical value through the
        vectorized hop kernels and memoizes it per ``(spec, n)`` — this
        is the single hottest quantity of the whole compiler
        (``CostModel._mov_cycles`` asks for it once per operator, and a
        naive evaluation walks all ``n**2`` core pairs each time).
        """
        if n <= 1:
            return 0.0
        if fastpath_enabled():
            return _average_cost_fast(self, n)
        matrix = self.hop_matrix(n)
        total = sum(matrix[i][j] for i in range(n) for j in range(n) if i != j)
        return total / (n * (n - 1))

    def max_cost(self, n: int) -> float:
        """Worst-case pairwise cost (network diameter in cycles)."""
        if fastpath_enabled():
            return _max_cost_fast(self, n)
        matrix = self.hop_matrix(n)
        return max((matrix[i][j] for i in range(n) for j in range(n)),
                   default=0.0)


@lru_cache(maxsize=None)
def _average_cost_fast(spec: NocSpec, n: int) -> float:
    """Memoized vectorized :meth:`NocSpec.average_cost`.

    Bit-identical to the reference loop: entries are the same per-pair
    multiplies, the diagonal contributes exact zeros (the reference
    skips it; adding ``0.0`` to a non-negative running sum is the same
    float), and :func:`~repro.perf.kernels.seq_sum` applies the
    reference's left-to-right addition order.  Keyed by the frozen spec
    *value*, so every preset sharing a topology shares the entry.
    """
    costs = spec.cost_array(n)
    np.fill_diagonal(costs, 0.0)
    return seq_sum(costs.ravel()) / (n * (n - 1))


@lru_cache(maxsize=None)
def _max_cost_fast(spec: NocSpec, n: int) -> float:
    """Memoized vectorized :meth:`NocSpec.max_cost`."""
    if n <= 0:
        return 0.0
    return float(spec.cost_array(n).max())


@lru_cache(maxsize=None)
def hop_cost_array(spec: NocSpec, n: int) -> np.ndarray:
    """Memoized, *read-only* :meth:`NocSpec.cost_array`.

    The greedy placer asks for the same n x n hop geometry once per
    segment; rebuilding it from Python lists dominated the placement
    wall-clock.  The array is marked read-only because it is shared
    across callers (consumers that need to mutate — like
    :func:`_average_cost_fast`'s diagonal fill — must keep calling
    :meth:`~NocSpec.cost_array` for a private copy).
    """
    costs = spec.cost_array(n)
    costs.setflags(write=False)
    return costs


#: Convenience instances.
IDEAL_NOC = NocSpec("ideal")


def mesh(cycles_per_hop: float = 1.0,
         grid: Optional[Tuple[int, int]] = None) -> NocSpec:
    """A 2-D mesh NoC."""
    return NocSpec("mesh", cycles_per_hop, grid=grid)


def htree(cycles_per_hop: float = 1.0) -> NocSpec:
    """An H-tree NoC."""
    return NocSpec("h-tree", cycles_per_hop)


def shared_bus(cycles_per_hop: float = 1.0) -> NocSpec:
    """A shared-buffer / bus interconnect."""
    return NocSpec("shared-bus", cycles_per_hop)


def matrix_noc(costs: Sequence[Sequence[float]]) -> NocSpec:
    """A NoC defined by an explicit measured cost matrix."""
    frozen = tuple(tuple(float(c) for c in row) for row in costs)
    return NocSpec("matrix", 1.0, cost_matrix=frozen)
