"""Hardware abstraction (Abs-arch + Abs-com, Section 3.2)."""

from .architecture import CIMArchitecture
from .link import CHIP_TOPOLOGIES, ChipLink, MultiChipSystem
from .modes import ComputingMode
from .noc import IDEAL_NOC, NocSpec, htree, matrix_noc, mesh, shared_bus
from .params import CellType, ChipTier, CoreTier, CrossbarTier
from .presets import (
    PRESETS,
    functional_testbed,
    get_preset,
    isaac_baseline,
    isaac_flash,
    jain2021,
    jia2021,
    puma,
    table2_example,
)
from .vxb import BitBinding, VXBShape, bind, cores_per_vxb, vxbs_per_core

__all__ = [
    "BitBinding",
    "CHIP_TOPOLOGIES",
    "CIMArchitecture",
    "CellType",
    "ChipLink",
    "ChipTier",
    "ComputingMode",
    "CoreTier",
    "CrossbarTier",
    "IDEAL_NOC",
    "MultiChipSystem",
    "functional_testbed",
    "NocSpec",
    "PRESETS",
    "VXBShape",
    "bind",
    "cores_per_vxb",
    "get_preset",
    "htree",
    "isaac_baseline",
    "isaac_flash",
    "jain2021",
    "jia2021",
    "matrix_noc",
    "mesh",
    "puma",
    "shared_bus",
    "table2_example",
    "vxbs_per_core",
]
