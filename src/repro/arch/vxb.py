"""Virtual crossbars (VXB) and the dimension-binding scheme (Fig. 7).

A weight matrix has three dimensions: row R, column C, and data bit-width B.
A VXB is the group of physical crossbars that collaborate on one MVM.  The
binding decides where each matrix dimension lands:

* R always binds to crossbar rows (XBR) — inputs enter on wordlines.
* C always binds to crossbar columns (XBC) — outputs exit on bitlines.
* B binds either to adjacent columns in the same crossbar
  (:attr:`BitBinding.XBC`, the common ISAAC/PUMA layout) or to replicated
  crossbars (:attr:`BitBinding.XB`, one crossbar per bit-slice).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..errors import ArchitectureError
from .params import CrossbarTier


class BitBinding(enum.Enum):
    """Where the weight bit-width dimension (B) is physically spread."""

    XBC = "XBC"  # bit-slices occupy adjacent columns of the same crossbar
    XB = "XB"    # each bit-slice occupies its own crossbar


@dataclass(frozen=True)
class VXBShape:
    """Physical footprint of one virtual crossbar.

    Attributes
    ----------
    v_rows / v_cols:
        Crossbar-grid extent: vertical tiles cover matrix rows, horizontal
        tiles cover matrix columns (times bit-slices when B binds to XBC).
    slices_per_xb:
        Bit-slice replication factor when B binds to XB (1 otherwise).
    rows_used / cols_used:
        Cells actually occupied in the *last* (partial) tile; full tiles use
        the whole crossbar.
    matrix:
        The (R, C, bits) weight matrix this VXB realizes.
    """

    v_rows: int
    v_cols: int
    slices_per_xb: int
    rows_used: int
    cols_used: int
    matrix: tuple

    @property
    def num_crossbars(self) -> int:
        """Physical crossbars per VXB."""
        return self.v_rows * self.v_cols * self.slices_per_xb

    def rows_used_in(self, tile_row: int, xb: CrossbarTier) -> int:
        """Wordlines occupied in vertical tile ``tile_row`` (0-based)."""
        if not 0 <= tile_row < self.v_rows:
            raise ArchitectureError(f"tile_row {tile_row} out of range")
        return xb.rows if tile_row < self.v_rows - 1 else self.rows_used


def bind(matrix: tuple, xb: CrossbarTier,
         bit_binding: BitBinding = BitBinding.XBC) -> VXBShape:
    """Compute the VXB footprint of a weight matrix on crossbars ``xb``.

    Parameters
    ----------
    matrix:
        ``(rows, cols, weight_bits)`` view of the operator weights.
    xb:
        Crossbar-tier parameters.
    bit_binding:
        Placement of the bit-width dimension (Fig. 7).
    """
    r, c, bits = matrix
    if r <= 0 or c <= 0:
        raise ArchitectureError(f"degenerate weight matrix {matrix}")
    slices = xb.bit_slices(bits)
    if bit_binding is BitBinding.XBC:
        phys_cols = c * slices
        slices_per_xb = 1
    else:
        phys_cols = c
        slices_per_xb = slices
    v_rows = math.ceil(r / xb.rows)
    v_cols = math.ceil(phys_cols / xb.cols)
    rows_used = r - (v_rows - 1) * xb.rows
    cols_used = phys_cols - (v_cols - 1) * xb.cols
    return VXBShape(v_rows, v_cols, slices_per_xb, rows_used, cols_used,
                    (r, c, bits))


def vxbs_per_core(shape: VXBShape, xb_number: int) -> int:
    """How many complete VXBs of ``shape`` fit in one core.

    Zero means the VXB spans multiple cores (its crossbars must be split
    across cores and partial sums travel over the chip NoC).
    """
    if shape.num_crossbars <= 0:
        raise ArchitectureError("VXB with no crossbars")
    return xb_number // shape.num_crossbars


def cores_per_vxb(shape: VXBShape, xb_number: int) -> int:
    """Cores needed to host one VXB (1 when it fits in a core)."""
    return max(1, math.ceil(shape.num_crossbars / xb_number))
