"""Architecture presets: every concrete CIM instance used in the paper.

* :func:`isaac_baseline` — the Table 3 evaluation baseline (ISAAC-like).
* :func:`jia2021`        — Fig. 17, Jia et al. ISSCC'21 SRAM CIM (Core Mode).
* :func:`puma`           — Fig. 18, PUMA ReRAM accelerator (Crossbar Mode).
* :func:`jain2021`       — Fig. 19, Jain et al. SRAM macro (Wordline Mode).
* :func:`table2_example` — the Section 3.4 walkthrough toy (Table 2).

Parameters the paper leaves ideal ("\\") are ``None`` here, meaning the
corresponding constraint is disregarded by the cost model.
"""

from __future__ import annotations

from .architecture import CIMArchitecture
from .modes import ComputingMode
from .noc import IDEAL_NOC, mesh, shared_bus
from .params import CellType, ChipTier, CoreTier, CrossbarTier

KB = 8 * 1024  # bits per kilobyte


def isaac_baseline(mode: ComputingMode = ComputingMode.WLM) -> CIMArchitecture:
    """Table 3: 768 cores x 16 crossbars of 128x128 2-bit ReRAM cells,
    1024-op/cycle ALUs, 384 b/cycle L0, 8192 b/cycle L1, 8 parallel rows,
    1-bit DAC / 8-bit ADC.  Referenced to ISAAC [39]."""
    return CIMArchitecture(
        name="isaac-baseline",
        chip=ChipTier(
            core_number=768,
            alu_ops=1024,
            core_noc=IDEAL_NOC,
            l0_bw_bits=384,
        ),
        core=CoreTier(
            xb_number=16,
            alu_ops=1024,
            l1_bw_bits=8192,
        ),
        xb=CrossbarTier(
            xb_size=(128, 128),
            parallel_row=8,
            dac_bits=1,
            adc_bits=8,
            cell_type=CellType.RERAM,
            cell_bits=2,
        ),
        mode=mode,
    )


def jia2021() -> CIMArchitecture:
    """Fig. 17: Jia et al. [29] — 16 CIMU cores, each one 1152x256 SRAM
    array with full 1152-row parallel activation, exposed in Core Mode via a
    disjoint-buffer switch interconnect."""
    return CIMArchitecture(
        name="jia2021",
        chip=ChipTier(
            core_number=16,
            core_noc=shared_bus(),  # "Disjoint Buffer Switch"
        ),
        core=CoreTier(xb_number=1),
        xb=CrossbarTier(
            xb_size=(1152, 256),
            parallel_row=1152,
            dac_bits=1,
            adc_bits=8,
            cell_type=CellType.SRAM,
            cell_bits=1,
        ),
        mode=ComputingMode.CM,
    )


def puma() -> CIMArchitecture:
    """Fig. 18: PUMA [4] — 138 cores on a mesh, 96 KB L0 at 384 b/cycle,
    2 crossbars per core with 1 KB L1, 128x128 2-bit ReRAM crossbars with
    all 128 rows parallel, exposed in Crossbar Mode.

    The converter precisions follow the paper's Fig. 18 verbatim
    (ADC 1-bit, DAC 8-bit).
    """
    return CIMArchitecture(
        name="puma",
        chip=ChipTier(
            core_number=138,
            core_noc=mesh(),
            l0_size_bits=96 * KB,
            l0_bw_bits=384,
        ),
        core=CoreTier(
            xb_number=2,
            l1_size_bits=1 * KB,
        ),
        xb=CrossbarTier(
            xb_size=(128, 128),
            parallel_row=128,
            dac_bits=8,
            adc_bits=1,
            cell_type=CellType.RERAM,
            cell_bits=2,
        ),
        mode=ComputingMode.XBM,
    )


def jain2021() -> CIMArchitecture:
    """Fig. 19: Jain et al. [27] — a +/-CIM SRAM macro: 4 cores x 2
    crossbars of 256x64 1-bit SRAM cells where at most 32 rows activate
    simultaneously (variation control), exposed in Wordline Mode."""
    return CIMArchitecture(
        name="jain2021",
        chip=ChipTier(core_number=4),
        core=CoreTier(xb_number=2),
        xb=CrossbarTier(
            xb_size=(256, 64),
            parallel_row=32,
            dac_bits=1,
            adc_bits=6,
            cell_type=CellType.SRAM,
            cell_bits=1,
        ),
        mode=ComputingMode.WLM,
    )


def table2_example(mode: ComputingMode = ComputingMode.WLM) -> CIMArchitecture:
    """Table 2: the Section 3.4 walkthrough — 2 cores x 2 crossbars of
    32x128 2-bit cells, 16 parallel rows, shared-memory communication,
    ample buffers, full digital-op support."""
    return CIMArchitecture(
        name="table2-example",
        chip=ChipTier(core_number=2, core_noc=shared_bus()),
        core=CoreTier(xb_number=2),
        xb=CrossbarTier(
            xb_size=(32, 128),
            parallel_row=16,
            dac_bits=8,
            adc_bits=8,
            cell_type=CellType.RERAM,
            cell_bits=2,
        ),
        mode=mode,
    )


def functional_testbed(mode: ComputingMode = ComputingMode.XBM) -> CIMArchitecture:
    """A roomy small-scale chip for functional (value-exact) simulation:
    32 cores x 4 crossbars of 64x64 2-bit SRAM cells, 16 parallel rows.
    Not from the paper — sized so the functional-verification networks fit
    in one segment with duplication headroom."""
    return CIMArchitecture(
        name="functional-testbed",
        chip=ChipTier(core_number=32, core_noc=shared_bus()),
        core=CoreTier(xb_number=4),
        xb=CrossbarTier(
            xb_size=(64, 64),
            parallel_row=16,
            dac_bits=8,
            adc_bits=8,
            cell_type=CellType.SRAM,
            cell_bits=2,
        ),
        mode=mode,
    )


def isaac_flash(mode: ComputingMode = ComputingMode.WLM) -> CIMArchitecture:
    """The Table 3 baseline re-celled with FLASH devices: identical tiers
    and timing, but weight writes cost 100x a read (Section 2.1's worst
    case).  The serving scenarios use it to study time-multiplexed tenant
    switching, where every switch reprograms the crossbars."""
    arch = isaac_baseline(mode)
    return arch.with_cell_type(CellType.FLASH, name="isaac-flash")


#: All presets by name (handy for CLIs and parametrized tests).
PRESETS = {
    "isaac-baseline": isaac_baseline,
    "isaac-flash": isaac_flash,
    "jia2021": jia2021,
    "puma": puma,
    "jain2021": jain2021,
    "table2-example": table2_example,
    "functional-testbed": functional_testbed,
}


def get_preset(name: str) -> CIMArchitecture:
    """Instantiate a preset by name.

    Example
    -------
    >>> get_preset("puma").chip.core_number
    138
    """
    try:
        factory = PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; choose one of {sorted(PRESETS)}"
        ) from None
    return factory()
