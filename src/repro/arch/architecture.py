"""The complete CIM hardware abstraction: three tiers plus a computing mode.

:class:`CIMArchitecture` is the single object handed to the compiler; it
bundles :class:`ChipTier`, :class:`CoreTier`, :class:`CrossbarTier` and the
:class:`ComputingMode`, enforces the mode's tier-visibility rule
(Section 3.2: "the hardware scheduling granularity provided by the CIM
architecture determines the supported computing mode and the architecture
abstraction parameters exposed to the compiler"), and offers derived
capacity quantities used throughout scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from ..errors import ArchitectureError, ModeError
from .modes import ComputingMode
from .params import CellType, ChipTier, CoreTier, CrossbarTier


@dataclass(frozen=True)
class CIMArchitecture:
    """One CIM accelerator as seen by the compiler."""

    name: str
    chip: ChipTier
    core: CoreTier
    xb: CrossbarTier
    mode: ComputingMode = ComputingMode.XBM

    def __post_init__(self) -> None:
        if not self.name:
            raise ArchitectureError("architecture name must be non-empty")

    # ------------------------------------------------------------------
    # Derived capacities
    # ------------------------------------------------------------------

    @property
    def total_crossbars(self) -> int:
        """Crossbars on the whole chip."""
        return self.chip.core_number * self.core.xb_number

    @property
    def core_capacity_bits(self) -> int:
        """Weight storage of one core."""
        return self.core.xb_number * self.xb.capacity_bits

    @property
    def chip_capacity_bits(self) -> int:
        """Weight storage of the whole chip."""
        return self.chip.core_number * self.core_capacity_bits

    # ------------------------------------------------------------------
    # Mode-gated tier access
    # ------------------------------------------------------------------

    def visible_chip(self) -> ChipTier:
        """Chip-tier parameters (visible in every mode)."""
        return self.chip

    def visible_core(self) -> CoreTier:
        """Core-tier parameters; requires XBM or WLM."""
        if self.mode.visible_tiers < 2:
            raise ModeError(
                f"{self.name}: core tier is not exposed in {self.mode} mode"
            )
        return self.core

    def visible_xb(self) -> CrossbarTier:
        """Crossbar-tier parameters; requires WLM."""
        if self.mode.visible_tiers < 3:
            raise ModeError(
                f"{self.name}: crossbar tier is not exposed in {self.mode} mode"
            )
        return self.xb

    def supports(self, level: str) -> bool:
        """Whether scheduling level "CG"/"MVM"/"VVM" applies to this chip."""
        return self.mode.supports(level)

    # ------------------------------------------------------------------
    # Variation helpers (sensitivity studies, Fig. 22)
    # ------------------------------------------------------------------

    def with_mode(self, mode: ComputingMode) -> "CIMArchitecture":
        """Same hardware, different exposed programming interface."""
        return replace(self, mode=mode)

    def with_cores(self, core_number: int) -> "CIMArchitecture":
        """Vary the chip-tier core count (Fig. 22(a))."""
        return replace(self, chip=replace(self.chip, core_number=core_number,
                                          core_grid=None))

    def with_xb_number(self, xb_number: int) -> "CIMArchitecture":
        """Vary the per-core crossbar count (Fig. 22(b))."""
        return replace(self, core=replace(self.core, xb_number=xb_number,
                                          xb_grid=None))

    def with_xb_size(self, xb_size: Tuple[int, int]) -> "CIMArchitecture":
        """Vary the crossbar shape (Fig. 22(c)); clamps parallel_row."""
        parallel = self.xb.parallel_row
        if parallel is not None:
            parallel = min(parallel, xb_size[0])
        return replace(self, xb=replace(self.xb, xb_size=tuple(xb_size),
                                        parallel_row=parallel))

    def with_parallel_row(self, parallel_row: Optional[int]) -> "CIMArchitecture":
        """Vary the simultaneously-activated wordline count (Fig. 22(d))."""
        return replace(self, xb=replace(self.xb, parallel_row=parallel_row))

    def with_cell_type(self, cell_type: CellType,
                       name: Optional[str] = None) -> "CIMArchitecture":
        """Same tiers on a different memory device (write-cost studies)."""
        return replace(self, name=name or self.name,
                       xb=replace(self.xb, cell_type=cell_type))

    # ------------------------------------------------------------------

    def describe(self) -> Dict[str, Dict[str, Any]]:
        """The Figs. 17-19-style abstraction dictionary for display."""
        chip: Dict[str, Any] = {
            "core_number": self.chip.core_number,
            "ALU": self.chip.alu_ops,
            "core_noc": self.chip.core_noc.topology,
            "L0 size": self.chip.l0_size_bits,
            "L0 BW": self.chip.l0_bw_bits,
        }
        core: Dict[str, Any] = {
            "xb_number": self.core.xb_number,
            "ALU": self.core.alu_ops,
            "xb_noc": self.core.xb_noc.topology,
            "L1 size": self.core.l1_size_bits,
            "L1 BW": self.core.l1_bw_bits,
        }
        xb: Dict[str, Any] = {
            "xb_size": list(self.xb.xb_size),
            "parallel row": self.xb.effective_parallel_row,
            "DAC": f"{self.xb.dac_bits}-bit",
            "ADC": f"{self.xb.adc_bits}-bit",
            "Type": self.xb.cell_type.value,
            "Precision": f"{self.xb.cell_bits}-bit",
        }
        return {
            "Chip_tier": chip,
            "Core_tier": core,
            "XB_tier": xb,
            "Computing_Mode": self.mode.value,  # type: ignore[dict-item]
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.name} [{self.mode}] cores={self.chip.core_number} "
                f"xbs/core={self.core.xb_number} "
                f"xb={self.xb.rows}x{self.xb.cols} "
                f"{self.xb.cell_type.value}/{self.xb.cell_bits}b")
