"""Inter-chip link model: the first-class ``arch`` component for scaling
beyond one die.

One CIM chip tops out at ``chip_capacity_bits`` of resident weights and
``core_number`` cores of duplication headroom; past that the model must be
*sharded* across chips connected by board-level links (SerDes lanes,
chiplet bridges, PCB traces).  This module abstracts those links the same
way :mod:`repro.arch.noc` abstracts the on-die interconnect:

* :class:`ChipLink` — one point-to-point channel: bandwidth (bits/cycle),
  per-hop latency, and a serialization overhead factor for
  packetization/flit framing.
* :class:`MultiChipSystem` — N identical chips plus a link and a topology
  (``ring`` / ``fully-connected`` / ``mesh``) with a chip-to-chip hop
  metric; the single object :func:`repro.scale.shard` consumes.

The scheduling consequence mirrors the paper's Section 2.1 argument one
level up: weights stay resident *per chip*, activations stream *between*
chips, so the inter-chip pipeline pays serialization and hop latency but
never weight reprogramming.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Tuple

from ..errors import ArchitectureError
from .architecture import CIMArchitecture
from .noc import mesh_hops

#: Multi-chip topologies accepted by :class:`MultiChipSystem`.
#: ``chain`` is a ring without the wraparound link — the geometry of a
#: contiguous chip block carved out of a larger system.
CHIP_TOPOLOGIES = ("ring", "fully-connected", "mesh", "chain")


@dataclass(frozen=True)
class ChipLink:
    """One inter-chip channel as seen by the shard planner.

    Parameters
    ----------
    bandwidth_bits:
        Payload bits accepted per chip cycle (a 128 Gb/s SerDes lane on a
        1 GHz chip clock is 128 bits/cycle).
    latency_cycles:
        Fixed head latency per hop (driver + flight + sync), in cycles.
    serialization_overhead:
        Multiplier >= 1 on the serialization term for framing/packet
        overhead (1.0 = ideal wire).
    energy_per_bit:
        Energy moving one payload bit across one hop (same arbitrary
        units as :mod:`repro.sim.power`; the default is 100x the on-die
        :data:`~repro.sim.power.E_MOVE_PER_BIT` — board-level SerDes
        costs roughly two orders of magnitude more per bit than an
        on-die wire).

    Example
    -------
    >>> link = ChipLink(bandwidth_bits=128.0, latency_cycles=50.0)
    >>> link.transfer_cycles(1280)        # 50 + 1280/128
    60.0
    >>> link.serialization_cycles(1280)   # occupancy, latency excluded
    10.0
    >>> link.transfer_energy(1000, hops=2)  # 1000 * 0.015 * 2
    30.0
    """

    bandwidth_bits: float = 512.0
    latency_cycles: float = 100.0
    serialization_overhead: float = 1.0
    energy_per_bit: float = 0.015

    def __post_init__(self) -> None:
        """Validate positive bandwidth and non-negative overheads."""
        if self.bandwidth_bits <= 0:
            raise ArchitectureError(
                f"link bandwidth must be positive, got {self.bandwidth_bits}")
        if self.latency_cycles < 0:
            raise ArchitectureError(
                f"link latency must be >= 0, got {self.latency_cycles}")
        if self.serialization_overhead < 1.0:
            raise ArchitectureError(
                f"serialization_overhead must be >= 1, got "
                f"{self.serialization_overhead}")
        if self.energy_per_bit < 0:
            raise ArchitectureError(
                f"energy_per_bit must be >= 0, got {self.energy_per_bit}")

    def serialization_cycles(self, bits: float) -> float:
        """Cycles the channel is *occupied* pushing ``bits`` through one
        link — the steady-state (throughput) cost of a transfer."""
        if bits <= 0:
            return 0.0
        return bits * self.serialization_overhead / self.bandwidth_bits

    def transfer_cycles(self, bits: float, hops: int = 1) -> float:
        """End-to-end cycles for one ``bits`` message over ``hops`` links
        (wormhole-style: head latency per hop, serialization paid once) —
        the latency (fill) cost of a transfer."""
        if hops < 0:
            raise ArchitectureError(f"hops must be >= 0, got {hops}")
        if hops == 0 or bits <= 0:
            return 0.0
        return hops * self.latency_cycles + self.serialization_cycles(bits)

    def transfer_energy(self, bits: float, hops: int = 1) -> float:
        """Energy for one ``bits`` message over ``hops`` links — every
        hop re-drives the wire, so energy (unlike serialization) scales
        with the hop count."""
        if hops < 0:
            raise ArchitectureError(f"hops must be >= 0, got {hops}")
        if hops == 0 or bits <= 0:
            return 0.0
        return bits * self.energy_per_bit * hops

    def roundtrip_cycles(self, request_bits: float, response_bits: float,
                         hops: int = 1) -> float:
        """Cycles for a request/response pair over this link — how the
        fleet front end prices the hop to a replica and back
        (:mod:`repro.fleet`).  The two directions are independent
        transfers: each pays head latency and its own serialization."""
        return (self.transfer_cycles(request_bits, hops)
                + self.transfer_cycles(response_bits, hops))

    def roundtrip_energy(self, request_bits: float, response_bits: float,
                         hops: int = 1) -> float:
        """Energy twin of :meth:`roundtrip_cycles` — the per-request link
        charge in the fleet energy ledger."""
        return (self.transfer_energy(request_bits, hops)
                + self.transfer_energy(response_bits, hops))


@dataclass(frozen=True)
class MultiChipSystem:
    """N identical CIM chips joined by :class:`ChipLink` channels.

    The compiler-facing contract matches :class:`CIMArchitecture` one tier
    up: ``chip`` describes every die, ``num_chips`` how many, ``link`` the
    channel, ``topology`` the wiring (:data:`CHIP_TOPOLOGIES`).

    Example
    -------
    >>> from repro.arch import isaac_baseline
    >>> sys2 = MultiChipSystem(isaac_baseline(), num_chips=2)
    >>> sys2.hops(0, 1)
    1
    >>> sys2.total_capacity_bits == 2 * isaac_baseline().chip_capacity_bits
    True
    """

    chip: CIMArchitecture
    num_chips: int
    link: ChipLink = ChipLink()
    topology: str = "ring"

    def __post_init__(self) -> None:
        """Validate chip count and topology name."""
        if self.num_chips < 1:
            raise ArchitectureError(
                f"num_chips must be >= 1, got {self.num_chips}")
        if self.topology not in CHIP_TOPOLOGIES:
            raise ArchitectureError(
                f"unknown chip topology {self.topology!r}; "
                f"choose one of {CHIP_TOPOLOGIES}")

    # -- derived capacities -------------------------------------------

    @property
    def name(self) -> str:
        """Display name, e.g. ``"isaac-baseline x4 (ring)"``."""
        return f"{self.chip.name} x{self.num_chips} ({self.topology})"

    @property
    def total_cores(self) -> int:
        """Cores across the whole system."""
        return self.num_chips * self.chip.chip.core_number

    @property
    def total_capacity_bits(self) -> int:
        """Weight storage across the whole system."""
        return self.num_chips * self.chip.chip_capacity_bits

    # -- geometry ------------------------------------------------------

    def hop_matrix(self) -> List[List[int]]:
        """Chip-to-chip hop counts under ``topology``."""
        n = self.num_chips
        if self.topology == "fully-connected":
            return [[0 if i == j else 1 for j in range(n)] for i in range(n)]
        if self.topology == "mesh":
            return mesh_hops(n)
        if self.topology == "chain":
            return [[abs(i - j) for j in range(n)] for i in range(n)]
        # ring: shorter way around
        return [[min(abs(i - j), n - abs(i - j)) for j in range(n)]
                for i in range(n)]

    def hops(self, src: int, dst: int) -> int:
        """Hop count between two chip ids."""
        for chip_id in (src, dst):
            if not 0 <= chip_id < self.num_chips:
                raise ArchitectureError(
                    f"chip id {chip_id} outside [0, {self.num_chips})")
        return self.hop_matrix()[src][dst]

    def transfer_cycles(self, src: int, dst: int, bits: float) -> float:
        """End-to-end cycles moving ``bits`` from chip ``src`` to ``dst``."""
        return self.link.transfer_cycles(bits, self.hops(src, dst))

    def transfer_energy(self, src: int, dst: int, bits: float) -> float:
        """Energy moving ``bits`` from chip ``src`` to ``dst``."""
        return self.link.transfer_energy(bits, self.hops(src, dst))

    # -- variation helpers (sweep axes) --------------------------------

    def with_chips(self, num_chips: int) -> "MultiChipSystem":
        """Same chips and link, different chip count (sweep axis)."""
        return replace(self, num_chips=num_chips)

    def block(self, num_chips: int) -> "MultiChipSystem":
        """A contiguous ``num_chips`` sub-block of this system.

        The geometry a tenant spanning part of the system actually sees:
        a block of a fully-connected system stays fully connected; a
        block of a ring or mesh is priced as a ``chain`` (no wraparound
        link, no shortcuts through other tenants' chips — conservative
        for mesh blocks).
        """
        topology = ("fully-connected" if self.topology == "fully-connected"
                    else "chain")
        return replace(self, num_chips=num_chips, topology=topology)

    def with_link(self, link: ChipLink) -> "MultiChipSystem":
        """Same chips and count, different link (bandwidth sweeps)."""
        return replace(self, link=link)

    def describe(self) -> dict:
        """JSON-able abstraction dictionary (Fig. 17-19 style, one tier up).

        Example
        -------
        >>> from repro.arch import isaac_baseline
        >>> MultiChipSystem(isaac_baseline(), 2).describe()["num_chips"]
        2
        """
        return {
            "chip": self.chip.name,
            "num_chips": self.num_chips,
            "topology": self.topology,
            "link": {
                "bandwidth_bits": self.link.bandwidth_bits,
                "latency_cycles": self.link.latency_cycles,
                "serialization_overhead": self.link.serialization_overhead,
                "energy_per_bit": self.link.energy_per_bit,
            },
            "total_cores": self.total_cores,
            "total_capacity_bits": self.total_capacity_bits,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.name} link={self.link.bandwidth_bits:g}b/cyc"
                f"+{self.link.latency_cycles:g}cyc")
