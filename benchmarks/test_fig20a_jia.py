"""Fig. 20(a): speedup over Jia et al.'s schedule (CM-mode SRAM chip).

Paper: CG pipeline 1.2x, CG pipeline+duplication 3.7x.
"""

from repro.experiments import fig20a_jia


def test_fig20a_jia(run_experiment):
    result = run_experiment(fig20a_jia)
    pipe = result.row("CG-grained w/ Pipeline").measured
    pd = result.row("CG-grained w/ P&D").measured
    # Shape: both beat the vendor schedule; P&D beats pipeline alone.
    assert pipe > 1.0
    assert pd > pipe
