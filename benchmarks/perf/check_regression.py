#!/usr/bin/env python
"""Fail CI when a fresh ``repro bench`` run regresses vs. the baseline.

Usage::

    python benchmarks/perf/check_regression.py FRESH.json BASELINE.json

Compares ``speedup_vs_reference`` per benchmark — a *ratio* of two runs
on the same machine, so it transfers across hardware far better than
absolute wall clock.  A benchmark regresses when its fresh speedup drops
more than ``--tolerance`` (default 20%) below the committed baseline.
Very large ratios (baseline at least ``--high-speedup``, default 30x)
get the wider ``--high-tolerance`` (default 50%) instead: their fast
wall is tens of milliseconds, so the measured ratio is dominated by
reference-leg scheduler noise and legitimately swings +/-30% run to
run, while a genuine fast-path regression collapses it by an order of
magnitude — the wide band still catches the cliff without flaking CI.
Only benchmarks whose baseline speedup is at least ``--min-speedup``
(default 2x) are *enforced*: ratios near 1x sit inside run-to-run timer
noise, so they are reported informationally instead of failing shared
CI runners.  Benchmarks present in only one file are reported but do
not fail the check (adding/removing a benchmark is a reviewed code
change, not a regression).
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    """``{benchmark name: speedup}`` from a bench JSON file."""
    with open(path) as fh:
        entries = json.load(fh)
    return {e["name"]: float(e["speedup_vs_reference"]) for e in entries}


def main(argv=None) -> int:
    """Compare fresh vs. baseline speedups; return a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="JSON from the fresh bench run")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional speedup drop (default 0.2)")
    parser.add_argument("--high-speedup", type=float, default=30.0,
                        help="baselines at or above this ratio use "
                             "--high-tolerance (their reference leg "
                             "dominates run-to-run noise)")
    parser.add_argument("--high-tolerance", type=float, default=0.50,
                        help="allowed fractional drop for high-speedup "
                             "benchmarks (default 0.5)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="only enforce benchmarks whose baseline "
                             "speedup is at least this (near-1x ratios "
                             "sit inside run-to-run timer noise and are "
                             "reported informationally)")
    args = parser.parse_args(argv)

    fresh = load(args.fresh)
    baseline = load(args.baseline)
    failures = []
    for name in sorted(set(fresh) | set(baseline)):
        if name not in fresh or name not in baseline:
            print(f"note: benchmark {name!r} present in only one file")
            continue
        tol = (args.high_tolerance
               if baseline[name] >= args.high_speedup else args.tolerance)
        floor = baseline[name] * (1.0 - tol)
        enforced = baseline[name] >= args.min_speedup
        if fresh[name] >= floor:
            status = "ok"
        elif enforced:
            status = "REGRESSED"
        else:
            status = "below floor (informational: baseline < "
            status += f"{args.min_speedup:g}x, inside timer noise)"
        print(f"{name:<16} baseline {baseline[name]:>8.2f}x  "
              f"fresh {fresh[name]:>8.2f}x  floor {floor:>8.2f}x  {status}")
        if enforced and fresh[name] < floor:
            failures.append(name)
    if failures:
        print(f"FAIL: speedup regression in {failures}", file=sys.stderr)
        return 1
    print("all benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
