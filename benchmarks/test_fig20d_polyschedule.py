"""Fig. 20(d): latency vs Poly-Schedule on the Table 3 baseline.

Paper: Poly-Schedule cuts 84% of cycles, CIM-MLC 95% (3.2x over Poly).
"""

from repro.experiments import fig20d_poly


def test_fig20d_polyschedule(run_experiment):
    result = run_experiment(fig20d_poly)
    poly_cut = result.row("Poly-Schedule cycle reduction").measured
    ours_cut = result.row("CIM-MLC cycle reduction").measured
    speedup = result.row("CIM-MLC speedup over Poly-Schedule").measured
    assert poly_cut > 50.0
    assert ours_cut > poly_cut
    assert speedup > 2.0       # paper: 3.2x
