"""Fig. 16: Conv-ReLU code generation on the Table 2 architecture."""

from repro.experiments import fig16_codegen, fig16_stats


def test_fig16_codegen(run_experiment):
    result = run_experiment(fig16_stats)
    stats = result.as_dict()
    # Finer programming interfaces require more meta-operators.
    assert stats["CM flow statements"] < stats["XBM flow statements"]
    assert stats["XBM cim activations"] <= stats["WLM cim activations"]


def test_fig16_listings_contain_paper_primitives():
    listings = fig16_codegen()
    assert "cim.readcore(type=conv" in listings["CM"]
    assert "cim.writexb" in listings["XBM"]
    assert "cim.readxb" in listings["XBM"]
    assert "cim.writerow" in listings["WLM"]
    assert "cim.readrow" in listings["WLM"]
    assert "relu(" in listings["CM"]
