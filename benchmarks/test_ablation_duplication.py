"""Ablation: duplication search strategy (DESIGN.md design-choice index).

Compares the min-bottleneck search (pipelined objective, CIM-MLC's choice),
the min-total search (un-pipelined objective), and Poly-Schedule's
latency-proportional greedy, all under the same pipelined execution — this
isolates the value of optimizing the right objective.
"""

from repro.arch import isaac_baseline
from repro.models import resnet50
from repro.sched import (
    CIMMLC,
    CompilerOptions,
    CostModel,
    duplicate_min_bottleneck,
    duplicate_min_total,
    pipelined_latency,
)
from repro.sched.schedule import OpDecision


def test_ablation_duplication_objective(benchmark):
    arch = isaac_baseline()
    graph = resnet50()

    def run():
        profiles = CostModel(arch).profiles(graph)
        cim = list(profiles.values())
        results = {}
        for label, search in [
            ("min-bottleneck", duplicate_min_bottleneck),
            ("min-total", duplicate_min_total),
        ]:
            dups = search(cim, arch.chip.core_number)
            decisions = [OpDecision(profiles[n.name],
                                    dup_cg=dups[n.name])
                         for n in graph.topological()]
            results[label] = {
                "bottleneck": max(d.latency() for d in decisions),
                "sum": sum(d.latency() for d in decisions),
                "pipelined": pipelined_latency(decisions),
            }
        return results

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n== ablation: duplication objective (resnet50) ==")
    for label, values in metrics.items():
        print(f"{label:<16} bottleneck={values['bottleneck']:,.0f} "
              f"sum={values['sum']:,.0f} "
              f"pipelined={values['pipelined']:,.0f}")
    # Each search must dominate on its own objective — the reason CIM-MLC
    # picks the objective that matches the execution style (bottleneck for
    # pipelined segments, total for sequential ones).
    assert metrics["min-bottleneck"]["bottleneck"] <= \
        metrics["min-total"]["bottleneck"] * (1 + 1e-9)
    assert metrics["min-total"]["sum"] <= \
        metrics["min-bottleneck"]["sum"] * (1 + 1e-9)
