"""Table 1: generality matrix — every claimed capability executes."""

from repro.experiments import table1


def test_table1_generality(run_experiment):
    result = run_experiment(table1)
    assert all(row.measured >= 1.0 for row in result.rows)
