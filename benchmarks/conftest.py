"""Benchmark harness configuration.

Each benchmark runs its experiment once (``pedantic`` with one round — the
experiments are deterministic compilations, not microbenchmarks), prints the
paper-vs-measured table to stdout, and records wall time via
pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment driver once under the benchmark timer and print
    its paper-vs-measured table."""

    def runner(fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        if hasattr(result, "table"):
            print("\n" + result.table())
        elif isinstance(result, dict):
            for value in result.values():
                if hasattr(value, "table"):
                    print("\n" + value.table())
        return result

    return runner
