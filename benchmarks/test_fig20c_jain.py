"""Fig. 20(c): speedup over Jain et al.'s schedule (WLM-mode SRAM macro).

Paper: CG 1.2x, CG+MVM ~1.2x, CG+MVM+VVM 2.3x.
"""

from repro.experiments import fig20c_jain


def test_fig20c_jain(run_experiment):
    result = run_experiment(fig20c_jain)
    cg = result.row("CG-grained").measured
    mvm = result.row("CG+MVM-grained").measured
    vvm = result.row("CG+MVM+VVM-grained").measured
    # Shape: each added level is monotone, VVM provides the extra win the
    # paper attributes to data remapping on this row-limited macro.
    assert 1.0 < cg <= mvm <= vvm
    assert vvm > mvm * 1.01
