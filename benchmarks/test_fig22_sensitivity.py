"""Fig. 22: architecture sensitivity sweeps on ViT (Section 4.4).

Shape checks mirror the paper's reading of each panel.
"""

import pytest

from repro.experiments import (
    fig22a_cores,
    fig22b_xb_number,
    fig22c_xb_size,
    fig22d_parallel_row,
)
from repro.models import vit_base


@pytest.fixture(scope="module")
def vit():
    return vit_base()


def test_fig22a_cores(run_experiment, vit):
    result = run_experiment(fig22a_cores, graph=vit)
    data = result.as_dict()
    # More cores -> more duplication headroom -> higher CG speedup.
    assert data["cores=1024 CG"] > data["cores=256 CG"]
    # Paper: 15x-30x range for CG; we assert double-digit wins at 1024.
    assert data["cores=1024 CG"] > 10


def test_fig22b_xb_number(run_experiment, vit):
    result = run_experiment(fig22b_xb_number, graph=vit)
    data = result.as_dict()
    assert data["xbs=20 CG+MVM+VVM"] >= data["xbs=8 CG+MVM+VVM"] * 0.9


def test_fig22c_xb_size(run_experiment, vit):
    result = run_experiment(fig22c_xb_size, graph=vit)
    data = result.as_dict()
    # Paper: 512-row crossbars hurt ViT (768-row matrices split awkwardly
    # and waste capacity) relative to the best shape.
    best = max(v for k, v in data.items() if k.endswith("CG+MVM+VVM"))
    assert data["512x64 CG+MVM+VVM"] <= best


def test_fig22d_parallel_row(run_experiment, vit):
    result = run_experiment(fig22d_parallel_row, graph=vit)
    data = result.as_dict()
    # VVM remap recovers losses when parallel rows shrink (paper: ~20% at 8).
    assert data["pr=8 CG+MVM+VVM"] >= data["pr=8 CG+MVM"]
    gain_at_8 = data["pr=8 CG+MVM+VVM"] / data["pr=8 CG+MVM"]
    gain_at_64 = data["pr=64 CG+MVM+VVM"] / max(1e-9, data["pr=64 CG+MVM"])
    assert gain_at_8 >= gain_at_64 * 0.99
