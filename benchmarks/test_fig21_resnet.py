"""Fig. 21: multi-level scheduling analysis on the ResNet series.

Paper narrative checked in shape:
(a) pipeline speedup *grows* with depth (2.3x -> 4.7x) while duplication
    speedup *shrinks* (25.4x -> 3.1x); P&D reaches up to 123x;
(b) MVM duplication adds speedup on the deeper ResNets;
(c) VVM remap adds on top of MVM;
(d) CG raises peak power ~5-16x, the MVM pipeline pulls it back down.
"""

import pytest

from repro.experiments import fig21

DEPTHS = (18, 34, 50, 101)


@pytest.fixture(scope="module")
def panels():
    return fig21(DEPTHS)


def test_fig21_all_panels(run_experiment, panels):
    # Timing is dominated by fig21() itself; re-print the cached result.
    def report():
        return panels

    run_experiment(report)


def test_fig21a_pipeline_grows_with_depth(panels):
    a = panels["a"].as_dict()
    assert a["resnet101 CG-Pipeline"] > a["resnet18 CG-Pipeline"]


def test_fig21a_duplication_shrinks_with_depth(panels):
    a = panels["a"].as_dict()
    assert a["resnet18 CG-Duplication"] > a["resnet101 CG-Duplication"]
    assert a["resnet18 CG-Duplication"] > 10   # paper: 25.4x


def test_fig21a_pd_dominates(panels):
    a = panels["a"].as_dict()
    for depth in DEPTHS:
        assert a[f"resnet{depth} CG-P&D"] >= \
            max(a[f"resnet{depth} CG-Pipeline"],
                a[f"resnet{depth} CG-Duplication"]) * 0.99


def test_fig21b_mvm_never_hurts(panels):
    for row in panels["b"].rows:
        assert row.measured >= 0.999


def test_fig21c_vvm_never_hurts(panels):
    for row in panels["c"].rows:
        assert row.measured >= 0.999


def test_fig21d_power_shape(panels):
    d = panels["d"].as_dict()
    for depth in DEPTHS:
        cg = d[f"resnet{depth} peak power CG"]
        mvm = d[f"resnet{depth} peak power CG+MVM"]
        assert cg > 1.0          # concurrency raises peak power
        assert mvm < cg          # staggering pulls it back
    # Paper: MVM cuts up to 85% (ResNet101).
    assert d["resnet101 peak power CG+MVM"] < \
        0.5 * d["resnet101 peak power CG"]
