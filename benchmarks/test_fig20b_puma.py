"""Fig. 20(b): peak-power reduction over PUMA (XBM-mode ReRAM chip).

Paper: the MVM-grained staggered pipeline cuts peak power by 75%.
"""

from repro.experiments import fig20b_puma


def test_fig20b_puma(run_experiment):
    result = run_experiment(fig20b_puma)
    reduction = result.row("peak power reduction").measured
    assert reduction > 50.0   # paper: 75%; shape = deep reduction
    ours = result.row("peak active crossbars (ours)").measured
    base = result.row("peak active crossbars (PUMA)").measured
    assert ours < base
