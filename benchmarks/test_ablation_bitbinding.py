"""Ablation: bit-dimension binding B->XBC vs B->XB (Fig. 7 design choice).

B->XBC (the default, ISAAC/PUMA layout) spreads weight bit-slices along
adjacent columns of one crossbar; B->XB replicates the matrix across one
crossbar per slice.  Same total cells, different tile counts — and
therefore different core packing and duplication headroom.
"""

from repro.arch import BitBinding, isaac_baseline
from repro.models import resnet18
from repro.sched import CIMMLC, CostModel
from repro.sim import PerformanceSimulator


def _cycles(bit_binding):
    arch = isaac_baseline()
    compiler = CIMMLC(arch)
    compiler.cost_model = CostModel(arch, bit_binding=bit_binding)
    schedule = compiler.schedule(resnet18())
    return PerformanceSimulator(arch).run(schedule).total_cycles


def test_ablation_bit_binding(benchmark):
    def run():
        return {
            "B->XBC": _cycles(BitBinding.XBC),
            "B->XB": _cycles(BitBinding.XB),
        }

    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n== ablation: bit binding (resnet18, Table 3 baseline) ==")
    for label, value in cycles.items():
        print(f"{label:<8} {value:,.0f} cycles")
    # Both bindings must produce valid, same-order-of-magnitude schedules;
    # the default must not be worse than the alternative by more than 2x.
    assert cycles["B->XBC"] <= 2 * cycles["B->XB"]
