#!/usr/bin/env python
"""Fail on broken intra-repo markdown links (the docs-rot guard).

Scans every tracked ``*.md`` file for inline links/images
``[text](target)`` and reference definitions ``[ref]: target``, and
verifies that each *relative* target resolves to an existing file or
directory (anchors and external ``http(s)``/``mailto`` targets are
skipped; ``#section`` anchors within a file are not validated — only
the file part).

Run:  python scripts/check_links.py [ROOT]
Exit status 1 with one line per broken link otherwise 0.
"""

import os
import re
import sys

#: Inline [text](target) — target up to the first closing paren or space
#: (titles like [t](x "y") are handled by splitting on whitespace).
_INLINE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_IMAGE = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)

#: Directories never scanned for markdown.
_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules",
              ".cache"}


def markdown_files(root):
    """All ``*.md`` paths under ``root`` (skipping VCS/cache dirs)."""
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in _SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def link_targets(text):
    """Every link target appearing in a markdown document."""
    targets = []
    for pattern in (_INLINE, _IMAGE, _REFDEF):
        targets.extend(pattern.findall(text))
    return targets


def is_external(target):
    """True for links this checker does not validate."""
    return target.startswith(("http://", "https://", "mailto:", "ftp://"))


def broken_links(root):
    """``(markdown file, target)`` pairs whose targets do not resolve."""
    broken = []
    for path in sorted(markdown_files(root)):
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        base = os.path.dirname(path)
        for target in link_targets(text):
            if is_external(target):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:          # pure in-page anchor
                continue
            resolved = os.path.normpath(os.path.join(base, file_part))
            if not os.path.exists(resolved):
                broken.append((os.path.relpath(path, root), target))
    return broken


def main(argv=None):
    """CLI entry point; prints broken links and sets the exit status."""
    args = argv if argv is not None else sys.argv[1:]
    root = args[0] if args else os.getcwd()
    broken = broken_links(root)
    for path, target in broken:
        print(f"{path}: broken link -> {target}")
    if broken:
        print(f"{len(broken)} broken intra-repo link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(list(markdown_files(root)))} markdown files: "
          f"all intra-repo links resolve", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
