#!/usr/bin/env python
"""Enforce docstrings on the public API surface (ruff-D1-equivalent).

Walks the scoped modules with ``ast`` and reports every public module,
class, function, method, or property that lacks a docstring — the same
set of findings as ``ruff check --select D1`` with magic methods and
``__init__`` exempted (D105/D107), so the check runs identically in the
offline container and in CI.

Scope (the documented public surface): ``repro/__init__.py``,
``repro/arch/presets.py``, ``repro/sim/power.py``, and every module of
``repro.explore``, ``repro.serve``, ``repro.scale``, ``repro.perf``.

Run:  python scripts/check_docstrings.py [SRC_ROOT]
"""

import ast
import os
import sys

#: Paths (relative to the src root) whose public surface must be
#: documented.
SCOPED = [
    "repro/__init__.py",
    "repro/arch/presets.py",
    "repro/arch/link.py",
    "repro/sim/power.py",
    "repro/explore",
    "repro/serve",
    "repro/fleet",
    "repro/scale",
    "repro/perf",
    "repro/trace",
    "repro/faults",
    "repro/reproduce",
]


def scoped_files(src_root):
    """Every python file the docstring contract covers.

    A scoped entry that no longer exists raises instead of silently
    shrinking the gate (e.g. after a package rename that forgot to
    update :data:`SCOPED` and the mirrored pyproject ruff include).
    """
    for entry in SCOPED:
        path = os.path.join(src_root, entry)
        if os.path.isfile(path):
            yield path
        elif os.path.isdir(path):
            for dirpath, _, filenames in os.walk(path):
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        yield os.path.join(dirpath, name)
        else:
            raise SystemExit(
                f"check_docstrings: scoped path {entry!r} does not exist "
                f"under {src_root!r}; update SCOPED (and pyproject "
                f"[tool.ruff] include)")


def _is_public(name):
    return not name.startswith("_")


def missing_docstrings(path):
    """``(lineno, kind, qualified name)`` for undocumented public defs."""
    with open(path, encoding="utf-8") as fh:
        tree = ast.parse(fh.read(), filename=path)
    found = []
    if ast.get_docstring(tree) is None:
        found.append((1, "module", os.path.basename(path)))

    def walk(node, prefix, in_class, public_scope):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                public = public_scope and _is_public(child.name)
                if public and ast.get_docstring(child) is None:
                    found.append((child.lineno, "class",
                                  prefix + child.name))
                walk(child, prefix + child.name + ".", True, public)
            elif isinstance(child, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                if public_scope and _is_public(child.name) and \
                        ast.get_docstring(child) is None:
                    kind = "method" if in_class else "function"
                    found.append((child.lineno, kind,
                                  prefix + child.name))
                # Nested defs are implementation detail; skip their body.

    walk(tree, "", False, True)
    return found


def main(argv=None):
    """CLI entry point; prints findings and sets the exit status."""
    args = argv if argv is not None else sys.argv[1:]
    src_root = args[0] if args else "src"
    problems = []
    checked = 0
    for path in scoped_files(src_root):
        checked += 1
        for lineno, kind, name in missing_docstrings(path):
            rel = os.path.relpath(path, src_root)
            problems.append(f"{rel}:{lineno}: undocumented {kind} {name}")
    for line in problems:
        print(line)
    if problems:
        print(f"{len(problems)} undocumented public definition(s)",
              file=sys.stderr)
        return 1
    print(f"checked {checked} scoped modules: public API fully "
          f"documented", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
