#!/usr/bin/env sh
# One-command artifact reproduction (see docs/REPRODUCE.md).
#
#   scripts/run_all.sh [quick|full] [extra `repro reproduce` args...]
#
# quick (default): warm-cache validation of every registered entry,
#                  ~5 minutes.
# full:            cold-cache regeneration of everything, full BENCH
#                  workloads.
#
# Exits non-zero naming any entry whose result deviates from the
# committed goldens; writes reproduce_report.json next to this script's
# invocation directory.
set -eu

profile="${1:-quick}"
case "$profile" in
    quick|full) shift $(( $# > 0 ? 1 : 0 )) ;;
    *) echo "usage: $0 [quick|full] [extra repro reproduce args]" >&2
       exit 2 ;;
esac

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m repro reproduce --profile "$profile" \
    --out reproduce_report.json "$@"
