#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md from the reproduction registry.

A thin wrapper over ``repro reproduce --bless``: every section of the
document is rendered by a :data:`repro.reproduce.REGISTRY` entry — the
same entries ``repro reproduce`` validates against the committed
goldens — so the published document and the validator cannot drift.
Regenerating therefore also re-blesses the goldens (the document and
the goldens are two renderings of the same payloads and must move
together).

The sweep-shaped drivers run through a shared
``repro.explore.SweepRunner``: points fan out over worker processes and
land in a disk cache, so regenerating the file after an unrelated edit
only recompiles what changed.

Run:  python scripts/generate_experiments_md.py [--workers N]
                                                [--cache-dir DIR | --no-cache]
"""

import argparse
import sys

from repro.reproduce import REGISTRY, run_profile


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the sweep drivers")
    parser.add_argument("--cache-dir", default=None,
                        help="sweep result cache (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro-explore)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the sweep result cache (runs the "
                             "cold `full` profile instead of `quick`)")
    args = parser.parse_args()
    report = run_profile(
        profile="full" if args.no_cache else "quick",
        only=[entry.name for entry in REGISTRY if entry.titles],
        bless=True,
        workers=args.workers,
        cache_dir=args.cache_dir,
        progress=lambda message: print(message, file=sys.stderr))
    errors = [e for e in report.entries if e.status == "error"]
    if errors:
        for entry in errors:
            print(f"ERROR in {entry.name}: {'; '.join(entry.failures)}",
                  file=sys.stderr)
        raise SystemExit(1)


if __name__ == "__main__":
    main()
