#!/usr/bin/env python
"""CI check: the disk compile memo makes a second process fully warm.

Runs the same small sweep twice in *separate* subprocesses sharing one
``REPRO_COMPILE_CACHE_DIR`` (explore's own result cache disabled, so
every point actually compiles and exercises the compile memo):

* the cold run must populate the store (``disk_writes > 0``);
* the warm run must perform **zero fresh compiles** — every profile,
  duplication search, and segmentation served from disk
  (``profile_misses == dup_misses == segment_misses == 0``);
* both runs must produce byte-identical result digests.

Usage: ``python scripts/check_disk_memo.py`` (set ``PYTHONPATH=src`` or
install the package).  Exits non-zero with a diagnostic on any failure.
"""

import json
import os
import subprocess
import sys
import tempfile

#: The workload: a 3-point core-count sweep of one small model — big
#: enough to hit every memo family, small enough for a CI smoke step.
CHILD = r"""
import hashlib, json, sys
from repro.explore import SweepRunner, SweepSpace, level_series
from repro.explore.runner import _PROCESS_CACHE
from repro.arch.presets import functional_testbed
from repro.models import get_model
from repro.perf import set_fastpath

set_fastpath(True)
space = SweepSpace.grid(functional_testbed(), get_model("lenet"),
                        {"cores": ["24", "28", "32"]},
                        series=level_series(["CG", "MVM"]))
sweep = SweepRunner(cache_dir=None).run(space)
digest = hashlib.sha256(json.dumps(
    [(r.label, r.series, r.summary) for r in sweep],
    sort_keys=True).encode()).hexdigest()
json.dump({"digest": digest, "stats": _PROCESS_CACHE.stats()},
          sys.stdout)
"""


def run_child(cache_dir: str) -> dict:
    env = dict(os.environ,
               REPRO_DISK_CACHE="1",
               REPRO_COMPILE_CACHE_DIR=cache_dir)
    proc = subprocess.run([sys.executable, "-c", CHILD], env=env,
                          capture_output=True, text=True)
    if proc.returncode != 0:
        sys.exit(f"child failed:\n{proc.stderr}")
    return json.loads(proc.stdout)


def main() -> None:
    failures = []
    with tempfile.TemporaryDirectory() as cache_dir:
        cold = run_child(cache_dir)
        warm = run_child(cache_dir)

    if cold["digest"] != warm["digest"]:
        failures.append(f"digest mismatch: cold {cold['digest'][:16]} "
                        f"vs warm {warm['digest'][:16]}")
    if cold["stats"]["disk_writes"] == 0:
        failures.append("cold run wrote nothing to the disk memo")
    for counter in ("profile_misses", "dup_misses", "segment_misses"):
        if warm["stats"][counter] != 0:
            failures.append(
                f"warm run recomputed: {counter} = "
                f"{warm['stats'][counter]} (expected 0)")
    if warm["stats"]["disk_hits"] == 0:
        failures.append("warm run never hit the disk memo")

    print(f"cold: {cold['stats']}")
    print(f"warm: {warm['stats']}")
    if failures:
        sys.exit("disk memo check FAILED:\n  " + "\n  ".join(failures))
    print("disk memo check passed: warm process performed zero fresh "
          "compiles, digests identical")


if __name__ == "__main__":
    main()
