#!/usr/bin/env python
"""Architecture sensitivity sweep (Fig. 22) on a custom network.

Uses the design-space exploration engine (``repro.explore``) to explore how
core count and parallel-row count change the value of each scheduling
level — the use case the compiler enables for architects.  The sweep fans
out over worker processes and memoizes every point in a disk cache, so
re-runs and overlapping sweeps are near-free.

Run:  python examples/sweep_architecture.py [--full] [--workers N]
                                            [--cache-dir DIR]
      (--full uses ViT-Base as in the paper; default uses ViT-Tiny for speed)
"""

import argparse

from repro.experiments import (
    fig22a_cores,
    fig22d_parallel_row,
    sensitivity_base_arch,
)
from repro.explore import SweepRunner
from repro.models import vit_base, vit_tiny


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="use ViT-Base as in the paper")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the sweep")
    parser.add_argument("--cache-dir", default=None,
                        help="memoize sweep points under this directory")
    args = parser.parse_args()

    graph = vit_base() if args.full else vit_tiny()
    runner = SweepRunner(workers=args.workers, cache_dir=args.cache_dir)
    print(f"workload: {graph.name}; "
          f"base architecture: {sensitivity_base_arch()}\n")
    print(fig22a_cores(graph=graph, runner=runner).table())
    print()
    print(fig22d_parallel_row(graph=graph, runner=runner).table())
    print("\nReading the sweep: more cores monotonically raise the CG-level "
          "win (more duplication headroom);\nfewer parallel rows hurt MVM "
          "scheduling but the VVM remap claws the loss back (paper: ~20% "
          "at 8 rows).")


if __name__ == "__main__":
    main()
