#!/usr/bin/env python
"""Architecture sensitivity sweep (Fig. 22) on a custom network.

Uses the public sweep API to explore how core count and parallel-row count
change the value of each scheduling level — the design-space-exploration
use case the compiler enables for architects.

Run:  python examples/sweep_architecture.py [--full]
      (--full uses ViT-Base as in the paper; default uses ViT-Tiny for speed)
"""

import sys

from repro.experiments import (
    fig22a_cores,
    fig22d_parallel_row,
    sensitivity_base_arch,
)
from repro.models import vit_base, vit_tiny


def main() -> None:
    graph = vit_base() if "--full" in sys.argv else vit_tiny()
    print(f"workload: {graph.name}; "
          f"base architecture: {sensitivity_base_arch()}\n")
    print(fig22a_cores(graph=graph).table())
    print()
    print(fig22d_parallel_row(graph=graph).table())
    print("\nReading the sweep: more cores monotonically raise the CG-level "
          "win (more duplication headroom);\nfewer parallel rows hurt MVM "
          "scheduling but the VVM remap claws the loss back (paper: ~20% "
          "at 8 rows).")


if __name__ == "__main__":
    main()
