#!/usr/bin/env python
"""Reproduce Fig. 16: generated meta-operator code for Conv-ReLU.

Compiles the paper's Section 3.4 walkthrough (Conv 3->32 3x3 s1 p1 on a
32x32 input, then ReLU) onto the Table 2 toy architecture, once per
computing mode, and prints each flow in the paper's BNF syntax — the CM
core-interface code, the XBM crossbar-interface code, and the WLM
row-interface code.

Run:  python examples/codegen_conv_relu.py
"""

from repro.experiments import fig16_codegen, fig16_stats


def main() -> None:
    listings = fig16_codegen(max_lines=18)
    titles = {
        "CM": "(c) CM - Core Interface (Chip tier)",
        "XBM": "(d) XBM - Crossbar Interface (Core tier)",
        "WLM": "(e) WLM - Rows Interface (Crossbar tier)",
    }
    for mode in ("CM", "XBM", "WLM"):
        print("=" * 60)
        print(titles[mode])
        print("=" * 60)
        print(listings[mode])
        print()
    print(fig16_stats().table())


if __name__ == "__main__":
    main()
