#!/usr/bin/env python
"""Multi-tenant serving: spatial chip partitioning vs. time multiplexing.

The headline serving scenario: a FLASH-cell chip (weight writes cost 100x
a read, so swapping tenants reprograms crossbars expensively) serves a
mixed resnet18 + mobilenet request stream.  Spatially partitioning the
chip — each tenant owns a core region sized by the latency water-filling
allocator, weights stay resident — beats the time-multiplexed baseline
on p99 latency and SLO attainment, because the baseline burns chip time
on reconfiguration and lets slow mobilenet batches block resnet traffic.

Run:  python examples/serve_multi_tenant.py [--requests N] [--rate R]
      (rate in requests per mega-cycle; default 22)
"""

import argparse

from repro.arch import isaac_flash
from repro.serve import (
    TenantSpec,
    TimeoutBatch,
    make_plan,
    poisson_trace,
    simulate,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=300,
                        help="trace length in requests")
    parser.add_argument("--rate", type=float, default=22.0,
                        help="arrival rate in requests per mega-cycle")
    parser.add_argument("--seed", type=int, default=0, help="trace seed")
    args = parser.parse_args()

    arch = isaac_flash()
    tenants = [
        TenantSpec("resnet18", "resnet18", weight=4.0),
        TenantSpec("mobilenet", "mobilenet", weight=1.0),
    ]
    trace = poisson_trace(tenants, rate=args.rate * 1e-6,
                          num_requests=args.requests, seed=args.seed)
    policy = TimeoutBatch(max_size=8, timeout=50_000.0)

    print(f"chip: {arch}")
    print(f"workload: {args.requests} requests at {args.rate:g} req/Mcycle "
          f"(resnet18:mobilenet = 4:1)\n")

    reports = {}
    for mode in ("spatial", "temporal"):
        plan = make_plan(mode, arch, tenants)
        if mode == "spatial":
            shares = ", ".join(f"{t.spec.name}={len(t.cores)}"
                               for t in plan.tenants)
            print(f"spatial partition (latency water-filling): {shares}\n")
        reports[mode] = simulate(plan, trace, policy=policy)
        print(reports[mode].table())
        print()

    spatial, temporal = reports["spatial"], reports["temporal"]
    print(f"p99 speedup of partitioning: "
          f"{temporal.p99 / spatial.p99:.2f}x "
          f"(SLO attainment {spatial.slo_attainment:.0%} vs "
          f"{temporal.slo_attainment:.0%}); the baseline spent "
          f"{temporal.switch_cycles:,.0f} cycles reprogramming crossbars.")


if __name__ == "__main__":
    main()
