#!/usr/bin/env python
"""Fault injection: serving on dying silicon, start to finish.

Analog CIM chips degrade in the field — cores and crossbar regions go
dark, conductance drift slowly corrupts programmed weights, and
sometimes a whole accelerator drops out of the fleet.  This walkthrough
injects each failure mode and watches the stack route around it:

1. **Plan-time masking** — kill a spread of cores on the die, rebuild
   the spatial serving plan with `plan_degraded`, and check that no
   tenant region touches dead silicon.  Zero injected faults reproduce
   the fault-free plan bit for bit (the digests printed below match).
2. **A degradation sweep** — replay the *same* seeded trace on
   progressively more dead cores and tabulate throughput, tail
   latency, and SLO attainment per dead-core count.
3. **Run-time injection** — a fleet run where conductance drift forces
   periodic weight rewrites (priced by the write-energy model) and one
   replica dies mid-trace: queued requests re-route, a spare deploys,
   and the report ledger shows availability and recovery time.

Run:  python examples/fault_degradation.py [--requests N] [--kill N]
"""

import argparse

from repro.arch import isaac_baseline
from repro.faults import (
    FaultModel,
    degradation_sweep,
    plan_degraded,
    spread_mask,
    sweep_table,
)
from repro.fleet import build_fleet, simulate_fleet
from repro.serve import TenantSpec, make_trace, simulate


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=2_000,
                        help="trace length in requests")
    parser.add_argument("--kill", type=int, default=64,
                        help="dead cores for the plan-time demo")
    args = parser.parse_args()

    arch = isaac_baseline()
    specs = [TenantSpec("resnet18", "resnet18", 4.0),
             TenantSpec("mobilenet", "mobilenet", 1.0)]
    trace = make_trace("poisson", specs, 50e-6, args.requests, seed=7)

    # -- 1. plan-time masking -----------------------------------------
    print("== plan-time masking ==")
    healthy = plan_degraded(arch, specs, None)
    zero = plan_degraded(arch, specs, FaultModel())
    a = simulate(healthy, trace).digest()
    b = simulate(zero, trace).digest()
    print(f"zero-fault plan is bit-identical to fault-free: {a == b}")

    fault = FaultModel(dead_cores=spread_mask(arch.chip.core_number,
                                              args.kill))
    degraded = plan_degraded(arch, specs, fault)
    dead = set(fault.dead_cores)
    clean = all(not (set(t.cores) & dead) for t in degraded.tenants)
    print(f"killed {args.kill}/{arch.chip.core_number} cores "
          f"(spread); degraded regions avoid every one: {clean}")
    rep = simulate(degraded, trace)
    print(f"degraded serve: {rep.completed} done, "
          f"p99 {rep.p99:,.0f} cyc, SLO {rep.slo_attainment:.1%}")

    # -- 2. degradation sweep -----------------------------------------
    print("\n== serving quality vs dead cores ==")
    points = degradation_sweep(arch, specs, [0, 64, 128, 256], 50e-6,
                               num_requests=args.requests, seed=7)
    print(sweep_table(points))

    # -- 3. run-time injection: drift + chip death --------------------
    print("\n== drift + mid-trace chip death (fleet of 4) ==")
    plan = build_fleet(arch, specs, replicas=4)
    horizon = trace[-1].arrival
    injected = FaultModel(drift_interval=horizon / 8,
                          chip_death_time=horizon / 2,
                          chip_death_rid=1)
    report = simulate_fleet(plan, trace, fault=injected)
    print(report.table())
    led = report.fault
    print(f"availability through the death: {report.availability:.4%}")
    print(f"drift rewrites: {report.drift_rewrites} "
          f"(fault energy {report.fault_energy:,.0f})")
    print(f"lost in flight: {led['lost_requests']}, "
          f"re-routed: {led['rerouted_requests']}")


if __name__ == "__main__":
    main()
