#!/usr/bin/env python
"""Functional verification: meta-operator flows compute exactly right.

Mirrors Section 4.1: the compiled meta-operator trace executes on the
functional simulator (crossbar arrays with bit-sliced cells, offset-binary
encoding, digital shift-and-add) and the result is compared bit-for-bit
against the reference executor — for every computing mode.

Run:  python examples/functional_verification.py
"""

import numpy as np

from repro import ComputingMode, functional_testbed, lenet, tiny_conv
from repro.mops import FlowValidator, emit
from repro.quant import random_input, random_weights
from repro.sched import CIMMLC
from repro.sched.lowering import lower_to_flow
from repro.sim.functional import CIMMachine
from repro.sim.reference import ReferenceExecutor


def verify(graph, arch) -> bool:
    weights = random_weights(graph, seed=3, low=-4, high=4)
    inputs = random_input(graph, seed=7)
    schedule = CIMMLC(arch).schedule(graph)
    program = lower_to_flow(schedule, weights)
    FlowValidator(arch).validate(program.flow)

    machine = CIMMachine(arch)
    machine.run(program, inputs)
    reference = ReferenceExecutor(graph, weights).run(inputs)

    exact = True
    for out in graph.outputs:
        got = machine.read_tensor(program, out, reference[out].shape)
        exact &= bool(np.array_equal(got, reference[out].astype(np.float64)))
    print(f"  {graph.name:<12} [{arch.mode}] "
          f"steps={len(program.flow.statements):<6} "
          f"activations={machine.stats['cim_activations']:<6} "
          f"exact={exact}")
    return exact


def main() -> None:
    print("functional verification against the reference executor:")
    all_ok = True
    for mode in ComputingMode:
        for model in (tiny_conv, lenet):
            all_ok &= verify(model(), functional_testbed(mode))
    print("\nall exact!" if all_ok else "\nMISMATCH — see above")

    # Show a slice of the generated program for one case.
    graph = tiny_conv()
    arch = functional_testbed(ComputingMode.WLM)
    program = lower_to_flow(CIMMLC(arch).schedule(graph),
                            random_weights(graph, seed=3, low=-4, high=4))
    print("\nfirst lines of the WLM meta-operator program:")
    print("\n".join(emit(program.flow).splitlines()[:14]))


if __name__ == "__main__":
    main()
