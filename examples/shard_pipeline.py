"""Shard resnet18 across a multi-chip system and watch throughput scale.

The single-chip compiler maxes out one die: duplication is limited by the
core budget and resident weights by crossbar capacity.  This example
takes a capacity-constrained ISAAC-like chip (200 cores), shards resnet18
across 1..4 chips joined by a ring of explicit inter-chip links, and
prints how the pipelined steady-state interval improves until the
movement-bound first convolution saturates the pipeline.

Run:  PYTHONPATH=src python examples/shard_pipeline.py
"""

from repro import CIMMLC
from repro.arch import ChipLink, MultiChipSystem, isaac_baseline
from repro.models import resnet18
from repro.scale import link_table, pipeline_summary, placement_table, shard


def main() -> None:
    chip = isaac_baseline().with_cores(200)
    link = ChipLink(bandwidth_bits=512.0, latency_cycles=100.0)
    single = CIMMLC(chip).compile(resnet18())
    print(f"single chip ({chip.chip.core_number} cores): interval "
          f"{single.report.steady_state_interval:,.0f} cycles\n")

    plans = {}
    for chips in (1, 2, 3, 4):
        system = MultiChipSystem(chip, chips, link=link, topology="ring")
        plans[chips] = shard(resnet18(), system)
        report = plans[chips].report
        speedup = report.speedup_over(single.report)
        print(f"chips={chips}: interval "
              f"{report.steady_state_interval:>8,.0f} cycles  "
              f"latency {report.total_cycles:>8,.0f}  "
              f"throughput {speedup:5.2f}x vs 1 chip")

    best = plans[3]
    print("\n--- 3-chip plan ---")
    print(placement_table(best))
    print()
    print(link_table(best))
    print()
    print(pipeline_summary(best, single.report))
    print("\nthe first conv's data movement floor paces the pipeline; "
          "past it, extra chips only shorten stages that no longer "
          "matter — the saturation point `repro sweep --vary chips=...` "
          "finds automatically.")


if __name__ == "__main__":
    main()
