#!/usr/bin/env python
"""Deploy networks onto the paper's three real CIM chips (Figs. 17-19).

Shows the generality claim in action: the *same* compiler handles a
Core-Mode SRAM accelerator (Jia et al.), a Crossbar-Mode ReRAM accelerator
(PUMA), and a Wordline-Mode SRAM macro (Jain et al.), applying exactly the
optimization levels each chip's programming interface exposes.

Run:  python examples/deploy_vendor_chips.py
"""

import json

from repro import CIMMLC, jain2021, jia2021, no_optimization, puma, vgg7, vgg16


def deploy(graph, arch) -> None:
    print("=" * 64)
    print(f"{arch.name}: {arch}")
    print(json.dumps(arch.describe(), indent=1, default=str))
    vendor = no_optimization(graph, arch)
    ours = CIMMLC(arch).compile(graph)
    print(f"model: {graph.name}")
    print(f"levels applied: {'+'.join(ours.schedule.levels)} "
          f"(mode {arch.mode} exposes {arch.mode.optimization_levels})")
    print(f"vendor-style schedule: {vendor.total_cycles:,.0f} cycles, "
          f"peak power {vendor.peak_power:,.1f}")
    reduction = 100 * (1 - ours.peak_power / vendor.peak_power)
    print(f"CIM-MLC:              {ours.total_cycles:,.0f} cycles "
          f"({vendor.total_cycles / ours.total_cycles:.2f}x), "
          f"peak power {ours.peak_power:,.1f} "
          f"({reduction:.0f}% reduction)")
    print(f"segments: {len(ours.schedule.segments)}")
    print()


def main() -> None:
    deploy(vgg16(), jia2021())    # Work 1: CM SRAM accelerator
    deploy(vgg16(), puma())       # Work 2: XBM ReRAM accelerator
    deploy(vgg7(), jain2021())    # Work 3: WLM SRAM macro


if __name__ == "__main__":
    main()
