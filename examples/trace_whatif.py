"""Record a trace, find the bottleneck, then what-if replay upgrades.

A recorded trace stores the exact magnitudes every interval was priced
from, so exploring "what if the link were faster?" or "what if we
batched longer?" does not need the simulator again: the replayer
re-prices the stored timeline.  This example shards VGG-7 across three
chips, records the pipeline trace, extracts its critical path, replays
a link-bandwidth sweep (exact — verified against one ground-truth
re-simulation), and then re-prices a multi-tenant serving recording
under a longer batching timeout.

Run:  PYTHONPATH=src python examples/trace_whatif.py
"""

from repro.arch import ChipLink, MultiChipSystem, isaac_baseline
from repro.models import vgg7
from repro.scale import shard
from repro.serve import TenantSpec, make_plan, make_trace
from repro.serve.engine import TimeoutBatch
from repro.trace import (
    Mutation,
    attribute,
    critical_path,
    record_serve,
    record_shard,
    replay,
)


def main() -> None:
    arch = isaac_baseline()
    plan = shard(vgg7(), MultiChipSystem(arch, 3))
    trace = record_shard(plan)
    print(f"recorded shard trace: {len(trace)} spans, "
          f"digest {trace.digest()[:16]}")
    print("identity replay == recording:",
          replay(trace).trace.digest() == trace.digest())

    print()
    print(critical_path(trace).describe())
    print(f"dominant cause: {attribute(trace)['dominant']}")

    print(f"\n{'link bw':>8} {'total cycles':>14} {'interval':>10}"
          "   (replayed, no re-simulation)")
    for bw in (16.0, 64.0, 256.0, 1024.0):
        m = replay(trace, Mutation(link_bandwidth=bw)).metrics
        print(f"{bw:>8,.0f} {m['total_cycles']:>14,.1f} "
              f"{m['steady_state_interval']:>10,.1f}")

    link = ChipLink(bandwidth_bits=16.0)
    truth = shard(vgg7(), MultiChipSystem(arch, 3, link=link)).report
    replayed = replay(trace, Mutation(link_bandwidth=16.0)).metrics
    verdict = ("matches exactly"
               if replayed["total_cycles"] == truth.total_cycles
               else "DIVERGES")
    print(f"ground truth at bw=16: {truth.total_cycles:,.1f} cycles "
          f"— replay {verdict}")

    specs = [TenantSpec("lenet", "lenet", 1.0),
             TenantSpec("vgg7", "vgg7", 1.0)]
    serve_plan = make_plan("temporal", arch, specs)
    requests = make_trace("poisson", specs, 1 / 150_000.0, 40, seed=2)
    report, serve_trace = record_serve(serve_plan, requests,
                                       policy=TimeoutBatch(4, 25_000.0))
    print(f"\nserving recording: p99 {report.p99:,.0f} cycles "
          f"(timeout 25,000)")
    for timeout in (10_000.0, 50_000.0, 100_000.0):
        m = replay(serve_trace, Mutation(batch_timeout=timeout)).metrics
        print(f"  what-if timeout={timeout:>9,.0f}: "
              f"p99 {m['p99']:>10,.0f}  mean {m['mean']:>10,.0f}")
    print("\nsame machinery as `repro trace record/analyze/whatif` and "
          "the `repro sweep --prefilter replay` screening pass.")


if __name__ == "__main__":
    main()
