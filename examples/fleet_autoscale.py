#!/usr/bin/env python
"""Fleet autoscaling: a replicated serving fleet riding a diurnal day.

Eight replicas of a FLASH-cell chip sit behind a front-end router and
serve a bursty request stream whose rate swings sinusoidally — the
day/night shape an autoscaler exists for.  The autoscaler starts at two
active replicas, scales up immediately when outstanding work piles up at
the diurnal peak, and scales back down off-peak only after a hysteresis
hold (so a single quiet tick inside a burst never powers a replica off).
Every spin-up is paid for: the new replica programs every tenant's
weights into its crossbars (the power model's deployment cost) before it
can serve, and that energy lands on the fleet ledger next to compute and
link energy.

The same trace is then replayed over the *static* full fleet to show the
trade the autoscaler makes explicit: it re-pays weight programs at every
dawn and concedes a slice of tail latency, in exchange for holding only
the replicas the hour needs — the capacity the static fleet keeps
powered around the clock for free in this ledger (which charges
inference, deployment, and link energy, but not idleness).

Run:  python examples/fleet_autoscale.py [--requests N] [--rate R]
      (rate in requests per mega-cycle; default 120)
"""

import argparse

from repro.arch import isaac_flash
from repro.fleet import (
    AdmissionControl,
    Autoscaler,
    build_fleet,
    simulate_fleet,
)
from repro.serve import TenantSpec, make_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=20_000,
                        help="trace length in requests")
    parser.add_argument("--rate", type=float, default=120.0,
                        help="arrival rate in requests per mega-cycle")
    parser.add_argument("--replicas", type=int, default=8,
                        help="maximum fleet size")
    parser.add_argument("--seed", type=int, default=0, help="trace seed")
    args = parser.parse_args()

    arch = isaac_flash()
    tenants = [
        TenantSpec("resnet18", "resnet18", weight=4.0),
        TenantSpec("mobilenet", "mobilenet", weight=1.0),
    ]
    # One shared compile cache: every replica past the first is free.
    fleet = build_fleet(arch, tenants, replicas=args.replicas)
    # A long "day" relative to the autoscaler tick, so scaling tracks
    # the envelope instead of flapping across it.
    trace = make_trace("diurnal-bursty", tenants, rate=args.rate * 1e-6,
                       num_requests=args.requests, seed=args.seed,
                       period=40_000_000.0)

    print(f"chip: {arch}")
    print(f"workload: {args.requests:,} requests at {args.rate:g} "
          f"req/Mcycle, diurnal envelope with bursts "
          f"(resnet18:mobilenet = 4:1)\n")

    admission = AdmissionControl(max_outstanding=64)
    scaler = Autoscaler(tick_cycles=1_000_000.0, min_replicas=2,
                        up_threshold=12.0, down_threshold=3.0,
                        hold_ticks=3)

    auto = simulate_fleet(fleet, trace, admission=admission,
                          autoscaler=scaler)
    print(auto.table())
    ups = sum(1 for _, a, _ in auto.scale_events if a == "up")
    downs = sum(1 for _, a, _ in auto.scale_events if a == "down")
    print(f"\nscale events: {ups} up / {downs} down; active replicas "
          f"peaked at {auto.active_peak} (started at "
          f"{auto.initial_active}); deployment energy "
          f"{auto.deploy_energy:,.0f} over {auto.deployments} spin-ups\n")

    static = simulate_fleet(fleet, trace, admission=admission)
    print(static.table())

    print(f"\nautoscaled vs static fleet: p99 {auto.p99:,.0f} vs "
          f"{static.p99:,.0f} cycles; energy/request "
          f"{auto.energy_per_request:,.0f} vs "
          f"{static.energy_per_request:,.0f}; deployment energy "
          f"{auto.deploy_energy:,.0f} vs {static.deploy_energy:,.0f} "
          f"(the static fleet pays all {static.deployments} weight "
          f"programs up front).")


if __name__ == "__main__":
    main()
