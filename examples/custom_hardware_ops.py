#!/usr/bin/env python
"""Extensibility: custom graph operators and custom meta-operators.

The paper: "Users have the flexibility to extend meta operators, aligning
them with the hardware-supported functions."  This example registers

1. a new *graph* operator (`HardSwish`) with its shape/ALU cost so the
   scheduler can place it, and
2. a new *meta*-operator (`custom.lut_activation`) representing a hardware
   lookup-table activation unit, emitted through the standard BNF syntax.

Run:  python examples/custom_hardware_ops.py
"""

from repro import CIMMLC, GraphBuilder, isaac_baseline
from repro.graph.ops import OpSpec, register_op
from repro.mops import CustomOp, MetaOperatorFlow, emit, parse_flow


class HardSwishSpec(OpSpec):
    """x * relu6(x + 3) / 6 — shape preserving, ~3 ALU ops per element."""

    def alu_ops(self, node, inputs):
        return 3 * inputs[0].numel


def main() -> None:
    register_op("HardSwish", HardSwishSpec())

    # Build a network using the custom operator.
    b = GraphBuilder("custom_net")
    x = b.input("x", (1, 3, 32, 32))
    x = b.conv(x, 16, kernel=3, padding=1, name="conv1")
    x = b.node("HardSwish", [x], name="hswish")
    b._copy_shape("conv1_out", x)
    x = b.conv(x, 16, kernel=3, padding=1, name="conv2")
    graph = b.build([x])

    # The scheduler costs HardSwish as digital (ALU) work automatically.
    result = CIMMLC(isaac_baseline()).compile(graph)
    print(f"compiled {graph.name}: {result.total_cycles:,.0f} cycles, "
          f"levels {'+'.join(result.schedule.levels)}")
    print(f"HardSwish scheduled as digital op: "
          f"{not result.schedule.decision('hswish').profile.is_cim}")

    # Emit a flow featuring a custom hardware meta-operator.
    flow = MetaOperatorFlow("lut_demo")
    flow.append(CustomOp("lut_activation",
                         (("table", "hswish_lut"), ("src", 0),
                          ("dst", 4096), ("len", 1024))))
    text = emit(flow)
    print("\ncustom meta-operator, BNF-emitted and re-parsed:")
    print(" ", text.strip())
    parsed = parse_flow(text)
    print("  round-trip exact:", emit(parsed) == text)


if __name__ == "__main__":
    main()
