#!/usr/bin/env python
"""Quickstart: compile ResNet-18 onto the ISAAC-like baseline CIM chip.

Demonstrates the three-step public API:

1. pick (or describe) a CIM architecture,
2. pick (or build) a DNN graph,
3. compile and read the performance report.

Run:  python examples/quickstart.py
"""

from repro import CIMMLC, CompilerOptions, isaac_baseline, no_optimization, resnet18


def main() -> None:
    arch = isaac_baseline()
    graph = resnet18()
    print(f"architecture: {arch}")
    print(f"model: {graph.name} ({len(graph.nodes)} nodes, "
          f"{graph.total_weight_bits() / 8e6:.1f} MB weights)\n")

    # Un-optimized deployment (layer-by-layer, one replica per operator).
    baseline = no_optimization(graph, arch)
    print(f"w/o optimization: {baseline.total_cycles:,.0f} cycles")

    # Full multi-level compilation (CG + MVM + VVM for this WLM chip).
    result = CIMMLC(arch).compile(graph)
    print(f"CIM-MLC:          {result.total_cycles:,.0f} cycles "
          f"({baseline.total_cycles / result.total_cycles:.1f}x speedup)")
    print(f"levels applied:   {'+'.join(result.schedule.levels)}")
    print(f"peak power:       {result.peak_power:,.1f} "
          f"(baseline {baseline.peak_power:,.1f})\n")

    # Ablation: what each level contributes.
    for label, options in [
        ("CG pipeline only", CompilerOptions(max_level="CG",
                                             duplicate=False)),
        ("CG duplication only", CompilerOptions(max_level="CG",
                                                pipeline=False)),
        ("CG pipeline+duplication", CompilerOptions(max_level="CG")),
        ("CG+MVM", CompilerOptions(max_level="MVM")),
        ("CG+MVM+VVM", CompilerOptions()),
    ]:
        run = CIMMLC(arch, options).compile(graph)
        print(f"  {label:<26} "
              f"{baseline.total_cycles / run.total_cycles:6.1f}x")


if __name__ == "__main__":
    main()
