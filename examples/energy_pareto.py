#!/usr/bin/env python
"""Energy-aware exploration: latency x energy x area Pareto frontiers
and power-capped serving.

Part 1 sweeps resnet18 over a core-count grid and across presets,
extracting the non-dominated frontier under the three-way objective set
``ENERGY_OBJECTIVES`` (single-inference latency, energy per inference,
resident crossbar area).  Part 2 plans the same two-tenant serving mix
twice — uncapped and under a chip-level peak-power budget — and shows
the planner *down-duplicating* a tenant to fit the cap.

All numbers are in the power model's arbitrary units; see
docs/ENERGY.md for the constants and the calibration knobs.

Run:  python examples/energy_pareto.py [--workers N] [--cache-dir DIR]
"""

import argparse

from repro.arch import isaac_baseline, isaac_flash, puma
from repro.explore import (
    ENERGY_OBJECTIVES,
    SweepRunner,
    SweepSpace,
    pareto_frontier,
)
from repro.models import resnet18
from repro.sched import CompilerOptions
from repro.serve import TenantSpec, plan_spatial


def frontier_table(sweep) -> str:
    """Render every point with its objective vector and frontier mark."""
    frontier = {id(r) for r in pareto_frontier(list(sweep),
                                               ENERGY_OBJECTIVES)}
    lines = [f"{'point':<28} {'cycles':>12} {'energy/inf':>14} "
             f"{'crossbars':>10} {'pareto':>7}"]
    for r in sweep:
        s = r.summary
        lines.append(
            f"{r.label + '/' + r.series:<28} {s['total_cycles']:>12,.0f} "
            f"{s['energy_per_inference']:>14,.0f} "
            f"{s['area_crossbars']:>10,} "
            f"{'*' if id(r) in frontier else '':>7}")
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the sweep")
    parser.add_argument("--cache-dir", default=None,
                        help="memoize sweep points under this directory")
    args = parser.parse_args()
    runner = SweepRunner(workers=args.workers, cache_dir=args.cache_dir)
    graph = resnet18()

    # -- Part 1: the latency x energy x area frontier -------------------
    space = SweepSpace.grid(
        isaac_baseline(), graph, {"cores": [256, 512, 1024]},
        series=[("CIM-MLC", CompilerOptions())])
    for label, arch in (("isaac-flash", isaac_flash()), ("puma", puma())):
        space.add_point(label, arch, graph)
    sweep = runner.run(space)
    print(f"{graph.name}: latency x energy x area "
          f"(objectives: {', '.join(ENERGY_OBJECTIVES)})\n")
    print(frontier_table(sweep))
    print("\nReading the frontier: more cores buy duplication (latency "
          "down) but keep more\ncrossbars resident and active (area and "
          "energy up) — no single point wins all\nthree, which is why "
          "energy-constrained deployment is a frontier, not an optimum.")

    # -- Part 2: power-capped serving -----------------------------------
    arch = isaac_flash()
    specs = [TenantSpec("resnet18", "resnet18", weight=4.0),
             TenantSpec("mobilenet", "mobilenet", weight=1.0)]
    uncapped = plan_spatial(arch, specs, place=False)
    budget = 0.6 * uncapped.peak_power
    capped = plan_spatial(arch, specs, place=False, power_budget=budget)
    print(f"\nserving {', '.join(s.name for s in specs)} on {arch.name}:")
    for title, plan in (("uncapped", uncapped),
                        (f"budget {budget:,.0f}", capped)):
        alloc = ", ".join(f"{t.spec.name}={len(t.cores)} cores "
                          f"(peak {t.service.peak_power:,.0f})"
                          for t in plan.tenants)
        print(f"  {title:<16} peak {plan.peak_power:>9,.1f}  [{alloc}]")
    print("\nThe capped planner shrank the hungriest tenant's region "
          "(down-duplication:\nfewer replicas -> fewer simultaneously "
          "active crossbars) until the mix fit the\nbudget; freed cores "
          "stay dark.  docs/ENERGY.md walks through the mechanics.")


if __name__ == "__main__":
    main()
